// Clique-engine benchmarks (google-benchmark): the perf trajectory of the
// Bron–Kerbosch rebuild.  Run via the `bench_cliques_json` target (or
// directly with --benchmark_out) to emit BENCH_cliques.json, the artifact
// CI uploads alongside the storage and correlation trajectories:
//
//   * sequential improved BK (§2.2 version 2 — the pre-rebuild speed
//     baseline this PR's acceptance criterion measures against);
//   * sequential degeneracy-ordered BK with max-candidate pivoting;
//   * the same, directly off a memory-mapped .gsbg (storage-aware path);
//   * the work-stealing parallel driver at 1/2/4/8 threads;
//   * parallel BK spilling into a .gsbc clique stream (the bounded-memory
//     output path `gsb cliques --clique-out` uses).
//
// Every variant reports cliques/s (items) on the same planted-module
// graph — a dense overlapping-clique workload where pivot quality and
// load balance both matter — so degeneracy-vs-improved and thread-scaling
// speedups read directly off the JSON.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "core/parallel_bk.h"
#include "graph/generators.h"
#include "graph/graph_view.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using gsb::core::CliqueCounter;

struct Fixture {
  gsb::graph::Graph graph;
  std::string gsbg_path;
  std::string gsbc_path;

  Fixture() {
    gsb::util::Rng rng(2005);
    gsb::graph::ModuleGraphConfig config;
    config.n = 3000;
    config.num_modules = 340;
    config.max_module_size = 18;
    config.overlap = 0.35;
    graph = gsb::graph::planted_modules(config, rng).graph;
    gsbg_path = (fs::temp_directory_path() / "bench_cliques.gsbg").string();
    gsbc_path = (fs::temp_directory_path() / "bench_cliques.gsbc").string();
    gsb::storage::write_gsbg_file(graph, gsbg_path);
  }
  ~Fixture() {
    std::error_code ec;
    fs::remove(gsbg_path, ec);
    fs::remove(gsbc_path, ec);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_ImprovedBkSequential(benchmark::State& state) {
  const gsb::graph::GraphView g(fixture().graph);
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    CliqueCounter counter;
    gsb::core::improved_bk(g, counter.callback());
    cliques = counter.total();
    benchmark::DoNotOptimize(cliques);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_ImprovedBkSequential)->Unit(benchmark::kMillisecond);

void BM_DegeneracyBkSequential(benchmark::State& state) {
  const gsb::graph::GraphView g(fixture().graph);
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    CliqueCounter counter;
    gsb::core::degeneracy_bk(g, counter.callback());
    cliques = counter.total();
    benchmark::DoNotOptimize(cliques);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_DegeneracyBkSequential)->Unit(benchmark::kMillisecond);

void BM_DegeneracyBkMapped(benchmark::State& state) {
  const auto mapped = gsb::storage::MappedGraph::open(fixture().gsbg_path);
  const gsb::graph::GraphView g = mapped.view();
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    CliqueCounter counter;
    gsb::core::degeneracy_bk(g, counter.callback());
    cliques = counter.total();
    benchmark::DoNotOptimize(cliques);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_DegeneracyBkMapped)->Unit(benchmark::kMillisecond);

void BM_ParallelBk(benchmark::State& state) {
  const gsb::graph::GraphView g(fixture().graph);
  gsb::core::ParallelBkOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    CliqueCounter counter;
    const auto stats = gsb::core::parallel_bk(g, counter.callback(), options);
    cliques = counter.total();
    benchmark::DoNotOptimize(stats.steals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_ParallelBk)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelBkToGsbcStream(benchmark::State& state) {
  const gsb::graph::GraphView g(fixture().graph);
  gsb::core::ParallelBkOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    gsb::storage::GsbcWriter writer(fixture().gsbc_path, g.order());
    gsb::core::parallel_bk(
        g,
        [&writer](std::span<const gsb::graph::VertexId> clique) {
          writer.append(clique);
        },
        options);
    cliques = writer.clique_count();
    writer.close();
    benchmark::DoNotOptimize(cliques);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_ParallelBkToGsbcStream)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
