// Table 1 — Kose RAM vs. the sequential Clique Enumerator.
//
// Paper row (1 GHz PowerPC G4, 1 GB RAM):
//   | graph size | edge density | clique sizes | Kose RAM | sequential | speedup |
//   |   12,422   |   0.008%     |   [3, 17]    | 17261 s  |    45 s    |  383x   |
//
// This harness regenerates the row on the brain-sparse analog workload
// (default: scaled; --paper for the published size).  Absolute times track
// this machine; the shape claim is the ratio: the bitmap maximality test
// plus candidate sub-list pruning beat the store-everything/containment-
// scan baseline by two to three orders of magnitude.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/clique.h"
#include "core/clique_enumerator.h"
#include "core/kose.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto config = bench::BenchConfig::from_cli(cli, /*default_scale=*/0.075);
  auto workload = bench::brain_sparse_workload(config);
  bench::print_workload(workload);
  const auto& g = workload.graph;

  // The enumeration window of Table 1: sizes 3 .. maximum clique.
  const auto max = core::maximum_clique(g);
  const core::SizeRange range{3, max.clique.size()};
  std::printf("measured maximum clique: %zu (window [3, %zu])\n\n",
              max.clique.size(), max.clique.size());

  // --- Kose RAM -----------------------------------------------------------
  core::CliqueCounter kose_count;
  core::KoseOptions kose_options;
  kose_options.range = range;
  util::Timer kose_timer;
  const auto kose_stats = core::kose_ram(g, kose_count.callback(), kose_options);
  const double kose_seconds = kose_timer.seconds();

  // --- sequential Clique Enumerator ----------------------------------------
  core::CliqueCounter ce_count;
  core::CliqueEnumeratorOptions ce_options;
  ce_options.range = range;
  util::Timer ce_timer;
  const auto ce_stats =
      core::enumerate_maximal_cliques(g, ce_count.callback(), ce_options);
  const double ce_seconds = ce_timer.seconds();

  if (kose_count.total() != ce_count.total()) {
    std::printf("ERROR: algorithms disagree (%llu vs %llu cliques)\n",
                static_cast<unsigned long long>(kose_count.total()),
                static_cast<unsigned long long>(ce_count.total()));
    return 1;
  }

  util::TableWriter table({"graph size", "edge density", "maximal clique size",
                           "Kose RAM", "sequential Clique Enumerator",
                           "speedup"});
  table.add_row({util::format("%zu", g.order()),
                 util::format("%.4f%%", 100.0 * g.density()),
                 util::format("[3, %zu]", max.clique.size()),
                 util::format_seconds(kose_seconds),
                 util::format_seconds(ce_seconds),
                 util::format("%.0fx", kose_seconds / ce_seconds)});
  std::printf("=== Table 1 ===\n");
  table.print();
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "table1.csv");
  }

  std::printf("\npaper reference: 17261 s vs 45 s -> 383x on a 1 GHz G4\n");
  std::printf("both found %llu maximal cliques in the window\n",
              static_cast<unsigned long long>(ce_count.total()));
  std::printf("Kose RAM:  %llu cliques materialized, %llu containment "
              "scans, peak %s of clique storage\n",
              static_cast<unsigned long long>(kose_stats.cliques_generated),
              static_cast<unsigned long long>(kose_stats.containment_scans),
              util::format_bytes(kose_stats.peak_bytes).c_str());
  std::printf("Enumerator: peak %s (paper formula: %s) of candidate "
              "sub-lists, seed %.3f s\n",
              util::format_bytes(ce_stats.peak_bytes_actual).c_str(),
              util::format_bytes(ce_stats.peak_bytes_formula).c_str(),
              ce_stats.seed_seconds);
  return 0;
}
