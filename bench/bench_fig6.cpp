// Figure 6 — absolute and relative speedups up to 64 processors for
// Init_K in {high values, 3}.
//
// Published shape: absolute speedups grow near-linearly to 64 processors
// (best for Init_K = 3, the largest workload); the relative speedup
// T(p) / T(2p) stays around 1.8 across the range.

#include <cstdio>

#include "bench/bench_fig_common.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto config = bench::BenchConfig::from_cli(cli, /*default_scale=*/0.3);
  const auto workload = bench::myogenic_workload(config);
  bench::print_workload(workload);

  auto init_ks = bench::high_init_ks(workload);
  init_ks.push_back(3);  // the paper's largest workload
  std::printf("collecting instrumented sequential runs...\n");
  std::vector<bench::TracedRun> runs;
  for (std::size_t init_k : init_ks) {
    runs.push_back(bench::collect_trace(workload, init_k));
  }

  const std::vector<std::size_t> procs{1, 2, 4, 8, 16, 32, 64};

  std::vector<std::string> headers{"processors"};
  for (const auto& run : runs) {
    headers.push_back(util::format("Init_K=%zu", run.init_k));
  }

  std::printf("\n=== Figure 6a: absolute speedup (T1/Tp), ideal = p ===\n");
  util::TableWriter abs_table(headers);
  std::vector<std::vector<altix::SpeedupPoint>> sweeps;
  for (const auto& run : runs) {
    const altix::AltixSimulator sim(bench::calibrated_model_for(run.stats));
    sweeps.push_back(sim.sweep(run.stats, procs));
  }
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::vector<std::string> row{util::format("%zu", procs[i])};
    for (const auto& sweep : sweeps) {
      row.push_back(util::format("%.2f", sweep[i].absolute_speedup));
    }
    abs_table.add_row(std::move(row));
  }
  abs_table.print();

  std::printf("\n=== Figure 6b: relative speedup (Tp/T2p), ideal = 2 ===\n");
  util::TableWriter rel_table(headers);
  for (std::size_t i = 1; i < procs.size(); ++i) {
    std::vector<std::string> row{util::format("%zu", procs[i])};
    for (const auto& sweep : sweeps) {
      row.push_back(util::format("%.2f", sweep[i].relative_speedup));
    }
    rel_table.add_row(std::move(row));
  }
  rel_table.print();
  if (!config.csv_prefix.empty()) {
    abs_table.write_csv(config.csv_prefix + "fig6_absolute.csv");
    rel_table.write_csv(config.csv_prefix + "fig6_relative.csv");
  }

  // Paper shape check: relative speedup stays in a band around ~1.8.
  double rel_sum = 0.0;
  std::size_t rel_count = 0;
  for (const auto& sweep : sweeps) {
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      rel_sum += sweep[i].relative_speedup;
      ++rel_count;
    }
  }
  std::printf("\nmean relative speedup: %.2f (paper: 'remains around 1.8')\n",
              rel_sum / static_cast<double>(rel_count));
  return 0;
}
