#ifndef GSB_BENCH_BENCH_COMMON_H
#define GSB_BENCH_BENCH_COMMON_H

/// Shared workload construction for the table/figure harnesses.
///
/// Every bench accepts:
///   --scale S   (or env GSB_SCALE)   workload scale in (0, 1]; the default
///                                    for each bench finishes in minutes on
///                                    a small container,
///   --paper     (or env GSB_PAPER)   the full published parameters
///                                    (hours of compute, hundreds of GB for
///                                    the dense instance — documented in
///                                    EXPERIMENTS.md),
///   --seed X                         workload RNG seed.
///
/// The scaled workloads preserve the *shape* of the paper's instances: the
/// same construction (overlapping co-expression modules on a sparse
/// background), proportionally scaled vertex/edge counts, and a maximum
/// clique size reduced only as far as combinatorics demand (the paper's
/// Init_K values are mapped by their distance from the maximum clique).

#include <cstdio>
#include <string>

#include "bio/presets.h"
#include "core/maximum_clique.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"

namespace gsb::bench {

/// A bench workload: the graph plus the published-vs-scaled bookkeeping.
struct Workload {
  graph::Graph graph;
  std::string name;
  std::size_t omega = 0;        ///< configured max-module (≈ max clique) size
  std::size_t paper_omega = 0;  ///< the paper's max clique for this dataset
  double scale = 1.0;
  bool paper = false;
};

/// Common bench switches.
struct BenchConfig {
  double scale = 0.0;  ///< 0 = use the bench's default
  bool paper = false;
  std::uint64_t seed = 2005;
  std::string csv_prefix;  ///< when nonempty, harnesses also emit CSV files

  static BenchConfig from_cli(const util::Cli& cli, double default_scale) {
    BenchConfig config;
    config.paper = cli.get_bool("paper", false);
    config.scale = cli.get_double("scale", config.paper ? 1.0 : default_scale);
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2005));
    config.csv_prefix = cli.get("csv", "");
    return config;
  }
};

/// Builds the myogenic-analog workload (Figures 5-9).
///
/// Thresholded correlation graphs are globally sparse with locally *dense,
/// imperfect* modules; those near-cliques are what give the instance its
/// exponential maximal-clique mass (a G(m, 0.9) blob of m = 36 holds
/// millions of cliques).  The analog therefore plants a few large
/// near-clique modules (p_in = 0.9) plus many small exact modules on a
/// sparse background, sized to the published edge budget.  The maximum
/// clique is *measured* afterwards and Init_K values are derived from
/// their distance to it, mirroring the paper's 18/19/20 against omega=28.
inline Workload myogenic_workload(const BenchConfig& config) {
  Workload out;
  out.paper = config.paper;
  out.scale = config.scale;
  out.paper_omega = 28;
  util::Rng rng(config.seed);
  if (config.paper) {
    auto mg = bio::make_paper_graph(bio::PaperDataset::kMyogenic, 1.0, rng);
    out.graph = std::move(mg.graph);
    out.omega = 28;
    out.name = "myogenic (paper scale)";
    return out;
  }
  const auto spec = bio::paper_spec(bio::PaperDataset::kMyogenic, config.scale);
  const std::size_t n = spec.vertices;
  out.graph = graph::Graph(n);
  std::vector<graph::VertexId> used;
  bits::DynamicBitset used_mask(n);

  // A patchwork of overlapping mid-size near-cliques carries ~80% of the
  // edge budget.  Many overlapping modules (rather than a few monoliths)
  // matter twice: it is what thresholded co-expression data looks like, and
  // it spreads the canonical seed prefixes so no single DFS task dominates
  // the parallel critical path.
  constexpr std::size_t kBigModule = 24;
  constexpr double kBigDensity = 0.92;
  const double big_edges = kBigDensity * kBigModule * (kBigModule - 1) / 2.0;
  const std::size_t big_count = std::max<std::size_t>(
      3, static_cast<std::size_t>(0.80 * static_cast<double>(spec.edges) /
                                  big_edges));
  for (std::size_t m = 0; m < big_count; ++m) {
    graph::plant_module(out.graph, kBigModule, kBigDensity, /*overlap=*/0.45,
                        used, used_mask, rng);
  }
  // Small exact modules up to ~95% of the budget.
  while (out.graph.num_edges() <
         static_cast<std::size_t>(0.95 * static_cast<double>(spec.edges))) {
    const std::size_t size = graph::sample_module_size(5, 10, 1.3, rng);
    const std::size_t before = out.graph.num_edges();
    graph::plant_module(out.graph, size, 1.0, 0.30, used, used_mask, rng);
    if (out.graph.num_edges() == before) break;
  }
  // Sparse background to the target.
  std::size_t attempts = 0;
  while (out.graph.num_edges() < spec.edges && attempts < spec.edges * 40) {
    ++attempts;
    out.graph.add_edge(static_cast<graph::VertexId>(rng.below(n)),
                       static_cast<graph::VertexId>(rng.below(n)));
  }

  out.omega = core::maximum_clique(out.graph).clique.size();
  out.name = "myogenic analog (scale " + std::to_string(config.scale) + ")";
  return out;
}

/// Builds the sparse-brain workload (Table 1).
inline Workload brain_sparse_workload(const BenchConfig& config) {
  Workload out;
  out.paper = config.paper;
  out.scale = config.scale;
  out.paper_omega = 17;
  util::Rng rng(config.seed);
  const double scale = config.paper ? 1.0 : config.scale;
  auto mg = bio::make_paper_graph(bio::PaperDataset::kBrainSparse, scale, rng);
  out.graph = std::move(mg.graph);
  out.omega = 17;  // preserved at every scale (the clumps stay intact)
  out.name = config.paper ? "brain-sparse (paper scale)"
                          : "brain-sparse analog (scale " +
                                std::to_string(scale) + ")";
  return out;
}

/// Prints the standard workload banner.
inline void print_workload(const Workload& w) {
  std::printf("workload: %s — %zu vertices, %zu edges (density %.4f%%), "
              "target max clique %zu\n",
              w.name.c_str(), w.graph.order(), w.graph.num_edges(),
              100.0 * w.graph.density(), w.omega);
}

}  // namespace gsb::bench

#endif  // GSB_BENCH_BENCH_COMMON_H
