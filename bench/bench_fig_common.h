#ifndef GSB_BENCH_BENCH_FIG_COMMON_H
#define GSB_BENCH_BENCH_FIG_COMMON_H

/// Shared machinery for the scaling figures (5-8): instrumented sequential
/// runs that record per-task cost traces, the Init_K mapping between the
/// published workload (omega = 28) and the scaled bench workload, and the
/// calibrated Altix machine model used for the >2-processor replays.

#include <cstdio>
#include <vector>

#include "altix/simulator.h"
#include "bench/bench_common.h"
#include "core/clique_enumerator.h"
#include "core/parallel_enumerator.h"
#include "util/table.h"

namespace gsb::bench {

/// One instrumented sequential run at a fixed Init_K.
struct TracedRun {
  std::size_t init_k = 0;        ///< Init_K on the bench workload
  std::size_t paper_init_k = 0;  ///< the corresponding published Init_K (0 = n/a)
  core::EnumerationStats stats;  ///< includes seed + level traces
  std::uint64_t maximal = 0;
};

/// Maps a bench Init_K to the published one by its offset from the maximum
/// clique (paper: omega 28 with Init_K 18/19/20 = omega-10 .. omega-8).
inline std::size_t paper_init_k_for(const Workload& w, std::size_t init_k) {
  if (w.omega == 0 || init_k <= 3) return init_k;
  const std::size_t offset = w.omega - init_k;
  return w.paper_omega > offset ? w.paper_omega - offset : 0;
}

/// The three "high" Init_K values of Figures 5-8 on this workload
/// (published: 18, 19, 20).
inline std::vector<std::size_t> high_init_ks(const Workload& w) {
  if (w.paper) return {18, 19, 20};
  return {w.omega - 6, w.omega - 5, w.omega - 4};
}

/// Runs the sequential enumerator with tracing enabled.
inline TracedRun collect_trace(const Workload& w, std::size_t init_k) {
  TracedRun run;
  run.init_k = init_k;
  run.paper_init_k = paper_init_k_for(w, init_k);
  core::CliqueCounter counter;
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{init_k, 0};
  options.record_trace = true;
  run.stats = core::enumerate_maximal_cliques(w.graph, counter.callback(),
                                              options);
  run.maximal = counter.total();
  std::printf("  traced Init_K=%zu (paper Init_K=%zu): %.3f s sequential, "
              "%llu maximal cliques\n",
              init_k, run.paper_init_k, run.stats.total_seconds,
              static_cast<unsigned long long>(run.maximal));
  return run;
}

/// Machine model calibrated against the trace's mean task cost.
///
/// What matters for scaling shape is the *ratio* of coordination overhead
/// to task work.  The paper's testbed ran millisecond-scale sub-list tasks
/// against tens-of-microsecond barriers; this container's tasks are ~1000x
/// faster, so charging 2005-era absolute overheads would strangle the
/// replay in a way the published machine never experienced.  Anchoring the
/// overheads to the measured mean task cost keeps the overhead:work ratio
/// at the published machine's operating point (EXPERIMENTS.md discusses
/// the calibration).
inline altix::MachineModel calibrated_model_for(
    const core::EnumerationStats& trace) {
  double busy = 0.0;
  std::uint64_t tasks = 0;
  for (const auto& level : trace.traces) {
    for (double s : level.task_seconds) busy += s;
    tasks += level.task_seconds.size();
  }
  for (double s : trace.seed_trace.task_seconds) busy += s;
  tasks += trace.seed_trace.task_seconds.size();
  const double mean_task = tasks > 0 ? busy / static_cast<double>(tasks)
                                     : 1e-6;

  altix::MachineModel model;
  model.max_processors = 256;
  model.remote_penalty = 0.25;
  model.scheduler_per_task = mean_task / 400.0;
  model.barrier_base = mean_task * 40.0;
  model.barrier_log2 = mean_task * 20.0;
  model.collect_base = mean_task * 10.0;
  model.collect_per_processor = mean_task * 8.0;
  return model;
}

/// Convenience: replays one traced run at processor count \p p.
inline altix::SimulatedRun simulate_run(const TracedRun& run, std::size_t p) {
  const altix::AltixSimulator sim(calibrated_model_for(run.stats));
  return sim.simulate(run.stats, p);
}

/// Measures the real multithreaded enumerator at a thread count (wall time).
inline double measure_real_parallel(const Workload& w, std::size_t init_k,
                                    std::size_t threads) {
  core::CliqueCounter counter;
  core::ParallelOptions options;
  options.range = core::SizeRange{init_k, 0};
  options.threads = threads;
  const auto stats = core::enumerate_maximal_cliques_parallel(
      w.graph, counter.callback(), options);
  return stats.base.total_seconds;
}

}  // namespace gsb::bench

#endif  // GSB_BENCH_BENCH_FIG_COMMON_H
