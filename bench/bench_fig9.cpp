// Figure 9 — memory used to hold candidate cliques as a function of clique
// size, enumerating all cliques from size 3 to the maximum on the
// 2,895-vertex / 0.2% density graph.
//
// Published shape: memory rises with clique size to a peak (~20 GB near
// size 13 on the paper's graph) and then falls off quickly; choosing a
// lower bound past the peak region is what makes genome-scale instances
// tractable.  The same rise-peak-fall must appear here, measured both by
// the paper's closed-form space expression
//     M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(ptr)
// and by the actual container footprint.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/clique_enumerator.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto config = bench::BenchConfig::from_cli(cli, /*default_scale=*/0.3);
  const auto workload = bench::myogenic_workload(config);
  bench::print_workload(workload);

  core::CliqueCounter counter;
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{3, 0};
  const auto stats = core::enumerate_maximal_cliques(
      workload.graph, counter.callback(), options);

  std::printf("\n=== Figure 9: memory vs clique size ===\n");
  util::TableWriter table({"clique size k", "sub-lists N[k]",
                           "candidates M[k]", "bytes (paper formula)",
                           "bytes (measured)", "maximal found"});
  std::size_t peak_bytes = 0;
  std::size_t peak_k = 0;
  for (const auto& level : stats.levels) {
    if (level.bytes_formula > peak_bytes) {
      peak_bytes = level.bytes_formula;
      peak_k = level.k;
    }
    table.add_row({util::format("%zu", level.k),
                   util::format("%llu",
                                static_cast<unsigned long long>(level.sublists)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            level.candidates)),
                   util::format_bytes(level.bytes_formula).c_str(),
                   util::format_bytes(level.bytes_actual).c_str(),
                   util::format("%llu", static_cast<unsigned long long>(
                                            level.maximal_emitted))});
  }
  table.print();
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "fig9.csv");
  }

  // Shape verification: strictly rising to the peak region, then falling.
  bool rises = false;
  bool falls = false;
  for (std::size_t i = 1; i < stats.levels.size(); ++i) {
    if (stats.levels[i].k <= peak_k &&
        stats.levels[i].bytes_formula >
            stats.levels[i - 1].bytes_formula) {
      rises = true;
    }
    if (stats.levels[i].k > peak_k &&
        stats.levels[i].bytes_formula <
            stats.levels[i - 1].bytes_formula) {
      falls = true;
    }
  }
  std::printf("\npeak: %s at clique size %zu (paper: ~20 GB at size 13 on "
              "the full graph)\n",
              util::format_bytes(peak_bytes).c_str(), peak_k);
  std::printf("rise-peak-fall shape: %s\n",
              rises && falls ? "reproduced" : "NOT reproduced");
  std::printf("total enumerated: %llu maximal cliques, run time %.3f s\n",
              static_cast<unsigned long long>(stats.total_maximal),
              stats.total_seconds);
  return rises && falls ? 0 : 1;
}
