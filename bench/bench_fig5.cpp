// Figure 5 — multithreaded run times vs. processor count for different
// initial clique sizes (Init_K) on the 2,895-vertex / 0.2% density graph.
//
// Published shape (SGI Altix 3700, 256 x Itanium-2):
//   * run times scale well to 64 processors, still improve at 128, and
//     degrade slightly at 256;
//   * raising Init_K by one roughly halves the run time.
//
// Default mode measures the real multithreaded enumerator on the available
// cores and replays the recorded task trace on the Altix machine model for
// 1..256 virtual processors (DESIGN.md documents this substitution).

#include <cstdio>

#include "bench/bench_fig_common.h"
#include "parallel/thread_pool.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto config = bench::BenchConfig::from_cli(cli, /*default_scale=*/0.3);
  const auto workload = bench::myogenic_workload(config);
  bench::print_workload(workload);

  const auto init_ks = bench::high_init_ks(workload);
  std::printf("collecting instrumented sequential runs...\n");
  std::vector<bench::TracedRun> runs;
  for (std::size_t init_k : init_ks) {
    runs.push_back(bench::collect_trace(workload, init_k));
  }

  const std::vector<std::size_t> procs{1, 2, 4, 8, 16, 32, 64, 128, 256};

  std::printf("\n=== Figure 5: run time (s) vs processors ===\n");
  std::vector<std::string> headers{"processors"};
  for (const auto& run : runs) {
    headers.push_back(util::format("Init_K=%zu (paper %zu)", run.init_k,
                                   run.paper_init_k));
  }
  util::TableWriter table(headers);
  for (std::size_t p : procs) {
    std::vector<std::string> row{util::format("%zu", p)};
    for (const auto& run : runs) {
      row.push_back(util::format("%.3f", bench::simulate_run(run, p).seconds));
    }
    table.add_row(std::move(row));
  }
  table.print();
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "fig5.csv");
  }

  // Real-thread spot checks on this machine (wall-clock).
  const std::size_t hw = par::ThreadPool::default_threads();
  std::printf("\nreal multithreaded measurements (this machine, %zu cores):\n",
              hw);
  util::TableWriter real_table({"threads", "Init_K", "measured (s)"});
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    if (threads > 2 * hw) continue;
    for (const auto& run : runs) {
      real_table.add_row(
          {util::format("%zu", threads), util::format("%zu", run.init_k),
           util::format("%.3f",
                        bench::measure_real_parallel(workload, run.init_k,
                                                     threads))});
    }
  }
  real_table.print();

  std::printf("\nshape checks vs the paper:\n");
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const double ratio = runs[i].stats.total_seconds /
                         runs[i - 1].stats.total_seconds;
    std::printf("  Init_K %zu -> %zu sequential-time ratio: %.2f "
                "(paper: ~0.5, 'decrease by almost half')\n",
                runs[i - 1].init_k, runs[i].init_k, ratio);
  }
  return 0;
}
