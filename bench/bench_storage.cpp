// Storage-engine benchmarks (google-benchmark): quantifies what the .gsbg
// container buys — near-instant mmap open against full in-memory loads —
// and what the WAH sections cost to reconstitute.  Run via the
// `bench_storage_json` target (or directly with --benchmark_out) to emit
// BENCH_storage.json, the repo's storage-trajectory artifact:
//
//   * legacy binary stream load (read + rebuild bitmap adjacency in RAM);
//   * CSR load out of a mapped .gsbg (rebuild bitmap in RAM);
//   * mmap open of a .gsbg (no load at all — the out-of-core path);
//   * mmap open + a neighborhood sweep (what analysis actually pays);
//   * WAH-compressed open (open + decompress every row);
//   * full checksum verification pass.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bitset/dynamic_bitset.h"
#include "graph/generators.h"
#include "graph/graph_view.h"
#include "graph/io.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using gsb::graph::Graph;
using gsb::storage::GsbgWriteOptions;
using gsb::storage::MappedGraph;

constexpr std::size_t kVertices = 8192;
constexpr double kDensity = 0.004;  // sparse, genome-graph-like

struct Fixture {
  std::string legacy_path;
  std::string gsbg_path;
  std::string wah_path;

  Fixture() {
    const auto dir = fs::temp_directory_path();
    legacy_path = (dir / "bench_storage.bin").string();
    gsbg_path = (dir / "bench_storage.gsbg").string();
    wah_path = (dir / "bench_storage_wah.gsbg").string();
    gsb::util::Rng rng(2005);
    const Graph g = gsb::graph::gnp(kVertices, kDensity, rng);
    gsb::graph::write_binary_file(g, legacy_path);
    gsb::storage::write_gsbg_file(g, gsbg_path);
    GsbgWriteOptions wah;
    wah.wah = true;
    wah.bitmap = false;  // archival shape: CSR + WAH only
    gsb::storage::write_gsbg_file(g, wah_path, wah);
  }
  ~Fixture() {
    std::error_code ec;
    fs::remove(legacy_path, ec);
    fs::remove(gsbg_path, ec);
    fs::remove(wah_path, ec);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_LegacyBinaryLoad(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g = gsb::graph::read_binary_file(fixture().legacy_path);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_LegacyBinaryLoad)->Unit(benchmark::kMillisecond);

void BM_GsbgCsrLoad(benchmark::State& state) {
  for (auto _ : state) {
    const auto mapped = MappedGraph::open(fixture().gsbg_path);
    const Graph g = mapped.load();
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GsbgCsrLoad)->Unit(benchmark::kMillisecond);

void BM_GsbgMmapOpen(benchmark::State& state) {
  for (auto _ : state) {
    const auto mapped = MappedGraph::open(fixture().gsbg_path);
    benchmark::DoNotOptimize(mapped.view().order());
  }
}
BENCHMARK(BM_GsbgMmapOpen)->Unit(benchmark::kMillisecond);

void BM_GsbgMmapOpenPlusSweep(benchmark::State& state) {
  for (auto _ : state) {
    const auto mapped = MappedGraph::open(fixture().gsbg_path);
    const auto view = mapped.view();
    std::size_t degree_sum = 0;
    for (gsb::graph::VertexId v = 0; v < view.order(); ++v) {
      degree_sum += view.neighbors(v).count();
    }
    benchmark::DoNotOptimize(degree_sum);
  }
}
BENCHMARK(BM_GsbgMmapOpenPlusSweep)->Unit(benchmark::kMillisecond);

void BM_GsbgWahOpenDecompress(benchmark::State& state) {
  for (auto _ : state) {
    const auto mapped = MappedGraph::open(fixture().wah_path);
    std::size_t bits = 0;
    for (gsb::graph::VertexId v = 0; v < mapped.order(); ++v) {
      bits += mapped.wah_row(v).decompress().count();
    }
    benchmark::DoNotOptimize(bits);
  }
}
BENCHMARK(BM_GsbgWahOpenDecompress)->Unit(benchmark::kMillisecond);

void BM_GsbgChecksumVerify(benchmark::State& state) {
  const auto mapped = MappedGraph::open(fixture().gsbg_path);
  for (auto _ : state) {
    mapped.verify_checksum();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mapped.file_bytes()));
}
BENCHMARK(BM_GsbgChecksumVerify)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
