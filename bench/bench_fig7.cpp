// Figure 7 — absolute speedup at 256 processors vs. sequential run time.
//
// Published shape: the speedup at 256 processors grows with the sequential
// run time — 22x at 98 s (Init_K=20) rising to 51x at 1,948 s (Init_K=3).
// Every problem size has its own optimal processor count; the fixed
// overheads (synchronization, centralized scheduling) amortize only over
// long enough level work.

#include <cstdio>

#include "bench/bench_fig_common.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto config = bench::BenchConfig::from_cli(cli, /*default_scale=*/0.3);
  const auto workload = bench::myogenic_workload(config);
  bench::print_workload(workload);

  // Largest Init_K first, mirroring the paper's x-axis (98 s ... 1948 s).
  auto init_ks = bench::high_init_ks(workload);
  std::reverse(init_ks.begin(), init_ks.end());
  init_ks.push_back(3);

  std::printf("collecting instrumented sequential runs...\n");
  std::vector<bench::TracedRun> runs;
  for (std::size_t init_k : init_ks) {
    runs.push_back(bench::collect_trace(workload, init_k));
  }

  std::printf("\n=== Figure 7: speedup at 256 processors vs sequential "
              "time ===\n");
  util::TableWriter table({"Init_K (paper)", "sequential (s)",
                           "speedup @128p", "speedup @256p"});
  double prev_speedup = 0.0;
  bool monotone = true;
  for (const auto& run : runs) {
    const double t1 = bench::simulate_run(run, 1).seconds;
    const double t128 = bench::simulate_run(run, 128).seconds;
    const double t256 = bench::simulate_run(run, 256).seconds;
    const double s256 = t1 / t256;
    table.add_row({util::format("%zu (%zu)", run.init_k, run.paper_init_k),
                   util::format("%.3f", t1), util::format("%.1f", t1 / t128),
                   util::format("%.1f", s256)});
    if (s256 < prev_speedup) monotone = false;
    prev_speedup = s256;
  }
  table.print();
  if (!config.csv_prefix.empty()) {
    table.write_csv(config.csv_prefix + "fig7.csv");
  }

  std::printf("\npaper reference: 22x @ 98 s (Init_K=20) -> 51x @ 1948 s "
              "(Init_K=3); speedup must grow with sequential time: %s\n",
              monotone ? "reproduced" : "NOT reproduced");
  return monotone ? 0 : 1;
}
