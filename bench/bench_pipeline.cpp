// End-to-end pipeline benchmarks (google-benchmark): staged vs
// overlapped execution of the analysis stages, per ROADMAP ("measure
// end-to-end pipeline wall-clock, not per-stage").  Run via the
// `bench_pipeline_json` target to emit BENCH_pipeline.json, the
// artifact CI uploads and checks for overlapped <= staged.
//
//   * staged: maximum clique -> enumeration -> paraclique -> hubs run
//     strictly in sequence (the pre-scheduler `gsb pipeline` shape);
//   * overlapped: the same stages as a par::JobGraph — independent
//     stages run concurrently, hubs release the moment enumeration
//     finishes, and a prefetch job pages the .gsbg container in behind
//     compute;
//   * both again with the .gsbc spill path, whose stream must stay
//     byte-identical between modes (scheduler_test and the robustness
//     chaos suite assert that; here it is the I/O-heavy variant).

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "graph/generators.h"
#include "graph/graph_view.h"
#include "obs/timeline.h"
#include "pipeline/overlap.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;

struct Fixture {
  gsb::graph::Graph graph;
  std::string gsbg_path;
  std::string gsbc_path;

  Fixture() {
    gsb::util::Rng rng(2005);
    gsb::graph::ModuleGraphConfig config;
    config.n = 1800;
    config.num_modules = 200;
    config.max_module_size = 16;
    config.overlap = 0.3;
    graph = gsb::graph::planted_modules(config, rng).graph;
    gsbg_path = (fs::temp_directory_path() / "bench_pipeline.gsbg").string();
    gsbc_path = (fs::temp_directory_path() / "bench_pipeline.gsbc").string();
    gsb::storage::write_gsbg_file(graph, gsbg_path);
  }
  ~Fixture() {
    std::error_code ec;
    fs::remove(gsbg_path, ec);
    fs::remove(gsbc_path, ec);
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

gsb::pipeline::AnalysisOptions base_options(std::size_t threads,
                                            bool overlap) {
  gsb::pipeline::AnalysisOptions options;
  options.range = gsb::core::SizeRange{4, 0};
  options.threads = threads;
  options.overlap = overlap;
  return options;
}

void run_analysis_bench(benchmark::State& state, bool overlap,
                        bool spill) {
  const gsb::graph::GraphView g(fixture().graph);
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t cliques = 0;
  std::uint64_t steals = 0;
  for (auto _ : state) {
    auto options = base_options(threads, overlap);
    if (spill) options.clique_out = fixture().gsbc_path;
    const auto result = gsb::pipeline::run_analysis(g, options);
    cliques = result.enumeration.total_maximal;
    steals += result.sched.jobs_stolen;
    benchmark::DoNotOptimize(result.hubs.data());
  }
  std::error_code ec;
  fs::remove(fixture().gsbc_path, ec);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
  state.counters["sched_steals"] = static_cast<double>(steals);
}

void BM_PipelineStaged(benchmark::State& state) {
  run_analysis_bench(state, /*overlap=*/false, /*spill=*/false);
}
BENCHMARK(BM_PipelineStaged)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineOverlapped(benchmark::State& state) {
  run_analysis_bench(state, /*overlap=*/true, /*spill=*/false);
}
BENCHMARK(BM_PipelineOverlapped)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineStagedSpill(benchmark::State& state) {
  run_analysis_bench(state, /*overlap=*/false, /*spill=*/true);
}
BENCHMARK(BM_PipelineStagedSpill)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineOverlappedSpill(benchmark::State& state) {
  run_analysis_bench(state, /*overlap=*/true, /*spill=*/true);
}
BENCHMARK(BM_PipelineOverlappedSpill)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The mapped-container variant exercises the prefetch job: page-in of
// the .gsbg happens behind the compute stages instead of inside them.
void BM_PipelineOverlappedMapped(benchmark::State& state) {
  const auto mapped = gsb::storage::MappedGraph::open(fixture().gsbg_path);
  const gsb::graph::GraphView g = mapped.view();
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    auto options = base_options(static_cast<std::size_t>(state.range(0)),
                                /*overlap=*/true);
    options.prefetch = &mapped;
    const auto result = gsb::pipeline::run_analysis(g, options);
    cliques = result.enumeration.total_maximal;
    benchmark::DoNotOptimize(result.prefetched_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cliques * static_cast<std::uint64_t>(state.iterations())));
}
BENCHMARK(BM_PipelineOverlappedMapped)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The timeline acceptance number: the same overlapped run with the
// journal off, then on (job + queue-wait + steal + stage spans live).
// The per-run delta divided by the baseline lands in
// `timeline_overhead_pct` — the budget is < 3%, mirroring
// `instr_overhead_pct` on the serving side, and the .gsbc stream is
// byte-identical either way (scheduler_test pins that part).
void BM_PipelineTimelineOverhead(benchmark::State& state) {
  const gsb::graph::GraphView g(fixture().graph);
  const auto threads = static_cast<std::size_t>(state.range(0));
  gsb::obs::TimelineJournal& journal = gsb::obs::TimelineJournal::global();
  using Clock = std::chrono::steady_clock;

  double off_seconds = 0.0;
  double on_seconds = 0.0;
  std::uint64_t cliques = 0;
  for (auto _ : state) {
    auto options = base_options(threads, /*overlap=*/true);
    journal.set_enabled(false);
    const auto off_start = Clock::now();
    const auto off_result = gsb::pipeline::run_analysis(g, options);
    off_seconds += std::chrono::duration<double>(Clock::now() - off_start)
                       .count();
    journal.reset();
    journal.set_enabled(true);
    const auto on_start = Clock::now();
    const auto on_result = gsb::pipeline::run_analysis(g, options);
    on_seconds += std::chrono::duration<double>(Clock::now() - on_start)
                      .count();
    journal.set_enabled(false);
    cliques = off_result.enumeration.total_maximal;
    benchmark::DoNotOptimize(on_result.enumeration.total_maximal);
  }
  journal.reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(
      2 * cliques * static_cast<std::uint64_t>(state.iterations())));
  state.counters["timeline_overhead_pct"] =
      off_seconds > 0.0 ? (on_seconds / off_seconds - 1.0) * 100.0 : 0.0;
}
BENCHMARK(BM_PipelineTimelineOverhead)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(2.0);

}  // namespace

BENCHMARK_MAIN();
