// Ablation study over the framework's design choices (the ones DESIGN.md
// calls out):
//
//   A1  degree preprocessing (iterated k-core) on/off          (§2.2)
//   A2  scheduler transfer decisions on/off -> balance + time  (§2.3)
//   A3  WAH compression of common-neighbor bitmaps: footprint
//       vs. the paper's "compression direction is underway"    (§4)
//   A4  Improved vs Base BK pivoting on overlapping cliques    (§2.2)
//   A5  FPT kernelization rules on/off for vertex cover        (§2.1)

#include <cstdio>

#include "bench/bench_common.h"
#include "bitset/wah_bitset.h"
#include "core/bron_kerbosch.h"
#include "core/clique_enumerator.h"
#include "core/kclique.h"
#include "core/parallel_enumerator.h"
#include "fpt/vertex_cover.h"
#include "graph/transforms.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gsb;

void ablate_kcore(const bench::Workload& sparse, std::size_t init_k) {
  std::printf("\n--- A1: degree preprocessing (iterated (Init_K-1)-core) ---\n");
  std::printf("(sparse workload: %s)\n", sparse.name.c_str());
  util::TableWriter table({"preprocessing", "working vertices", "time (s)"});
  for (bool use_kcore : {true, false}) {
    core::CliqueCounter counter;
    core::CliqueEnumeratorOptions options;
    options.range = core::SizeRange{init_k, 0};
    options.use_kcore = use_kcore;
    util::Timer timer;
    core::enumerate_maximal_cliques(sparse.graph, counter.callback(),
                                    options);
    const auto survivors =
        graph::kcore_mask(sparse.graph, init_k - 1).count();
    table.add_row({use_kcore ? "on" : "off",
                   util::format("%zu", use_kcore ? survivors
                                                 : sparse.graph.order()),
                   util::format("%.3f", timer.seconds())});
  }
  table.print();
}

void ablate_scheduler(const bench::Workload& workload, std::size_t init_k) {
  std::printf("\n--- A2: dynamic transfers (runtime claiming + plan) ---\n");
  util::TableWriter table({"dynamic transfers", "threads", "wall (s)",
                           "busy stddev/mean"});
  for (bool dynamic : {true, false}) {
    for (std::size_t threads : {std::size_t{2}}) {
      core::CliqueCounter counter;
      core::ParallelOptions options;
      options.range = core::SizeRange{init_k, 0};
      options.threads = threads;
      options.dynamic_claiming = dynamic;
      options.balancer.enable_transfers = dynamic;
      const auto stats = core::enumerate_maximal_cliques_parallel(
          workload.graph, counter.callback(), options);
      const auto summary = util::summarize(stats.thread_busy_seconds);
      table.add_row({dynamic ? "on" : "off", util::format("%zu", threads),
                     util::format("%.3f", stats.base.total_seconds),
                     util::format("%.1f%%", 100.0 * summary.cv())});
    }
  }
  table.print();
}

void ablate_wah(const bench::Workload& sparse, std::size_t init_k) {
  std::printf("\n--- A3: WAH compression of common-neighbor bitmaps ---\n");
  std::printf("(sparse workload: %s)\n", sparse.name.c_str());
  // Take the real sub-list bitmaps of the seed level and compress them.
  core::CliqueCollector sink;
  const auto level =
      core::build_seed_level(sparse.graph, init_k, sink.callback());
  std::size_t raw_bytes = 0;
  std::size_t wah_bytes = 0;
  util::StatsAccumulator ratio;
  for (const auto& sublist : level) {
    const auto packed = bits::WahBitset::compress(sublist.common);
    raw_bytes += sublist.common.size_bytes();
    wah_bytes += packed.size_bytes();
    ratio.add(packed.compression_ratio());
  }
  util::TableWriter table({"representation", "bitmap bytes",
                           "mean compression"});
  table.add_row({"uncompressed", util::format_bytes(raw_bytes).c_str(), "1.0x"});
  table.add_row({"WAH", util::format_bytes(wah_bytes).c_str(),
                 util::format("%.1fx", ratio.mean())});
  table.print();
  std::printf("(%zu seed sub-lists; the paper's 'work underway' direction)\n",
              level.size());
}

void ablate_pivot(const bench::Workload& workload) {
  std::printf("\n--- A4: Base vs Improved BK pivoting ---\n");
  util::TableWriter table({"variant", "tree nodes", "time (s)"});
  for (auto variant : {core::BronKerboschVariant::kBase,
                       core::BronKerboschVariant::kImproved}) {
    core::CliqueCounter counter;
    util::Timer timer;
    const auto stats =
        core::bron_kerbosch(workload.graph, counter.callback(), variant);
    table.add_row(
        {variant == core::BronKerboschVariant::kBase ? "Base BK"
                                                     : "Improved BK",
         util::format("%llu", static_cast<unsigned long long>(stats.tree_nodes)),
         util::format("%.3f", timer.seconds())});
  }
  table.print();
}

void ablate_vc_rules(const bench::Workload& workload) {
  std::printf("\n--- A5: vertex-cover kernelization rules ---\n");
  // Dense subgraph -> sparse complement: the FPT route's home turf.
  const auto sub = graph::kcore_subgraph(workload.graph, 6);
  if (sub.graph.order() < 10 || sub.graph.order() > 400) {
    std::printf("(skipped: core subgraph has %zu vertices)\n",
                sub.graph.order());
    return;
  }
  const auto comp = graph::complement(sub.graph);
  util::TableWriter table({"kernelization", "folding", "tree nodes",
                           "time (s)"});
  for (bool kernel : {true, false}) {
    for (bool folding : {true, false}) {
      if (!kernel && folding) continue;
      fpt::VertexCoverOptions options;
      options.use_kernelization = kernel;
      options.use_folding = folding;
      options.max_nodes = 50'000'000;
      util::Timer timer;
      const auto result = fpt::minimum_vertex_cover(comp, options);
      table.add_row(
          {kernel ? "on" : "off", folding ? "on" : "off",
           util::format("%llu",
                        static_cast<unsigned long long>(result.tree_nodes)),
           util::format("%.3f", timer.seconds())});
    }
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto config = bench::BenchConfig::from_cli(cli, /*default_scale=*/0.12);
  const auto workload = bench::myogenic_workload(config);
  bench::print_workload(workload);
  const std::size_t init_k = workload.omega - 6;
  // A1/A3 run on the sparse-brain analog: that is where degree peeling and
  // bitmap sparsity matter (the dense patchwork keeps every vertex alive).
  bench::BenchConfig sparse_config = config;
  sparse_config.scale = cli.get_double("sparse-scale", 0.075);
  const auto sparse = bench::brain_sparse_workload(sparse_config);

  ablate_kcore(sparse, 10);
  ablate_scheduler(workload, init_k);
  ablate_wah(sparse, 3);
  ablate_pivot(workload);
  ablate_vc_rules(workload);
  return 0;
}
