// Correlation-engine benchmarks (google-benchmark): the perf trajectory of
// the pipeline's dominant cost, the all-pairs gene correlation sweep.  Run
// via the `bench_correlation_json` target (or directly with
// --benchmark_out) to emit BENCH_correlation.json, the artifact CI uploads
// alongside BENCH_storage.json:
//
//   * scalar all-pairs sweep (profile_dot row loops — the pre-kernel
//     baseline, kept as the reference);
//   * blocked all-pairs sweep at 1/2/4/8 threads (the shared
//     register-tiled kernel both builders call);
//   * the full in-memory graph build (standardize + sweep + bitmap graph);
//   * the tiled out-of-core .gsbg build at 1/2/4/8 threads (kernel plus
//     scratch/spill I/O).
//
// Every variant reports pairs/s (items) on the same synthetic matrices, so
// blocked-vs-scalar speedup and thread scaling read directly off the JSON.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "bio/corr_kernel.h"
#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/tiled_correlation.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;

constexpr double kThreshold = 0.85;

struct Fixture {
  gsb::bio::ExpressionMatrix expression;
  gsb::bio::StandardizedRows rows;  // Spearman-standardized once, not timed
};

const Fixture& fixture(std::size_t genes, std::size_t samples) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<Fixture>>
      cache;
  auto& slot = cache[{genes, samples}];
  if (!slot) {
    slot = std::make_unique<Fixture>();
    gsb::util::Rng rng(2005);
    gsb::bio::MicroarrayConfig config;
    config.genes = genes;
    config.samples = samples;
    config.modules = genes / 40 + 1;
    auto data = gsb::bio::generate_microarray(config, rng);
    gsb::bio::quantile_normalize(data.expression);
    slot->expression = std::move(data.expression);
    slot->rows = gsb::bio::standardize_rows(
        slot->expression, gsb::bio::CorrelationMethod::kSpearman);
  }
  return *slot;
}

double pairs_of(std::size_t genes) {
  return static_cast<double>(genes) * static_cast<double>(genes - 1) / 2.0;
}

/// The pre-kernel baseline: scalar profile_dot over the upper triangle.
void BM_AllPairsScalar(benchmark::State& state) {
  const auto genes = static_cast<std::size_t>(state.range(0));
  const auto samples = static_cast<std::size_t>(state.range(1));
  const Fixture& f = fixture(genes, samples);
  std::uint64_t edges = 0;
  for (auto _ : state) {
    edges = 0;
    for (std::size_t i = 0; i < genes; ++i) {
      if (f.rows.valid[i] == 0) continue;
      const double* row_i = f.rows.rows.row(i);
      for (std::size_t j = i + 1; j < genes; ++j) {
        if (f.rows.valid[j] == 0) continue;
        const double corr =
            gsb::bio::profile_dot(row_i, f.rows.rows.row(j), samples);
        edges += std::fabs(corr) >= kThreshold;
      }
    }
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      static_cast<double>(state.iterations()) * pairs_of(genes)));
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_AllPairsScalar)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({512, 64})
    ->Args({2048, 64});

/// The shared blocked kernel, threads in arg 2 (1 = no pool).
void BM_AllPairsBlocked(benchmark::State& state) {
  const auto genes = static_cast<std::size_t>(state.range(0));
  const auto samples = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const Fixture& f = fixture(genes, samples);
  std::optional<gsb::par::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  gsb::bio::CorrSweepOptions options;
  options.pool = pool ? &*pool : nullptr;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    edges = 0;
    gsb::bio::correlation_self(
        f.rows.rows, genes, f.rows.valid.data(), kThreshold, options,
        [&](std::uint32_t, std::uint32_t, double) { ++edges; });
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      static_cast<double>(state.iterations()) * pairs_of(genes)));
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_AllPairsBlocked)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({512, 64, 1})
    ->Args({2048, 64, 1})
    ->Args({2048, 64, 2})
    ->Args({2048, 64, 4})
    ->Args({2048, 64, 8});

/// Full in-memory build: standardization + blocked sweep + bitmap graph.
void BM_InMemoryGraphBuild(benchmark::State& state) {
  const auto genes = static_cast<std::size_t>(state.range(0));
  const auto samples = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const Fixture& f = fixture(genes, samples);
  gsb::bio::CorrelationGraphOptions options;
  options.method = gsb::bio::CorrelationMethod::kSpearman;
  options.threshold = kThreshold;
  options.threads = threads;
  for (auto _ : state) {
    gsb::util::Rng rng(1);
    const auto result =
        gsb::bio::build_correlation_graph(f.expression, options, rng);
    benchmark::DoNotOptimize(result.graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      static_cast<double>(state.iterations()) * pairs_of(genes)));
}
BENCHMARK(BM_InMemoryGraphBuild)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({2048, 64, 1})
    ->Args({2048, 64, 4});

/// Tiled out-of-core build: blocked kernel + scratch/spill/container I/O.
void BM_TiledGsbgBuild(benchmark::State& state) {
  const auto genes = static_cast<std::size_t>(state.range(0));
  const auto samples = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const Fixture& f = fixture(genes, samples);
  const std::string out =
      (fs::temp_directory_path() / "bench_correlation.gsbg").string();
  gsb::bio::TiledCorrelationOptions options;
  options.method = gsb::bio::CorrelationMethod::kSpearman;
  options.threshold = kThreshold;
  options.tile_rows = 512;
  options.threads = threads;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    const auto result =
        gsb::bio::build_correlation_gsbg(f.expression, out, options);
    edges = result.edges;
    benchmark::DoNotOptimize(edges);
  }
  std::error_code ec;
  fs::remove(out, ec);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      static_cast<double>(state.iterations()) * pairs_of(genes)));
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_TiledGsbgBuild)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({2048, 64, 1})
    ->Args({2048, 64, 2})
    ->Args({2048, 64, 4})
    ->Args({2048, 64, 8});

}  // namespace

BENCHMARK_MAIN();
