// Micro-benchmarks (google-benchmark): the primitive operations whose cost
// model the paper's design arguments rest on.
//
//   * bitwise AND + any-bit maximality test vs. universe width;
//   * fused intersects() vs. materialize-then-scan (the paper's
//     "BitOneExists(BitAND(...))" done right);
//   * bitmap adjacency probe vs. sorted-list intersection;
//   * WAH compressed AND vs. uncompressed AND on sparse neighborhoods;
//   * the three maximal-clique enumerators on a module workload;
//   * k-core preprocessing cost.

#include <benchmark/benchmark.h>

#include "bitset/dynamic_bitset.h"
#include "bitset/wah_bitset.h"
#include "core/bron_kerbosch.h"
#include "core/clique_enumerator.h"
#include "core/kclique.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace {

using gsb::bits::DynamicBitset;
using gsb::bits::WahBitset;

DynamicBitset random_bits(std::size_t n, double density, std::uint64_t seed) {
  gsb::util::Rng rng(seed);
  DynamicBitset bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(density)) bits.set(i);
  }
  return bits;
}

void BM_BitsetAnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_bits(n, 0.01, 1);
  const auto b = random_bits(n, 0.01, 2);
  DynamicBitset out(n);
  for (auto _ : state) {
    out.assign_and(a, b);
    benchmark::DoNotOptimize(out.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size_bytes()) * 2);
}
BENCHMARK(BM_BitsetAnd)->Arg(1024)->Arg(12422)->Arg(65536);

void BM_MaximalityTestFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_bits(n, 0.005, 3);
  const auto b = random_bits(n, 0.005, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicBitset::intersects(a, b));
  }
}
BENCHMARK(BM_MaximalityTestFused)->Arg(1024)->Arg(12422)->Arg(65536);

void BM_MaximalityTestMaterialized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_bits(n, 0.005, 3);
  const auto b = random_bits(n, 0.005, 4);
  DynamicBitset scratch(n);
  for (auto _ : state) {
    scratch.assign_and(a, b);
    benchmark::DoNotOptimize(scratch.any());
  }
}
BENCHMARK(BM_MaximalityTestMaterialized)->Arg(1024)->Arg(12422)->Arg(65536);

void BM_AdjacencyProbeBitmap(benchmark::State& state) {
  gsb::util::Rng rng(7);
  const auto g = gsb::graph::gnp(2895, 0.002, rng);
  std::uint64_t index = 0;
  for (auto _ : state) {
    const auto u = static_cast<gsb::graph::VertexId>(index % g.order());
    const auto v =
        static_cast<gsb::graph::VertexId>((index * 31 + 17) % g.order());
    benchmark::DoNotOptimize(g.has_edge(u, v));
    ++index;
  }
}
BENCHMARK(BM_AdjacencyProbeBitmap);

void BM_AdjacencyProbeSortedList(benchmark::State& state) {
  gsb::util::Rng rng(7);
  const auto g = gsb::graph::gnp(2895, 0.002, rng);
  std::vector<std::vector<gsb::graph::VertexId>> lists(g.order());
  for (gsb::graph::VertexId v = 0; v < g.order(); ++v) {
    lists[v] = g.neighbor_list(v);
  }
  std::uint64_t index = 0;
  for (auto _ : state) {
    const auto u = static_cast<gsb::graph::VertexId>(index % g.order());
    const auto v =
        static_cast<gsb::graph::VertexId>((index * 31 + 17) % g.order());
    benchmark::DoNotOptimize(
        std::binary_search(lists[u].begin(), lists[u].end(), v));
    ++index;
  }
}
BENCHMARK(BM_AdjacencyProbeSortedList);

void BM_WahAndCompressed(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 10000.0;
  const auto a = WahBitset::compress(random_bits(12422, density, 5));
  const auto b = WahBitset::compress(random_bits(12422, density, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WahBitset::intersects(a, b));
  }
  state.counters["compression"] = a.compression_ratio();
}
BENCHMARK(BM_WahAndCompressed)->Arg(8)->Arg(30)->Arg(300);

void BM_WahAndUncompressed(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 10000.0;
  const auto a = random_bits(12422, density, 5);
  const auto b = random_bits(12422, density, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicBitset::intersects(a, b));
  }
}
BENCHMARK(BM_WahAndUncompressed)->Arg(8)->Arg(30)->Arg(300);

gsb::graph::Graph module_workload() {
  gsb::util::Rng rng(11);
  gsb::graph::ModuleGraphConfig config;
  config.n = 400;
  config.num_modules = 28;
  config.max_module_size = 12;
  config.overlap = 0.3;
  config.background_edges = 300;
  return gsb::graph::planted_modules(config, rng).graph;
}

void BM_EnumeratorBaseBK(benchmark::State& state) {
  const auto g = module_workload();
  for (auto _ : state) {
    gsb::core::CliqueCounter counter;
    gsb::core::base_bk(g, counter.callback());
    benchmark::DoNotOptimize(counter.total());
  }
}
BENCHMARK(BM_EnumeratorBaseBK)->Unit(benchmark::kMillisecond);

void BM_EnumeratorImprovedBK(benchmark::State& state) {
  const auto g = module_workload();
  for (auto _ : state) {
    gsb::core::CliqueCounter counter;
    gsb::core::improved_bk(g, counter.callback());
    benchmark::DoNotOptimize(counter.total());
  }
}
BENCHMARK(BM_EnumeratorImprovedBK)->Unit(benchmark::kMillisecond);

void BM_EnumeratorCliqueEnumerator(benchmark::State& state) {
  const auto g = module_workload();
  for (auto _ : state) {
    gsb::core::CliqueCounter counter;
    gsb::core::CliqueEnumeratorOptions options;
    options.range = gsb::core::SizeRange{2, 0};
    gsb::core::enumerate_maximal_cliques(g, counter.callback(), options);
    benchmark::DoNotOptimize(counter.total());
  }
}
BENCHMARK(BM_EnumeratorCliqueEnumerator)->Unit(benchmark::kMillisecond);

void BM_KCorePreprocess(benchmark::State& state) {
  const auto g = module_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gsb::graph::kcore_subgraph(g, 5).graph.order());
  }
}
BENCHMARK(BM_KCorePreprocess)->Unit(benchmark::kMillisecond);

void BM_SeedLevelByK(benchmark::State& state) {
  const auto g = module_workload();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    gsb::core::CliqueCollector sink;
    auto level = gsb::core::build_seed_level(g, k, sink.callback());
    benchmark::DoNotOptimize(level.size());
  }
}
BENCHMARK(BM_SeedLevelByK)->Arg(3)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
