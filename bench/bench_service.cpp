// Query-service benchmarks (google-benchmark): the serving-layer
// trajectory.  Run via the `bench_service_json` target (or directly with
// --benchmark_out) to emit BENCH_service.json, the artifact CI uploads
// alongside the storage/correlation/clique trajectories:
//
//   * batch execution of a mixed query workload at 1/2/4/8 threads with
//     the result cache off, cold (cleared per iteration), and warm
//     (pre-warmed once) — queries/sec reads off the items counter;
//   * `cliques-containing` through the `.gsbci` index vs a full `.gsbc`
//     rescan — the random-access win the sidecar exists for.
//
// The fixture is the same planted-module shape the clique benches use: a
// mapped .gsbg, its enumerated .gsbc stream, and the .gsbci sidecar, all
// opened once through the GraphCatalog like a real serve session.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/bron_kerbosch.h"
#include "graph/generators.h"
#include "service/batch_executor.h"
#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "service/result_cache.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace gsb;

struct Fixture {
  service::GraphCatalog catalog;
  std::shared_ptr<service::GraphEntry> indexed;
  std::shared_ptr<service::GraphEntry> rescan;
  std::vector<std::string> workload;
  std::string gsbg_path;
  std::string gsbc_path;
  std::string gsbci_path;

  Fixture() {
    util::Rng rng(2005);
    graph::ModuleGraphConfig config;
    config.n = 1500;
    config.num_modules = 170;
    config.max_module_size = 16;
    config.overlap = 0.3;
    const graph::Graph graph = graph::planted_modules(config, rng).graph;

    gsbg_path = (fs::temp_directory_path() / "bench_service.gsbg").string();
    gsbc_path = (fs::temp_directory_path() / "bench_service.gsbc").string();
    gsbci_path = service::default_index_path(gsbc_path);
    storage::write_gsbg_file(graph, gsbg_path);
    {
      storage::GsbcWriter writer(gsbc_path, graph.order());
      core::degeneracy_bk(graph,
                          [&](std::span<const graph::VertexId> clique) {
                            writer.append(clique);
                          });
      writer.close();
    }
    service::build_clique_index(gsbc_path, gsbci_path);

    service::GraphSpec spec;
    spec.graph_path = gsbg_path;
    spec.cliques_path = gsbc_path;
    indexed = catalog.open("indexed", spec);
    spec.probe_index = false;
    rescan = catalog.open("rescan", spec);

    // A serve-shaped mix: point lookups dominate, a few heavy analyses.
    const auto n = static_cast<graph::VertexId>(graph.order());
    for (graph::VertexId v = 0; v < n; v += 7) {
      workload.push_back("neighbors " + std::to_string(v));
      workload.push_back("degree " + std::to_string((v + 3) % n));
      workload.push_back("common-neighbors " + std::to_string(v) + " " +
                         std::to_string((v + 1) % n));
      workload.push_back("cliques-containing " + std::to_string(v));
    }
    workload.push_back("top-hubs 10");
    workload.push_back("kcore-membership 4 17");
  }
  ~Fixture() {
    std::error_code ec;
    fs::remove(gsbg_path, ec);
    fs::remove(gsbc_path, ec);
    fs::remove(gsbci_path, ec);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void run_batch(benchmark::State& state, service::ResultCache* cache,
               bool clear_each_iteration) {
  auto& f = fixture();
  service::BatchOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.cache = cache;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    if (cache != nullptr && clear_each_iteration) {
      state.PauseTiming();
      cache->clear();
      state.ResumeTiming();
    }
    const auto result = service::execute_batch(f.indexed, f.workload, options);
    queries += result.responses.size();  // cache hits never reach an engine
    benchmark::DoNotOptimize(result.responses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}

void BM_BatchNoCache(benchmark::State& state) {
  run_batch(state, nullptr, false);
}
BENCHMARK(BM_BatchNoCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchColdCache(benchmark::State& state) {
  service::ResultCache cache(64u << 20);
  run_batch(state, &cache, true);
}
BENCHMARK(BM_BatchColdCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchWarmCache(benchmark::State& state) {
  service::ResultCache cache(64u << 20);
  // Pre-warm outside the timed region: every workload line cached.
  service::BatchOptions warmup;
  warmup.threads = 1;
  warmup.cache = &cache;
  service::execute_batch(fixture().indexed, fixture().workload, warmup);
  run_batch(state, &cache, false);
}
BENCHMARK(BM_BatchWarmCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CliquesContainingIndexed(benchmark::State& state) {
  auto& f = fixture();
  service::QueryEngine engine(f.indexed);
  const auto n = static_cast<graph::VertexId>(f.indexed->order());
  graph::VertexId v = 0;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const auto response =
        engine.execute_line("cliques-containing " + std::to_string(v));
    benchmark::DoNotOptimize(response.data());
    v = (v + 13) % n;
    ++queries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_CliquesContainingIndexed)->Unit(benchmark::kMicrosecond);

void BM_CliquesContainingRescan(benchmark::State& state) {
  auto& f = fixture();
  service::QueryEngine engine(f.rescan);
  const auto n = static_cast<graph::VertexId>(f.rescan->order());
  graph::VertexId v = 0;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const auto response =
        engine.execute_line("cliques-containing " + std::to_string(v));
    benchmark::DoNotOptimize(response.data());
    v = (v + 13) % n;
    ++queries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_CliquesContainingRescan)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
