// Query-service benchmarks (google-benchmark): the serving-layer
// trajectory.  Run via the `bench_service_json` target (or directly with
// --benchmark_out) to emit BENCH_service.json, the artifact CI uploads
// alongside the storage/correlation/clique trajectories:
//
//   * batch execution of a mixed query workload at 1/2/4/8 threads with
//     the result cache off, cold (cleared per iteration), and warm
//     (pre-warmed once) — queries/sec reads off the items counter;
//   * `cliques-containing` through the `.gsbci` index vs a full `.gsbc`
//     rescan — the random-access win the sidecar exists for;
//   * (Linux) a closed-loop TCP load generator against the epoll serving
//     layer: N client connections keep a pipeline of D binary-protocol
//     requests in flight each, per-request latency is measured send-to-
//     response, and p50_us/p99_us land in the JSON counters alongside
//     items/sec (saturation throughput at the widest configuration).
//
// The fixture is the same planted-module shape the clique benches use: a
// mapped .gsbg, its enumerated .gsbc stream, and the .gsbci sidecar, all
// opened once through the GraphCatalog like a real serve session.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/bron_kerbosch.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch_executor.h"
#include "service/client.h"
#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "service/result_cache.h"
#include "service/tcp_server.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace gsb;

struct Fixture {
  service::GraphCatalog catalog;
  std::shared_ptr<service::GraphEntry> indexed;
  std::shared_ptr<service::GraphEntry> rescan;
  std::vector<std::string> workload;
  std::string gsbg_path;
  std::string gsbc_path;
  std::string gsbci_path;

  Fixture() {
    util::Rng rng(2005);
    graph::ModuleGraphConfig config;
    config.n = 1500;
    config.num_modules = 170;
    config.max_module_size = 16;
    config.overlap = 0.3;
    const graph::Graph graph = graph::planted_modules(config, rng).graph;

    gsbg_path = (fs::temp_directory_path() / "bench_service.gsbg").string();
    gsbc_path = (fs::temp_directory_path() / "bench_service.gsbc").string();
    gsbci_path = service::default_index_path(gsbc_path);
    storage::write_gsbg_file(graph, gsbg_path);
    {
      storage::GsbcWriter writer(gsbc_path, graph.order());
      core::degeneracy_bk(graph,
                          [&](std::span<const graph::VertexId> clique) {
                            writer.append(clique);
                          });
      writer.close();
    }
    service::build_clique_index(gsbc_path, gsbci_path);

    service::GraphSpec spec;
    spec.graph_path = gsbg_path;
    spec.cliques_path = gsbc_path;
    indexed = catalog.open("indexed", spec);
    spec.probe_index = false;
    rescan = catalog.open("rescan", spec);

    // A serve-shaped mix: point lookups dominate, a few heavy analyses.
    const auto n = static_cast<graph::VertexId>(graph.order());
    for (graph::VertexId v = 0; v < n; v += 7) {
      workload.push_back("neighbors " + std::to_string(v));
      workload.push_back("degree " + std::to_string((v + 3) % n));
      workload.push_back("common-neighbors " + std::to_string(v) + " " +
                         std::to_string((v + 1) % n));
      workload.push_back("cliques-containing " + std::to_string(v));
    }
    workload.push_back("top-hubs 10");
    workload.push_back("kcore-membership 4 17");
  }
  ~Fixture() {
    std::error_code ec;
    fs::remove(gsbg_path, ec);
    fs::remove(gsbc_path, ec);
    fs::remove(gsbci_path, ec);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void run_batch(benchmark::State& state, service::ResultCache* cache,
               bool clear_each_iteration) {
  auto& f = fixture();
  service::BatchOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.cache = cache;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    if (cache != nullptr && clear_each_iteration) {
      state.PauseTiming();
      cache->clear();
      state.ResumeTiming();
    }
    const auto result = service::execute_batch(f.indexed, f.workload, options);
    queries += result.responses.size();  // cache hits never reach an engine
    benchmark::DoNotOptimize(result.responses.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}

void BM_BatchNoCache(benchmark::State& state) {
  run_batch(state, nullptr, false);
}
BENCHMARK(BM_BatchNoCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchColdCache(benchmark::State& state) {
  service::ResultCache cache(64u << 20);
  run_batch(state, &cache, true);
}
BENCHMARK(BM_BatchColdCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchWarmCache(benchmark::State& state) {
  service::ResultCache cache(64u << 20);
  // Pre-warm outside the timed region: every workload line cached.
  service::BatchOptions warmup;
  warmup.threads = 1;
  warmup.cache = &cache;
  service::execute_batch(fixture().indexed, fixture().workload, warmup);
  run_batch(state, &cache, false);
}
BENCHMARK(BM_BatchWarmCache)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CliquesContainingIndexed(benchmark::State& state) {
  auto& f = fixture();
  service::QueryEngine engine(f.indexed);
  const auto n = static_cast<graph::VertexId>(f.indexed->order());
  graph::VertexId v = 0;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const auto response =
        engine.execute_line("cliques-containing " + std::to_string(v));
    benchmark::DoNotOptimize(response.data());
    v = (v + 13) % n;
    ++queries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_CliquesContainingIndexed)->Unit(benchmark::kMicrosecond);

void BM_CliquesContainingRescan(benchmark::State& state) {
  auto& f = fixture();
  service::QueryEngine engine(f.rescan);
  const auto n = static_cast<graph::VertexId>(f.rescan->order());
  graph::VertexId v = 0;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const auto response =
        engine.execute_line("cliques-containing " + std::to_string(v));
    benchmark::DoNotOptimize(response.data());
    v = (v + 13) % n;
    ++queries;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queries));
}
BENCHMARK(BM_CliquesContainingRescan)->Unit(benchmark::kMicrosecond);

#if defined(__linux__)

// Closed-loop TCP load generator.  Each benchmark run binds a fresh
// TcpServer on an ephemeral loopback port; every iteration spawns
// `clients` connections that each keep up to `depth` binary-protocol
// requests in flight (send one new request per response received) until
// a fixed quota completes.  Latency is measured per request from the
// send() that enqueued it to the receive() that matched its id, so
// queueing delay under pipelining is included — that is the number a
// caller actually observes.
struct TcpBench {
  service::ResultCache cache{64u << 20};
  std::optional<service::TcpServer> server;
  std::thread thread;

  explicit TcpBench(std::size_t threads) {
    service::TcpServerOptions options;
    options.threads = threads;
    options.cache = &cache;
    server.emplace(fixture().indexed, "127.0.0.1:0", options);
    thread = std::thread([this] { server->serve(); });
  }
  ~TcpBench() {
    try {
      auto client = service::ServiceClient::connect_tcp(address());
      client.request("shutdown");
    } catch (...) {
    }
    if (thread.joinable()) thread.join();
  }
  std::string address() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

double percentile_us(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void BM_TcpClosedLoop(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kRequestsPerClient = 256;
  TcpBench bench(/*threads=*/4);
  auto& workload = fixture().workload;

  std::mutex latencies_mutex;
  std::vector<double> latencies_us;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        using Clock = std::chrono::steady_clock;
        auto client = service::ServiceClient::connect_tcp(bench.address());
        std::unordered_map<std::uint64_t, Clock::time_point> sent_at;
        std::vector<double> local;
        local.reserve(kRequestsPerClient);
        std::size_t issued = 0;
        const auto issue = [&] {
          const std::string& line =
              workload[(issued * clients + c) % workload.size()];
          sent_at.emplace(client.send(line), Clock::now());
          ++issued;
        };
        while (issued < std::min(depth, kRequestsPerClient)) issue();
        client.flush();
        for (std::size_t received = 0; received < kRequestsPerClient;
             ++received) {
          const auto response = client.receive();
          const auto it = sent_at.find(response.id);
          local.push_back(std::chrono::duration<double, std::micro>(
                              Clock::now() - it->second)
                              .count());
          sent_at.erase(it);
          if (issued < kRequestsPerClient) {
            issue();
            client.flush();
          }
        }
        const std::lock_guard<std::mutex> lock(latencies_mutex);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    completed += clients * kRequestsPerClient;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["p50_us"] = percentile_us(latencies_us, 0.50);
  state.counters["p99_us"] = percentile_us(latencies_us, 0.99);
}
// {clients, pipeline depth}: a single sequential caller, a small
// pipelined pool, and a wide configuration that saturates the four
// worker threads — its items/sec is the saturation throughput.
BENCHMARK(BM_TcpClosedLoop)
    ->Args({1, 1})
    ->Args({2, 4})
    ->Args({4, 8})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// One closed-loop pass (no latency bookkeeping): wall seconds to push
/// `per_client` requests through each of `clients` pipelined connections.
double closed_loop_seconds(const std::string& address, std::size_t clients,
                           std::size_t depth, std::size_t per_client) {
  auto& workload = fixture().workload;
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = service::ServiceClient::connect_tcp(address);
      std::size_t issued = 0;
      const auto issue = [&] {
        client.send(workload[(issued * clients + c) % workload.size()]);
        ++issued;
      };
      while (issued < std::min(depth, per_client)) issue();
      client.flush();
      for (std::size_t received = 0; received < per_client; ++received) {
        benchmark::DoNotOptimize(client.receive().payload.data());
        if (issued < per_client) {
          issue();
          client.flush();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

// The observability acceptance number: the same closed loop against the
// same server with the registry+tracer off, then on.  The per-request
// delta divided by the baseline lands in `instr_overhead_pct` — the
// budget is < 3%, and the response bytes are identical either way (the
// service tests pin that part).
void BM_TcpInstrumentationOverhead(benchmark::State& state) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kDepth = 8;
  constexpr std::size_t kRequestsPerClient = 256;
  TcpBench bench(/*threads=*/4);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Tracer& tracer = obs::Tracer::global();
  // Warm the server (engines, cache, page faults) off the record.
  closed_loop_seconds(bench.address(), kClients, kDepth, kRequestsPerClient);

  double off_seconds = 0.0;
  double on_seconds = 0.0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    registry.set_enabled(false);
    tracer.set_enabled(false);
    off_seconds += closed_loop_seconds(bench.address(), kClients, kDepth,
                                       kRequestsPerClient);
    registry.set_enabled(true);
    tracer.set_enabled(true);
    on_seconds += closed_loop_seconds(bench.address(), kClients, kDepth,
                                      kRequestsPerClient);
    completed += 2 * kClients * kRequestsPerClient;
  }
  // Server-side quantiles interpolated from the same log2-bucket
  // histogram the `stats` control line reads, via the shared
  // obs::histogram_quantile_micros helper — scraped while the registry
  // is still live so the instrumented half's observations are in it.
  obs::HistogramSnapshot merged;
  for (const auto& metric : registry.scrape().metrics) {
    if (metric.name != "gsb_request_duration_microseconds") continue;
    for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
      merged.buckets[i] += metric.histogram.buckets[i];
    }
    merged.count += metric.histogram.count;
    merged.sum_micros += metric.histogram.sum_micros;
  }
  registry.set_enabled(false);
  tracer.set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["server_p50_us"] = static_cast<double>(
      obs::histogram_quantile_micros(merged, 0.50));
  state.counters["server_p99_us"] = static_cast<double>(
      obs::histogram_quantile_micros(merged, 0.99));
  state.counters["instr_overhead_pct"] =
      off_seconds > 0.0 ? (on_seconds / off_seconds - 1.0) * 100.0 : 0.0;
}
BENCHMARK(BM_TcpInstrumentationOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(2.0);

// The robustness acceptance number: the disabled fault-injection shim
// against an armed-but-never-firing schedule (all probabilities zero),
// so the delta isolates the enabled() gate + decide() consult on every
// intercepted send/recv.  The budget for the disabled state is < 1%
// (`fault_overhead_pct`, asserted by CI); the armed state here bounds
// the consult cost, not any injected fault.
void BM_TcpFaultInjectionOverhead(benchmark::State& state) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kDepth = 8;
  constexpr std::size_t kRequestsPerClient = 256;
  TcpBench bench(/*threads=*/4);
  // Warm the server (engines, cache, page faults) off the record.
  closed_loop_seconds(bench.address(), kClients, kDepth, kRequestsPerClient);

  const fault::Schedule never_fires;  // armed shim, zero probabilities
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    fault::disable();
    off_seconds += closed_loop_seconds(bench.address(), kClients, kDepth,
                                       kRequestsPerClient);
    fault::install(never_fires);
    on_seconds += closed_loop_seconds(bench.address(), kClients, kDepth,
                                      kRequestsPerClient);
    completed += 2 * kClients * kRequestsPerClient;
  }
  fault::disable();
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["fault_overhead_pct"] =
      off_seconds > 0.0 ? (on_seconds / off_seconds - 1.0) * 100.0 : 0.0;
}
BENCHMARK(BM_TcpFaultInjectionOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(2.0);

#endif  // defined(__linux__)

}  // namespace

BENCHMARK_MAIN();
