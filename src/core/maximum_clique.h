#ifndef GSB_CORE_MAXIMUM_CLIQUE_H
#define GSB_CORE_MAXIMUM_CLIQUE_H

/// \file maximum_clique.h
/// Maximum clique: bounds and an exact branch-and-bound solver.
///
/// The paper (§2.1) uses maximum clique to fix the *upper* bound of the
/// enumeration window (and lists further uses: microarray threshold
/// selection, cis-regulatory elements, phylogeny).  Its preferred exact
/// route is FPT vertex cover on the complement (src/fpt); the greedy-
/// coloring-bounded branch-and-bound here is the direct alternative used to
/// cross-validate that route and to serve dense instances where the
/// complement is large.

#include <cstdint>

#include "core/clique.h"
#include "graph/graph_view.h"

namespace gsb::core {

/// Greedy lower bound: grows a clique from each of the highest-degree
/// seeds; returns the best found (a valid clique, not necessarily maximum).
Clique greedy_clique_lower_bound(const graph::GraphView& g,
                                 std::size_t seeds = 8);

/// Greedy (Welsh–Powell) coloring upper bound: chi_greedy >= omega.
std::size_t greedy_coloring_upper_bound(const graph::GraphView& g);

/// Exact maximum clique result.
struct MaxCliqueResult {
  Clique clique;
  std::uint64_t tree_nodes = 0;
  double seconds = 0.0;
};

/// Exact maximum clique by branch-and-bound with greedy-coloring pruning
/// (Tomita-style).  Exponential worst case; effective on the sparse
/// correlation graphs this framework targets.
MaxCliqueResult maximum_clique(const graph::GraphView& g);

}  // namespace gsb::core

#endif  // GSB_CORE_MAXIMUM_CLIQUE_H
