#ifndef GSB_CORE_CLIQUE_ENUMERATOR_H
#define GSB_CORE_CLIQUE_ENUMERATOR_H

/// \file clique_enumerator.h
/// **Clique Enumerator** — the paper's novel maximal-clique enumeration
/// algorithm (§2.3).
///
/// Properties (all per the paper):
///   * emits maximal cliques in **non-decreasing order of size**, so a run
///     can be bounded by a size range [Init_K, upper] and its progress
///     tracked level by level;
///   * stores only *candidate* k-cliques, factorized into sub-lists that
///     share a (k−1)-clique prefix (see sublist.h), deleting each sub-list
///     as soon as its (k+1)-cliques have been generated;
///   * decides maximality with one bitwise-AND + any-bit test on
///     common-neighbor bit strings;
///   * partitions naturally into independent per-sub-list tasks (the
///     multithreaded driver lives in parallel_enumerator.h).
///
/// The run is seeded either from the edge list (Init_K ≤ 2) or by the §2.2
/// k-clique enumerator at Init_K ≥ 3, after the degree-based preprocessing
/// (vertices that cannot belong to an Init_K-clique are peeled off).

#include <functional>

#include "core/clique.h"
#include "core/enumeration_stats.h"
#include "graph/graph_view.h"
#include "util/memory_tracker.h"

namespace gsb::core {

/// Tuning and instrumentation options for a Clique Enumerator run.
struct CliqueEnumeratorOptions {
  /// Size window: `range.lo` is the paper's Init_K; `range.hi` the upper
  /// bound (0 = enumerate to the maximum clique).
  SizeRange range{3, 0};

  /// Apply iterated (Init_K−1)-core peeling before enumeration (§2.2's
  /// degree preprocessing, iterated to a fixed point).  Exact: removed
  /// vertices can neither join nor witness non-maximality of any clique of
  /// size ≥ Init_K.
  bool use_kcore = true;

  /// Record per-sub-list costs for the Altix machine-model replays.
  bool record_trace = false;

  /// Byte accounting sink; defaults to the process-global tracker.
  util::MemoryTracker* tracker = nullptr;

  /// Invoked after each level with that level's statistics.
  std::function<void(const LevelStats&)> progress;
};

/// Runs the sequential Clique Enumerator over \p g, streaming every maximal
/// clique with size in the option range to \p sink (vertex ids are in g's
/// namespace, sorted ascending).  \p g is a GraphView, so the run works
/// identically over an in-memory Graph (implicit conversion) or a
/// memory-mapped .gsbg adjacency (storage::MappedGraph::view()).
EnumerationStats enumerate_maximal_cliques(const graph::GraphView& g,
                                           const CliqueCallback& sink,
                                           const CliqueEnumeratorOptions&
                                               options = {});

}  // namespace gsb::core

#endif  // GSB_CORE_CLIQUE_ENUMERATOR_H
