#include "core/verify.h"

#include <algorithm>

namespace gsb::core {

bool is_clique(const graph::Graph& g, std::span<const VertexId> vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (vertices[i] >= g.order()) return false;
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (vertices[i] == vertices[j] ||
          !g.has_edge(vertices[i], vertices[j])) {
        return false;
      }
    }
  }
  return true;
}

bool is_maximal_clique(const graph::Graph& g,
                       std::span<const VertexId> vertices) {
  if (!is_clique(g, vertices) || vertices.empty()) return false;
  for (VertexId w = 0; w < g.order(); ++w) {
    bool member = false;
    bool adjacent_to_all = true;
    for (VertexId v : vertices) {
      if (v == w) {
        member = true;
        break;
      }
      if (!g.has_edge(v, w)) {
        adjacent_to_all = false;
        break;
      }
    }
    if (!member && adjacent_to_all) return false;
  }
  return true;
}

std::vector<Clique> normalize(std::vector<Clique> cliques) {
  for (auto& clique : cliques) std::sort(clique.begin(), clique.end());
  std::sort(cliques.begin(), cliques.end());
  return cliques;
}

std::vector<Clique> filter_by_size(const std::vector<Clique>& cliques,
                                   const SizeRange& range) {
  std::vector<Clique> out;
  for (const auto& clique : cliques) {
    if (range.contains(clique.size())) out.push_back(clique);
  }
  return out;
}

namespace {

/// Recursive extension over sorted vectors.  `cand` holds vertices adjacent
/// to everything in `current`; `excluded` holds already-branched vertices
/// adjacent to everything in `current` (for maximality detection).
void reference_extend(const graph::Graph& g, Clique& current,
                      const std::vector<VertexId>& cand,
                      const std::vector<VertexId>& excluded,
                      std::vector<Clique>& out) {
  if (cand.empty() && excluded.empty()) {
    out.push_back(current);
    return;
  }
  std::vector<VertexId> local_excluded(excluded);
  for (std::size_t i = 0; i < cand.size(); ++i) {
    const VertexId v = cand[i];
    current.push_back(v);
    std::vector<VertexId> next_cand;
    for (std::size_t j = i + 1; j < cand.size(); ++j) {
      if (g.has_edge(v, cand[j])) next_cand.push_back(cand[j]);
    }
    // Candidates before position i and exclusions stay relevant only if
    // adjacent to v.
    std::vector<VertexId> next_excluded;
    for (VertexId x : local_excluded) {
      if (g.has_edge(v, x)) next_excluded.push_back(x);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (g.has_edge(v, cand[j])) next_excluded.push_back(cand[j]);
    }
    reference_extend(g, current, next_cand, next_excluded, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<Clique> reference_maximal_cliques(const graph::Graph& g) {
  std::vector<Clique> out;
  if (g.order() == 0) return out;  // no empty-clique artifact
  std::vector<VertexId> all(g.order());
  for (VertexId v = 0; v < g.order(); ++v) all[v] = v;
  Clique current;
  reference_extend(g, current, all, {}, out);
  return normalize(std::move(out));
}

std::vector<Clique> exhaustive_maximal_cliques(const graph::Graph& g) {
  const std::size_t n = g.order();
  std::vector<Clique> out;
  if (n == 0 || n > 24) return out;
  const std::uint32_t limit = 1u << n;
  std::vector<std::uint32_t> adj(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u = 0; u < n; ++u) {
      if (g.has_edge(v, u)) adj[v] |= 1u << u;
    }
  }
  auto subset_is_clique = [&](std::uint32_t mask) {
    for (std::uint32_t rest = mask; rest != 0; rest &= rest - 1) {
      const int v = __builtin_ctz(rest);
      const std::uint32_t others = mask & ~(1u << v);
      if ((adj[v] & others) != others) return false;
    }
    return true;
  };
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    if (!subset_is_clique(mask)) continue;
    // Maximal iff no outside vertex is adjacent to every member.
    bool maximal = true;
    for (VertexId w = 0; w < n && maximal; ++w) {
      if (mask & (1u << w)) continue;
      if ((adj[w] & mask) == mask) maximal = false;
    }
    if (!maximal) continue;
    Clique clique;
    for (std::uint32_t rest = mask; rest != 0; rest &= rest - 1) {
      clique.push_back(static_cast<VertexId>(__builtin_ctz(rest)));
    }
    out.push_back(std::move(clique));
  }
  return normalize(std::move(out));
}

namespace {

void kclique_extend(const graph::Graph& g, Clique& current,
                    const std::vector<VertexId>& cand, std::size_t k,
                    std::vector<Clique>& out) {
  if (current.size() == k) {
    out.push_back(current);
    return;
  }
  if (current.size() + cand.size() < k) return;
  for (std::size_t i = 0; i < cand.size(); ++i) {
    current.push_back(cand[i]);
    std::vector<VertexId> next;
    for (std::size_t j = i + 1; j < cand.size(); ++j) {
      if (g.has_edge(cand[i], cand[j])) next.push_back(cand[j]);
    }
    kclique_extend(g, current, next, k, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<Clique> reference_kcliques(const graph::Graph& g, std::size_t k) {
  std::vector<Clique> out;
  if (k == 0) return out;
  std::vector<VertexId> all(g.order());
  for (VertexId v = 0; v < g.order(); ++v) all[v] = v;
  Clique current;
  kclique_extend(g, current, all, k, out);
  return normalize(std::move(out));
}

}  // namespace gsb::core
