#ifndef GSB_CORE_KOSE_H
#define GSB_CORE_KOSE_H

/// \file kose.h
/// **Kose RAM** — the in-core variant of Kose et al.'s clique–metabolite
/// matrix algorithm [26], the baseline of the paper's Table 1.
///
/// The algorithm builds cliques level-by-level from the edge list: it
/// generates all possible (k+1)-cliques from all k-cliques, then declares a
/// k-clique maximal iff it is contained in no (k+1)-clique, outputs the
/// maximal k-cliques, and repeats until no (k+1)-cliques are generated.  It
/// shares the Clique Enumerator's non-decreasing output order, but has the
/// two deficiencies §2.3 identifies and fixes:
///   1. it stores *every* k-clique and (k+1)-clique explicitly — an
///      enormous footprint (the original resorted to disk; this version
///      keeps everything in RAM, hence "Kose RAM");
///   2. maximality is decided by searching the (k+1)-clique list for a
///      superset of each k-clique — a scan that also defeats simple
///      parallelization.
/// Both properties are reproduced faithfully (with the same canonical
/// prefix-grouped generation the paper describes), because the Table 1
/// speedup (~383x) is precisely the cost of these design choices.

#include <cstdint>

#include "core/clique.h"
#include "graph/graph.h"

namespace gsb::core {

/// Options for a Kose RAM run.
struct KoseOptions {
  /// Emission window; the level loop always starts from the edges (k = 2)
  /// as in the original algorithm, but only cliques with sizes inside the
  /// window are reported, and the run stops after level `hi` when bounded.
  SizeRange range{3, 0};

  /// Safety valve for tests/benches: abort (returning partial stats with
  /// `aborted = true`) once the stored clique count for one level exceeds
  /// this bound.  0 = unlimited.
  std::uint64_t max_stored_cliques = 0;
};

/// Run statistics.
struct KoseStats {
  std::uint64_t total_maximal = 0;
  std::uint64_t cliques_generated = 0;   ///< all cliques ever materialized
  std::uint64_t containment_scans = 0;   ///< k-clique vs (k+1)-list subset tests
  std::size_t peak_bytes = 0;            ///< max bytes of two adjacent levels
  std::size_t max_level_reached = 0;
  double total_seconds = 0.0;
  bool aborted = false;
};

/// Enumerates maximal cliques of \p g in non-decreasing size order using
/// the Kose RAM algorithm, streaming cliques inside the option window to
/// \p sink.
KoseStats kose_ram(const graph::Graph& g, const CliqueCallback& sink,
                   const KoseOptions& options = {});

}  // namespace gsb::core

#endif  // GSB_CORE_KOSE_H
