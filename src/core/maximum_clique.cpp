#include "core/maximum_clique.h"

#include <algorithm>
#include <numeric>

#include "bitset/dynamic_bitset.h"
#include "util/timer.h"

namespace gsb::core {
namespace {

using bits::DynamicBitset;

}  // namespace

Clique greedy_clique_lower_bound(const graph::GraphView& g, std::size_t seeds) {
  const std::size_t n = g.order();
  if (n == 0) return {};
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::sort(by_degree.begin(), by_degree.end(),
            [&](VertexId a, VertexId b) { return g.degree(a) > g.degree(b); });

  Clique best;
  DynamicBitset cand(n);
  seeds = std::min(seeds, n);
  for (std::size_t s = 0; s < seeds; ++s) {
    const VertexId seed = by_degree[s];
    Clique clique{seed};
    cand.assign_and(g.neighbors(seed), g.neighbors(seed));
    while (true) {
      // Extend with the candidate of maximum residual degree into cand.
      VertexId pick = static_cast<VertexId>(n);
      std::size_t pick_links = 0;
      for (std::size_t v = cand.find_first(); v < n; v = cand.find_next(v)) {
        const std::size_t links =
            DynamicBitset::count_and(cand, g.neighbors(static_cast<VertexId>(v)));
        if (pick == n || links > pick_links) {
          pick = static_cast<VertexId>(v);
          pick_links = links;
        }
      }
      if (pick == n) break;
      clique.push_back(pick);
      cand &= g.neighbors(pick);
    }
    if (clique.size() > best.size()) best = std::move(clique);
  }
  std::sort(best.begin(), best.end());
  return best;
}

std::size_t greedy_coloring_upper_bound(const graph::GraphView& g) {
  const std::size_t n = g.order();
  if (n == 0) return 0;
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.degree(a) > g.degree(b);
  });
  std::vector<DynamicBitset> classes;  // members per color
  for (VertexId v : order) {
    bool placed = false;
    for (auto& cls : classes) {
      if (!DynamicBitset::intersects(cls, g.neighbors(v))) {
        cls.set(v);
        placed = true;
        break;
      }
    }
    if (!placed) {
      classes.emplace_back(n);
      classes.back().set(v);
    }
  }
  return classes.size();
}

namespace {

/// Tomita-style search: candidates are greedily colored; vertices are
/// expanded in decreasing color order, pruning when |R| + color <= |best|.
class MaxCliqueSearch {
 public:
  explicit MaxCliqueSearch(const graph::GraphView& g)
      : g_(g), n_(g.order()) {}

  MaxCliqueResult run() {
    util::Timer timer;
    MaxCliqueResult result;
    best_ = greedy_clique_lower_bound(g_);
    if (n_ > 0) {
      DynamicBitset cand(n_);
      cand.set_all();
      current_.reserve(n_);
      // Pre-size the frame pool: the vector must never reallocate while
      // frame references are live across recursive calls.
      frames_.resize(n_ + 1);
      expand(cand, 0);
    }
    result.clique = best_;
    std::sort(result.clique.begin(), result.clique.end());
    result.tree_nodes = nodes_;
    result.seconds = timer.seconds();
    return result;
  }

 private:
  struct Frame {
    std::vector<VertexId> order;
    std::vector<std::uint32_t> color;
    DynamicBitset next_cand;
  };

  Frame& frame(std::size_t depth) {
    Frame& f = frames_[depth];
    if (f.next_cand.size() != n_) f.next_cand.resize(n_);
    return f;
  }

  /// Sequential greedy coloring of `cand`; fills order/color with vertices
  /// sorted by ascending color.
  void color_sort(const DynamicBitset& cand, Frame& f) {
    f.order.clear();
    f.color.clear();
    DynamicBitset uncolored = cand;
    std::uint32_t color = 0;
    DynamicBitset cls(n_);
    while (uncolored.any()) {
      ++color;
      cls.clear_all();
      for (std::size_t v = uncolored.find_first(); v < n_;
           v = uncolored.find_next(v)) {
        if (!DynamicBitset::intersects(cls,
                                       g_.neighbors(static_cast<VertexId>(v)))) {
          cls.set(v);
          f.order.push_back(static_cast<VertexId>(v));
          f.color.push_back(color);
        }
      }
      uncolored.and_not(cls);
    }
  }

  void expand(DynamicBitset& cand, std::size_t depth) {
    ++nodes_;
    Frame& f = frame(depth);
    color_sort(cand, f);
    for (std::size_t i = f.order.size(); i-- > 0;) {
      if (current_.size() + f.color[i] <= best_.size()) return;
      const VertexId v = f.order[i];
      current_.push_back(v);
      f.next_cand.assign_and(cand, g_.neighbors(v));
      if (f.next_cand.none()) {
        if (current_.size() > best_.size()) best_ = current_;
      } else {
        // Safe to pass this depth's buffer: the callee touches only deeper
        // frames, and the buffer is rebuilt before the next iteration.
        expand(f.next_cand, depth + 1);
      }
      current_.pop_back();
      cand.reset(v);
    }
  }

  const graph::GraphView g_;
  const std::size_t n_;
  Clique current_;
  Clique best_;
  std::uint64_t nodes_ = 0;
  std::vector<Frame> frames_;
};

}  // namespace

MaxCliqueResult maximum_clique(const graph::GraphView& g) {
  MaxCliqueSearch search(g);
  return search.run();
}

}  // namespace gsb::core
