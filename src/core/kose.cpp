#include "core/kose.h"

#include <algorithm>

#include "util/timer.h"

namespace gsb::core {
namespace {

/// One level of the Kose algorithm: every k-clique, stored explicitly as a
/// flat row-major array in canonical (lexicographic) order.
struct KoseLevel {
  std::size_t k = 0;
  std::vector<graph::VertexId> flat;  ///< size = k * count

  [[nodiscard]] std::size_t count() const noexcept {
    return k == 0 ? 0 : flat.size() / k;
  }
  [[nodiscard]] const graph::VertexId* clique(std::size_t index) const noexcept {
    return flat.data() + index * k;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return flat.capacity() * sizeof(graph::VertexId);
  }
};

/// True iff the sorted k-clique `small` is a subset of the sorted
/// (k+1)-clique `big` (single merge pass).
bool contained_in(const graph::VertexId* small, std::size_t k,
                  const graph::VertexId* big) noexcept {
  std::size_t bi = 0;
  for (std::size_t si = 0; si < k; ++si) {
    while (bi < k + 1 && big[bi] < small[si]) ++bi;
    if (bi == k + 1 || big[bi] != small[si]) return false;
    ++bi;
  }
  return true;
}

}  // namespace

KoseStats kose_ram(const graph::Graph& g, const CliqueCallback& sink,
                   const KoseOptions& options) {
  util::Timer timer;
  KoseStats stats;
  const SizeRange range = options.range;

  // Level 2: the edge list in canonical order.
  KoseLevel current;
  current.k = 2;
  for (const auto& [u, v] : g.edge_list()) {
    current.flat.push_back(u);
    current.flat.push_back(v);
  }
  stats.cliques_generated += current.count();

  std::vector<graph::VertexId> emit_buf;
  while (current.count() > 0) {
    const std::size_t k = current.k;
    stats.max_level_reached = std::max(stats.max_level_reached, k);
    if (options.max_stored_cliques != 0 &&
        current.count() > options.max_stored_cliques) {
      stats.aborted = true;
      break;
    }

    // --- generate all (k+1)-cliques ------------------------------------
    // Cliques sharing a (k-1)-prefix are contiguous in canonical order;
    // each in-group pair (i, j) with adjacent tails forms a (k+1)-clique,
    // appended in canonical order.
    KoseLevel next;
    next.k = k + 1;
    const std::size_t count = current.count();
    std::size_t group_begin = 0;
    while (group_begin < count) {
      std::size_t group_end = group_begin + 1;
      const graph::VertexId* base = current.clique(group_begin);
      while (group_end < count &&
             std::equal(base, base + k - 1, current.clique(group_end))) {
        ++group_end;
      }
      for (std::size_t i = group_begin; i < group_end; ++i) {
        const graph::VertexId u = current.clique(i)[k - 1];
        for (std::size_t j = i + 1; j < group_end; ++j) {
          const graph::VertexId w = current.clique(j)[k - 1];
          if (!g.has_edge(u, w)) continue;
          next.flat.insert(next.flat.end(), base, base + k - 1);
          next.flat.push_back(u);
          next.flat.push_back(w);
        }
      }
      group_begin = group_end;
    }
    stats.cliques_generated += next.count();
    stats.peak_bytes =
        std::max(stats.peak_bytes, current.bytes() + next.bytes());

    // --- maximality by containment scan ---------------------------------
    // A k-clique is maximal iff no (k+1)-clique contains it.  This is the
    // baseline's expensive step, reproduced as described: a linear search
    // of the complete (k+1) list per k-clique.
    if (range.contains(k)) {
      const std::size_t next_count = next.count();
      for (std::size_t i = 0; i < count; ++i) {
        const graph::VertexId* candidate = current.clique(i);
        bool maximal = true;
        for (std::size_t j = 0; j < next_count; ++j) {
          ++stats.containment_scans;
          if (contained_in(candidate, k, next.clique(j))) {
            maximal = false;
            break;
          }
        }
        if (maximal) {
          ++stats.total_maximal;
          emit_buf.assign(candidate, candidate + k);
          sink(emit_buf);
        }
      }
    }

    if (!range.open_above(k)) break;
    current = std::move(next);
  }

  stats.total_seconds = timer.seconds();
  return stats;
}

}  // namespace gsb::core
