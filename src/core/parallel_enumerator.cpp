#include "core/parallel_enumerator.h"

#include <algorithm>
#include <numeric>

#include "core/detail/mapped_sink.h"
#include "core/detail/sublist_kernel.h"
#include "core/detail/task_claims.h"
#include "core/kclique.h"
#include "graph/transforms.h"
#include "parallel/thread_pool.h"
#include "util/timer.h"

namespace gsb::core {
namespace {

using detail::BitsetPool;
using detail::MappedSink;
using graph::VertexId;

/// Thread-local output of one bulk-synchronous round: generated sub-lists,
/// emitted maximal cliques (flat, fixed stride), and counters.
struct WorkerOutput {
  Level next;
  std::vector<VertexId> emitted;  ///< flat cliques, stride = clique size
  detail::KernelCounters counters;
  double busy_seconds = 0.0;
};

}  // namespace

ParallelEnumerationStats enumerate_maximal_cliques_parallel(
    const graph::GraphView& g, const CliqueCallback& sink,
    const ParallelOptions& options) {
  util::Timer total_timer;
  ParallelEnumerationStats pstats;
  EnumerationStats& stats = pstats.base;
  util::MemoryTracker& tracker = options.tracker != nullptr
                                     ? *options.tracker
                                     : util::global_memory_tracker();
  const SizeRange range = options.range;
  const std::size_t lo = std::max<std::size_t>(range.lo, 1);
  const std::size_t num_threads = options.threads != 0
                                      ? options.threads
                                      : par::ThreadPool::default_threads();
  pstats.threads = num_threads;
  pstats.seed_thread_seconds.assign(num_threads, 0.0);
  pstats.thread_busy_seconds.assign(num_threads, 0.0);

  // Size-1 maximal cliques (isolated vertices) are only reachable here.
  if (lo == 1) {
    Clique buf(1);
    for (VertexId v = 0; v < g.order(); ++v) {
      if (g.degree(v) == 0) {
        buf[0] = v;
        ++stats.total_maximal;
        sink(buf);
      }
    }
  }
  const std::size_t seed_k = std::max<std::size_t>(lo, 2);
  if (range.hi != 0 && range.hi < seed_k) {
    stats.total_seconds = total_timer.seconds();
    stats.finalize();
    return pstats;
  }

  // --- degree preprocessing (identical to the sequential driver) ----------
  graph::GraphView work = g;
  graph::InducedSubgraph reduced;
  const std::vector<VertexId>* mapping = nullptr;
  if (options.use_kcore && seed_k >= 2) {
    reduced = graph::kcore_subgraph(g, seed_k - 1);
    if (reduced.graph.order() < g.order()) {
      work = graph::GraphView(reduced.graph);
      mapping = &reduced.mapping;
    }
  }
  MappedSink mapped(sink, mapping);
  const std::size_t n = work.order();

  par::ThreadPool pool(num_threads);
  par::LoadBalancer balancer(options.balancer);
  std::vector<BitsetPool> bitset_pools;
  bitset_pools.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) bitset_pools.emplace_back(n);

  // --- parallel seeding -------------------------------------------------------
  // Seed tasks are canonical 2-prefixes (edges) at Init_K >= 3 — fine
  // enough that no single dense region becomes an unsplittable task — or
  // root vertices at Init_K = 2.  Costs are estimated from the size of the
  // admissible candidate set (one bitwise AND per task), and the same
  // centralized scheduler balances them.
  util::Timer seed_timer;
  Level current;
  std::vector<std::uint32_t> home;  // producing thread of each sub-list
  {
    const bool pair_seed = seed_k >= 3;
    std::vector<SeedPair> pairs;
    std::vector<std::uint64_t> costs;
    if (pair_seed) {
      pairs = collect_seed_pairs(work);
      costs.resize(pairs.size());
      bits::DynamicBitset scratch(n);
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        scratch.assign_and(work.neighbors(pairs[i].v),
                           work.neighbors(pairs[i].u));
        const std::uint64_t cand = scratch.count_from(pairs[i].u + 1);
        costs[i] = cand * cand * cand / 6 + cand + 1;
      }
    } else {
      costs.resize(n);
      for (VertexId v = 0; v < n; ++v) {
        const std::uint64_t d = work.degree(v);
        costs[v] = d * d + 1;
      }
    }
    const par::Assignment assignment = balancer.assign(costs, {}, num_threads);
    detail::TaskClaims claims(assignment, options.dynamic_claiming);

    struct SeedOutput {
      Level level;
      std::vector<VertexId> emitted;
      KCliqueStats stats;
      double busy_seconds = 0.0;
    };
    std::vector<SeedOutput> outputs(num_threads);
    SeedTrace seed_trace;
    if (options.record_trace) {
      seed_trace.task_work.assign(costs.size(), 0);
      seed_trace.task_seconds.assign(costs.size(), 0.0);
    }
    pool.run_round([&](std::size_t tid) {
      const double cpu_begin = util::thread_cpu_seconds();
      SeedOutput& out = outputs[tid];
      const CliqueCallback local_sink = [&](std::span<const VertexId> clique) {
        out.emitted.insert(out.emitted.end(), clique.begin(), clique.end());
      };
      SeedLevelWorker worker(work, seed_k, local_sink);
      std::int64_t task;
      while ((task = claims.next(tid)) >= 0) {
        const auto index = static_cast<std::size_t>(task);
        util::Timer task_timer;
        const std::uint64_t nodes_before = worker.stats().tree_nodes;
        if (pair_seed) {
          worker.process_pair(pairs[index]);
        } else {
          worker.process_root(static_cast<VertexId>(index));
        }
        if (options.record_trace) {
          seed_trace.task_work[index] =
              worker.stats().tree_nodes - nodes_before;
          seed_trace.task_seconds[index] = task_timer.seconds();
        }
      }
      out.stats = worker.stats();
      out.level = worker.take_level();
      out.busy_seconds = util::thread_cpu_seconds() - cpu_begin;
    });
    pstats.total_transfers += claims.steals();

    for (std::size_t t = 0; t < num_threads; ++t) {
      SeedOutput& out = outputs[t];
      pstats.seed_thread_seconds[t] = out.busy_seconds;
      pstats.thread_busy_seconds[t] += out.busy_seconds;
      for (std::size_t i = 0; i + seed_k <= out.emitted.size();
           i += seed_k) {
        ++stats.total_maximal;
        mapped.emit(std::span<const VertexId>(&out.emitted[i], seed_k));
      }
      for (auto& sublist : out.level) {
        tracker.allocate(sublist.bytes(), util::MemTag::kCliqueStorage);
        current.push_back(std::move(sublist));
        home.push_back(static_cast<std::uint32_t>(t));
      }
    }
    if (options.record_trace) stats.seed_trace = std::move(seed_trace);
  }
  stats.seed_seconds = seed_timer.seconds();

  // --- level-synchronous enumeration -----------------------------------------
  std::size_t k = seed_k;
  while (!current.empty() && range.open_above(k)) {
    util::Timer level_timer;
    LevelStats level;
    level.k = k;
    const LevelCounts counts = count_level(current);
    level.sublists = counts.sublists;
    level.candidates = counts.candidates;
    level.bytes_formula = level_bytes_formula(counts, k, n);
    level.bytes_actual = level_bytes_actual(current);

    // Scheduling decision: per-task cost estimates are the pair-comparison
    // work each sub-list will perform.
    std::vector<std::uint64_t> costs(current.size());
    for (std::size_t i = 0; i < current.size(); ++i) {
      costs[i] = current[i].pair_work() + 1;
    }
    const par::Assignment assignment =
        balancer.assign(costs, home, num_threads);
    pstats.total_transfers += assignment.transfers;
    detail::TaskClaims claims(assignment, options.dynamic_claiming);

    LevelTrace trace;
    if (options.record_trace) {
      trace.k = k;
      trace.task_work.assign(current.size(), 0);
      trace.task_seconds.assign(current.size(), 0.0);
    }

    std::vector<WorkerOutput> outputs(num_threads);
    pool.run_round([&](std::size_t tid) {
      const double cpu_begin = util::thread_cpu_seconds();
      WorkerOutput& out = outputs[tid];
      detail::MemoryLedger ledger(tracker);
      std::int64_t claimed;
      while ((claimed = claims.next(tid)) >= 0) {
        const auto task = static_cast<std::uint32_t>(claimed);
        util::Timer task_timer;
        CliqueSublist& sublist = current[task];
        const std::uint64_t work_proxy = sublist.pair_work();
        const auto counters = detail::process_sublist(
            work, sublist,
            [&](const std::vector<VertexId>& prefix, VertexId v, VertexId u) {
              out.emitted.insert(out.emitted.end(), prefix.begin(),
                                 prefix.end());
              out.emitted.push_back(v);
              out.emitted.push_back(u);
            },
            out.next, bitset_pools[tid], ledger);
        out.counters.pairs_checked += counters.pairs_checked;
        out.counters.edges_present += counters.edges_present;
        out.counters.maximal_emitted += counters.maximal_emitted;
        if (options.record_trace) {
          trace.task_work[task] = work_proxy;
          trace.task_seconds[task] = task_timer.seconds();
        }
      }
      out.busy_seconds = util::thread_cpu_seconds() - cpu_begin;
    });
    pstats.total_transfers += claims.steals();

    // Collect results (single-threaded scheduler step, as in the paper).
    Level next;
    std::vector<std::uint32_t> next_home;
    std::vector<double> thread_seconds(num_threads, 0.0);
    const std::size_t emit_stride = k + 1;
    for (std::size_t t = 0; t < num_threads; ++t) {
      WorkerOutput& out = outputs[t];
      thread_seconds[t] = out.busy_seconds;
      pstats.thread_busy_seconds[t] += out.busy_seconds;
      level.pairs_checked += out.counters.pairs_checked;
      level.edges_present += out.counters.edges_present;
      level.maximal_emitted += out.counters.maximal_emitted;
      stats.total_maximal += out.counters.maximal_emitted;
      for (std::size_t i = 0; i + emit_stride <= out.emitted.size();
           i += emit_stride) {
        mapped.emit(std::span<const VertexId>(&out.emitted[i], emit_stride));
      }
      for (auto& sublist : out.next) {
        next.push_back(std::move(sublist));
        next_home.push_back(static_cast<std::uint32_t>(t));
      }
    }
    current = std::move(next);
    home = std::move(next_home);
    ++k;

    level.seconds = level_timer.seconds();
    stats.levels.push_back(level);
    pstats.level_thread_seconds.push_back(std::move(thread_seconds));
    if (options.record_trace) stats.traces.push_back(std::move(trace));
    if (options.progress) options.progress(level);
  }

  // Window closed with candidates still alive: release their accounting.
  for (const auto& sublist : current) {
    tracker.release(sublist.bytes(), util::MemTag::kCliqueStorage);
  }

  stats.total_seconds = total_timer.seconds();
  stats.finalize();
  return pstats;
}

}  // namespace gsb::core
