#include "core/kclique.h"

#include <cassert>
#include <numeric>

#include "bitset/dynamic_bitset.h"
#include "util/timer.h"

namespace gsb::core {
namespace {

using bits::DynamicBitset;

/// Canonical DFS over clique prefixes, one root vertex at a time.  At depth
/// d the state is
///   prefix_ = v_1 < ... < v_d   (a d-clique)
///   common_[d-1] = N(v_1) ∩ ... ∩ N(v_d)   (all common neighbors)
/// Children extend with common neighbors larger than v_d, which yields each
/// k-clique exactly once in lexicographic order — the "non-repeating
/// canonical order" required for sub-list grouping.  Requires k >= 2.
class KCliqueSearch {
 public:
  KCliqueSearch(const graph::GraphView& g, std::size_t k)
      : g_(g), k_(k), common_(k, DynamicBitset(g.order())) {
    assert(k >= 2);
    prefix_.reserve(k);
  }

  /// Explores every k-clique whose smallest vertex is \p root.
  /// on_leaf(prefix, common_of_prefix) is invoked at depth k-1 with the
  /// prefix's full common-neighbor set; the callee scans the admissible
  /// tails itself.  This shape serves both plain enumeration and seed-level
  /// construction without duplicating the search.
  /// Explores every k-clique whose two smallest vertices are (v, u).
  /// Requires k >= 3 and (v, u) in E with v < u.
  template <typename LeafFn>
  void run_pair(VertexId v, VertexId u, LeafFn&& on_leaf,
                KCliqueStats& stats) {
    ++stats.tree_nodes;
    common_[0].assign_and(g_.neighbors(v), g_.neighbors(v));
    common_[1].assign_and(common_[0], g_.neighbors(u));
    if (2 + common_[1].count_from(u + 1) < k_) {
      ++stats.boundary_cuts;
      return;
    }
    prefix_.assign({v, u});
    descend(2, on_leaf, stats);
  }

  template <typename LeafFn>
  void run_root(VertexId root, LeafFn&& on_leaf, KCliqueStats& stats) {
    ++stats.tree_nodes;
    // Boundary condition: |COMPSUB| + |CANDIDATES| < k.  In canonical order
    // the candidates are the neighbors *above* the root (the root is the
    // clique's smallest vertex), so the count is taken from root+1 — this
    // is exactly the paper's §2.2 cut and it is what makes high Init_K
    // seeding cheap on graphs whose dense regions cannot reach size k.
    if (1 + g_.neighbors(root).count_from(root + 1) < k_) {
      ++stats.boundary_cuts;
      return;
    }
    prefix_.assign(1, root);
    common_[0].assign_and(g_.neighbors(root), g_.neighbors(root));
    descend(1, on_leaf, stats);
  }

 private:
  template <typename LeafFn>
  void descend(std::size_t depth, LeafFn&& on_leaf, KCliqueStats& stats) {
    if (depth == k_ - 1) {
      on_leaf(prefix_, common_[depth - 1]);
      return;
    }
    const DynamicBitset& common = common_[depth - 1];
    const VertexId last = prefix_.back();
    for (std::size_t c = common.find_next(last); c < g_.order();
         c = common.find_next(c)) {
      ++stats.tree_nodes;
      const auto v = static_cast<VertexId>(c);
      common_[depth].assign_and(common, g_.neighbors(v));
      // Boundary condition: |COMPSUB| + |CANDIDATES| < k, with CANDIDATES
      // being the common neighbors above v (canonical extension is upward
      // only, so this count is exact, not a heuristic).
      if (depth + 1 + common_[depth].count_from(c + 1) < k_) {
        ++stats.boundary_cuts;
        continue;
      }
      prefix_.push_back(v);
      descend(depth + 1, on_leaf, stats);
      prefix_.pop_back();
    }
  }

  const graph::GraphView g_;
  const std::size_t k_;
  std::vector<DynamicBitset> common_;
  Clique prefix_;
};

std::vector<VertexId> all_roots(const graph::GraphView& g) {
  std::vector<VertexId> roots(g.order());
  std::iota(roots.begin(), roots.end(), VertexId{0});
  return roots;
}

}  // namespace

KCliqueStats enumerate_kcliques(const graph::GraphView& g, std::size_t k,
                                const KCliqueCallback& sink) {
  KCliqueStats stats;
  if (k == 0) return stats;
  if (k == 1) {
    Clique buf(1);
    for (VertexId v = 0; v < g.order(); ++v) {
      buf[0] = v;
      ++stats.total;
      const bool maximal = g.degree(v) == 0;
      if (maximal) ++stats.maximal;
      sink(buf, maximal);
    }
    return stats;
  }

  KCliqueSearch search(g, k);
  Clique buf;
  buf.reserve(k);
  auto leaf = [&](const Clique& prefix, const DynamicBitset& common) {
    const VertexId last = prefix.back();
    for (std::size_t t = common.find_next(last); t < g.order();
         t = common.find_next(t)) {
      const auto tail = static_cast<VertexId>(t);
      buf.assign(prefix.begin(), prefix.end());
      buf.push_back(tail);
      ++stats.total;
      const bool maximal =
          !DynamicBitset::intersects(common, g.neighbors(tail));
      if (maximal) ++stats.maximal;
      sink(buf, maximal);
    }
  };
  for (VertexId root = 0; root < g.order(); ++root) {
    search.run_root(root, leaf, stats);
  }
  return stats;
}

std::uint64_t count_kcliques(const graph::GraphView& g, std::size_t k) {
  if (k == 0) return 0;
  if (k == 1) return g.order();
  std::uint64_t count = 0;
  KCliqueStats stats;
  KCliqueSearch search(g, k);
  auto leaf = [&](const Clique& prefix, const DynamicBitset& common) {
    const VertexId last = prefix.back();
    for (std::size_t t = common.find_next(last); t < g.order();
         t = common.find_next(t)) {
      ++count;
    }
  };
  for (VertexId root = 0; root < g.order(); ++root) {
    search.run_root(root, leaf, stats);
  }
  return count;
}

namespace {

/// Shared leaf handler for seed-level construction: classifies each tail as
/// a maximal k-clique (streamed out) or a candidate (grouped into the
/// prefix's sub-list).
class SeedLevelBuilder {
 public:
  SeedLevelBuilder(const graph::GraphView& g, std::size_t k,
                   const CliqueCallback& maximal_sink)
      : g_(g), maximal_sink_(maximal_sink) {
    buf_.reserve(k);
  }

  void operator()(const Clique& prefix, const DynamicBitset& common) {
    CliqueSublist sublist;
    const VertexId last = prefix.back();
    for (std::size_t t = common.find_next(last); t < g_.order();
         t = common.find_next(t)) {
      const auto tail = static_cast<VertexId>(t);
      ++stats_.total;
      if (!DynamicBitset::intersects(common, g_.neighbors(tail))) {
        ++stats_.maximal;
        buf_.assign(prefix.begin(), prefix.end());
        buf_.push_back(tail);
        maximal_sink_(buf_);
      } else {
        sublist.tails.push_back(tail);
      }
    }
    // Sub-lists that cannot pair two candidate cliques are dropped; the
    // canonical-path argument guarantees their cliques' maximal supersets
    // are reached through other prefixes.
    if (sublist.tails.size() > 1) {
      sublist.prefix = prefix;
      sublist.common = common;
      level_.push_back(std::move(sublist));
    }
  }

  KCliqueStats& stats() noexcept { return stats_; }
  const KCliqueStats& stats() const noexcept { return stats_; }
  Level take_level() noexcept { return std::move(level_); }

 private:
  const graph::GraphView g_;
  const CliqueCallback& maximal_sink_;
  Clique buf_;
  Level level_;
  KCliqueStats stats_;
};

}  // namespace

Level build_seed_level_for_roots(const graph::GraphView& g, std::size_t k,
                                 std::span<const VertexId> roots,
                                 const CliqueCallback& maximal_sink,
                                 KCliqueStats* stats_out, SeedTrace* trace) {
  assert(k >= 2);
  SeedLevelBuilder builder(g, k, maximal_sink);
  KCliqueStats& stats = builder.stats();
  KCliqueSearch search(g, k);
  for (VertexId root : roots) {
    if (trace != nullptr) {
      util::Timer timer;
      const std::uint64_t nodes_before = stats.tree_nodes;
      search.run_root(root, builder, stats);
      trace->task_work.push_back(stats.tree_nodes - nodes_before);
      trace->task_seconds.push_back(timer.seconds());
    } else {
      search.run_root(root, builder, stats);
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return builder.take_level();
}

std::vector<SeedPair> collect_seed_pairs(const graph::GraphView& g) {
  std::vector<SeedPair> pairs;
  pairs.reserve(g.num_edges());
  for (const auto& [v, u] : g.edge_list()) {
    pairs.push_back(SeedPair{v, u});
  }
  return pairs;
}

Level build_seed_level_for_pairs(const graph::GraphView& g, std::size_t k,
                                 std::span<const SeedPair> pairs,
                                 const CliqueCallback& maximal_sink,
                                 KCliqueStats* stats_out, SeedTrace* trace) {
  assert(k >= 3);
  SeedLevelBuilder builder(g, k, maximal_sink);
  KCliqueStats& stats = builder.stats();
  KCliqueSearch search(g, k);
  for (const SeedPair& pair : pairs) {
    if (trace != nullptr) {
      util::Timer timer;
      const std::uint64_t nodes_before = stats.tree_nodes;
      search.run_pair(pair.v, pair.u, builder, stats);
      trace->task_work.push_back(stats.tree_nodes - nodes_before);
      trace->task_seconds.push_back(timer.seconds());
    } else {
      search.run_pair(pair.v, pair.u, builder, stats);
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return builder.take_level();
}

Level build_seed_level(const graph::GraphView& g, std::size_t k,
                       const CliqueCallback& maximal_sink,
                       KCliqueStats* stats_out) {
  const std::vector<VertexId> roots = all_roots(g);
  return build_seed_level_for_roots(g, k, roots, maximal_sink, stats_out,
                                    nullptr);
}

struct SeedLevelWorker::Impl {
  Impl(const graph::GraphView& g, std::size_t k, const CliqueCallback& sink)
      : builder(g, k, sink), search(g, k) {}
  SeedLevelBuilder builder;
  KCliqueSearch search;
};

SeedLevelWorker::SeedLevelWorker(const graph::GraphView& g, std::size_t k,
                                 const CliqueCallback& maximal_sink)
    : impl_(std::make_unique<Impl>(g, k, maximal_sink)) {}

SeedLevelWorker::~SeedLevelWorker() = default;
SeedLevelWorker::SeedLevelWorker(SeedLevelWorker&&) noexcept = default;

void SeedLevelWorker::process_pair(const SeedPair& pair) {
  impl_->search.run_pair(pair.v, pair.u, impl_->builder,
                         impl_->builder.stats());
}

void SeedLevelWorker::process_root(VertexId root) {
  impl_->search.run_root(root, impl_->builder, impl_->builder.stats());
}

const KCliqueStats& SeedLevelWorker::stats() const noexcept {
  return impl_->builder.stats();
}

Level SeedLevelWorker::take_level() noexcept {
  return impl_->builder.take_level();
}

}  // namespace gsb::core
