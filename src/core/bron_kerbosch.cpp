#include "core/bron_kerbosch.h"

#include <vector>

#include "bitset/dynamic_bitset.h"
#include "core/detail/bk_kernel.h"
#include "graph/transforms.h"

namespace gsb::core {
namespace {

using bits::DynamicBitset;

/// Recursion state shared across the search tree for the two classical
/// variants.  Per-depth set buffers are pooled so the hot path performs no
/// allocation after warm-up.
class BkSearch {
 public:
  BkSearch(const graph::GraphView& g, const CliqueCallback& sink,
           BronKerboschVariant variant, const SizeRange& range)
      : g_(g), sink_(sink), variant_(variant), range_(range) {}

  BronKerboschStats run() {
    const std::size_t n = g_.order();
    DynamicBitset candidates(n);
    candidates.set_all();
    DynamicBitset not_set(n);
    compsub_.reserve(n);
    // Pre-size the frame pool: recursion depth is bounded by n + 1, and the
    // vector must never reallocate while references into it are live.
    frames_.resize(n + 1);
    extend(candidates, not_set, 0);
    return stats_;
  }

 private:
  struct Frame {
    DynamicBitset cand;
    DynamicBitset not_set;
  };

  Frame& frame(std::size_t depth) {
    Frame& f = frames_[depth];
    if (f.cand.size() != g_.order()) {
      f.cand.resize(g_.order());
      f.not_set.resize(g_.order());
    }
    return f;
  }

  void emit() {
    ++stats_.maximal_cliques;
    if (range_.contains(compsub_.size())) {
      sink_(std::span<const VertexId>(compsub_));
    }
  }

  /// The EXTEND operator of Algorithm 457 over bitmap sets.
  void extend(DynamicBitset& candidates, DynamicBitset& not_set,
              std::size_t depth) {
    ++stats_.tree_nodes;
    stats_.max_depth = std::max(stats_.max_depth, depth);
    if (candidates.none() && not_set.none()) {
      emit();
      return;
    }

    // Improved BK: fix a pivot with maximum connectivity into CANDIDATES;
    // only candidates not adjacent to the pivot are branch roots.
    std::size_t pivot = g_.order();
    if (variant_ == BronKerboschVariant::kImproved) {
      std::size_t best = 0;
      for (std::size_t v = candidates.find_first(); v < g_.order();
           v = candidates.find_next(v)) {
        const std::size_t links = DynamicBitset::count_and(
            candidates, g_.neighbors(static_cast<VertexId>(v)));
        if (pivot == g_.order() || links > best) {
          pivot = v;
          best = links;
        }
      }
    }

    Frame& f = frame(depth);
    for (std::size_t v = candidates.find_first(); v < g_.order();
         v = candidates.find_next(v)) {
      if (variant_ == BronKerboschVariant::kImproved && v != pivot &&
          g_.has_edge(static_cast<VertexId>(pivot),
                      static_cast<VertexId>(v))) {
        continue;  // covered by the pivot's branch
      }
      candidates.reset(v);
      compsub_.push_back(static_cast<VertexId>(v));
      const bits::BitsetView nv = g_.neighbors(static_cast<VertexId>(v));
      f.cand.assign_and(candidates, nv);
      f.not_set.assign_and(not_set, nv);
      extend(f.cand, f.not_set, depth + 1);
      compsub_.pop_back();
      not_set.set(v);
    }
  }

  const graph::GraphView& g_;
  const CliqueCallback& sink_;
  BronKerboschVariant variant_;
  SizeRange range_;
  std::vector<VertexId> compsub_;
  std::vector<Frame> frames_;
  BronKerboschStats stats_;
};

/// Degeneracy-ordered outer loop over the shared pivot kernel: vertex v_i
/// roots the subtree of all maximal cliques whose earliest-ordered member
/// is v_i, so the subtrees partition the output and the deepest candidate
/// set is bounded by the degeneracy.
BronKerboschStats run_degeneracy(const graph::GraphView& g,
                                 const CliqueCallback& sink,
                                 const SizeRange& range) {
  const std::size_t n = g.order();
  detail::BkPivotSearch search(g, sink, range);
  const graph::DegeneracyResult deg = graph::degeneracy_order(g);
  DynamicBitset later(n);  // vertices not yet used as a root
  later.set_all();
  DynamicBitset cand(n);
  DynamicBitset not_set(n);
  for (const VertexId v : deg.order) {
    later.reset(v);
    cand.assign_and(g.neighbors(v), later);
    not_set.assign(g.neighbors(v));
    not_set.and_not(later);
    search.run_root(v, cand, not_set);
  }
  return search.stats();
}

}  // namespace

BronKerboschStats bron_kerbosch(const graph::GraphView& g,
                                const CliqueCallback& sink,
                                BronKerboschVariant variant,
                                const SizeRange& range) {
  if (variant == BronKerboschVariant::kDegeneracy) {
    return run_degeneracy(g, sink, range);
  }
  BkSearch search(g, sink, variant, range);
  return search.run();
}

BronKerboschStats base_bk(const graph::GraphView& g,
                          const CliqueCallback& sink,
                          const SizeRange& range) {
  return bron_kerbosch(g, sink, BronKerboschVariant::kBase, range);
}

BronKerboschStats improved_bk(const graph::GraphView& g,
                              const CliqueCallback& sink,
                              const SizeRange& range) {
  return bron_kerbosch(g, sink, BronKerboschVariant::kImproved, range);
}

BronKerboschStats degeneracy_bk(const graph::GraphView& g,
                                const CliqueCallback& sink,
                                const SizeRange& range) {
  return bron_kerbosch(g, sink, BronKerboschVariant::kDegeneracy, range);
}

}  // namespace gsb::core
