#ifndef GSB_CORE_SUBLIST_H
#define GSB_CORE_SUBLIST_H

/// \file sublist.h
/// The candidate k-clique **sub-list** — the paper's central data structure
/// (§2.3).
///
/// All candidate k-cliques that share a (k−1)-clique prefix are stored
/// together as:
///   * the shared prefix, kept **once** (k−1 vertex ids),
///   * the bit string of the prefix's common neighbors (⌈n/8⌉ bytes), and
///   * the array of k-th vertices ("tails"), ascending, each one standing
///     for the candidate clique prefix ∪ {tail}.
///
/// This factorization is what turns the level-by-level enumeration from
/// memory-infeasible (Kose et al. store every clique explicitly) into the
/// paper's compact form, and it is also the unit of parallel work: a
/// sub-list is processed independently of every other sub-list.

#include <cstdint>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "graph/graph.h"

namespace gsb::core {

/// One sub-list of candidate k-cliques sharing a (k-1)-clique.
struct CliqueSublist {
  std::vector<graph::VertexId> prefix;  ///< the shared (k-1)-clique, sorted
  bits::DynamicBitset common;           ///< common neighbors of the prefix
  std::vector<graph::VertexId> tails;   ///< k-th vertices, ascending

  /// Size k of the candidate cliques this sub-list represents.
  [[nodiscard]] std::size_t clique_size() const noexcept {
    return prefix.size() + 1;
  }

  /// Number of candidate cliques in this sub-list.
  [[nodiscard]] std::size_t count() const noexcept { return tails.size(); }

  /// Actual bytes held by this sub-list's storage.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return prefix.capacity() * sizeof(graph::VertexId) +
           tails.capacity() * sizeof(graph::VertexId) + common.size_bytes() +
           sizeof(CliqueSublist);
  }

  /// Upper bound on pair-comparison work when this sub-list generates the
  /// next level: the paper's O((n-k)^2) inner loop, exactly t*(t-1)/2.
  [[nodiscard]] std::uint64_t pair_work() const noexcept {
    const std::uint64_t t = tails.size();
    return t * (t - 1) / 2;
  }
};

/// A level: every candidate k-clique sub-list for one k.
using Level = std::vector<CliqueSublist>;

/// Aggregate counts for a level.
struct LevelCounts {
  std::uint64_t sublists = 0;    ///< the paper's N[k]
  std::uint64_t candidates = 0;  ///< the paper's M[k]
};

/// Counts sub-lists and candidate cliques of a level.
LevelCounts count_level(const Level& level) noexcept;

/// The paper's closed-form space requirement for a level at clique size k:
///   M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer)
/// with c = sizeof(VertexId).
std::size_t level_bytes_formula(const LevelCounts& counts, std::size_t k,
                                std::size_t n) noexcept;

/// Actual bytes across all sub-lists of a level.
std::size_t level_bytes_actual(const Level& level) noexcept;

}  // namespace gsb::core

#endif  // GSB_CORE_SUBLIST_H
