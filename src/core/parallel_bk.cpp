#include "core/parallel_bk.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "bitset/dynamic_bitset.h"
#include "core/detail/bk_kernel.h"
#include "core/detail/task_claims.h"
#include "graph/transforms.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "util/timer.h"

namespace gsb::core {
namespace {

using bits::DynamicBitset;
using graph::VertexId;

/// Serializing reorder-buffer sink: workers hand in one flat buffer of
/// size-prefixed cliques per completed root; the buffer is emitted once
/// every earlier root has been emitted (deterministic mode) or immediately
/// (completion order).  The sink only ever runs under the mutex, so it is
/// never invoked concurrently, and pending bytes are accounted and held to
/// a window by backpressure, exploiting a structural fact: every queue of
/// the assignment is ascending in task index, so the next-to-emit root is
/// always at the head of whichever queue still holds it.  A worker whose
/// gate finds the window full therefore either waits (the next-to-emit
/// root is already running on some thread — its completion must be waited
/// *for*) or is redirected to claim exactly that root's queue head, which
/// drains the merge instead of growing it.  Deadlock-free: a thread only
/// ever waits while another thread is running the root the merge needs,
/// and that runner never waits (the gate sits between roots).
class ReorderEmitter {
 public:
  /// Sentinel for "claim from your own queue as usual".
  static constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);

  ReorderEmitter(std::size_t roots, const CliqueCallback& sink,
                 bool deterministic, std::size_t window_bytes,
                 const std::vector<std::uint32_t>& queue_of,
                 util::MemoryTracker& tracker)
      : sink_(sink),
        deterministic_(deterministic),
        window_bytes_(window_bytes),
        queue_of_(queue_of),
        tracker_(tracker),
        pending_(deterministic ? roots : 0),
        done_(deterministic ? roots : 0, false),
        claimed_(deterministic ? roots : 0, false) {}

  ~ReorderEmitter() {
    // All roots drain before the round ends; release is for the window
    // accounting of an exception path only.
    tracker_.release(pending_bytes_, util::MemTag::kCliqueStorage);
  }

  /// Called by a worker before claiming its next root.  Returns kNoTarget
  /// for a normal claim, or the queue whose head the worker should claim
  /// to pull the next-to-emit root forward.
  std::size_t backpressure_gate() {
    if (!deterministic_ || window_bytes_ == 0) return kNoTarget;
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait(lock, [&] {
      return pending_bytes_ <= window_bytes_ || cursor_ >= pending_.size() ||
             !claimed_[cursor_];
    });
    if (pending_bytes_ > window_bytes_ && cursor_ < pending_.size()) {
      return queue_of_[cursor_];
    }
    return kNoTarget;
  }

  /// Called by a worker right after claiming root \p root_index.
  void note_claimed(std::size_t root_index) {
    if (!deterministic_) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    claimed_[root_index] = true;
  }

  void complete(std::size_t root_index, std::vector<VertexId>&& cliques) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!deterministic_) {
      drain(cliques);
      return;
    }
    const std::size_t bytes = cliques.size() * sizeof(VertexId);
    pending_bytes_ += bytes;
    peak_pending_bytes_ = std::max(peak_pending_bytes_, pending_bytes_);
    tracker_.allocate(bytes, util::MemTag::kCliqueStorage);
    pending_[root_index] = std::move(cliques);
    done_[root_index] = true;
    bool advanced = false;
    while (cursor_ < pending_.size() && done_[cursor_]) {
      drain(pending_[cursor_]);
      const std::size_t freed = pending_[cursor_].size() * sizeof(VertexId);
      tracker_.release(freed, util::MemTag::kCliqueStorage);
      pending_bytes_ -= freed;
      pending_[cursor_] = {};
      ++cursor_;
      advanced = true;
    }
    if (advanced) drained_cv_.notify_all();
  }

  [[nodiscard]] std::size_t peak_pending_bytes() const noexcept {
    return peak_pending_bytes_;
  }

 private:
  void drain(const std::vector<VertexId>& flat) {
    std::size_t i = 0;
    while (i < flat.size()) {
      const std::size_t size = flat[i++];
      sink_(std::span<const VertexId>(&flat[i], size));
      i += size;
    }
  }

  const CliqueCallback& sink_;
  bool deterministic_;
  std::size_t window_bytes_;
  const std::vector<std::uint32_t>& queue_of_;  ///< task index -> queue
  util::MemoryTracker& tracker_;
  std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::vector<std::vector<VertexId>> pending_;
  std::vector<bool> done_;
  std::vector<bool> claimed_;
  std::size_t cursor_ = 0;
  std::size_t pending_bytes_ = 0;
  std::size_t peak_pending_bytes_ = 0;
};

}  // namespace

ParallelBkStats parallel_bk(const graph::GraphView& g,
                            const CliqueCallback& sink,
                            const ParallelBkOptions& options) {
  util::Timer total_timer;
  ParallelBkStats stats;
  util::MemoryTracker& tracker = options.tracker != nullptr
                                     ? *options.tracker
                                     : util::global_memory_tracker();
  const std::size_t n = g.order();
  const std::size_t num_threads = options.threads != 0
                                      ? options.threads
                                      : par::ThreadPool::default_threads();
  stats.threads = num_threads;
  stats.thread_busy_seconds.assign(num_threads, 0.0);
  if (n == 0) {
    stats.total_seconds = total_timer.seconds();
    return stats;
  }

  // --- plan: one task per degeneracy root -----------------------------------
  const graph::DegeneracyResult deg = graph::degeneracy_order(g);
  stats.degeneracy = deg.degeneracy;
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[deg.order[i]] = i;

  // Cost estimate: the root's CANDIDATES size c (later-ordered neighbors)
  // bounds its subtree by 3^(c/3); the cubic proxy matches the seeding
  // estimator of the parallel Clique Enumerator and only needs to rank
  // roots, not predict absolute cost.
  std::vector<std::uint64_t> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = deg.order[i];
    std::uint64_t later = 0;
    g.neighbors(v).for_each([&](std::size_t u) {
      if (pos[u] > i) ++later;
    });
    costs[i] = later * later * later / 6 + later + 1;
  }
  // Roots are dealt round-robin so every thread's queue spans the whole
  // root order: the reorder buffer then drains steadily instead of waiting
  // for thread 0's contiguous block to finish.
  std::vector<std::uint32_t> home(n);
  for (std::size_t i = 0; i < n; ++i) {
    home[i] = static_cast<std::uint32_t>(i % num_threads);
  }
  const par::LoadBalancer balancer(options.balancer);
  const par::Assignment assignment = balancer.assign(costs, home, num_threads);
  stats.transfers = assignment.transfers;
  detail::TaskClaims claims(assignment, options.dynamic_claiming);

  std::vector<std::uint32_t> queue_of(n, 0);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    for (const std::uint32_t task_index : assignment.tasks[t]) {
      queue_of[task_index] = t;
    }
  }
  ReorderEmitter emitter(n, sink, options.deterministic,
                         options.reorder_window_bytes, queue_of, tracker);
  std::vector<BronKerboschStats> worker_stats(num_threads);

  par::ThreadPool pool(num_threads);
  pool.run_round([&](std::size_t tid) {
    const double cpu_begin = util::thread_cpu_seconds();
    // Per-root output buffer, flat size-prefixed records; the sink below
    // appends to whichever buffer is current.
    std::vector<VertexId> buffer;
    const CliqueCallback local_sink =
        [&buffer](std::span<const VertexId> clique) {
          buffer.push_back(static_cast<VertexId>(clique.size()));
          buffer.insert(buffer.end(), clique.begin(), clique.end());
        };
    detail::BkPivotSearch search(g, local_sink, options.range);
    DynamicBitset cand(n);
    DynamicBitset not_set(n);
    while (true) {
      const std::size_t target = emitter.backpressure_gate();
      std::int64_t task = target == ReorderEmitter::kNoTarget
                              ? claims.next(tid)
                              : claims.claim_from(target, tid);
      if (task < 0 && target != ReorderEmitter::kNoTarget) {
        // Lost the race for the merge's root — or a static plan forbids
        // the cross-queue pull; fall back to the normal claim.
        task = claims.next(tid);
      }
      if (task < 0) break;
      const auto i = static_cast<std::size_t>(task);
      emitter.note_claimed(i);
      const VertexId v = deg.order[i];
      cand.clear_all();
      not_set.clear_all();
      g.neighbors(v).for_each([&](std::size_t u) {
        if (pos[u] > i) {
          cand.set(u);
        } else {
          not_set.set(u);
        }
      });
      search.run_root(v, cand, not_set);
      emitter.complete(i, std::move(buffer));
      buffer.clear();
    }
    worker_stats[tid] = search.stats();
    stats.thread_busy_seconds[tid] = util::thread_cpu_seconds() - cpu_begin;
  });

  stats.steals = claims.steals();
  stats.peak_pending_bytes = emitter.peak_pending_bytes();
  for (const BronKerboschStats& ws : worker_stats) {
    stats.base.maximal_cliques += ws.maximal_cliques;
    stats.base.tree_nodes += ws.tree_nodes;
    stats.base.max_depth = std::max(stats.base.max_depth, ws.max_depth);
  }
  stats.total_seconds = total_timer.seconds();

  // Fold the run's work-stealing behaviour into the metrics registry so
  // a serving process exposes enumeration health without plumbing stats
  // structs through every caller.
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    static const obs::Counter runs = registry.counter(
        "gsb_bk_runs_total", "Parallel Bron-Kerbosch enumerations.");
    static const obs::Counter steals = registry.counter(
        "gsb_bk_steals_total", "Root tasks stolen across worker threads.");
    static const obs::Gauge peak_pending = registry.gauge(
        "gsb_bk_peak_pending_bytes",
        "High-water bytes buffered in the reorder emitter.");
    runs.inc();
    steals.inc(stats.steals);
    peak_pending.set_max(stats.peak_pending_bytes);
  }
  return stats;
}

}  // namespace gsb::core
