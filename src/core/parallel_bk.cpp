#include "core/parallel_bk.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "bitset/dynamic_bitset.h"
#include "core/detail/bk_kernel.h"
#include "graph/transforms.h"
#include "obs/metrics.h"
#include "parallel/job_graph.h"
#include "parallel/thread_pool.h"
#include "util/timer.h"

namespace gsb::core {
namespace {

using bits::DynamicBitset;
using graph::VertexId;

/// Per-worker enumeration state, built lazily on a worker's first root.
/// The sink object must outlive the search (BkPivotSearch keeps a
/// reference), so both live here together.
struct BkWorker {
  std::vector<VertexId> buffer;  ///< flat size-prefixed clique records
  CliqueCallback local_sink;
  std::unique_ptr<detail::BkPivotSearch> search;
  DynamicBitset cand;
  DynamicBitset not_set;
  double busy_seconds = 0.0;

  BkWorker(const graph::GraphView& g, const SizeRange& range)
      : cand(g.order()), not_set(g.order()) {
    local_sink = [this](std::span<const VertexId> clique) {
      buffer.push_back(static_cast<VertexId>(clique.size()));
      buffer.insert(buffer.end(), clique.begin(), clique.end());
    };
    search = std::make_unique<detail::BkPivotSearch>(g, local_sink, range);
  }
};

/// Replays one root's flat buffer into the caller's sink.
void drain_flat(const CliqueCallback& sink, const std::vector<VertexId>& flat) {
  std::size_t i = 0;
  while (i < flat.size()) {
    const std::size_t size = flat[i++];
    sink(std::span<const VertexId>(&flat[i], size));
    i += size;
  }
}

}  // namespace

ParallelBkStats parallel_bk(const graph::GraphView& g,
                            const CliqueCallback& sink,
                            const ParallelBkOptions& options) {
  util::Timer total_timer;
  ParallelBkStats stats;
  util::MemoryTracker& tracker = options.tracker != nullptr
                                     ? *options.tracker
                                     : util::global_memory_tracker();
  const std::size_t n = g.order();
  const std::size_t num_threads = options.threads != 0
                                      ? options.threads
                                      : par::ThreadPool::default_threads();
  stats.threads = num_threads;
  stats.thread_busy_seconds.assign(num_threads, 0.0);
  if (n == 0) {
    stats.total_seconds = total_timer.seconds();
    return stats;
  }

  // --- plan: one task per degeneracy root -----------------------------------
  const graph::DegeneracyResult deg = graph::degeneracy_order(g);
  stats.degeneracy = deg.degeneracy;
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[deg.order[i]] = i;

  // Cost estimate: the root's CANDIDATES size c (later-ordered neighbors)
  // bounds its subtree by 3^(c/3); the cubic proxy matches the seeding
  // estimator of the parallel Clique Enumerator and only needs to rank
  // roots, not predict absolute cost.
  std::vector<std::uint64_t> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = deg.order[i];
    std::uint64_t later = 0;
    g.neighbors(v).for_each([&](std::size_t u) {
      if (pos[u] > i) ++later;
    });
    costs[i] = later * later * later / 6 + later + 1;
  }
  // Roots are dealt round-robin so every thread's queue spans the whole
  // root order: the scheduler's reorder window then drains steadily
  // instead of waiting for thread 0's contiguous block to finish.
  std::vector<std::uint32_t> home(n);
  for (std::size_t i = 0; i < n; ++i) {
    home[i] = static_cast<std::uint32_t>(i % num_threads);
  }
  const par::LoadBalancer balancer(options.balancer);
  const par::Assignment assignment = balancer.assign(costs, home, num_threads);
  stats.transfers = assignment.transfers;
  std::vector<std::uint32_t> queue_of(n, 0);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    for (const std::uint32_t task_index : assignment.tasks[t]) {
      queue_of[task_index] = t;
    }
  }

  // --- schedule: one job per root on the DAG scheduler ----------------------
  // JobId == root index, so the scheduler's ordered-completion drain
  // (strict JobId order) reproduces the sequential degeneracy emission
  // sequence, and its window backpressure replaces the old bespoke
  // reorder buffer: when finished-but-undrained output exceeds the
  // window, workers are redirected to the next-to-emit root.
  par::ThreadPool pool(num_threads);
  par::JobGraph::Options graph_options;
  graph_options.ordered = options.deterministic;
  graph_options.window_bytes = options.reorder_window_bytes;
  graph_options.steal = options.dynamic_claiming;
  par::JobGraph jobs(&pool, graph_options);

  std::vector<std::unique_ptr<BkWorker>> workers(jobs.workers());
  auto worker_for = [&](std::size_t wid) -> BkWorker& {
    if (!workers[wid]) {
      workers[wid] = std::make_unique<BkWorker>(g, options.range);
    }
    return *workers[wid];
  };

  // Per-root output parked between body finish and ordered drain; the
  // bytes are tracked (MemTag::kCliqueStorage) for exactly that span.
  std::vector<std::vector<VertexId>> slots(options.deterministic ? n : 0);
  std::vector<std::size_t> slot_bytes(options.deterministic ? n : 0, 0);
  // Completion-order mode drains inside the body; the sink contract
  // ("never invoked concurrently") then needs its own serialization.
  std::mutex emit_mutex;

  for (std::size_t i = 0; i < n; ++i) {
    par::JobGraph::JobSpec spec;
    spec.home = queue_of[i];
    spec.run = [&, i](std::size_t wid) {
      const double cpu_begin = util::thread_cpu_seconds();
      BkWorker& w = worker_for(wid);
      w.buffer.clear();
      const VertexId v = deg.order[i];
      w.cand.clear_all();
      w.not_set.clear_all();
      g.neighbors(v).for_each([&](std::size_t u) {
        if (pos[u] > i) {
          w.cand.set(u);
        } else {
          w.not_set.set(u);
        }
      });
      w.search->run_root(v, w.cand, w.not_set);
      if (options.deterministic) {
        const std::size_t bytes = w.buffer.size() * sizeof(VertexId);
        slots[i] = std::move(w.buffer);
        w.buffer = {};
        slot_bytes[i] = bytes;
        tracker.allocate(bytes, util::MemTag::kCliqueStorage);
        jobs.set_bytes(static_cast<par::JobId>(i), bytes);
      } else {
        const std::lock_guard<std::mutex> lock(emit_mutex);
        drain_flat(sink, w.buffer);
      }
      w.busy_seconds += util::thread_cpu_seconds() - cpu_begin;
    };
    if (options.deterministic) {
      spec.complete = [&, i] {
        drain_flat(sink, slots[i]);
        tracker.release(slot_bytes[i], util::MemTag::kCliqueStorage);
        slots[i] = {};
        slot_bytes[i] = 0;
      };
    }
    jobs.add(std::move(spec));
  }

  try {
    jobs.run();
  } catch (...) {
    // A throwing sink cancels the run mid-drain; release the window
    // accounting of whatever never drained before propagating.
    for (std::size_t i = 0; i < slot_bytes.size(); ++i) {
      tracker.release(slot_bytes[i], util::MemTag::kCliqueStorage);
    }
    throw;
  }

  stats.steals = jobs.stats().jobs_stolen;
  stats.peak_pending_bytes = jobs.stats().peak_pending_bytes;
  for (std::size_t wid = 0; wid < workers.size(); ++wid) {
    if (!workers[wid]) continue;
    const BronKerboschStats ws = workers[wid]->search->stats();
    stats.base.maximal_cliques += ws.maximal_cliques;
    stats.base.tree_nodes += ws.tree_nodes;
    stats.base.max_depth = std::max(stats.base.max_depth, ws.max_depth);
    if (wid < stats.thread_busy_seconds.size()) {
      stats.thread_busy_seconds[wid] = workers[wid]->busy_seconds;
    }
  }
  stats.total_seconds = total_timer.seconds();

  // Fold the run's scheduling behaviour into the metrics registry so a
  // serving process exposes enumeration health without plumbing stats
  // structs through every caller.  The reorder-window high-water mark is
  // NOT mirrored here: the scheduler already publishes it on
  // gsb_sched_pending_peak_bytes, the one gauge `gsb serve --metrics`
  // and the pipeline report both read.
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    static const obs::Counter runs = registry.counter(
        "gsb_bk_runs_total", "Parallel Bron-Kerbosch enumerations.");
    static const obs::Counter steals = registry.counter(
        "gsb_bk_steals_total", "Root tasks stolen across worker threads.");
    runs.inc();
    steals.inc(stats.steals);
  }
  return stats;
}

}  // namespace gsb::core
