#ifndef GSB_CORE_PARALLEL_BK_H
#define GSB_CORE_PARALLEL_BK_H

/// \file parallel_bk.h
/// Work-stealing parallel Bron–Kerbosch over degeneracy-ordered roots.
///
/// The degeneracy variant (bron_kerbosch.h) already partitions the output:
/// vertex v_i of the degeneracy order roots an independent subtree holding
/// exactly the maximal cliques whose earliest-ordered member is v_i.  This
/// driver fans those roots out over the shared par::ThreadPool:
///
///   * per-root costs are estimated from the later-neighbor count (the
///     root's CANDIDATES size) and planned by the centralized
///     par::LoadBalancer, with roots dealt round-robin across threads so
///     completion order tracks the global root order;
///   * at runtime, a thread that drains its own queue claims unstarted
///     roots from the heaviest remaining queue through
///     core/detail/task_claims.h (§2.3's transfers to "light-loaded (or
///     idle)" threads) — dense subtrees cannot serialize the run;
///   * emission goes through a reorder buffer: each root's cliques are
///     buffered until every earlier root has been emitted, so with
///     `deterministic` (the default) the sink observes the exact sequence
///     the sequential degeneracy variant would produce, for every thread
///     count.  Pending bytes are tracked (MemTag::kCliqueStorage) and
///     held to a window (`reorder_window_bytes` plus in-flight roots) by
///     backpressure on claiming, never the full output — which is what
///     lets `gsb cliques --clique-out` spill cliques to a .gsbc stream
///     at terabyte-scale outputs.
///
/// The sink is never invoked concurrently.

#include <cstdint>
#include <vector>

#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "graph/graph_view.h"
#include "parallel/load_balancer.h"
#include "util/memory_tracker.h"

namespace gsb::core {

/// Options for the parallel run.
struct ParallelBkOptions {
  /// Emission size window (the search itself is unpruned, as in the
  /// sequential variants).
  SizeRange range{};
  /// Worker count; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Emit cliques in sequential degeneracy order regardless of thread
  /// count (reorder-buffer merge).  When false, each root's cliques are
  /// emitted as soon as the root completes — same clique *set*, lower
  /// latency, order dependent on scheduling.
  bool deterministic = true;
  /// Soft cap on reorder-buffer bytes awaiting emission (deterministic
  /// mode).  When pending output exceeds it, workers are redirected to
  /// claim the next-to-emit root (its queue head) instead of new work —
  /// or wait if that root is already running — so the merge drains
  /// instead of letting the remaining output pile up in RAM.  Peak
  /// pending can overshoot by the in-flight roots' outputs.
  /// 0 = unbounded.
  std::size_t reorder_window_bytes = 64u << 20;
  /// Scheduler policy knobs (plan-time assignment).
  par::LoadBalancerConfig balancer;
  /// Runtime stealing: idle threads claim unstarted roots from the
  /// heaviest remaining queue.  Disable to measure the static-plan-only
  /// ablation.
  bool dynamic_claiming = true;
  /// Byte accounting sink; defaults to the process-global tracker.
  util::MemoryTracker* tracker = nullptr;
};

/// Scheduling and memory metrics on top of the common statistics.
struct ParallelBkStats {
  BronKerboschStats base;
  std::size_t threads = 0;
  std::size_t degeneracy = 0;      ///< of the input graph
  std::uint64_t steals = 0;        ///< roots executed off their planned thread
  std::uint64_t transfers = 0;     ///< plan-time moves by the balancer
  double total_seconds = 0.0;
  /// busy seconds per thread (CPU time inside claimed roots).
  std::vector<double> thread_busy_seconds;
  /// High-water mark of reorder-buffer bytes awaiting emission — the
  /// quantity the bounded-output tests assert stays far below the total
  /// clique bytes.
  std::size_t peak_pending_bytes = 0;
};

/// Runs the parallel degeneracy-ordered Bron–Kerbosch.  The result clique
/// set is identical to degeneracy_bk's for every thread count; with
/// options.deterministic the emission *sequence* is identical too.
ParallelBkStats parallel_bk(const graph::GraphView& g,
                            const CliqueCallback& sink,
                            const ParallelBkOptions& options = {});

}  // namespace gsb::core

#endif  // GSB_CORE_PARALLEL_BK_H
