#ifndef GSB_CORE_PARALLEL_ENUMERATOR_H
#define GSB_CORE_PARALLEL_ENUMERATOR_H

/// \file parallel_enumerator.h
/// The multithreaded Clique Enumerator for shared-memory machines (§2.3).
///
/// Structure, per the paper:
///   * threads are synchronized level-by-level so cliques are still emitted
///     in non-decreasing order of size;
///   * each thread works on its own sub-lists ("local instance") to keep
///     memory accesses local;
///   * a centralized dynamic task scheduler collects per-thread loads after
///     every level, makes load-balancing decisions, and transfers tasks
///     from heavily to lightly loaded threads (addresses are passed, not
///     data — the sub-lists live in shared memory);
///   * the seeding phase (k-clique enumeration at Init_K) is parallelized
///     over canonical DFS roots with the same scheduler.
///
/// The result set is identical to the sequential enumerator's (the tests
/// assert set equality for every thread count).

#include "core/clique.h"
#include "core/clique_enumerator.h"
#include "core/enumeration_stats.h"
#include "graph/graph_view.h"
#include "parallel/load_balancer.h"

namespace gsb::core {

/// Options for the multithreaded run.
struct ParallelOptions {
  /// Size window (`range.lo` = Init_K).
  SizeRange range{3, 0};
  /// Worker count; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Degree preprocessing, as in the sequential options.
  bool use_kcore = true;
  /// Scheduler policy knobs (plan-time assignment).
  par::LoadBalancerConfig balancer;
  /// Runtime transfers: idle threads claim unstarted tasks from the
  /// heaviest remaining queue (§2.3's transfers to "light-loaded (or idle)"
  /// threads).  Disable to measure the static-plan-only ablation.
  bool dynamic_claiming = true;
  /// Byte accounting sink; defaults to the process-global tracker.
  util::MemoryTracker* tracker = nullptr;
  /// Record per-task costs (enables the Altix machine-model replays).
  bool record_trace = false;
  /// Invoked after each level with that level's statistics.
  std::function<void(const LevelStats&)> progress;
};

/// Per-thread / scheduling metrics on top of the common statistics.
struct ParallelEnumerationStats {
  EnumerationStats base;
  std::size_t threads = 0;
  /// busy seconds per thread for the seeding round.
  std::vector<double> seed_thread_seconds;
  /// busy seconds per thread per level: [level][thread].
  std::vector<std::vector<double>> level_thread_seconds;
  /// total busy seconds per thread (seed + levels) — Figure 8's quantity.
  std::vector<double> thread_busy_seconds;
  /// scheduler transfers summed over levels.
  std::uint64_t total_transfers = 0;
};

/// Runs the multithreaded Clique Enumerator.  Cliques are streamed to
/// \p sink from the scheduler thread between levels (the sink itself is
/// never invoked concurrently).
ParallelEnumerationStats enumerate_maximal_cliques_parallel(
    const graph::GraphView& g, const CliqueCallback& sink,
    const ParallelOptions& options = {});

}  // namespace gsb::core

#endif  // GSB_CORE_PARALLEL_ENUMERATOR_H
