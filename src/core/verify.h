#ifndef GSB_CORE_VERIFY_H
#define GSB_CORE_VERIFY_H

/// \file verify.h
/// Clique validation and a structurally independent reference enumerator.
/// Every production algorithm in this library is tested against
/// `reference_maximal_cliques`, which is written with different data
/// structures (sorted vectors, no bitmaps) precisely so that a shared bug is
/// unlikely.

#include <span>
#include <vector>

#include "core/clique.h"
#include "graph/graph.h"

namespace gsb::core {

/// True iff \p vertices are pairwise adjacent and duplicate-free.
bool is_clique(const graph::Graph& g, std::span<const VertexId> vertices);

/// True iff \p vertices form a clique that no vertex of \p g extends.
bool is_maximal_clique(const graph::Graph& g,
                       std::span<const VertexId> vertices);

/// Sorts each clique and sorts the list, for order-insensitive comparison.
std::vector<Clique> normalize(std::vector<Clique> cliques);

/// Filters to cliques whose size lies in \p range (after normalize-style
/// copying; input untouched).
std::vector<Clique> filter_by_size(const std::vector<Clique>& cliques,
                                   const SizeRange& range);

/// Independent maximal-clique enumerator (simple pivotless recursion over
/// sorted neighbor intersections).  Exponential; intended for graphs with a
/// few thousand maximal cliques at most.
std::vector<Clique> reference_maximal_cliques(const graph::Graph& g);

/// Exhaustive subset-based enumerator for tiny graphs (n <= 20): checks all
/// 2^n subsets.  The slowest and most trustworthy oracle.
std::vector<Clique> exhaustive_maximal_cliques(const graph::Graph& g);

/// All k-cliques (maximal or not) by canonical extension; reference for the
/// k-clique enumerator.
std::vector<Clique> reference_kcliques(const graph::Graph& g, std::size_t k);

}  // namespace gsb::core

#endif  // GSB_CORE_VERIFY_H
