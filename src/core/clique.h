#ifndef GSB_CORE_CLIQUE_H
#define GSB_CORE_CLIQUE_H

/// \file clique.h
/// Common vocabulary types for the clique algorithms: cliques are sorted
/// vertex vectors; enumeration results stream through sinks so that callers
/// choose between collecting, counting, and on-line processing (the paper's
/// instances produce terabyte-scale outputs, so storing every clique must be
/// the caller's explicit decision, never the algorithm's default).

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace gsb::core {

using graph::VertexId;

/// A clique as a sorted list of vertex ids.
using Clique = std::vector<VertexId>;

/// Streaming consumer of enumerated cliques.  The span is only valid for the
/// duration of the call; implementations must copy if they retain it.
using CliqueCallback = std::function<void(std::span<const VertexId>)>;

/// Collects every emitted clique (tests and small instances only).
class CliqueCollector {
 public:
  /// Adapter usable as a CliqueCallback.
  CliqueCallback callback() {
    return [this](std::span<const VertexId> clique) {
      cliques_.emplace_back(clique.begin(), clique.end());
    };
  }

  [[nodiscard]] const std::vector<Clique>& cliques() const noexcept {
    return cliques_;
  }
  [[nodiscard]] std::vector<Clique>& cliques() noexcept { return cliques_; }

 private:
  std::vector<Clique> cliques_;
};

/// Counts emitted cliques, bucketed by size.
class CliqueCounter {
 public:
  CliqueCallback callback() {
    return [this](std::span<const VertexId> clique) {
      ++total_;
      ++by_size_[clique.size()];
    };
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::map<std::size_t, std::uint64_t>& by_size()
      const noexcept {
    return by_size_;
  }
  [[nodiscard]] std::size_t max_size() const noexcept {
    return by_size_.empty() ? 0 : by_size_.rbegin()->first;
  }

 private:
  std::uint64_t total_ = 0;
  std::map<std::size_t, std::uint64_t> by_size_;
};

/// Inclusive size window for bounded enumeration.  `hi == 0` means
/// unbounded above.
struct SizeRange {
  std::size_t lo = 1;
  std::size_t hi = 0;

  [[nodiscard]] bool contains(std::size_t size) const noexcept {
    return size >= lo && (hi == 0 || size <= hi);
  }
  /// True if sizes above `size` can still fall inside the range.
  [[nodiscard]] bool open_above(std::size_t size) const noexcept {
    return hi == 0 || size < hi;
  }
};

}  // namespace gsb::core

#endif  // GSB_CORE_CLIQUE_H
