#include "core/clique_enumerator.h"

#include <algorithm>

#include "core/detail/mapped_sink.h"
#include "core/detail/sublist_kernel.h"
#include "core/kclique.h"
#include "graph/transforms.h"
#include "util/timer.h"

namespace gsb::core {

using detail::BitsetPool;
using detail::MappedSink;
using graph::VertexId;

EnumerationStats enumerate_maximal_cliques(
    const graph::GraphView& g, const CliqueCallback& sink,
    const CliqueEnumeratorOptions& options) {
  util::Timer total_timer;
  EnumerationStats stats;
  util::MemoryTracker& tracker = options.tracker != nullptr
                                     ? *options.tracker
                                     : util::global_memory_tracker();
  const SizeRange range = options.range;
  const std::size_t lo = std::max<std::size_t>(range.lo, 1);

  // Size-1 maximal cliques (isolated vertices) are only reachable here.
  if (lo == 1) {
    Clique buf(1);
    for (VertexId v = 0; v < g.order(); ++v) {
      if (g.degree(v) == 0) {
        buf[0] = v;
        ++stats.total_maximal;
        sink(buf);
      }
    }
  }
  // Window closing below the first enumerable size: only the size-1 pass
  // above (if any) applies.
  const std::size_t seed_k = std::max<std::size_t>(lo, 2);
  if (range.hi != 0 && range.hi < seed_k) {
    stats.total_seconds = total_timer.seconds();
    stats.finalize();
    return stats;
  }

  // --- degree preprocessing -------------------------------------------------
  // Vertices of a clique of size >= seed_k have >= seed_k - 1 neighbors
  // inside it, so the iterated (seed_k - 1)-core contains every such clique
  // and every witness to (non-)maximality of cliques at or above the seed.
  graph::GraphView work = g;
  graph::InducedSubgraph reduced;
  const std::vector<VertexId>* mapping = nullptr;
  if (options.use_kcore && seed_k >= 2) {
    reduced = graph::kcore_subgraph(g, seed_k - 1);
    if (reduced.graph.order() < g.order()) {
      work = graph::GraphView(reduced.graph);
      mapping = &reduced.mapping;
    }
  }

  MappedSink mapped(sink, mapping);
  const std::size_t n = work.order();

  // --- seeding ---------------------------------------------------------------
  // Seed tasks are canonical 2-prefixes (edges) for Init_K >= 3, or root
  // vertices at Init_K = 2; both cover every k-clique exactly once.
  util::Timer seed_timer;
  KCliqueStats seed_stats;
  SeedTrace* seed_trace = options.record_trace ? &stats.seed_trace : nullptr;
  const CliqueCallback seed_sink = [&](std::span<const VertexId> clique) {
    ++stats.total_maximal;
    mapped.emit(clique);
  };
  Level current;
  if (seed_k >= 3) {
    const auto pairs = collect_seed_pairs(work);
    current = build_seed_level_for_pairs(work, seed_k, pairs, seed_sink,
                                         &seed_stats, seed_trace);
  } else {
    std::vector<VertexId> roots(n);
    for (VertexId v = 0; v < n; ++v) roots[v] = v;
    current = build_seed_level_for_roots(work, seed_k, roots, seed_sink,
                                         &seed_stats, seed_trace);
  }
  stats.seed_seconds = seed_timer.seconds();
  for (const auto& sublist : current) {
    tracker.allocate(sublist.bytes(), util::MemTag::kCliqueStorage);
  }

  // --- level loop -------------------------------------------------------------
  BitsetPool pool(n);
  detail::MemoryLedger ledger(tracker);
  std::size_t k = seed_k;  // size of candidate cliques in `current`
  while (!current.empty() && range.open_above(k)) {
    util::Timer level_timer;
    LevelStats level;
    level.k = k;
    const LevelCounts counts = count_level(current);
    level.sublists = counts.sublists;
    level.candidates = counts.candidates;
    level.bytes_formula = level_bytes_formula(counts, k, n);
    level.bytes_actual = level_bytes_actual(current);

    LevelTrace trace;
    if (options.record_trace) {
      trace.k = k;
      trace.task_work.reserve(current.size());
      trace.task_seconds.reserve(current.size());
    }

    Level next;
    for (auto& sublist : current) {
      const std::uint64_t work_proxy = sublist.pair_work();
      util::Timer task_timer;
      const auto counters = detail::process_sublist(
          work, sublist,
          [&](const std::vector<VertexId>& prefix, VertexId v, VertexId u) {
            mapped.emit_parts(prefix, v, u);
          },
          next, pool, ledger);
      if (options.record_trace) {
        trace.task_work.push_back(work_proxy);
        trace.task_seconds.push_back(task_timer.seconds());
      }
      level.pairs_checked += counters.pairs_checked;
      level.edges_present += counters.edges_present;
      level.maximal_emitted += counters.maximal_emitted;
      stats.total_maximal += counters.maximal_emitted;
    }
    current = std::move(next);
    ++k;
    ledger.flush();

    level.seconds = level_timer.seconds();
    stats.levels.push_back(level);
    if (options.record_trace) stats.traces.push_back(std::move(trace));
    if (options.progress) options.progress(level);
  }

  // Window closed with candidates still alive: release their accounting.
  for (const auto& sublist : current) {
    tracker.release(sublist.bytes(), util::MemTag::kCliqueStorage);
  }

  stats.total_seconds = total_timer.seconds();
  stats.finalize();
  return stats;
}

}  // namespace gsb::core
