#ifndef GSB_CORE_KCLIQUE_H
#define GSB_CORE_KCLIQUE_H

/// \file kclique.h
/// The paper's **k-clique enumerator** (§2.2): enumerate *all* cliques of a
/// given size k — maximal and non-maximal — in non-repeating canonical
/// order, so they can seed the level-wise Clique Enumerator at a
/// user-supplied lower bound Init_K.
///
/// Following §2.2, the enumerator is a Base-BK-style depth-first canonical
/// extension with two modifications:
///   1. at depth k the clique is emitted, classified as maximal iff its
///      common-neighbor bit string is empty (one bitwise test), and the
///      branch returns;
///   2. the boundary condition: when |COMPSUB| + |CANDIDATES| < k the branch
///      cannot reach size k and returns immediately.
/// Base BK is used rather than Improved BK because, per the paper, pivot
/// pruning discards exactly the overlapping non-maximal cliques this phase
/// exists to find; and the degree-based preprocessing (drop vertices of
/// degree < k−1) replaces pivot selection as the effective reduction.

#include <cstdint>
#include <functional>
#include <memory>

#include "core/clique.h"
#include "core/enumeration_stats.h"
#include "core/sublist.h"
#include "graph/graph_view.h"

namespace gsb::core {

/// Receives every k-clique with its maximality classification.
using KCliqueCallback =
    std::function<void(std::span<const VertexId>, bool is_maximal)>;

/// Statistics from a k-clique enumeration pass.
struct KCliqueStats {
  std::uint64_t total = 0;        ///< all k-cliques found
  std::uint64_t maximal = 0;      ///< of which maximal
  std::uint64_t tree_nodes = 0;   ///< search-tree nodes visited
  std::uint64_t boundary_cuts = 0;///< branches cut by the boundary condition
};

/// Enumerates every k-clique of \p g in canonical (lexicographic) order.
/// \p k must be >= 1.
KCliqueStats enumerate_kcliques(const graph::GraphView& g, std::size_t k,
                                const KCliqueCallback& sink);

/// Counts k-cliques without materializing them.
std::uint64_t count_kcliques(const graph::GraphView& g, std::size_t k);

/// Builds the Clique Enumerator's seed level for clique size \p k (>= 2):
/// every *non-maximal* k-clique becomes a tail in the sub-list of its
/// (k-1)-prefix; sub-lists with fewer than two tails are dropped (they
/// cannot generate (k+1)-cliques in canonical order); every *maximal*
/// k-clique is streamed to \p maximal_sink.
///
/// \p stats (optional) receives the pass counters.
Level build_seed_level(const graph::GraphView& g, std::size_t k,
                       const CliqueCallback& maximal_sink,
                       KCliqueStats* stats = nullptr);

/// As build_seed_level, but restricted to the canonical DFS roots in
/// \p roots (a clique's root is its smallest vertex), and optionally
/// recording per-root costs into \p trace.  The union of the levels
/// produced for a partition of [0, n) equals the unrestricted seed level.
Level build_seed_level_for_roots(const graph::GraphView& g, std::size_t k,
                                 std::span<const VertexId> roots,
                                 const CliqueCallback& maximal_sink,
                                 KCliqueStats* stats = nullptr,
                                 SeedTrace* trace = nullptr);

/// A canonical 2-prefix (v < u, adjacent): the finer-grained seeding task
/// used for Init_K >= 3.  Splitting by edge rather than by root keeps one
/// dense region from collapsing into a single unsplittable task — the unit
/// of work the scheduler and the Altix replays balance during seeding.
struct SeedPair {
  VertexId v = 0;
  VertexId u = 0;
};

/// All canonical seed pairs of \p g in lexicographic order.
std::vector<SeedPair> collect_seed_pairs(const graph::GraphView& g);

/// Seed-level construction over an explicit set of 2-prefix tasks
/// (requires k >= 3).  The union over a partition of collect_seed_pairs(g)
/// equals build_seed_level(g, k, ...).
Level build_seed_level_for_pairs(const graph::GraphView& g, std::size_t k,
                                 std::span<const SeedPair> pairs,
                                 const CliqueCallback& maximal_sink,
                                 KCliqueStats* stats = nullptr,
                                 SeedTrace* trace = nullptr);

/// Incremental seed-level construction: one worker per thread, fed one
/// task at a time (the parallel driver's dynamic scheduler hands tasks to
/// idle workers at runtime).  Each task processed here is equivalent to the
/// corresponding batch entry of build_seed_level_for_pairs/_for_roots.
class SeedLevelWorker {
 public:
  /// \p maximal_sink must outlive the worker.
  SeedLevelWorker(const graph::GraphView& g, std::size_t k,
                  const CliqueCallback& maximal_sink);
  ~SeedLevelWorker();
  SeedLevelWorker(SeedLevelWorker&&) noexcept;
  SeedLevelWorker& operator=(SeedLevelWorker&&) = delete;

  /// Processes one canonical 2-prefix (requires k >= 3).
  void process_pair(const SeedPair& pair);
  /// Processes one canonical root (requires k >= 2).
  void process_root(VertexId root);

  [[nodiscard]] const KCliqueStats& stats() const noexcept;
  /// Extracts the sub-lists accumulated so far (call once, when done).
  Level take_level() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gsb::core

#endif  // GSB_CORE_KCLIQUE_H
