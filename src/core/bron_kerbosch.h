#ifndef GSB_CORE_BRON_KERBOSCH_H
#define GSB_CORE_BRON_KERBOSCH_H

/// \file bron_kerbosch.h
/// The recursive-backtracking maximal-clique enumerators the paper uses as
/// baselines (§2.2, [40]), plus the modern degeneracy-ordered variant that
/// serves as the scalable speed baseline:
///
///  * **Base BK** — Bron & Kerbosch's Algorithm 457, version 1: EXTEND
///    selects candidates in presentation order.
///  * **Improved BK** — version 2: the selected vertex is chosen with the
///    highest number of connections to the remaining CANDIDATES, and after
///    returning from a branch only vertices *not* adjacent to that pivot are
///    selected, which prunes re-discovery of overlapping cliques.
///  * **Degeneracy BK** — the outer loop visits vertices in degeneracy
///    order (graph::degeneracy_order); vertex v roots an independent
///    subtree whose CANDIDATES are v's later-ordered neighbors and whose
///    NOT set its earlier-ordered ones, searched with max-candidate
///    pivoting over CANDIDATES ∪ NOT.  The deepest candidate set is
///    bounded by the degeneracy, and the independent roots are exactly
///    what the parallel driver (parallel_bk.h) fans out over threads.
///
/// All variants maintain the three dynamically changing sets of the paper's
/// description — COMPSUB (the clique in progress), CANDIDATES and NOT — as
/// bitmap sets so the intersections are word-parallel.  Every variant
/// consumes a graph::GraphView, so they run identically over an in-memory
/// graph::Graph (implicit conversion) and over the bitmap section of a
/// memory-mapped .gsbg container.  None emits in the paper's non-decreasing
/// size order (that is the Clique Enumerator's job); they are the
/// correctness yardstick and the speed baseline.

#include <cstdint>

#include "core/clique.h"
#include "graph/graph_view.h"

namespace gsb::core {

/// Statistics returned by any variant.
struct BronKerboschStats {
  std::uint64_t maximal_cliques = 0;  ///< cliques emitted
  std::uint64_t tree_nodes = 0;       ///< EXTEND invocations
  std::size_t max_depth = 0;          ///< deepest COMPSUB
};

enum class BronKerboschVariant {
  kBase,       ///< version 1: candidates in presentation order
  kImproved,   ///< version 2: pivot on max-connectivity candidate
  kDegeneracy  ///< degeneracy-ordered roots + max-candidate pivoting
};

/// Enumerates all maximal cliques of \p g, streaming each to \p sink.
/// Optionally restricts emission to sizes in \p range (the search itself is
/// unpruned — BK cannot bound by size without losing maximality witnesses,
/// which is exactly the motivation for the paper's k-clique seeding).
BronKerboschStats bron_kerbosch(const graph::GraphView& g,
                                const CliqueCallback& sink,
                                BronKerboschVariant variant,
                                const SizeRange& range = {});

/// Convenience wrappers.
BronKerboschStats base_bk(const graph::GraphView& g,
                          const CliqueCallback& sink,
                          const SizeRange& range = {});
BronKerboschStats improved_bk(const graph::GraphView& g,
                              const CliqueCallback& sink,
                              const SizeRange& range = {});
BronKerboschStats degeneracy_bk(const graph::GraphView& g,
                                const CliqueCallback& sink,
                                const SizeRange& range = {});

}  // namespace gsb::core

#endif  // GSB_CORE_BRON_KERBOSCH_H
