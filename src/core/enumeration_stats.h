#ifndef GSB_CORE_ENUMERATION_STATS_H
#define GSB_CORE_ENUMERATION_STATS_H

/// \file enumeration_stats.h
/// Per-level instrumentation of the Clique Enumerator.  These records back
/// three of the paper's evaluation artifacts directly:
///   * Figure 9 (memory vs. clique size)  — bytes_formula / bytes_actual,
///   * Figure 8 (load balance)            — per-task costs,
///   * the Altix machine-model replays    — LevelTrace feeds gsb::altix.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsb::core {

/// Counters for one level (candidate cliques of size k generating size k+1).
struct LevelStats {
  std::size_t k = 0;                  ///< candidate clique size at this level
  std::uint64_t sublists = 0;         ///< N[k]
  std::uint64_t candidates = 0;       ///< M[k]
  std::uint64_t maximal_emitted = 0;  ///< maximal (k+1)-cliques found here
  std::uint64_t pairs_checked = 0;    ///< tail-pair adjacency tests
  std::uint64_t edges_present = 0;    ///< pairs that were adjacent
  std::size_t bytes_formula = 0;      ///< paper's closed-form space for level
  std::size_t bytes_actual = 0;       ///< measured container bytes for level
  double seconds = 0.0;               ///< wall time to process the level
};

/// Per-task (= per-sub-list) costs of one level, recorded when tracing is
/// enabled; the Altix simulator replays these through the scheduler.
struct LevelTrace {
  std::size_t k = 0;
  std::vector<std::uint64_t> task_work;  ///< pair_work proxy per sub-list
  std::vector<double> task_seconds;      ///< measured wall time per sub-list
};

/// Per-task costs of the k-clique seeding phase.  A seed task is one
/// canonical DFS unit — a (v, u) edge prefix for Init_K >= 3, or a root
/// vertex for Init_K = 2 — so granularity is fine enough for the scheduler
/// and the Altix replays to balance.
struct SeedTrace {
  std::vector<std::uint64_t> task_work;  ///< search-tree nodes per task
  std::vector<double> task_seconds;      ///< measured wall time per task
};

/// Whole-run summary.
struct EnumerationStats {
  std::vector<LevelStats> levels;
  std::vector<LevelTrace> traces;  ///< empty unless tracing was requested
  SeedTrace seed_trace;            ///< empty unless tracing was requested
  std::uint64_t total_maximal = 0;
  double seed_seconds = 0.0;   ///< time in the k-clique seeding phase
  double total_seconds = 0.0;  ///< seed + all levels
  std::size_t peak_bytes_formula = 0;
  std::size_t peak_bytes_actual = 0;

  /// Largest candidate level footprint (the Figure 9 peak).
  void finalize() noexcept {
    peak_bytes_formula = 0;
    peak_bytes_actual = 0;
    for (const auto& level : levels) {
      peak_bytes_formula = level.bytes_formula > peak_bytes_formula
                               ? level.bytes_formula
                               : peak_bytes_formula;
      peak_bytes_actual = level.bytes_actual > peak_bytes_actual
                              ? level.bytes_actual
                              : peak_bytes_actual;
    }
  }
};

}  // namespace gsb::core

#endif  // GSB_CORE_ENUMERATION_STATS_H
