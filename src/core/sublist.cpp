#include "core/sublist.h"

namespace gsb::core {

LevelCounts count_level(const Level& level) noexcept {
  LevelCounts counts;
  counts.sublists = level.size();
  for (const auto& sublist : level) counts.candidates += sublist.count();
  return counts;
}

std::size_t level_bytes_formula(const LevelCounts& counts, std::size_t k,
                                std::size_t n) noexcept {
  constexpr std::size_t c = sizeof(graph::VertexId);
  const std::size_t bitmap_bytes = (n + 7) / 8;
  return counts.candidates * c +
         counts.sublists * ((k - 1) * c + bitmap_bytes) +
         counts.sublists * sizeof(void*);
}

std::size_t level_bytes_actual(const Level& level) noexcept {
  std::size_t total = level.capacity() * sizeof(CliqueSublist);
  for (const auto& sublist : level) {
    total += sublist.bytes() - sizeof(CliqueSublist);
  }
  return total;
}

}  // namespace gsb::core
