#ifndef GSB_CORE_DETAIL_BK_KERNEL_H
#define GSB_CORE_DETAIL_BK_KERNEL_H

/// \file bk_kernel.h
/// The pivoted Bron–Kerbosch subtree search shared by the sequential
/// degeneracy-ordered variant (bron_kerbosch.cpp) and the work-stealing
/// parallel driver (parallel_bk.cpp).
///
/// Both slice the problem the same way: vertex v_i of a degeneracy order
/// roots one independent subproblem whose CANDIDATES are v_i's
/// later-ordered neighbors and whose NOT set is its earlier-ordered
/// neighbors, so every maximal clique is found in exactly one subtree and
/// the deepest CANDIDATES set is bounded by the degeneracy, not the
/// maximum degree.  Inside a subtree the pivot is chosen from
/// CANDIDATES ∪ NOT with the maximum number of connections into
/// CANDIDATES (max-candidate pivoting), so only non-neighbors of the
/// pivot spawn branches.
///
/// The search owns its per-depth set buffers (pooled, no allocation after
/// warm-up) and is deliberately single-threaded: the parallel driver holds
/// one instance per worker.

#include <algorithm>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "graph/graph_view.h"

namespace gsb::core::detail {

/// One root's pivoted EXTEND search.  Reusable across roots; the sink and
/// size window are fixed for the lifetime of the object.
class BkPivotSearch {
 public:
  BkPivotSearch(const graph::GraphView& g, const CliqueCallback& sink,
                const SizeRange& range)
      : g_(g), sink_(sink), range_(range) {
    compsub_.reserve(g.order());
    // Depth is bounded by the largest clique containing the root, itself
    // bounded by order; the vector must never reallocate while references
    // into it are live, so size it once up front.
    frames_.resize(g.order() + 1);
  }

  /// Enumerates every maximal clique that contains \p root, none of the
  /// vertices in \p not_set, and otherwise only vertices of \p cand.
  /// Both sets must exclude \p root.
  void run_root(VertexId root, const bits::DynamicBitset& cand,
                const bits::DynamicBitset& not_set) {
    compsub_.clear();
    compsub_.push_back(root);
    Frame& f = frame(0);
    f.cand.assign(cand);
    f.not_set.assign(not_set);
    extend(f.cand, f.not_set, 1);
  }

  [[nodiscard]] const BronKerboschStats& stats() const noexcept {
    return stats_;
  }

 private:
  struct Frame {
    bits::DynamicBitset cand;
    bits::DynamicBitset not_set;
  };

  Frame& frame(std::size_t depth) {
    Frame& f = frames_[depth];
    if (f.cand.size() != g_.order()) {
      f.cand.resize(g_.order());
      f.not_set.resize(g_.order());
    }
    return f;
  }

  void emit() {
    ++stats_.maximal_cliques;
    if (range_.contains(compsub_.size())) {
      sink_(std::span<const VertexId>(compsub_));
    }
  }

  void extend(bits::DynamicBitset& candidates, bits::DynamicBitset& not_set,
              std::size_t depth) {
    ++stats_.tree_nodes;
    stats_.max_depth = std::max(stats_.max_depth, depth);
    if (candidates.none()) {
      if (not_set.none()) emit();
      return;
    }

    // Max-candidate pivot from CANDIDATES ∪ NOT: branching is restricted
    // to candidates not adjacent to the pivot.
    std::size_t pivot = g_.order();
    std::size_t best = 0;
    const auto consider = [&](std::size_t v) {
      const std::size_t links =
          bits::DynamicBitset::count_and(candidates, g_.neighbors(
              static_cast<VertexId>(v)));
      if (pivot == g_.order() || links > best) {
        pivot = v;
        best = links;
      }
    };
    candidates.for_each(consider);
    not_set.for_each(consider);
    const bits::BitsetView pivot_row =
        g_.neighbors(static_cast<VertexId>(pivot));

    Frame& f = frame(depth);
    for (std::size_t v = candidates.find_first(); v < g_.order();
         v = candidates.find_next(v)) {
      if (v != pivot && pivot_row.test(v)) {
        continue;  // covered by the pivot's branch
      }
      candidates.reset(v);
      compsub_.push_back(static_cast<VertexId>(v));
      const bits::BitsetView nv = g_.neighbors(static_cast<VertexId>(v));
      f.cand.assign_and(candidates, nv);
      f.not_set.assign_and(not_set, nv);
      extend(f.cand, f.not_set, depth + 1);
      compsub_.pop_back();
      not_set.set(v);
    }
  }

  const graph::GraphView& g_;
  const CliqueCallback& sink_;
  SizeRange range_;
  std::vector<VertexId> compsub_;
  std::vector<Frame> frames_;
  BronKerboschStats stats_;
};

}  // namespace gsb::core::detail

#endif  // GSB_CORE_DETAIL_BK_KERNEL_H
