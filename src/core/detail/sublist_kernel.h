#ifndef GSB_CORE_DETAIL_SUBLIST_KERNEL_H
#define GSB_CORE_DETAIL_SUBLIST_KERNEL_H

/// \file sublist_kernel.h
/// The inner loop of the Clique Enumerator (§2.3, Figure 3), shared by the
/// sequential and the multithreaded drivers.  Processing one sub-list is an
/// independent unit of work: it reads only the immutable graph and its own
/// sub-list, and appends to a caller-supplied output level — which is what
/// makes the algorithm "parallel because the generation of (k+1)-cliques
/// from one k-clique sub-list is independent of any other k-clique
/// sub-lists".

#include <cstdint>
#include <utility>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "core/sublist.h"
#include "graph/graph_view.h"
#include "util/memory_tracker.h"

namespace gsb::core::detail {

/// Recycles common-neighbor bit strings between levels; every bitset in the
/// pool spans the same vertex universe.
class BitsetPool {
 public:
  explicit BitsetPool(std::size_t nbits) : nbits_(nbits) {}

  bits::DynamicBitset acquire() {
    if (free_.empty()) return bits::DynamicBitset(nbits_);
    bits::DynamicBitset out = std::move(free_.back());
    free_.pop_back();
    return out;
  }

  void release(bits::DynamicBitset&& bitset) {
    if (bitset.size() == nbits_) free_.push_back(std::move(bitset));
  }

  [[nodiscard]] std::size_t size() const noexcept { return free_.size(); }

 private:
  std::size_t nbits_;
  std::vector<bits::DynamicBitset> free_;
};

/// Counters produced by one sub-list expansion.
struct KernelCounters {
  std::uint64_t pairs_checked = 0;
  std::uint64_t edges_present = 0;
  std::uint64_t maximal_emitted = 0;
};

/// Batches clique-storage byte accounting so the hot path touches no
/// shared atomics (a contended tracker measurably slowed multithreaded
/// enumeration).  Deltas are flushed to the tracker per level / per round;
/// the destructor flushes any remainder.
class MemoryLedger {
 public:
  explicit MemoryLedger(util::MemoryTracker& tracker) noexcept
      : tracker_(tracker) {}
  MemoryLedger(const MemoryLedger&) = delete;
  MemoryLedger& operator=(const MemoryLedger&) = delete;
  ~MemoryLedger() { flush(); }

  void allocate(std::size_t bytes) noexcept { allocated_ += bytes; }
  void release(std::size_t bytes) noexcept { released_ += bytes; }

  void flush() noexcept {
    if (allocated_ != 0) {
      tracker_.allocate(allocated_, util::MemTag::kCliqueStorage);
      allocated_ = 0;
    }
    if (released_ != 0) {
      tracker_.release(released_, util::MemTag::kCliqueStorage);
      released_ = 0;
    }
  }

 private:
  util::MemoryTracker& tracker_;
  std::size_t allocated_ = 0;
  std::size_t released_ = 0;
};

/// Expands one candidate k-clique sub-list into maximal (k+1)-cliques and
/// candidate (k+1)-clique sub-lists (appended to \p next).
///
/// \p emit_maximal is called as emit_maximal(prefix, v, u) for each maximal
/// (k+1)-clique prefix ∪ {v, u}; the callee owns assembling/translating the
/// clique.  The sub-list's own storage is released into \p pool / freed
/// afterwards ("each k-clique sub-list is deleted after its (k+1)-cliques
/// are generated"), with byte accounting against \p ledger.
template <typename EmitFn>
KernelCounters process_sublist(const graph::GraphView& g,
                               CliqueSublist& sublist, EmitFn&& emit_maximal,
                               Level& next, BitsetPool& pool,
                               MemoryLedger& ledger) {
  using bits::DynamicBitset;
  KernelCounters counters;
  const std::size_t released_bytes = sublist.bytes();
  const auto tail_count = sublist.tails.size();

  for (std::size_t i = 0; i + 1 < tail_count; ++i) {
    const graph::VertexId v = sublist.tails[i];
    const bits::BitsetView nv = g.neighbors(v);

    // Common neighbors of (prefix + v): one bitwise AND, per the paper's
    // incremental scheme — CommonNeighbors[S_{k+1}] =
    // BitAND(CommonNeighbors[S_k], Neighbors(v)).
    DynamicBitset child_common = pool.acquire();
    child_common.assign_and(sublist.common, nv);

    CliqueSublist child;
    for (std::size_t j = i + 1; j < tail_count; ++j) {
      const graph::VertexId u = sublist.tails[j];
      ++counters.pairs_checked;
      if (!nv.test(u)) continue;  // (v, u) not an edge
      ++counters.edges_present;
      // Maximality: BitOneExists(BitAND(child_common, Neighbors(u))),
      // evaluated without materializing the intersection.
      if (DynamicBitset::intersects(child_common, g.neighbors(u))) {
        child.tails.push_back(u);  // candidate (k+1)-clique
      } else {
        ++counters.maximal_emitted;
        emit_maximal(sublist.prefix, v, u);
      }
    }

    // Keep the child sub-list only when it holds at least two candidate
    // cliques; smaller sub-lists cannot generate further cliques in
    // canonical order.
    if (child.tails.size() > 1) {
      child.prefix.reserve(sublist.prefix.size() + 1);
      child.prefix = sublist.prefix;
      child.prefix.push_back(v);
      child.common = std::move(child_common);
      ledger.allocate(child.bytes());
      next.push_back(std::move(child));
    } else {
      pool.release(std::move(child_common));
    }
  }

  // Retire the processed sub-list; its bitmap is recycled.
  pool.release(std::move(sublist.common));
  sublist = CliqueSublist{};
  ledger.release(released_bytes);
  return counters;
}

}  // namespace gsb::core::detail

#endif  // GSB_CORE_DETAIL_SUBLIST_KERNEL_H
