#ifndef GSB_CORE_DETAIL_MAPPED_SINK_H
#define GSB_CORE_DETAIL_MAPPED_SINK_H

/// \file mapped_sink.h
/// Shared emission helper: translates vertex ids of the (k-core reduced)
/// working graph back to the caller's namespace before forwarding cliques
/// to the user sink.

#include <span>
#include <vector>

#include "core/clique.h"
#include "graph/graph.h"

namespace gsb::core::detail {

/// Forwards cliques to a sink, optionally translating through an ascending
/// id mapping (new id -> original id), which preserves sortedness.
class MappedSink {
 public:
  MappedSink(const CliqueCallback& sink,
             const std::vector<graph::VertexId>* mapping)
      : sink_(sink), mapping_(mapping) {}

  void emit(std::span<const graph::VertexId> clique) {
    if (mapping_ == nullptr) {
      sink_(clique);
      return;
    }
    buf_.clear();
    for (graph::VertexId v : clique) buf_.push_back((*mapping_)[v]);
    sink_(buf_);
  }

  /// Assembles prefix + v + u (ascending by construction) and emits.
  void emit_parts(const std::vector<graph::VertexId>& prefix,
                  graph::VertexId v, graph::VertexId u) {
    parts_.clear();
    parts_.insert(parts_.end(), prefix.begin(), prefix.end());
    parts_.push_back(v);
    parts_.push_back(u);
    emit(parts_);
  }

 private:
  const CliqueCallback& sink_;
  const std::vector<graph::VertexId>* mapping_;
  std::vector<graph::VertexId> buf_;
  std::vector<graph::VertexId> parts_;
};

}  // namespace gsb::core::detail

#endif  // GSB_CORE_DETAIL_MAPPED_SINK_H
