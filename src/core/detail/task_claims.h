#ifndef GSB_CORE_DETAIL_TASK_CLAIMS_H
#define GSB_CORE_DETAIL_TASK_CLAIMS_H

/// \file task_claims.h
/// Runtime task claiming for the bulk-synchronous rounds.
///
/// The scheduler's per-level assignment is a *plan* built from cost
/// estimates; actual task costs (especially seeding DFS tasks over dense
/// regions) can deviate by orders of magnitude.  Per §2.3, the centralized
/// scheduler "transfer[s] some work from heavy loaded threads to
/// light-loaded (or idle) ones": here a thread that drains its own queue
/// claims the next unstarted task from the queue with the most work left.
/// Claims go through one atomic cursor per queue, so every task executes
/// exactly once and no locks sit on the hot path.

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/load_balancer.h"

namespace gsb::core::detail {

/// Exactly-once task dispenser over a per-thread assignment.
class TaskClaims {
 public:
  explicit TaskClaims(const par::Assignment& assignment,
                      bool allow_steal = true)
      : assignment_(assignment),
        cursors_(assignment.tasks.size()),
        steals_(0),
        allow_steal_(allow_steal) {
    for (auto& cursor : cursors_) cursor.store(0, std::memory_order_relaxed);
  }

  /// Next task index for \p tid: its own queue first, then the victim with
  /// the most unclaimed tasks.  Returns -1 when every task is claimed.
  std::int64_t next(std::size_t tid) noexcept {
    if (const std::int64_t own = claim(tid); own >= 0) return own;
    if (!allow_steal_) return -1;
    while (true) {
      std::size_t victim = cursors_.size();
      std::size_t best_remaining = 0;
      for (std::size_t t = 0; t < cursors_.size(); ++t) {
        if (t == tid) continue;
        const std::size_t size = assignment_.tasks[t].size();
        const std::size_t cursor =
            cursors_[t].load(std::memory_order_relaxed);
        const std::size_t remaining = cursor < size ? size - cursor : 0;
        if (remaining > best_remaining) {
          best_remaining = remaining;
          victim = t;
        }
      }
      if (victim == cursors_.size()) return -1;
      if (const std::int64_t stolen = claim(victim); stolen >= 0) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return stolen;
      }
      // Lost the race for that victim's last tasks; rescan.
    }
  }

  /// Claims the next unstarted task of a specific \p queue on behalf of
  /// thread \p tid (or -1 when the queue is drained).  Lets a consumer
  /// pull a known task range forward — the parallel-BK reorder window
  /// uses it to drain the next-to-emit root's queue under backpressure
  /// instead of claiming arbitrary work.  Cross-queue pulls are ordinary
  /// steals: they are refused when stealing is disabled and counted in
  /// steals() otherwise, so the static-plan ablation and the transfer
  /// metric stay honest.
  std::int64_t claim_from(std::size_t queue, std::size_t tid) noexcept {
    if (queue != tid && !allow_steal_) return -1;
    const std::int64_t task = claim(queue);
    if (task >= 0 && queue != tid) {
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Number of tasks executed away from their planned thread.
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t claim(std::size_t queue) noexcept {
    const auto& tasks = assignment_.tasks[queue];
    const std::size_t index =
        cursors_[queue].fetch_add(1, std::memory_order_relaxed);
    if (index < tasks.size()) return tasks[index];
    return -1;
  }

  const par::Assignment& assignment_;
  std::vector<std::atomic<std::size_t>> cursors_;
  std::atomic<std::uint64_t> steals_;
  bool allow_steal_;
};

}  // namespace gsb::core::detail

#endif  // GSB_CORE_DETAIL_TASK_CLAIMS_H
