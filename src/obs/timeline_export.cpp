#include "obs/timeline_export.h"

#include "obs/exposition.h"
#include "util/io.h"

namespace gsb::obs {

std::string render_chrome_trace(const TimelineSnapshot& snapshot) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&out, &first] {
    if (!first) out += ',';
    first = false;
  };
  // thread_name metadata first, so viewers label lanes before any event
  // references them.
  for (const TimelineLane& lane : snapshot.lanes) {
    if (lane.name.empty()) continue;
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane.tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(lane.name) + "\"}}";
  }
  for (const TimelineEvent& e : snapshot.events) {
    comma();
    const char* kind = timeline_event_kind_name(e.kind);
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.start_micros) +
           ",\"dur\":" + std::to_string(e.dur_micros) + ",\"cat\":\"" +
           kind + "\",\"name\":\"" +
           json_escape(e.label[0] != '\0' ? std::string(e.label)
                                          : std::string(kind)) +
           "\",\"args\":{\"id\":" + std::to_string(e.id) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" +
         std::to_string(snapshot.dropped) + "}}";
  return out;
}

void write_chrome_trace(const TimelineJournal& journal,
                        const std::string& path) {
  const std::string text = render_chrome_trace(journal.snapshot());
  util::io::FileWriter writer(path);
  writer.write(text.data(), text.size());
  writer.write("\n", 1);
  writer.commit();
}

}  // namespace gsb::obs
