#include "obs/timeline.h"

#include <algorithm>
#include <chrono>

namespace gsb::obs {

namespace {

std::uint64_t next_journal_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point journal_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Thread-local cache mapping journal id -> lane, same shape as the
/// metrics shard cache: dropping an entry only means the thread
/// registers a fresh lane on next use, and matching on the
/// process-unique id keeps a recycled allocation from aliasing a dead
/// journal's entry.
struct TlLaneCache {
  struct Entry {
    std::uint64_t journal_id;
    void* lane;
  };
  std::vector<Entry> entries;

  void* find(std::uint64_t journal_id) const noexcept {
    for (const Entry& e : entries) {
      if (e.journal_id == journal_id) return e.lane;
    }
    return nullptr;
  }
  void remember(std::uint64_t journal_id, void* lane) {
    if (entries.size() >= 64) entries.erase(entries.begin());
    entries.push_back({journal_id, lane});
  }
};

TlLaneCache& tl_lane_cache() {
  thread_local TlLaneCache cache;
  return cache;
}

}  // namespace

const char* timeline_event_kind_name(TimelineEventKind kind) noexcept {
  switch (kind) {
    case TimelineEventKind::kJob: return "job";
    case TimelineEventKind::kQueueWait: return "queue_wait";
    case TimelineEventKind::kSteal: return "steal";
    case TimelineEventKind::kStage: return "stage";
    case TimelineEventKind::kRequest: return "request";
    case TimelineEventKind::kIo: return "io";
    case TimelineEventKind::kCacheHit: return "cache_hit";
    case TimelineEventKind::kCacheMiss: return "cache_miss";
  }
  return "unknown";
}

/// One thread's buffer.  `head` counts published events and is the only
/// cross-thread handoff: the owning thread fills events[head] then
/// store-releases head+1, so a snapshot that load-acquires head may copy
/// the prefix without racing the writer.  `generation` ties the buffer
/// to a capture window; a lane whose generation lags the journal's is
/// logically empty and resets itself on the owner's next record.
struct TimelineJournal::Lane {
  explicit Lane(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in), events(capacity) {}

  const std::uint32_t tid;
  std::vector<TimelineEvent> events;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> dropped{0};
  std::string name;  ///< guarded by the journal mutex
};

TimelineJournal::TimelineJournal() : id_(next_journal_id()) {
  (void)journal_epoch();  // pin the epoch before the first record
}

TimelineJournal::~TimelineJournal() = default;

TimelineJournal& TimelineJournal::global() {
  static TimelineJournal* journal = new TimelineJournal();
  return *journal;
}

std::uint64_t TimelineJournal::now_micros() const noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - journal_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
}

TimelineJournal::Lane& TimelineJournal::local_lane() {
  TlLaneCache& cache = tl_lane_cache();
  if (void* hit = cache.find(id_)) return *static_cast<Lane*>(hit);
  Lane* lane = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto tid = static_cast<std::uint32_t>(lanes_.size());
    lanes_.push_back(std::make_unique<Lane>(
        tid, capacity_.load(std::memory_order_relaxed)));
    lane = lanes_.back().get();
  }
  cache.remember(id_, lane);
  return *lane;
}

void TimelineJournal::set_thread_lane(std::string_view name) {
  Lane& lane = local_lane();
  const std::lock_guard<std::mutex> lock(mutex_);
  lane.name.assign(name);
}

void TimelineJournal::record(TimelineEventKind kind,
                             std::uint64_t start_micros,
                             std::uint64_t dur_micros, std::uint64_t id,
                             std::string_view label) noexcept {
  if (!enabled()) return;
  Lane& lane = local_lane();
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  std::uint64_t head = lane.head.load(std::memory_order_relaxed);
  if (lane.generation.load(std::memory_order_relaxed) != generation) {
    // New capture window: restart this lane.  Publish the zeroed head
    // before the generation so a reader that sees the new generation
    // never pairs it with the old head.
    head = 0;
    lane.head.store(0, std::memory_order_release);
    lane.generation.store(generation, std::memory_order_release);
  }
  if (head >= lane.events.size()) {
    lane.dropped.fetch_add(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TimelineEvent& e = lane.events[head];
  e.start_micros = start_micros;
  e.dur_micros = dur_micros;
  e.id = id;
  e.tid = lane.tid;
  e.kind = kind;
  const std::size_t n =
      std::min(label.size(), std::size_t{TimelineEvent::kLabelChars});
  std::memcpy(e.label, label.data(), n);
  e.label[n] = '\0';
  lane.head.store(head + 1, std::memory_order_release);
}

TimelineSnapshot TimelineJournal::snapshot() const {
  TimelineSnapshot out;
  out.dropped = dropped_.load(std::memory_order_relaxed);
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& lane : lanes_) {
      if (lane->generation.load(std::memory_order_acquire) != generation) {
        continue;  // nothing recorded this window
      }
      const std::uint64_t head = lane->head.load(std::memory_order_acquire);
      if (head == 0) continue;
      out.events.insert(out.events.end(), lane->events.begin(),
                        lane->events.begin() +
                            static_cast<std::ptrdiff_t>(head));
      out.lanes.push_back({lane->tid, lane->name});
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.start_micros < b.start_micros;
                   });
  return out;
}

void TimelineJournal::reset() noexcept {
  // Lanes reset lazily when their owner observes the new generation, so
  // a recorder racing this call at worst contributes one event carrying
  // the old generation — which the next snapshot ignores.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  dropped_.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& lane : lanes_) {
    lane->dropped.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gsb::obs
