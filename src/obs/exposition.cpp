#include "obs/exposition.h"

#include <cstdio>

namespace gsb::obs {

namespace {

const char* type_keyword(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Prometheus label *values* need \\, \" and \n escaped.
void append_label_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void append_series_line(std::string& out, const std::string& name,
                        const std::string& suffix, const std::string& labels,
                        const std::string& extra_label,
                        std::uint64_t value) {
  out += name;
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void append_json_series(std::string& out, const MetricSnapshot& m,
                        bool& first) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"";
  out += json_escape(m.name);
  out += "\"";
  if (!m.labels.empty()) {
    out += ",\"labels\":\"";
    out += json_escape(m.labels);
    out += "\"";
  }
  if (m.type == MetricType::kHistogram) {
    out += ",\"count\":";
    out += std::to_string(m.histogram.count);
    out += ",\"sum_micros\":";
    out += std::to_string(m.histogram.sum_micros);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < m.histogram.buckets.size(); ++b) {
      if (b != 0) out += ',';
      out += std::to_string(m.histogram.buckets[b]);
    }
    out += "]}";
  } else {
    out += ",\"value\":";
    out += std::to_string(m.value);
    out += '}';
  }
}

}  // namespace

std::string render_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.metrics.size() * 64);
  // HELP/TYPE are emitted once per family, on first encounter; later
  // same-name series (other label sets) join the family silently.
  std::vector<std::string> seen;
  for (const MetricSnapshot& m : snapshot.metrics) {
    bool announced = false;
    for (const std::string& s : seen) {
      if (s == m.name) {
        announced = true;
        break;
      }
    }
    if (!announced) {
      seen.push_back(m.name);
      if (!m.help.empty()) {
        out += "# HELP ";
        out += m.name;
        out += ' ';
        out += m.help;
        out += '\n';
      }
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += type_keyword(m.type);
      out += '\n';
    }
    if (m.type == MetricType::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        cumulative += m.histogram.buckets[b];
        append_series_line(
            out, m.name, "_bucket", m.labels,
            "le=\"" + std::to_string(histogram_bucket_bound(b)) + "\"",
            cumulative);
      }
      cumulative += m.histogram.buckets[kHistogramBuckets];
      append_series_line(out, m.name, "_bucket", m.labels, "le=\"+Inf\"",
                         cumulative);
      append_series_line(out, m.name, "_sum", m.labels, {},
                         m.histogram.sum_micros);
      append_series_line(out, m.name, "_count", m.labels, {},
                         m.histogram.count);
    } else {
      append_series_line(out, m.name, "", m.labels, {}, m.value);
    }
  }
  return out;
}

std::string render_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.type == MetricType::kCounter) append_json_series(out, m, first);
  }
  out += "],\"gauges\":[";
  first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.type == MetricType::kGauge) append_json_series(out, m, first);
  }
  out += "],\"histograms\":[";
  first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.type == MetricType::kHistogram) append_json_series(out, m, first);
  }
  out += "]}";
  return out;
}

std::string render_traces_json(const std::vector<Trace>& traces) {
  std::string out = "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const Trace& t = traces[i];
    if (i != 0) out += ',';
    out += "{\"total_micros\":";
    out += std::to_string(t.total_micros);
    out += ",\"transport\":\"";
    out += json_escape(t.transport);
    out += "\",\"request\":\"";
    out += json_escape(t.request);
    out += "\",\"spans\":{";
    bool first = true;
    for (std::size_t s = 0; s < kNumSpans; ++s) {
      if (t.span_micros[s] == 0) continue;
      if (!first) out += ',';
      first = false;
      out += '"';
      out += span_name(static_cast<Span>(s));
      out += "\":";
      out += std::to_string(t.span_micros[s]);
    }
    out += "}}";
  }
  out += ']';
  return out;
}

std::string escape_multiline(const std::string& text) {
  std::string out;
  out.reserve(text.size() + text.size() / 8);
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_multiline(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char next = text[i + 1];
      if (next == '\\') {
        out += '\\';
        ++i;
        continue;
      }
      if (next == 'n') {
        out += '\n';
        ++i;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace gsb::obs
