#ifndef GSB_OBS_EXPOSITION_H
#define GSB_OBS_EXPOSITION_H

/// Rendering the metrics registry and trace buffer for scraping.
///
/// Two formats: Prometheus text exposition (HELP/TYPE comments, families
/// grouped, cumulative `_bucket{le=...}` histograms ending in `+Inf`)
/// and a compact single-line JSON document.  Because the service wire
/// protocols are newline-delimited — and binary response payloads are by
/// contract the exact line-protocol bytes — multi-line Prometheus text
/// travels escaped on one line (`escape_multiline`); `gsb query`
/// reverses it for display.

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gsb::obs {

/// Prometheus text exposition format (multi-line, trailing newline).
std::string render_prometheus(const RegistrySnapshot& snapshot);

/// Single-line JSON: {"counters":[...],"gauges":[...],"histograms":[...]}.
/// Histogram buckets are per-bucket counts (not cumulative), overflow
/// last; the bound scheme is log2 microseconds (see metrics.h).
std::string render_json(const RegistrySnapshot& snapshot);

/// Single-line JSON array of the retained traces, slowest first.
std::string render_traces_json(const std::vector<Trace>& traces);

/// Reversible one-line framing: `\` -> `\\`, newline -> `\n`.
std::string escape_multiline(const std::string& text);
std::string unescape_multiline(const std::string& text);

/// JSON string body escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text);

}  // namespace gsb::obs

#endif  // GSB_OBS_EXPOSITION_H
