#include "obs/trace.h"

#include <algorithm>

#include "util/log.h"

namespace gsb::obs {

namespace {

thread_local Trace* tl_active_trace = nullptr;

bool slower(const Trace& a, const Trace& b) {
  return a.total_micros > b.total_micros;
}

}  // namespace

const char* span_name(Span span) noexcept {
  switch (span) {
    case Span::kQueueWait:
      return "queue_wait";
    case Span::kParse:
      return "parse";
    case Span::kCacheLookup:
      return "cache_lookup";
    case Span::kExecute:
      return "execute";
    case Span::kSerialize:
      return "serialize";
    case Span::kSocketWrite:
      return "socket_write";
    case Span::kNumSpans:
      break;
  }
  return "unknown";
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(capacity, 1);
  while (heap_.size() > capacity_) {
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.pop_back();
  }
}

void Tracer::complete(Trace trace) {
  const std::uint64_t slow_at =
      slow_log_micros_.load(std::memory_order_relaxed);
  if (slow_at != 0 && trace.total_micros >= slow_at) {
    slow_logged_.fetch_add(1, std::memory_order_relaxed);
    std::string line = "slow query (";
    line += std::to_string(trace.total_micros);
    line += "us, ";
    line += trace.transport;
    line += ") \"";
    line += trace.request;
    line += "\"";
    for (std::size_t i = 0; i < kNumSpans; ++i) {
      if (trace.span_micros[i] == 0) continue;
      line += ' ';
      line += span_name(static_cast<Span>(i));
      line += '=';
      line += std::to_string(trace.span_micros[i]);
      line += "us";
    }
    util::log_warn(line);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(trace));
    std::push_heap(heap_.begin(), heap_.end(), slower);
    return;
  }
  // Full: replace the fastest retained trace if this one is slower.
  if (trace.total_micros <= heap_.front().total_micros) return;
  std::pop_heap(heap_.begin(), heap_.end(), slower);
  heap_.back() = std::move(trace);
  std::push_heap(heap_.begin(), heap_.end(), slower);
}

std::vector<Trace> Tracer::slowest() const {
  std::vector<Trace> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(), slower);
  return out;
}

std::size_t Tracer::retained() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  heap_.clear();
  slow_logged_.store(0, std::memory_order_relaxed);
}

Trace* active_trace() noexcept { return tl_active_trace; }

TraceScope::TraceScope(Tracer& tracer, const char* transport,
                       const std::string& request) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  active_ = true;
  trace_.transport = transport;
  trace_.request = request.substr(0, Trace::kMaxRequestChars);
  previous_ = tl_active_trace;
  tl_active_trace = &trace_;
  timer_.reset();
}

TraceScope::~TraceScope() {
  if (!active_) return;
  tl_active_trace = previous_;
  trace_.total_micros =
      pre_micros_ + static_cast<std::uint64_t>(timer_.micros());
  tracer_->complete(std::move(trace_));
}

void TraceScope::add_pre_span(Span span, std::uint64_t micros) noexcept {
  if (!active_) return;
  trace_.span_micros[static_cast<std::size_t>(span)] += micros;
  pre_micros_ += micros;
}

}  // namespace gsb::obs
