#ifndef GSB_OBS_TIMELINE_EXPORT_H
#define GSB_OBS_TIMELINE_EXPORT_H

/// Chrome trace-event rendering for the timeline journal.
///
/// Emits the JSON object form of the trace-event format: every journal
/// entry becomes a `ph:"X"` complete event (ts/dur in microseconds) on
/// one pid with one tid lane per recording thread, plus `ph:"M"`
/// thread_name metadata for named lanes.  The document is a single line
/// with no embedded newlines, so it doubles as the `profile stop`
/// control-response payload on the newline-delimited wire protocols.
/// Load the file directly in Perfetto (ui.perfetto.dev) or
/// chrome://tracing.

#include <string>

#include "obs/timeline.h"

namespace gsb::obs {

/// `{"traceEvents":[...],"displayTimeUnit":"ms"}` — one line, no
/// trailing newline.  Events keep their snapshot (start-time) order.
std::string render_chrome_trace(const TimelineSnapshot& snapshot);

/// Renders the journal's current capture window and writes it to
/// `path` (crash-safe tmp+rename).  Throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const TimelineJournal& journal,
                        const std::string& path);

}  // namespace gsb::obs

#endif  // GSB_OBS_TIMELINE_EXPORT_H
