#ifndef GSB_OBS_METRICS_H
#define GSB_OBS_METRICS_H

/// Process-wide metrics registry: named counters, settable gauges, and
/// log2-bucketed latency histograms.
///
/// Hot-path increments must stay uncontended: every registering thread
/// gets its own fixed-size shard of relaxed atomics, and a scrape merges
/// the shards.  Shards are owned by the registry and are never freed
/// while it lives, so counts contributed by retired threads persist and
/// merged totals are exact.  The whole subsystem sits behind a single
/// `enabled` flag — when it is off (the default) an increment is one
/// relaxed atomic load and a branch, so instrumented code paths cost
/// nothing measurable in unobserved runs.
///
/// Gauges come in two flavours: settable gauges (registry-level atomics
/// with `set`/`set_max`) and collector callbacks sampled at scrape time
/// for values that live elsewhere (MemoryTracker tags, cache sizes,
/// process RSS).

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gsb::obs {

class MetricsRegistry;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Histogram buckets are powers of two in microseconds: the i-th finite
/// bucket has upper bound 2^i us (1us .. ~134s), plus an +Inf overflow
/// bucket.  `observe(v)` lands in the first bucket whose bound >= v.
inline constexpr std::size_t kHistogramBuckets = 28;

/// Upper bound of finite bucket `i` in microseconds (2^i).
constexpr std::uint64_t histogram_bucket_bound(std::size_t i) {
  return std::uint64_t{1} << i;
}

struct HistogramSnapshot {
  /// Per-bucket (non-cumulative) counts; index kHistogramBuckets is +Inf.
  std::array<std::uint64_t, kHistogramBuckets + 1> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_micros = 0;
};

/// Interpolated quantile in microseconds from a log2-bucketed snapshot
/// (`q` in [0, 1]).  Walks the cumulative counts to the target rank and
/// interpolates linearly inside the covering bucket, so a p50/p99 read
/// off 28 coarse buckets is still monotone and bounded by the bucket
/// edges.  Returns 0 for an empty histogram; ranks landing in the +Inf
/// bucket clamp to twice the last finite bound.
std::uint64_t histogram_quantile_micros(const HistogramSnapshot& h, double q);

struct MetricSnapshot {
  std::string name;
  std::string help;
  /// Pre-rendered label body without braces, e.g. `type="neighbors"`;
  /// empty for unlabelled metrics.
  std::string labels;
  MetricType type = MetricType::kCounter;
  std::uint64_t value = 0;  ///< counters and gauges
  HistogramSnapshot histogram;
};

struct RegistrySnapshot {
  /// Registration order; same-name series are adjacent after rendering
  /// groups them into one family.
  std::vector<MetricSnapshot> metrics;
};

/// Cheap copyable handle; default-constructed handles are inert no-ops.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t value) const noexcept;
  /// Monotone high-water update (used for peak-bytes style gauges).
  void set_max(std::uint64_t value) const noexcept;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe_micros(std::uint64_t micros) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

class MetricsRegistry {
 public:
  /// Fixed shard capacities; registration beyond a cap throws.  The
  /// catalog is code-controlled, so hitting a cap is a programming error.
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 48;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumented layer reports to.  The
  /// first call also installs the default process collectors (uptime,
  /// RSS, MemoryTracker tags, tracer activity).
  static MetricsRegistry& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Register (or look up) a series.  Re-registering the same
  /// name+labels returns a handle to the same cells; re-registering with
  /// a different type throws.
  Counter counter(std::string name, std::string help, std::string labels = {});
  Gauge gauge(std::string name, std::string help, std::string labels = {});
  Histogram histogram(std::string name, std::string help,
                      std::string labels = {});

  /// Collectors run at scrape time and may append sampled metrics to the
  /// snapshot.  `remove_collector` makes short-lived owners (e.g. a
  /// ResultCache) safe to destroy.
  using Collector = std::function<void(RegistrySnapshot&)>;
  std::size_t add_collector(Collector collector);
  void remove_collector(std::size_t id);

  RegistrySnapshot scrape() const;

  /// Zero every counter, gauge and histogram cell (tests).
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  // 28 finite buckets + overflow + sum + count cells per histogram.
  static constexpr std::size_t kHistogramCells = kHistogramBuckets + 3;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms * kHistogramCells>
        histograms{};
  };

  struct Series {
    std::string name;
    std::string help;
    std::string labels;
    MetricType type;
    std::uint32_t index;  ///< slot within its type's cell space
  };

  Shard& local_shard();
  void add_counter(std::uint32_t index, std::uint64_t n) noexcept;
  void observe(std::uint32_t index, std::uint64_t micros) noexcept;
  std::uint32_t register_series(MetricType type, std::string name,
                                std::string help, std::string labels);

  const std::uint64_t id_;  ///< process-unique, never reused
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  std::vector<Series> series_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges_{};
  std::uint32_t counters_used_ = 0;
  std::uint32_t gauges_used_ = 0;
  std::uint32_t histograms_used_ = 0;
  std::vector<std::pair<std::size_t, Collector>> collectors_;
  std::size_t next_collector_id_ = 0;
};

/// Seconds since the process anchor.  `anchor_process_start()` pins the
/// anchor; `main()` calls it first thing so serve-loop uptime matches
/// process uptime (otherwise the anchor is the first observability call).
void anchor_process_start() noexcept;
std::uint64_t process_uptime_seconds() noexcept;

}  // namespace gsb::obs

#endif  // GSB_OBS_METRICS_H
