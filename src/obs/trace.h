#ifndef GSB_OBS_TRACE_H
#define GSB_OBS_TRACE_H

/// Lightweight per-request tracing for the serving layer.
///
/// A transport opens a `TraceScope` around a request; inner layers (the
/// batch executor, the query engine) attribute time to spans through the
/// thread-local active trace without any signature changes.  Completed
/// traces go to the `Tracer`, which retains the slowest-N in a bounded
/// buffer and optionally logs a span breakdown for requests over the
/// `--slow-query-log` threshold.  When the tracer is disabled (the
/// default) a TraceScope is a branch and a SpanTimer is a thread-local
/// load — instrumented paths cost nothing in untraced runs.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace gsb::obs {

enum class Span : unsigned {
  kQueueWait = 0,  ///< admission to worker pickup (TCP dispatch queue)
  kParse,          ///< query text -> typed Query
  kCacheLookup,    ///< result-cache probe (and insert on miss)
  kExecute,        ///< engine execution
  kSerialize,      ///< response framing
  kSocketWrite,    ///< blocking socket write (Unix transport)
  kNumSpans
};
inline constexpr std::size_t kNumSpans =
    static_cast<std::size_t>(Span::kNumSpans);

const char* span_name(Span span) noexcept;

struct Trace {
  std::string request;  ///< truncated to kMaxRequestChars
  const char* transport = "";
  std::array<std::uint64_t, kNumSpans> span_micros{};
  std::uint64_t total_micros = 0;

  static constexpr std::size_t kMaxRequestChars = 160;
};

class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Requests at or above this total are logged with a span breakdown
  /// through util::log_warn; 0 disables slow logging.
  void set_slow_log_micros(std::uint64_t micros) noexcept {
    slow_log_micros_.store(micros, std::memory_order_relaxed);
  }

  /// Maximum number of slowest traces retained (default 32).
  void set_capacity(std::size_t capacity);

  void complete(Trace trace);

  /// Retained traces, slowest first.
  std::vector<Trace> slowest() const;

  std::uint64_t slow_logged() const noexcept {
    return slow_logged_.load(std::memory_order_relaxed);
  }
  std::size_t retained() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Trace> heap_;  ///< min-heap on total_micros
  std::size_t capacity_ = 32;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> slow_log_micros_{0};
  std::atomic<std::uint64_t> slow_logged_{0};
};

/// The trace the current thread is filling in, or nullptr.
Trace* active_trace() noexcept;

/// RAII request scope: when the tracer is enabled, activates a trace for
/// the current thread and hands it to the tracer on destruction with
/// `total = pre-spans + elapsed` (pre-spans are externally measured time
/// such as queue wait, added via add_pre_span before the work runs).
class TraceScope {
 public:
  TraceScope(Tracer& tracer, const char* transport,
             const std::string& request);
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

  bool active() const noexcept { return active_; }

  /// Attributes time spent before this scope existed (e.g. queue wait);
  /// counted into both the span and the total.
  void add_pre_span(Span span, std::uint64_t micros) noexcept;

 private:
  Tracer* tracer_ = nullptr;
  Trace trace_;
  Trace* previous_ = nullptr;
  bool active_ = false;
  std::uint64_t pre_micros_ = 0;
  util::Timer timer_;
};

/// Accumulates elapsed time into one span of the active trace; inert when
/// no trace is active.
class SpanTimer {
 public:
  explicit SpanTimer(Span span) noexcept
      : trace_(active_trace()), span_(span) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() {
    if (trace_ != nullptr) {
      trace_->span_micros[static_cast<std::size_t>(span_)] +=
          static_cast<std::uint64_t>(timer_.micros());
    }
  }

 private:
  Trace* trace_;
  Span span_;
  util::Timer timer_;
};

}  // namespace gsb::obs

#endif  // GSB_OBS_TRACE_H
