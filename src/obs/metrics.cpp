#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <stdexcept>

#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/memory_tracker.h"

namespace gsb::obs {

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache mapping registry id -> shard.  The cache is only a
/// fast path: dropping an entry just means the thread registers a fresh
/// shard on next use (the old shard stays owned by the registry, so no
/// counts are lost).  Matching on the process-unique id — not the
/// registry pointer — keeps a recycled allocation from ever aliasing a
/// dead registry's entry.
struct TlShardCache {
  struct Entry {
    std::uint64_t registry_id;
    void* shard;
  };
  std::vector<Entry> entries;

  void* find(std::uint64_t registry_id) const noexcept {
    for (const Entry& e : entries) {
      if (e.registry_id == registry_id) return e.shard;
    }
    return nullptr;
  }
  void remember(std::uint64_t registry_id, void* shard) {
    if (entries.size() >= 64) entries.erase(entries.begin());
    entries.push_back({registry_id, shard});
  }
};

TlShardCache& tl_shard_cache() {
  thread_local TlShardCache cache;
  return cache;
}

std::chrono::steady_clock::time_point process_anchor() noexcept {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

/// Compile-time build identity for gsb_build_info.  The ISA level is the
/// correlation kernel's dispatch ceiling (runtime AVX detection happens
/// in corr_kernel.cpp; this label reports what the binary can select).
const char* build_sanitizer() noexcept {
#if defined(__SANITIZE_THREAD__)
  return "tsan";
#elif defined(__SANITIZE_ADDRESS__)
  return "asan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return "tsan";
#elif __has_feature(address_sanitizer)
  return "asan";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

const char* build_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool have_avx = __builtin_cpu_supports("avx") != 0;
  return have_avx ? "avx" : "v128";
#elif defined(__GNUC__) || defined(__clang__)
  return "v128";
#else
  return "scalar";
#endif
}

/// Default collectors sampled at every scrape of the global registry:
/// process uptime/RSS, build identity, MemoryTracker tag gauges, tracer
/// and timeline activity.
void collect_process_metrics(RegistrySnapshot& out) {
  const auto add_gauge = [&out](const char* name, const char* help,
                                std::string labels, std::uint64_t value) {
    MetricSnapshot m;
    m.name = name;
    m.help = help;
    m.labels = std::move(labels);
    m.type = MetricType::kGauge;
    m.value = value;
    out.metrics.push_back(std::move(m));
  };

  add_gauge("gsb_uptime_seconds", "Seconds since process start.", {},
            process_uptime_seconds());
  {
    std::string labels = "version=\"";
#if defined(GSB_VERSION)
    labels += GSB_VERSION;
#else
    labels += "dev";
#endif
    labels += "\",isa=\"";
    labels += build_isa();
    labels += "\",sanitizer=\"";
    labels += build_sanitizer();
    labels += '"';
    add_gauge("gsb_build_info",
              "Build identity; value is always 1, the labels carry it.",
              std::move(labels), 1);
  }
  add_gauge("gsb_process_rss_bytes", "Current resident set size.", {},
            util::process_current_rss_bytes());
  add_gauge("gsb_process_peak_rss_bytes", "Peak resident set size.", {},
            util::process_peak_rss_bytes());

  const util::MemoryTracker& tracker = util::global_memory_tracker();
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(util::MemTag::kNumTags); ++i) {
    const auto tag = static_cast<util::MemTag>(i);
    std::string labels = "tag=\"";
    labels += util::MemoryTracker::tag_name(tag);
    labels += '"';
    add_gauge("gsb_tracked_bytes",
              "Live bytes per MemoryTracker allocation tag.",
              std::move(labels), tracker.current(tag));
  }
  add_gauge("gsb_tracked_peak_bytes",
            "Peak total bytes across MemoryTracker tags.", {},
            tracker.peak());

  const Tracer& tracer = Tracer::global();
  MetricSnapshot slow;
  slow.name = "gsb_slow_queries_total";
  slow.help = "Requests over the --slow-query-log threshold.";
  slow.type = MetricType::kCounter;
  slow.value = tracer.slow_logged();
  out.metrics.push_back(std::move(slow));
  add_gauge("gsb_traces_retained", "Traces held in the slowest-N buffer.", {},
            tracer.retained());

  MetricSnapshot dropped;
  dropped.name = "gsb_timeline_events_dropped_total";
  dropped.help = "Timeline events lost to full per-thread buffers.";
  dropped.type = MetricType::kCounter;
  dropped.value = TimelineJournal::global().events_dropped();
  out.metrics.push_back(std::move(dropped));
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->add_collector(collect_process_metrics);
    return r;
  }();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  TlShardCache& cache = tl_shard_cache();
  if (void* hit = cache.find(id_)) return *static_cast<Shard*>(hit);
  Shard* shard = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  cache.remember(id_, shard);
  return *shard;
}

std::uint32_t MetricsRegistry::register_series(MetricType type,
                                               std::string name,
                                               std::string help,
                                               std::string labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Series& s : series_) {
    if (s.name == name && s.labels == labels) {
      if (s.type != type) {
        throw std::logic_error("metric '" + name +
                               "' re-registered with a different type");
      }
      return s.index;
    }
  }
  std::uint32_t index = 0;
  switch (type) {
    case MetricType::kCounter:
      if (counters_used_ >= kMaxCounters) {
        throw std::logic_error("metrics registry counter capacity exceeded");
      }
      index = counters_used_++;
      break;
    case MetricType::kGauge:
      if (gauges_used_ >= kMaxGauges) {
        throw std::logic_error("metrics registry gauge capacity exceeded");
      }
      index = gauges_used_++;
      break;
    case MetricType::kHistogram:
      if (histograms_used_ >= kMaxHistograms) {
        throw std::logic_error("metrics registry histogram capacity exceeded");
      }
      index = histograms_used_++;
      break;
  }
  series_.push_back(
      {std::move(name), std::move(help), std::move(labels), type, index});
  return index;
}

Counter MetricsRegistry::counter(std::string name, std::string help,
                                 std::string labels) {
  return Counter(this, register_series(MetricType::kCounter, std::move(name),
                                       std::move(help), std::move(labels)));
}

Gauge MetricsRegistry::gauge(std::string name, std::string help,
                             std::string labels) {
  return Gauge(this, register_series(MetricType::kGauge, std::move(name),
                                     std::move(help), std::move(labels)));
}

Histogram MetricsRegistry::histogram(std::string name, std::string help,
                                     std::string labels) {
  return Histogram(this,
                   register_series(MetricType::kHistogram, std::move(name),
                                   std::move(help), std::move(labels)));
}

void MetricsRegistry::add_counter(std::uint32_t index,
                                  std::uint64_t n) noexcept {
  local_shard().counters[index].fetch_add(n, std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::uint32_t index,
                              std::uint64_t micros) noexcept {
  // Bucket i covers (2^(i-1), 2^i]; values <= 1us land in bucket 0 and
  // anything past the last finite bound lands in the +Inf cell.
  std::size_t bucket =
      micros <= 1 ? 0
                  : static_cast<std::size_t>(std::bit_width(micros - 1));
  if (bucket > kHistogramBuckets) bucket = kHistogramBuckets;
  auto* cells = &local_shard().histograms[index * kHistogramCells];
  cells[bucket].fetch_add(1, std::memory_order_relaxed);
  cells[kHistogramBuckets + 1].fetch_add(micros, std::memory_order_relaxed);
  cells[kHistogramBuckets + 2].fetch_add(1, std::memory_order_relaxed);
}

std::size_t MetricsRegistry::add_collector(Collector collector) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::remove_collector(std::size_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

RegistrySnapshot MetricsRegistry::scrape() const {
  RegistrySnapshot out;
  std::vector<Collector> collectors;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.metrics.reserve(series_.size());
    for (const Series& s : series_) {
      MetricSnapshot m;
      m.name = s.name;
      m.help = s.help;
      m.labels = s.labels;
      m.type = s.type;
      switch (s.type) {
        case MetricType::kCounter:
          for (const auto& shard : shards_) {
            m.value +=
                shard->counters[s.index].load(std::memory_order_relaxed);
          }
          break;
        case MetricType::kGauge:
          m.value = gauges_[s.index].load(std::memory_order_relaxed);
          break;
        case MetricType::kHistogram: {
          const std::size_t base = s.index * kHistogramCells;
          for (const auto& shard : shards_) {
            for (std::size_t b = 0; b <= kHistogramBuckets; ++b) {
              m.histogram.buckets[b] +=
                  shard->histograms[base + b].load(std::memory_order_relaxed);
            }
            m.histogram.sum_micros +=
                shard->histograms[base + kHistogramBuckets + 1].load(
                    std::memory_order_relaxed);
            m.histogram.count +=
                shard->histograms[base + kHistogramBuckets + 2].load(
                    std::memory_order_relaxed);
          }
          break;
        }
      }
      out.metrics.push_back(std::move(m));
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  // Collectors run outside the registry lock: they may touch other
  // locks (caches, trackers) that must not nest under ours.
  for (const Collector& fn : collectors) fn(out);
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->histograms) h.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

void Counter::inc(std::uint64_t n) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  registry_->add_counter(index_, n);
}

void Gauge::set(std::uint64_t value) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  registry_->gauges_[index_].store(value, std::memory_order_relaxed);
}

void Gauge::set_max(std::uint64_t value) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  auto& cell = registry_->gauges_[index_];
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (value > seen &&
         !cell.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::observe_micros(std::uint64_t micros) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  registry_->observe(index_, micros);
}

std::uint64_t histogram_quantile_micros(const HistogramSnapshot& h,
                                        double q) {
  if (h.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil): the smallest value
  // v such that at least q*count observations are <= v.
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count) + 0.9999999999);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= kHistogramBuckets; ++i) {
    const std::uint64_t in_bucket = h.buckets[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    // Linear interpolation inside the covering bucket.  Bucket 0 covers
    // (0, 1]; bucket i covers (2^(i-1), 2^i]; the +Inf bucket clamps to
    // twice the last finite bound.
    const double lower =
        i == 0 ? 0.0
               : static_cast<double>(histogram_bucket_bound(i - 1));
    const double upper =
        i >= kHistogramBuckets
            ? 2.0 * static_cast<double>(
                        histogram_bucket_bound(kHistogramBuckets - 1))
            : static_cast<double>(histogram_bucket_bound(i));
    const double fraction = static_cast<double>(target - cumulative) /
                            static_cast<double>(in_bucket);
    return static_cast<std::uint64_t>(lower + (upper - lower) * fraction);
  }
  return 2 * histogram_bucket_bound(kHistogramBuckets - 1);
}

void anchor_process_start() noexcept { (void)process_anchor(); }

std::uint64_t process_uptime_seconds() noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - process_anchor();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(elapsed).count());
}

}  // namespace gsb::obs
