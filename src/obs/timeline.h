#ifndef GSB_OBS_TIMELINE_H
#define GSB_OBS_TIMELINE_H

/// Execution timeline journal: per-thread buffers of fixed-size typed
/// events (job spans, queue waits, steals, pipeline stages, request
/// lifecycles, I/O spans, cache hits/misses) stamped with a monotonic
/// clock, drained into a Chrome trace (obs/timeline_export.h) that opens
/// in Perfetto or chrome://tracing.
///
/// Same cost model as MetricsRegistry: the journal is off by default and
/// a record() on the disabled path is one relaxed atomic load plus a
/// branch.  When enabled, each recording thread appends into its own
/// fixed-capacity event buffer owned by the journal — no locks, no
/// allocation, no cross-thread stores on the hot path.  A full buffer
/// drops the new event and bumps a counter (exported as
/// `gsb_timeline_events_dropped_total`); memory stays bounded at
/// capacity * threads events per capture window.
///
/// Recording never changes what instrumented code computes or emits:
/// artifacts and wire responses are byte-identical with the timeline on
/// or off (pinned by scheduler_test and the serve-path tests).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gsb::obs {

enum class TimelineEventKind : std::uint8_t {
  kJob,        ///< scheduler job body (id = JobId, label from JobSpec)
  kQueueWait,  ///< job ready -> claimed by a worker
  kSteal,      ///< instant: a worker claimed a job homed elsewhere
  kStage,      ///< engine/pipeline stage span (e.g. query execute)
  kRequest,    ///< serve-path request lifecycle
  kIo,         ///< syscall span (separately gated, see set_io_spans_enabled)
  kCacheHit,   ///< instant: result cache hit
  kCacheMiss,  ///< instant: result cache miss
};

/// Stable lowercase name for a kind (trace `cat` field, tests).
const char* timeline_event_kind_name(TimelineEventKind kind) noexcept;

/// One journal entry.  Fixed 64-byte layout: no allocation on record,
/// labels truncate at kLabelChars.
struct TimelineEvent {
  static constexpr std::size_t kLabelChars = 34;

  std::uint64_t start_micros = 0;  ///< monotonic, since the journal epoch
  std::uint64_t dur_micros = 0;    ///< 0 for instant events
  std::uint64_t id = 0;            ///< JobId / request sequence / byte count
  std::uint32_t tid = 0;           ///< dense lane index, one per thread
  TimelineEventKind kind = TimelineEventKind::kJob;
  char label[kLabelChars + 1] = {};  ///< NUL-terminated, truncated
};
static_assert(sizeof(TimelineEvent) == 64);

struct TimelineLane {
  std::uint32_t tid = 0;
  std::string name;  ///< "worker-3", "tcp-worker-0", ... ; may be empty
};

/// Merged view of one capture window, sorted by start time.
struct TimelineSnapshot {
  std::vector<TimelineEvent> events;
  std::vector<TimelineLane> lanes;  ///< lanes that recorded this window
  std::uint64_t dropped = 0;        ///< events lost to full buffers
};

class TimelineJournal {
 public:
  /// Default per-thread buffer capacity in events (64 KiB per lane).
  static constexpr std::size_t kDefaultCapacity = 1024;

  TimelineJournal();
  ~TimelineJournal();
  TimelineJournal(const TimelineJournal&) = delete;
  TimelineJournal& operator=(const TimelineJournal&) = delete;

  /// The process-wide journal every instrumented layer records to.
  static TimelineJournal& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Syscall spans (util::io) are gated separately so per-read events
  /// don't swamp the buffers; both gates must be on for kIo events.
  void set_io_spans_enabled(bool enabled) noexcept {
    io_spans_.store(enabled, std::memory_order_relaxed);
  }
  bool io_spans_enabled() const noexcept {
    return enabled() && io_spans_.load(std::memory_order_relaxed);
  }

  /// Per-thread buffer capacity for lanes registered after the call
  /// (existing lanes keep their size).  Tests use a deliberately tiny
  /// capacity to pin the drop accounting.
  void set_capacity(std::size_t events) noexcept {
    capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
  }

  /// Microseconds since the journal's monotonic epoch.
  std::uint64_t now_micros() const noexcept;

  /// Names the calling thread's lane in exported traces ("worker-0",
  /// "tcp-worker-2", ...).  Idempotent; safe before or after recording.
  void set_thread_lane(std::string_view name);

  /// Appends one event to the calling thread's buffer.  No-op while
  /// disabled; drops (and counts) when the buffer is full.
  void record(TimelineEventKind kind, std::uint64_t start_micros,
              std::uint64_t dur_micros, std::uint64_t id,
              std::string_view label) noexcept;

  /// Instant event stamped "now" with zero duration.
  void record_instant(TimelineEventKind kind, std::uint64_t id,
                      std::string_view label) noexcept {
    if (!enabled()) return;
    record(kind, now_micros(), 0, id, label);
  }

  std::uint64_t events_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Merged copy of the current capture window, events sorted by start
  /// time.  Safe against concurrent recording: a racing append may or
  /// may not be included, never torn.
  TimelineSnapshot snapshot() const;

  /// Starts a new capture window: previously recorded events are
  /// discarded lazily (each lane resets on its next record) and the drop
  /// counter zeroes.  Buffers stay allocated.
  void reset() noexcept;

 private:
  struct Lane;

  Lane& local_lane();

  const std::uint64_t id_;  ///< process-unique, never reused
  std::atomic<bool> enabled_{false};
  std::atomic<bool> io_spans_{false};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::atomic<std::uint64_t> dropped_{0};
  /// Capture-window generation; bumped by reset().  Lanes carrying an
  /// older generation are logically empty.
  std::atomic<std::uint64_t> generation_{1};

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// RAII span: stamps `now` on construction and records one complete
/// event on destruction.  Costs one relaxed load when the journal is
/// disabled.
class TimelineSpan {
 public:
  TimelineSpan(TimelineEventKind kind, std::string_view label,
               std::uint64_t id = 0) noexcept
      : TimelineSpan(TimelineJournal::global(), kind, label, id) {}

  TimelineSpan(TimelineJournal& journal, TimelineEventKind kind,
               std::string_view label, std::uint64_t id = 0) noexcept {
    if (!journal.enabled()) return;
    journal_ = &journal;
    kind_ = kind;
    id_ = id;
    start_ = journal.now_micros();
    const std::size_t n =
        std::min(label.size(), std::size_t{TimelineEvent::kLabelChars});
    std::memcpy(label_, label.data(), n);
    label_[n] = '\0';
  }

  TimelineSpan(const TimelineSpan&) = delete;
  TimelineSpan& operator=(const TimelineSpan&) = delete;

  ~TimelineSpan() {
    if (journal_ == nullptr) return;
    journal_->record(kind_, start_, journal_->now_micros() - start_, id_,
                     label_);
  }

 private:
  TimelineJournal* journal_ = nullptr;
  TimelineEventKind kind_ = TimelineEventKind::kStage;
  std::uint64_t id_ = 0;
  std::uint64_t start_ = 0;
  char label_[TimelineEvent::kLabelChars + 1] = {};
};

}  // namespace gsb::obs

#endif  // GSB_OBS_TIMELINE_H
