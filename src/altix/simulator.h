#ifndef GSB_ALTIX_SIMULATOR_H
#define GSB_ALTIX_SIMULATOR_H

/// \file simulator.h
/// Trace-driven replay of a Clique Enumerator run on a modeled large
/// shared-memory machine.
///
/// Input: an EnumerationStats carrying the per-root seed costs and
/// per-sub-list level costs recorded by an instrumented (record_trace)
/// sequential run.  The simulator pushes those task costs through the same
/// gsb::par::LoadBalancer the real multithreaded driver uses, at any
/// processor count, and charges the MachineModel's NUMA and synchronization
/// overheads.  Because the task set and scheduler are the real ones, the
/// resulting curves inherit the genuine level structure and imbalance of
/// the workload rather than an analytic idealization.

#include <cstddef>
#include <vector>

#include "altix/machine_model.h"
#include "core/enumeration_stats.h"
#include "parallel/load_balancer.h"

namespace gsb::altix {

/// Outcome of one simulated run at a fixed processor count.
struct SimulatedRun {
  std::size_t processors = 1;
  double seconds = 0.0;       ///< modeled wall time
  double seed_seconds = 0.0;  ///< modeled seeding phase
  std::vector<double> level_seconds;       ///< modeled per level
  std::vector<double> processor_busy;      ///< total busy time per processor
  std::uint64_t transfers = 0;             ///< scheduler transfers
};

/// Speedup series produced by sweep().
struct SpeedupPoint {
  std::size_t processors = 1;
  double seconds = 0.0;
  double absolute_speedup = 1.0;  ///< T(1) / T(p)
  double relative_speedup = 1.0;  ///< T(p/2) / T(p)  (1 for the first point)
};

/// Trace replayer.
class AltixSimulator {
 public:
  AltixSimulator(MachineModel model, par::LoadBalancerConfig balancer = {})
      : model_(model), balancer_(balancer) {}

  /// Replays \p trace on \p processors virtual CPUs.
  [[nodiscard]] SimulatedRun simulate(const core::EnumerationStats& trace,
                                      std::size_t processors) const;

  /// Replays the trace at each power of two up to max_processors (or the
  /// explicit list), deriving absolute and relative speedups.
  [[nodiscard]] std::vector<SpeedupPoint> sweep(
      const core::EnumerationStats& trace,
      const std::vector<std::size_t>& processor_counts) const;

  /// 1, 2, 4, ..., max_processors.
  [[nodiscard]] std::vector<std::size_t> power_of_two_counts() const;

  [[nodiscard]] const MachineModel& model() const noexcept { return model_; }

 private:
  MachineModel model_;
  par::LoadBalancerConfig balancer_;
};

}  // namespace gsb::altix

#endif  // GSB_ALTIX_SIMULATOR_H
