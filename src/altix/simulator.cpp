#include "altix/simulator.h"

#include <algorithm>
#include <cmath>

namespace gsb::altix {
namespace {

constexpr double kSecondsToNanos = 1e9;

/// Per-task costs in seconds.  When deterministic work proxies are
/// available, each task's cost is its share of the measured phase total
/// (work_i / sum(work) * sum(seconds)): per-task wall-clock samples at
/// sub-microsecond granularity carry OS jitter (preemptions, page faults)
/// that would otherwise masquerade as indivisible critical-path chunks.
/// Falls back to the raw measurements when proxies are absent.
std::vector<double> task_costs(const std::vector<std::uint64_t>& work,
                               const std::vector<double>& seconds) {
  std::vector<double> costs(seconds.size());
  double seconds_total = 0.0;
  for (double s : seconds) seconds_total += std::max(0.0, s);
  std::uint64_t work_total = 0;
  if (work.size() == seconds.size()) {
    for (std::uint64_t w : work) work_total += w;
  }
  if (work_total > 0 && seconds_total > 0.0) {
    const double unit = seconds_total / static_cast<double>(work_total);
    for (std::size_t i = 0; i < costs.size(); ++i) {
      costs[i] = static_cast<double>(work[i]) * unit;
    }
  } else {
    for (std::size_t i = 0; i < costs.size(); ++i) {
      costs[i] = std::max(0.0, seconds[i]);
    }
  }
  return costs;
}

/// Converts cost seconds to integer units for the scheduler.
std::vector<std::uint64_t> to_cost_units(const std::vector<double>& seconds) {
  std::vector<std::uint64_t> costs(seconds.size());
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    costs[i] =
        static_cast<std::uint64_t>(std::max(0.0, seconds[i]) * kSecondsToNanos) +
        1;
  }
  return costs;
}

}  // namespace

SimulatedRun AltixSimulator::simulate(const core::EnumerationStats& trace,
                                      std::size_t processors) const {
  processors = std::max<std::size_t>(1, processors);
  SimulatedRun run;
  run.processors = processors;
  run.processor_busy.assign(processors, 0.0);
  const par::LoadBalancer balancer(balancer_);
  const double log2p = std::log2(static_cast<double>(processors));
  const double sync =
      processors > 1 ? model_.barrier_base + model_.barrier_log2 * log2p +
                           model_.collect_per_processor *
                               static_cast<double>(processors)
                     : 0.0;

  // --- seeding phase ----------------------------------------------------------
  {
    const auto& seed = trace.seed_trace;
    if (!seed.task_seconds.empty()) {
      const auto costs = task_costs(seed.task_work, seed.task_seconds);
      const par::Assignment assignment =
          balancer.assign(to_cost_units(costs), {}, processors);
      double slowest = 0.0;
      for (std::size_t t = 0; t < processors; ++t) {
        double busy = 0.0;
        for (std::uint32_t task : assignment.tasks[t]) {
          busy += costs[task];
        }
        run.processor_busy[t] += busy;
        slowest = std::max(slowest, busy);
      }
      run.seed_seconds = slowest + sync +
                         model_.scheduler_per_task *
                             static_cast<double>(costs.size());
    }
  }

  // --- level loop ---------------------------------------------------------------
  // The sequential trace does not know which virtual thread would have
  // produced each sub-list, so every level is scheduled from an even split
  // refined by transfers; transferred tasks pay the NUMA remote penalty.
  for (const auto& level : trace.traces) {
    const auto costs = task_costs(level.task_work, level.task_seconds);
    const par::Assignment assignment =
        balancer.assign(to_cost_units(costs), {}, processors);
    run.transfers += assignment.transfers;
    double slowest = 0.0;
    for (std::size_t t = 0; t < processors; ++t) {
      double busy = 0.0;
      for (std::uint32_t task : assignment.tasks[t]) {
        double cost = costs[task];
        if (processors > 1 && assignment.remote[task]) {
          cost *= 1.0 + model_.remote_penalty;
        }
        busy += cost;
      }
      run.processor_busy[t] += busy;
      slowest = std::max(slowest, busy);
    }
    const double level_time =
        slowest + sync + model_.collect_base +
        model_.scheduler_per_task * static_cast<double>(costs.size());
    run.level_seconds.push_back(level_time);
    run.seconds += level_time;
  }
  run.seconds += run.seed_seconds;
  return run;
}

std::vector<SpeedupPoint> AltixSimulator::sweep(
    const core::EnumerationStats& trace,
    const std::vector<std::size_t>& processor_counts) const {
  std::vector<SpeedupPoint> points;
  double t1 = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < processor_counts.size(); ++i) {
    const SimulatedRun run = simulate(trace, processor_counts[i]);
    SpeedupPoint point;
    point.processors = processor_counts[i];
    point.seconds = run.seconds;
    if (i == 0) {
      t1 = processor_counts[i] == 1 ? run.seconds
                                    : simulate(trace, 1).seconds;
    }
    point.absolute_speedup = run.seconds > 0 ? t1 / run.seconds : 1.0;
    point.relative_speedup =
        (i == 0 || run.seconds == 0) ? 1.0 : prev / run.seconds;
    prev = run.seconds;
    points.push_back(point);
  }
  return points;
}

std::vector<std::size_t> AltixSimulator::power_of_two_counts() const {
  std::vector<std::size_t> counts;
  for (std::size_t p = 1; p <= model_.max_processors; p *= 2) {
    counts.push_back(p);
  }
  return counts;
}

}  // namespace gsb::altix
