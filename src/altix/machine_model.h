#ifndef GSB_ALTIX_MACHINE_MODEL_H
#define GSB_ALTIX_MACHINE_MODEL_H

/// \file machine_model.h
/// Parametric model of a large ccNUMA shared-memory machine in the mold of
/// the paper's SGI Altix 3700 (256 Itanium-2 processors, 2 TB globally
/// addressable memory).
///
/// This container has two physical cores, so the published scaling figures
/// (5–8) cannot be re-measured directly.  Instead, the enumerator records a
/// per-task cost trace from an instrumented run, and gsb::altix replays
/// that trace through the *real* scheduler with p virtual processors plus
/// the overheads below.  DESIGN.md §2 documents this substitution; the
/// shapes the model must reproduce are
///   * near-linear speedup through ~64 processors, flattening by 256
///     (Figures 5–6),
///   * better 256-processor speedup for longer sequential runs (Figure 7),
///   * per-processor time spread within ~10% of the mean (Figure 8).

#include <cstddef>

namespace gsb::altix {

/// Overhead/penalty parameters.  Defaults are calibrated to reproduce the
/// paper's qualitative scaling behaviour (see EXPERIMENTS.md); they are not
/// microarchitectural measurements.
struct MachineModel {
  /// Largest processor count the model is exercised at.
  std::size_t max_processors = 256;

  /// Fractional slowdown for a task executed away from the memory of the
  /// thread that produced it (ccNUMA remote reference stream).
  double remote_penalty = 0.25;

  /// Per-level synchronization cost: barrier_base + barrier_log2 * log2(p).
  double barrier_base = 40e-6;
  double barrier_log2 = 30e-6;

  /// Centralized scheduler: per-task bookkeeping cost, paid serially at
  /// each level (collection + redistribution of the task list).
  double scheduler_per_task = 250e-9;

  /// Serial per-level result-collection constant (merging thread outputs).
  double collect_base = 15e-6;

  /// Serial per-processor collection cost per level: the centralized
  /// master walks every thread's output.  This is the term that bends the
  /// curves down at 128-256 processors.
  double collect_per_processor = 0.0;
};

}  // namespace gsb::altix

#endif  // GSB_ALTIX_MACHINE_MODEL_H
