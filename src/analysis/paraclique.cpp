#include "analysis/paraclique.h"

#include <algorithm>
#include <stdexcept>

#include "bitset/dynamic_bitset.h"
#include "core/maximum_clique.h"
#include "graph/transforms.h"
#include "util/memory_tracker.h"

namespace gsb::analysis {

using bits::DynamicBitset;
using core::Clique;
using graph::VertexId;

Paraclique grow_paraclique(const graph::GraphView& g, const Clique& seed_clique,
                           const ParacliqueOptions& options) {
  Paraclique result;
  result.seed_size = seed_clique.size();
  DynamicBitset members(g.order());
  for (VertexId v : seed_clique) members.set(v);
  std::size_t member_count = seed_clique.size();

  std::size_t rounds = 0;
  bool grew = true;
  while (grew && (options.max_rounds == 0 || rounds < options.max_rounds)) {
    grew = false;
    ++rounds;
    for (VertexId v = 0; v < g.order(); ++v) {
      if (members.test(v)) continue;
      const std::size_t links =
          DynamicBitset::count_and(members, g.neighbors(v));
      if (links + options.glom >= member_count && links > 0) {
        members.set(v);
        ++member_count;
        grew = true;
      }
    }
  }

  members.for_each([&](std::size_t v) {
    result.members.push_back(static_cast<VertexId>(v));
  });
  const auto sub = graph::induced_subgraph(g, result.members);
  result.density = sub.graph.density();
  return result;
}

Paraclique extract_paraclique(const graph::GraphView& g,
                              const ParacliqueOptions& options) {
  const auto seed = core::maximum_clique(g);
  return grow_paraclique(g, seed.clique, options);
}

Paraclique extract_paraclique_from_stream(const graph::GraphView& g,
                                          storage::GsbcReader& stream,
                                          const ParacliqueOptions& options) {
  Clique best;
  Clique current;
  while (stream.next(current)) {
    if (current.size() > best.size()) best.swap(current);
  }
  if (best.empty()) {
    throw std::invalid_argument(
        "extract_paraclique_from_stream: empty clique stream");
  }
  return grow_paraclique(g, best, options);
}

std::vector<Paraclique> extract_all_paracliques(
    const graph::GraphView& g, std::size_t min_size,
    const ParacliqueOptions& options) {
  std::vector<Paraclique> out;
  // Iterative extraction removes edges, so this is the one analysis stage
  // that cannot run off a read-only mapping: it materializes a mutable
  // copy.  Recorded with the tracker so out-of-core runs report it
  // honestly in their memory summary.
  graph::Graph residue = graph::materialize(g);
  util::ScopedAllocation residue_bytes(util::global_memory_tracker(),
                                       residue.adjacency_bytes(),
                                       util::MemTag::kGraph);
  while (true) {
    const auto seed = core::maximum_clique(residue);
    if (seed.clique.size() < std::max<std::size_t>(min_size, 1)) break;
    Paraclique para = grow_paraclique(residue, seed.clique, options);
    // Remove the paraclique's edges from the residue graph.
    for (std::size_t i = 0; i < para.members.size(); ++i) {
      for (std::size_t j = i + 1; j < para.members.size(); ++j) {
        residue.remove_edge(para.members[i], para.members[j]);
      }
    }
    out.push_back(std::move(para));
  }
  return out;
}

}  // namespace gsb::analysis
