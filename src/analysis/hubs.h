#ifndef GSB_ANALYSIS_HUBS_H
#define GSB_ANALYSIS_HUBS_H

/// \file hubs.h
/// Hub-gene detection.  The paper's conclusions report that clique analysis
/// of the mouse-brain network surfaced Lin7c as "the most highly connected
/// vertex"; this module ranks vertices by degree and by clique
/// participation so the co-expression example can reproduce that analysis
/// on synthetic data.

#include <cstdint>
#include <vector>

#include "core/clique.h"
#include "graph/graph_view.h"

namespace gsb::analysis {

/// One ranked vertex.
struct HubReport {
  graph::VertexId vertex = 0;
  std::size_t degree = 0;
  std::uint32_t clique_participation = 0;  ///< cliques containing the vertex
};

/// Top \p count vertices ranked by degree, ties by clique participation.
std::vector<HubReport> top_hubs(const graph::GraphView& g,
                                const std::vector<core::Clique>& cliques,
                                std::size_t count);

/// Overload taking precomputed participation counts (g.order() entries),
/// e.g. from analysis::vertex_participation over a `.gsbc` stream — the
/// clique set itself never needs to be in memory.
std::vector<HubReport> top_hubs(const graph::GraphView& g,
                                const std::vector<std::uint32_t>& participation,
                                std::size_t count);

/// The single most connected vertex (order() must be > 0).
HubReport most_connected_vertex(const graph::GraphView& g,
                                const std::vector<core::Clique>& cliques);

}  // namespace gsb::analysis

#endif  // GSB_ANALYSIS_HUBS_H
