#ifndef GSB_ANALYSIS_PARACLIQUE_H
#define GSB_ANALYSIS_PARACLIQUE_H

/// \file paraclique.h
/// Paraclique extraction.
///
/// The paper motivates "cliques, paracliques and other forms of
/// densely-connected subgraphs" for separating co-variation sources in
/// expression networks: measurement noise turns true modules into
/// near-cliques, so after a maximum clique is found it is "glommed"
/// outward with vertices adjacent to almost all current members.

#include "core/clique.h"
#include "graph/graph_view.h"
#include "storage/clique_stream.h"

namespace gsb::analysis {

/// Glom policy: a vertex joins when it misses at most `glom` members of the
/// current paraclique.
struct ParacliqueOptions {
  std::size_t glom = 1;        ///< allowed non-neighbors per joining vertex
  std::size_t max_rounds = 0;  ///< growth iterations; 0 = until fixpoint
};

/// Result of one extraction.
struct Paraclique {
  core::Clique members;       ///< sorted member vertices
  std::size_t seed_size = 0;  ///< size of the seed clique
  double density = 0.0;       ///< edge density of the induced subgraph
};

/// Grows a paraclique from \p seed_clique (assumed to be a clique of g).
Paraclique grow_paraclique(const graph::GraphView& g,
                           const core::Clique& seed_clique,
                           const ParacliqueOptions& options = {});

/// Convenience: finds a maximum clique (branch and bound) and gloms it.
Paraclique extract_paraclique(const graph::GraphView& g,
                              const ParacliqueOptions& options = {});

/// Seeds from a `.gsbc` clique stream instead of re-running maximum clique:
/// one forward pass keeps the largest streamed clique (ties: first
/// encountered) in O(1) clique memory and gloms it.  Drains the reader;
/// throws if the stream is empty.  Stream ids must live in \p g's vertex
/// namespace.
Paraclique extract_paraclique_from_stream(const graph::GraphView& g,
                                          storage::GsbcReader& stream,
                                          const ParacliqueOptions& options = {});

/// Iteratively extracts disjoint paracliques (each round removes the
/// found members) until none of at least \p min_size remains.
std::vector<Paraclique> extract_all_paracliques(
    const graph::GraphView& g, std::size_t min_size,
    const ParacliqueOptions& options = {});

}  // namespace gsb::analysis

#endif  // GSB_ANALYSIS_PARACLIQUE_H
