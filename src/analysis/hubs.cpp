#include "analysis/hubs.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/clique_stats.h"

namespace gsb::analysis {

std::vector<HubReport> top_hubs(const graph::GraphView& g,
                                const std::vector<core::Clique>& cliques,
                                std::size_t count) {
  return top_hubs(g, vertex_participation(g.order(), cliques), count);
}

std::vector<HubReport> top_hubs(const graph::GraphView& g,
                                const std::vector<std::uint32_t>& participation,
                                std::size_t count) {
  std::vector<HubReport> reports(g.order());
  for (graph::VertexId v = 0; v < g.order(); ++v) {
    reports[v] = HubReport{v, g.degree(v), participation[v]};
  }
  std::sort(reports.begin(), reports.end(),
            [](const HubReport& a, const HubReport& b) {
              if (a.degree != b.degree) return a.degree > b.degree;
              if (a.clique_participation != b.clique_participation) {
                return a.clique_participation > b.clique_participation;
              }
              return a.vertex < b.vertex;
            });
  reports.resize(std::min(count, reports.size()));
  return reports;
}

HubReport most_connected_vertex(const graph::GraphView& g,
                                const std::vector<core::Clique>& cliques) {
  if (g.order() == 0) {
    throw std::invalid_argument("most_connected_vertex: empty graph");
  }
  return top_hubs(g, cliques, 1).front();
}

}  // namespace gsb::analysis
