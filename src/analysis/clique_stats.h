#ifndef GSB_ANALYSIS_CLIQUE_STATS_H
#define GSB_ANALYSIS_CLIQUE_STATS_H

/// \file clique_stats.h
/// Descriptive statistics over enumerated maximal cliques: size spectra,
/// vertex participation, and pairwise overlap.  These are the summaries the
/// paper's biology sections rely on ("extract correlated sets of traits",
/// "reduce the dimensionality of the data matrix").

#include <cstdint>
#include <map>
#include <vector>

#include "core/clique.h"
#include "graph/graph.h"
#include "storage/clique_stream.h"

namespace gsb::analysis {

/// Size histogram and aggregates of a clique collection.  The one
/// accumulator every producer shares: add() per clique (collection walk,
/// stream scan, or an enumeration sink counting in-flight), finalize()
/// once at the end.
struct CliqueSpectrum {
  std::map<std::size_t, std::uint64_t> size_histogram;
  std::size_t max_size = 0;
  std::size_t min_size = 0;
  double mean_size = 0.0;
  std::uint64_t total = 0;
  std::uint64_t size_sum = 0;

  void add(std::size_t size) {
    ++total;
    ++size_histogram[size];
    size_sum += size;
  }
  /// Derives min/max/mean from the histogram; idempotent.
  void finalize() {
    if (total == 0) return;
    min_size = size_histogram.begin()->first;
    max_size = size_histogram.rbegin()->first;
    mean_size = static_cast<double>(size_sum) / static_cast<double>(total);
  }
};
CliqueSpectrum clique_spectrum(const std::vector<core::Clique>& cliques);

/// Streaming overload over a `.gsbc` clique stream: one forward pass, O(1)
/// clique memory — the clique set never has to exist in RAM.  Drains the
/// reader.
CliqueSpectrum clique_spectrum(storage::GsbcReader& stream);

/// participation[v] = number of cliques containing v.
std::vector<std::uint32_t> vertex_participation(
    std::size_t order, const std::vector<core::Clique>& cliques);

/// Streaming overload over a `.gsbc` clique stream.  Drains the reader.
std::vector<std::uint32_t> vertex_participation(std::size_t order,
                                                storage::GsbcReader& stream);

/// Jaccard overlap |A ∩ B| / |A ∪ B| of two sorted cliques.
double clique_overlap(const core::Clique& a, const core::Clique& b);

/// Average pairwise Jaccard overlap of a collection (0 when < 2 cliques).
/// Quadratic; intended for reporting on filtered clique sets.
double mean_pairwise_overlap(const std::vector<core::Clique>& cliques);

}  // namespace gsb::analysis

#endif  // GSB_ANALYSIS_CLIQUE_STATS_H
