#ifndef GSB_ANALYSIS_CLIQUE_STATS_H
#define GSB_ANALYSIS_CLIQUE_STATS_H

/// \file clique_stats.h
/// Descriptive statistics over enumerated maximal cliques: size spectra,
/// vertex participation, and pairwise overlap.  These are the summaries the
/// paper's biology sections rely on ("extract correlated sets of traits",
/// "reduce the dimensionality of the data matrix").

#include <cstdint>
#include <map>
#include <vector>

#include "core/clique.h"
#include "graph/graph.h"

namespace gsb::analysis {

/// Size histogram and aggregates of a clique collection.
struct CliqueSpectrum {
  std::map<std::size_t, std::uint64_t> size_histogram;
  std::size_t max_size = 0;
  std::size_t min_size = 0;
  double mean_size = 0.0;
  std::uint64_t total = 0;
};
CliqueSpectrum clique_spectrum(const std::vector<core::Clique>& cliques);

/// participation[v] = number of cliques containing v.
std::vector<std::uint32_t> vertex_participation(
    std::size_t order, const std::vector<core::Clique>& cliques);

/// Jaccard overlap |A ∩ B| / |A ∪ B| of two sorted cliques.
double clique_overlap(const core::Clique& a, const core::Clique& b);

/// Average pairwise Jaccard overlap of a collection (0 when < 2 cliques).
/// Quadratic; intended for reporting on filtered clique sets.
double mean_pairwise_overlap(const std::vector<core::Clique>& cliques);

}  // namespace gsb::analysis

#endif  // GSB_ANALYSIS_CLIQUE_STATS_H
