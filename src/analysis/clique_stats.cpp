#include "analysis/clique_stats.h"

#include <algorithm>

namespace gsb::analysis {

CliqueSpectrum clique_spectrum(const std::vector<core::Clique>& cliques) {
  CliqueSpectrum spectrum;
  for (const auto& clique : cliques) spectrum.add(clique.size());
  spectrum.finalize();
  return spectrum;
}

CliqueSpectrum clique_spectrum(storage::GsbcReader& stream) {
  CliqueSpectrum spectrum;
  core::Clique clique;
  while (stream.next(clique)) spectrum.add(clique.size());
  spectrum.finalize();
  return spectrum;
}

std::vector<std::uint32_t> vertex_participation(
    std::size_t order, const std::vector<core::Clique>& cliques) {
  std::vector<std::uint32_t> counts(order, 0);
  for (const auto& clique : cliques) {
    for (graph::VertexId v : clique) {
      if (v < order) ++counts[v];
    }
  }
  return counts;
}

std::vector<std::uint32_t> vertex_participation(std::size_t order,
                                                storage::GsbcReader& stream) {
  std::vector<std::uint32_t> counts(order, 0);
  core::Clique clique;
  while (stream.next(clique)) {
    for (graph::VertexId v : clique) {
      if (v < order) ++counts[v];
    }
  }
  return counts;
}

double clique_overlap(const core::Clique& a, const core::Clique& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t common = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const std::size_t unions = a.size() + b.size() - common;
  return unions == 0 ? 0.0
                     : static_cast<double>(common) /
                           static_cast<double>(unions);
}

double mean_pairwise_overlap(const std::vector<core::Clique>& cliques) {
  if (cliques.size() < 2) return 0.0;
  double total = 0.0;
  std::uint64_t pairs = 0;
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    for (std::size_t j = i + 1; j < cliques.size(); ++j) {
      total += clique_overlap(cliques[i], cliques[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace gsb::analysis
