#ifndef GSB_SERVICE_RESULT_CACHE_H
#define GSB_SERVICE_RESULT_CACHE_H

/// \file result_cache.h
/// Byte-budgeted LRU cache of serialized query responses.
///
/// Results are cached as the exact bytes the engine serialized, keyed by
/// (graph epoch, canonical query): a hit replays those bytes verbatim, so
/// cached and uncached answers are bit-identical by construction — the
/// property service_test pins.  Keying on the epoch (stamped fresh on every
/// catalog open) means a reloaded graph can never serve stale answers;
/// entries of dead epochs simply age out of the LRU.
///
/// The budget is accounted in bytes (keys + values + bookkeeping estimate)
/// against `util::MemoryTracker` under MemTag::kResultCache, so the serve
/// loop's memory summary shows the cache next to the other structures.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/memory_tracker.h"

namespace gsb::service {

class ResultCache {
 public:
  /// Per-entry bookkeeping estimate added to key/value bytes (list node,
  /// map slot, string headers).
  static constexpr std::size_t kEntryOverhead = 96;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< live accounted bytes
    std::size_t entries = 0;  ///< live entries
  };

  /// \p byte_budget bounds the accounted bytes (a single oversized result
  /// is simply not cached).  \p tracker defaults to the global tracker.
  explicit ResultCache(std::size_t byte_budget,
                       util::MemoryTracker* tracker = nullptr);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached response for (epoch, canonical), refreshing its recency;
  /// nullopt on miss.  Thread-safe.
  std::optional<std::string> lookup(std::uint64_t epoch,
                                    const std::string& canonical);

  /// Caches \p result, evicting least-recently-used entries until the
  /// budget holds.  Re-inserting an existing key refreshes its value and
  /// recency.  Thread-safe.
  void insert(std::uint64_t epoch, const std::string& canonical,
              const std::string& result);

  /// Drops every entry (budget and counters keep their values).
  void clear();

  [[nodiscard]] std::size_t byte_budget() const noexcept { return budget_; }
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  using EntryList = std::list<Entry>;

  static std::string make_key(std::uint64_t epoch,
                              const std::string& canonical) {
    return std::to_string(epoch) + ':' + canonical;
  }
  static std::size_t entry_bytes(const Entry& entry) noexcept {
    return entry.key.size() + entry.value.size() + kEntryOverhead;
  }
  /// Unlinks one entry (caller holds the mutex).
  void drop(EntryList::iterator it);

  const std::size_t budget_;
  util::MemoryTracker& tracker_;
  /// Registry collector sampling this cache's bytes/entries gauges at
  /// scrape; removed in the destructor.  Destroy the cache only after
  /// concurrent scrapes have quiesced (the serve loops have exited).
  std::size_t collector_id_ = 0;

  mutable std::mutex mutex_;
  EntryList lru_;  ///< front = most recent
  std::unordered_map<std::string, EntryList::iterator> map_;
  Stats stats_;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_RESULT_CACHE_H
