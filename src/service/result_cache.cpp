#include "service/result_cache.h"

#include <atomic>

#include "obs/metrics.h"

namespace gsb::service {

namespace {

/// Event-time counters shared by every cache instance; the per-instance
/// collector below carries the instance-scoped level gauges.
struct CacheMetrics {
  obs::Counter insertions;
  obs::Counter evictions;
};

const CacheMetrics& cache_metrics() {
  static const CacheMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    CacheMetrics m;
    m.insertions = registry.counter("gsb_cache_insertions_total",
                                    "Result-cache entries inserted.");
    m.evictions = registry.counter(
        "gsb_cache_evictions_total",
        "Result-cache entries evicted to hold the byte budget.");
    return m;
  }();
  return metrics;
}

std::uint64_t next_cache_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ResultCache::ResultCache(std::size_t byte_budget, util::MemoryTracker* tracker)
    : budget_(byte_budget),
      tracker_(tracker != nullptr ? *tracker
                                  : util::global_memory_tracker()) {
  const std::string labels =
      "cache=\"" + std::to_string(next_cache_id()) + "\"";
  collector_id_ = obs::MetricsRegistry::global().add_collector(
      [this, labels](obs::RegistrySnapshot& out) {
        const Stats snapshot = stats();
        obs::MetricSnapshot bytes;
        bytes.name = "gsb_cache_bytes";
        bytes.help = "Accounted bytes held by a result cache.";
        bytes.labels = labels;
        bytes.type = obs::MetricType::kGauge;
        bytes.value = snapshot.bytes;
        out.metrics.push_back(std::move(bytes));
        obs::MetricSnapshot entries;
        entries.name = "gsb_cache_entries";
        entries.help = "Entries held by a result cache.";
        entries.labels = labels;
        entries.type = obs::MetricType::kGauge;
        entries.value = snapshot.entries;
        out.metrics.push_back(std::move(entries));
      });
}

ResultCache::~ResultCache() {
  obs::MetricsRegistry::global().remove_collector(collector_id_);
  clear();
}

std::optional<std::string> ResultCache::lookup(std::uint64_t epoch,
                                               const std::string& canonical) {
  const std::string key = make_key(epoch, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->value;
}

void ResultCache::drop(EntryList::iterator it) {
  const std::size_t bytes = entry_bytes(*it);
  tracker_.release(bytes, util::MemTag::kResultCache);
  stats_.bytes -= bytes;
  map_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::insert(std::uint64_t epoch, const std::string& canonical,
                         const std::string& result) {
  const std::string key = make_key(epoch, canonical);
  const std::size_t incoming =
      key.size() + result.size() + kEntryOverhead;
  std::lock_guard<std::mutex> lock(mutex_);
  if (incoming > budget_) return;  // would evict everything and still not fit
  const auto it = map_.find(key);
  if (it != map_.end()) drop(it->second);  // refresh value and recency
  while (stats_.bytes + incoming > budget_ && !lru_.empty()) {
    drop(std::prev(lru_.end()));
    ++stats_.evictions;
    cache_metrics().evictions.inc();
  }
  lru_.push_front(Entry{key, result});
  map_.emplace(lru_.front().key, lru_.begin());
  tracker_.allocate(incoming, util::MemTag::kResultCache);
  stats_.bytes += incoming;
  ++stats_.insertions;
  cache_metrics().insertions.inc();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!lru_.empty()) drop(lru_.begin());
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace gsb::service
