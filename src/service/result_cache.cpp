#include "service/result_cache.h"

namespace gsb::service {

ResultCache::ResultCache(std::size_t byte_budget, util::MemoryTracker* tracker)
    : budget_(byte_budget),
      tracker_(tracker != nullptr ? *tracker
                                  : util::global_memory_tracker()) {}

ResultCache::~ResultCache() { clear(); }

std::optional<std::string> ResultCache::lookup(std::uint64_t epoch,
                                               const std::string& canonical) {
  const std::string key = make_key(epoch, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->value;
}

void ResultCache::drop(EntryList::iterator it) {
  const std::size_t bytes = entry_bytes(*it);
  tracker_.release(bytes, util::MemTag::kResultCache);
  stats_.bytes -= bytes;
  map_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::insert(std::uint64_t epoch, const std::string& canonical,
                         const std::string& result) {
  const std::string key = make_key(epoch, canonical);
  const std::size_t incoming =
      key.size() + result.size() + kEntryOverhead;
  std::lock_guard<std::mutex> lock(mutex_);
  if (incoming > budget_) return;  // would evict everything and still not fit
  const auto it = map_.find(key);
  if (it != map_.end()) drop(it->second);  // refresh value and recency
  while (stats_.bytes + incoming > budget_ && !lru_.empty()) {
    drop(std::prev(lru_.end()));
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, result});
  map_.emplace(lru_.front().key, lru_.begin());
  tracker_.allocate(incoming, util::MemTag::kResultCache);
  stats_.bytes += incoming;
  ++stats_.insertions;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!lru_.empty()) drop(lru_.begin());
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace gsb::service
