#include "service/query.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace gsb::service {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("query: " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::uint64_t parse_number(const std::string& token, const char* what) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || end != token.data() + token.size()) {
    fail(std::string("expected a non-negative ") + what + ", got '" + token +
         "'");
  }
  return value;
}

graph::VertexId parse_vertex(const std::string& token) {
  const std::uint64_t value = parse_number(token, "vertex id");
  if (value > 0xFFFFFFFFull) fail("vertex id '" + token + "' out of range");
  return static_cast<graph::VertexId>(value);
}

/// Sorted, deduplicated operand list for the order-insensitive kinds.
void canonicalize_set(std::vector<graph::VertexId>& vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
}

}  // namespace

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kNeighbors: return "neighbors";
    case QueryKind::kDegree: return "degree";
    case QueryKind::kCommonNeighbors: return "common-neighbors";
    case QueryKind::kInducedSubgraph: return "induced-subgraph";
    case QueryKind::kKcoreMembership: return "kcore-membership";
    case QueryKind::kCliquesContaining: return "cliques-containing";
    case QueryKind::kParacliqueExpand: return "paraclique-expand";
    case QueryKind::kTopHubs: return "top-hubs";
  }
  return "?";
}

Query parse_query(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) fail("empty query");
  const std::string& keyword = tokens.front();
  Query query;

  auto expect_operands = [&](std::size_t count) {
    if (tokens.size() != count + 1) {
      fail(keyword + " takes " + std::to_string(count) + " operand" +
           (count == 1 ? "" : "s") + ", got " +
           std::to_string(tokens.size() - 1));
    }
  };

  if (keyword == "neighbors" || keyword == "degree" ||
      keyword == "cliques-containing") {
    query.kind = keyword == "neighbors"   ? QueryKind::kNeighbors
                 : keyword == "degree"    ? QueryKind::kDegree
                                          : QueryKind::kCliquesContaining;
    expect_operands(1);
    query.vertices.push_back(parse_vertex(tokens[1]));
  } else if (keyword == "common-neighbors") {
    query.kind = QueryKind::kCommonNeighbors;
    expect_operands(2);
    query.vertices.push_back(parse_vertex(tokens[1]));
    query.vertices.push_back(parse_vertex(tokens[2]));
    if (query.vertices[0] == query.vertices[1]) {
      fail("common-neighbors operands must differ");
    }
    canonicalize_set(query.vertices);
  } else if (keyword == "induced-subgraph") {
    query.kind = QueryKind::kInducedSubgraph;
    if (tokens.size() < 2) fail("induced-subgraph needs at least one vertex");
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      query.vertices.push_back(parse_vertex(tokens[i]));
    }
    canonicalize_set(query.vertices);
  } else if (keyword == "kcore-membership") {
    query.kind = QueryKind::kKcoreMembership;
    expect_operands(2);
    query.k = static_cast<std::size_t>(parse_number(tokens[1], "core K"));
    query.vertices.push_back(parse_vertex(tokens[2]));
  } else if (keyword == "paraclique-expand") {
    query.kind = QueryKind::kParacliqueExpand;
    if (tokens.size() < 3) {
      fail("paraclique-expand needs a glom factor and at least one seed "
           "vertex");
    }
    query.k = static_cast<std::size_t>(parse_number(tokens[1], "glom factor"));
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      query.vertices.push_back(parse_vertex(tokens[i]));
    }
    canonicalize_set(query.vertices);
  } else if (keyword == "top-hubs") {
    query.kind = QueryKind::kTopHubs;
    expect_operands(1);
    query.k = static_cast<std::size_t>(parse_number(tokens[1], "hub count"));
    if (query.k == 0) fail("top-hubs count must be >= 1");
  } else {
    fail("unknown query '" + keyword + "'");
  }
  return query;
}

std::string canonical_query(const Query& query) {
  std::string out = query_kind_name(query.kind);
  const bool k_first = query.kind == QueryKind::kKcoreMembership ||
                       query.kind == QueryKind::kParacliqueExpand ||
                       query.kind == QueryKind::kTopHubs;
  if (k_first) out += ' ' + std::to_string(query.k);
  for (const graph::VertexId v : query.vertices) {
    out += ' ' + std::to_string(v);
  }
  return out;
}

}  // namespace gsb::service
