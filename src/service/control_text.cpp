#include "service/control_text.h"

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/timeline_export.h"
#include "obs/trace.h"
#include "service/result_cache.h"
#include "util/memory_tracker.h"

namespace gsb::service {

std::string latency_quantile_fields() {
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (!registry.enabled()) return {};
  obs::HistogramSnapshot merged;
  for (const auto& metric : registry.scrape().metrics) {
    if (metric.name != "gsb_request_duration_microseconds") continue;
    for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
      merged.buckets[i] += metric.histogram.buckets[i];
    }
    merged.count += metric.histogram.count;
    merged.sum_micros += metric.histogram.sum_micros;
  }
  if (merged.count == 0) return {};
  return " p50_us=" +
         std::to_string(obs::histogram_quantile_micros(merged, 0.50)) +
         " p99_us=" +
         std::to_string(obs::histogram_quantile_micros(merged, 0.99));
}

std::string render_stats_line(const StatsFields& fields) {
  std::string out = "ok stats: requests=" + std::to_string(fields.requests) +
                    " cache_hits=" + std::to_string(fields.cache_hits) +
                    " cache_misses=" + std::to_string(fields.cache_misses);
  if (fields.connections) {
    out += " connections=" + std::to_string(*fields.connections);
  }
  if (fields.busy) out += " busy=" + std::to_string(*fields.busy);
  if (fields.timeouts) out += " timeouts=" + std::to_string(*fields.timeouts);
  out += " accept_errors=" + std::to_string(fields.accept_errors) +
         " backlog=" + std::to_string(fields.backlog);
  if (fields.epoch) out += " epoch=" + std::to_string(*fields.epoch);
  out += " uptime_seconds=" + std::to_string(obs::process_uptime_seconds()) +
         " rss_bytes=" + std::to_string(util::process_current_rss_bytes());
  if (fields.cache != nullptr) {
    const auto cache_stats = fields.cache->stats();
    out += " cache_entries=" + std::to_string(cache_stats.entries) +
           " cache_bytes=" + std::to_string(cache_stats.bytes);
  }
  out += latency_quantile_fields();
  return out;
}

std::optional<std::string> metrics_response(const std::string& request) {
  if (request != "metrics" && request.rfind("metrics ", 0) != 0) {
    return std::nullopt;
  }
  std::string format =
      request == "metrics" ? std::string("prom") : request.substr(8);
  const auto begin = format.find_first_not_of(' ');
  if (begin == std::string::npos) {
    format = "prom";
  } else {
    const auto end = format.find_last_not_of(' ');
    format = format.substr(begin, end - begin + 1);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (!registry.enabled()) {
    return std::string("error: metrics disabled (serve with --metrics)");
  }
  if (format == "prom") {
    return "ok metrics prom " +
           obs::escape_multiline(obs::render_prometheus(registry.scrape()));
  }
  if (format == "json") {
    return "ok metrics json " + obs::render_json(registry.scrape());
  }
  if (format == "traces") {
    return "ok metrics traces " +
           obs::render_traces_json(obs::Tracer::global().slowest());
  }
  return "error: unknown metrics format '" + format +
         "' (expected prom, json, or traces)";
}

std::optional<std::string> profile_response(const std::string& request) {
  if (request != "profile" && request.rfind("profile ", 0) != 0) {
    return std::nullopt;
  }
  obs::TimelineJournal& journal = obs::TimelineJournal::global();
  if (request == "profile") {
    const auto snapshot = journal.snapshot();
    return "ok profile: enabled=" + std::to_string(journal.enabled() ? 1 : 0) +
           " events=" + std::to_string(snapshot.events.size()) +
           " dropped=" + std::to_string(snapshot.dropped);
  }
  std::string verb = request.substr(8);
  const auto begin = verb.find_first_not_of(' ');
  if (begin == std::string::npos) {
    verb.clear();
  } else {
    const auto end = verb.find_last_not_of(' ');
    verb = verb.substr(begin, end - begin + 1);
  }
  if (verb == "start") {
    // Fresh bounded window: previous events are discarded, buffers are
    // reused, and a full lane drops (and counts) instead of growing.
    journal.reset();
    journal.set_enabled(true);
    return std::string("ok profile started");
  }
  if (verb == "stop") {
    journal.set_enabled(false);
    return "ok profile " + obs::render_chrome_trace(journal.snapshot());
  }
  return "error: unknown profile verb '" + verb + "' (expected start or stop)";
}

bool is_control_request(const std::string& text) {
  return text == "ping" || text == "stats" || text == "shutdown" ||
         text == "reload" || text == "metrics" ||
         text.rfind("metrics ", 0) == 0 || text == "profile" ||
         text.rfind("profile ", 0) == 0;
}

}  // namespace gsb::service
