#include "service/control_text.h"

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/result_cache.h"
#include "util/memory_tracker.h"

namespace gsb::service {

std::string render_stats_line(const StatsFields& fields) {
  std::string out = "ok stats: requests=" + std::to_string(fields.requests) +
                    " cache_hits=" + std::to_string(fields.cache_hits) +
                    " cache_misses=" + std::to_string(fields.cache_misses);
  if (fields.connections) {
    out += " connections=" + std::to_string(*fields.connections);
  }
  if (fields.busy) out += " busy=" + std::to_string(*fields.busy);
  if (fields.timeouts) out += " timeouts=" + std::to_string(*fields.timeouts);
  out += " accept_errors=" + std::to_string(fields.accept_errors) +
         " backlog=" + std::to_string(fields.backlog);
  if (fields.epoch) out += " epoch=" + std::to_string(*fields.epoch);
  out += " uptime_seconds=" + std::to_string(obs::process_uptime_seconds()) +
         " rss_bytes=" + std::to_string(util::process_current_rss_bytes());
  if (fields.cache != nullptr) {
    const auto cache_stats = fields.cache->stats();
    out += " cache_entries=" + std::to_string(cache_stats.entries) +
           " cache_bytes=" + std::to_string(cache_stats.bytes);
  }
  return out;
}

std::optional<std::string> metrics_response(const std::string& request) {
  if (request != "metrics" && request.rfind("metrics ", 0) != 0) {
    return std::nullopt;
  }
  std::string format =
      request == "metrics" ? std::string("prom") : request.substr(8);
  const auto begin = format.find_first_not_of(' ');
  if (begin == std::string::npos) {
    format = "prom";
  } else {
    const auto end = format.find_last_not_of(' ');
    format = format.substr(begin, end - begin + 1);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (!registry.enabled()) {
    return std::string("error: metrics disabled (serve with --metrics)");
  }
  if (format == "prom") {
    return "ok metrics prom " +
           obs::escape_multiline(obs::render_prometheus(registry.scrape()));
  }
  if (format == "json") {
    return "ok metrics json " + obs::render_json(registry.scrape());
  }
  if (format == "traces") {
    return "ok metrics traces " +
           obs::render_traces_json(obs::Tracer::global().slowest());
  }
  return "error: unknown metrics format '" + format +
         "' (expected prom, json, or traces)";
}

bool is_control_request(const std::string& text) {
  return text == "ping" || text == "stats" || text == "shutdown" ||
         text == "reload" || text == "metrics" ||
         text.rfind("metrics ", 0) == 0;
}

}  // namespace gsb::service
