#include "service/query_engine.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "graph/transforms.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "storage/clique_stream.h"
#include "util/timer.h"

namespace gsb::service {
namespace {

void append_ids(std::string& out, const std::vector<graph::VertexId>& ids) {
  for (const graph::VertexId id : ids) {
    out += ' ';
    out += std::to_string(id);
  }
}

}  // namespace

QueryEngineStats& QueryEngineStats::operator+=(
    const QueryEngineStats& other) noexcept {
  executed += other.executed;
  errors += other.errors;
  index_queries += other.index_queries;
  stream_scans += other.stream_scans;
  records_decoded += other.records_decoded;
  return *this;
}

QueryEngine::QueryEngine(std::shared_ptr<const GraphEntry> entry)
    : entry_(std::move(entry)) {
  if (entry_ == nullptr) {
    throw std::invalid_argument("QueryEngine: null graph entry");
  }
}

graph::VertexId QueryEngine::stored_operand(graph::VertexId original) const {
  if (original >= entry_->order()) {
    throw std::runtime_error("vertex " + std::to_string(original) +
                             " out of range (graph order " +
                             std::to_string(entry_->order()) + ")");
  }
  return entry_->to_stored(original);
}

namespace {

/// Engine-level series: per-kind execution latency plus the access-path
/// counters (index hit vs stream rescan, records decoded).
struct EngineMetrics {
  std::array<obs::Histogram,
             static_cast<std::size_t>(QueryKind::kTopHubs) + 1>
      execute_micros;
  obs::Counter index_queries;
  obs::Counter stream_scans;
  obs::Counter records_decoded;
};

const EngineMetrics& engine_metrics() {
  static const EngineMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    EngineMetrics m;
    for (std::size_t k = 0; k < m.execute_micros.size(); ++k) {
      m.execute_micros[k] = registry.histogram(
          "gsb_query_execute_microseconds",
          "Engine execution latency per query type (cache misses only).",
          std::string("type=\"") +
              query_kind_name(static_cast<QueryKind>(k)) + "\"");
    }
    m.index_queries = registry.counter(
        "gsb_index_queries_total",
        "cliques-containing answered through the .gsbci index.");
    m.stream_scans = registry.counter(
        "gsb_stream_scans_total",
        "cliques-containing answered by a full .gsbc rescan.");
    m.records_decoded = registry.counter(
        "gsb_clique_records_decoded_total",
        "Clique records decoded while answering queries.");
    return m;
  }();
  return metrics;
}

}  // namespace

std::string QueryEngine::execute(const Query& query) {
  ++stats_.executed;
  const EngineMetrics& metrics = engine_metrics();
  const bool instrumented = obs::MetricsRegistry::global().enabled();
  util::Timer timer;
  const QueryEngineStats before = stats_;
  std::string response;
  try {
    obs::TimelineSpan span(obs::TimelineEventKind::kStage,
                           std::string("execute:") +
                               query_kind_name(query.kind));
    response = dispatch(query);
  } catch (const std::exception& error) {
    ++stats_.errors;
    response = "error: '" + canonical_query(query) + "': " + error.what();
  }
  if (instrumented) {
    metrics.execute_micros[static_cast<std::size_t>(query.kind)]
        .observe_micros(static_cast<std::uint64_t>(timer.micros()));
    metrics.index_queries.inc(stats_.index_queries - before.index_queries);
    metrics.stream_scans.inc(stats_.stream_scans - before.stream_scans);
    metrics.records_decoded.inc(stats_.records_decoded -
                                before.records_decoded);
  }
  return response;
}

std::string QueryEngine::execute_line(const std::string& line) {
  Query query;
  try {
    query = parse_query(line);
  } catch (const std::exception& error) {
    ++stats_.executed;
    ++stats_.errors;
    return std::string("error: ") + error.what();
  }
  return execute(query);
}

std::string QueryEngine::dispatch(const Query& query) {
  switch (query.kind) {
    case QueryKind::kNeighbors: return run_neighbors(query);
    case QueryKind::kDegree: return run_degree(query);
    case QueryKind::kCommonNeighbors: return run_common_neighbors(query);
    case QueryKind::kInducedSubgraph: return run_induced_subgraph(query);
    case QueryKind::kKcoreMembership: return run_kcore_membership(query);
    case QueryKind::kCliquesContaining: return run_cliques_containing(query);
    case QueryKind::kParacliqueExpand: return run_paraclique_expand(query);
    case QueryKind::kTopHubs: return run_top_hubs(query);
  }
  throw std::runtime_error("unhandled query kind");
}

std::string QueryEngine::run_neighbors(const Query& query) {
  const graph::VertexId stored = stored_operand(query.vertices[0]);
  std::vector<graph::VertexId> ids;
  ids.reserve(entry_->view().degree(stored));
  for (const graph::VertexId w : entry_->view().neighbor_list(stored)) {
    ids.push_back(entry_->to_original(w));
  }
  std::sort(ids.begin(), ids.end());
  std::string out = canonical_query(query) + ":";
  append_ids(out, ids);
  return out;
}

std::string QueryEngine::run_degree(const Query& query) {
  const graph::VertexId stored = stored_operand(query.vertices[0]);
  return canonical_query(query) + ": " +
         std::to_string(entry_->view().degree(stored));
}

std::string QueryEngine::run_common_neighbors(const Query& query) {
  const graph::VertexId a = stored_operand(query.vertices[0]);
  const graph::VertexId b = stored_operand(query.vertices[1]);
  // Walk the sparser row, probe the denser: O(min degree) bit tests.
  const graph::VertexId walk =
      entry_->view().degree(a) <= entry_->view().degree(b) ? a : b;
  const graph::VertexId probe = walk == a ? b : a;
  std::vector<graph::VertexId> ids;
  for (const graph::VertexId w : entry_->view().neighbor_list(walk)) {
    if (entry_->view().has_edge(probe, w)) {
      ids.push_back(entry_->to_original(w));
    }
  }
  std::sort(ids.begin(), ids.end());
  std::string out = canonical_query(query) + ":";
  append_ids(out, ids);
  return out;
}

std::string QueryEngine::run_induced_subgraph(const Query& query) {
  std::vector<graph::VertexId> stored;
  stored.reserve(query.vertices.size());
  for (const graph::VertexId v : query.vertices) {
    stored.push_back(stored_operand(v));
  }
  const auto induced = graph::induced_subgraph(entry_->view(), stored);
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  edges.reserve(induced.graph.num_edges());
  for (const auto& [a, b] : induced.graph.edge_list()) {
    const graph::VertexId u = entry_->to_original(induced.mapping[a]);
    const graph::VertexId v = entry_->to_original(induced.mapping[b]);
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(edges.begin(), edges.end());
  std::string out = canonical_query(query) + ": n=" +
                    std::to_string(induced.graph.order()) +
                    " m=" + std::to_string(edges.size());
  for (const auto& [u, v] : edges) {
    out += ' ' + std::to_string(u) + '-' + std::to_string(v);
  }
  return out;
}

std::string QueryEngine::run_kcore_membership(const Query& query) {
  const graph::VertexId stored = stored_operand(query.vertices[0]);
  const auto mask = graph::kcore_mask(entry_->view(), query.k);
  return canonical_query(query) + (mask.test(stored) ? ": 1" : ": 0");
}

std::string QueryEngine::run_cliques_containing(const Query& query) {
  const graph::VertexId v = query.vertices[0];
  if (v >= entry_->order()) {
    throw std::runtime_error("vertex " + std::to_string(v) +
                             " out of range (graph order " +
                             std::to_string(entry_->order()) + ")");
  }
  if (!entry_->has_cliques()) {
    throw std::runtime_error(
        "no clique stream attached (open with --cliques FILE.gsbc)");
  }
  // Cliques live in original labels on disk, so no permutation folding
  // here — the stream is the source of truth either way.
  std::string out = canonical_query(query) + ":";
  std::vector<graph::VertexId> clique;
  bool first = true;
  auto emit = [&](const std::vector<graph::VertexId>& members) {
    out += first ? " " : ", ";
    first = false;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(members[i]);
    }
  };
  if (const CliqueIndex* index = entry_->index()) {
    // Random access: touch exactly |postings(v)| records, never the rest
    // of the stream.
    if (!random_reader_) {
      random_reader_.emplace(entry_->cliques_path(), *index);
    }
    ++stats_.index_queries;
    for (const std::uint64_t id : index->postings(v)) {
      random_reader_->read(id, clique);
      ++stats_.records_decoded;
      emit(clique);
    }
  } else {
    ++stats_.stream_scans;
    auto reader = storage::GsbcReader::open(entry_->cliques_path());
    while (reader.next(clique)) {
      ++stats_.records_decoded;
      if (std::binary_search(clique.begin(), clique.end(), v)) emit(clique);
    }
  }
  return out;
}

std::string QueryEngine::run_paraclique_expand(const Query& query) {
  std::vector<graph::VertexId> seed;
  seed.reserve(query.vertices.size());
  for (const graph::VertexId v : query.vertices) {
    seed.push_back(stored_operand(v));
  }
  std::sort(seed.begin(), seed.end());
  for (std::size_t i = 0; i < seed.size(); ++i) {
    for (std::size_t j = i + 1; j < seed.size(); ++j) {
      if (!entry_->view().has_edge(seed[i], seed[j])) {
        throw std::runtime_error(
            "seed is not a clique: " +
            std::to_string(entry_->to_original(seed[i])) + " and " +
            std::to_string(entry_->to_original(seed[j])) +
            " are not adjacent");
      }
    }
  }
  analysis::ParacliqueOptions options;
  options.glom = query.k;
  const auto grown =
      analysis::grow_paraclique(entry_->view(), seed, options);
  std::vector<graph::VertexId> ids;
  ids.reserve(grown.members.size());
  for (const graph::VertexId v : grown.members) {
    ids.push_back(entry_->to_original(v));
  }
  std::sort(ids.begin(), ids.end());
  std::string out = canonical_query(query) + ":";
  append_ids(out, ids);
  return out;
}

std::string QueryEngine::run_top_hubs(const Query& query) {
  const auto hubs =
      analysis::top_hubs(entry_->view(), entry_->participation(), query.k);
  std::string out = canonical_query(query) + ":";
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    out += i == 0 ? " " : "; ";
    out += std::to_string(entry_->to_original(hubs[i].vertex)) +
           " deg=" + std::to_string(hubs[i].degree) +
           " cliques=" + std::to_string(hubs[i].clique_participation);
  }
  return out;
}

}  // namespace gsb::service
