#ifndef GSB_SERVICE_CONTROL_TEXT_H
#define GSB_SERVICE_CONTROL_TEXT_H

/// Control-plane response text shared by every serve transport.
///
/// The Unix/stream loop and the TCP event loop used to hand-roll their
/// own `ok stats: ...` lines, which drifted.  Both now feed a StatsFields
/// through render_stats_line (existing keys and their order preserved;
/// uptime_seconds and rss_bytes appended), and both answer the `metrics`
/// control request through metrics_response.

#include <cstdint>
#include <optional>
#include <string>

namespace gsb::service {

class ResultCache;

struct StatsFields {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// TCP-only fields; emitted when set so the Unix loop's key set is
  /// unchanged.
  std::optional<std::uint64_t> connections;
  std::optional<std::uint64_t> busy;
  /// Emitted only when a deadline/idle/write timeout is configured.
  std::optional<std::uint64_t> timeouts;
  std::uint64_t accept_errors = 0;
  int backlog = 0;
  std::optional<std::uint64_t> epoch;
  const ResultCache* cache = nullptr;
};

/// `ok stats: requests=... [connections=... busy=...] accept_errors=...
/// backlog=... [epoch=...] uptime_seconds=... rss_bytes=...
/// [cache_entries=... cache_bytes=...] [p50_us=... p99_us=...]`
/// The latency quantiles are interpolated from the registry's request
/// histograms and appear only when the registry is enabled and has
/// observed at least one timed request.
std::string render_stats_line(const StatsFields& fields);

/// ` p50_us=... p99_us=...` (leading space) interpolated from the
/// registry's request-duration histograms, merged across transports and
/// cache outcomes.  Empty while the registry is disabled or before the
/// first timed request, so default serve runs keep the historical stats
/// key set byte for byte.  Shared by the stats control line and the
/// `gsb serve` exit summary.
std::string latency_quantile_fields();

/// Answers `metrics` / `metrics prom` / `metrics json` / `metrics traces`
/// (single-line responses; Prometheus text is newline-escaped — see
/// obs/exposition.h).  nullopt when `request` is not a metrics request;
/// an error line when the registry is disabled or the format is unknown.
std::optional<std::string> metrics_response(const std::string& request);

/// Answers the `profile` family: `profile start` begins a fresh timeline
/// capture window, `profile stop` disables recording and returns
/// `ok profile <chrome-trace-json>` (one line — the Chrome trace is
/// rendered without newlines), and bare `profile` reports
/// `ok profile: enabled=... events=... dropped=...`.  nullopt when
/// `request` is not a profile request.
std::optional<std::string> profile_response(const std::string& request);

/// True for requests a serve loop answers inline without an engine
/// (ping/stats/shutdown/reload and the metrics/profile families).
bool is_control_request(const std::string& text);

}  // namespace gsb::service

#endif  // GSB_SERVICE_CONTROL_TEXT_H
