#ifndef GSB_SERVICE_CONTROL_TEXT_H
#define GSB_SERVICE_CONTROL_TEXT_H

/// Control-plane response text shared by every serve transport.
///
/// The Unix/stream loop and the TCP event loop used to hand-roll their
/// own `ok stats: ...` lines, which drifted.  Both now feed a StatsFields
/// through render_stats_line (existing keys and their order preserved;
/// uptime_seconds and rss_bytes appended), and both answer the `metrics`
/// control request through metrics_response.

#include <cstdint>
#include <optional>
#include <string>

namespace gsb::service {

class ResultCache;

struct StatsFields {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// TCP-only fields; emitted when set so the Unix loop's key set is
  /// unchanged.
  std::optional<std::uint64_t> connections;
  std::optional<std::uint64_t> busy;
  /// Emitted only when a deadline/idle/write timeout is configured.
  std::optional<std::uint64_t> timeouts;
  std::uint64_t accept_errors = 0;
  int backlog = 0;
  std::optional<std::uint64_t> epoch;
  const ResultCache* cache = nullptr;
};

/// `ok stats: requests=... [connections=... busy=...] accept_errors=...
/// backlog=... [epoch=...] uptime_seconds=... rss_bytes=...
/// [cache_entries=... cache_bytes=...]`
std::string render_stats_line(const StatsFields& fields);

/// Answers `metrics` / `metrics prom` / `metrics json` / `metrics traces`
/// (single-line responses; Prometheus text is newline-escaped — see
/// obs/exposition.h).  nullopt when `request` is not a metrics request;
/// an error line when the registry is disabled or the format is unknown.
std::optional<std::string> metrics_response(const std::string& request);

/// True for requests a serve loop answers inline without an engine
/// (ping/stats/shutdown/reload and the metrics family).
bool is_control_request(const std::string& text);

}  // namespace gsb::service

#endif  // GSB_SERVICE_CONTROL_TEXT_H
