#ifndef GSB_SERVICE_BATCH_EXECUTOR_H
#define GSB_SERVICE_BATCH_EXECUTOR_H

/// \file batch_executor.h
/// Fans a batch of independent query lines over the thread pool.
///
/// Queries are embarrassingly parallel — every request line is parsed and
/// executed by a per-thread QueryEngine over the shared read-only
/// GraphEntry, with responses written into their input slots, so batch
/// output is a function of the input sequence alone: the same bytes at
/// every thread count and with the cache on or off (service_test pins
/// both).  This mirrors StochSoCs' observation that throughput at genome
/// scale comes from many concurrent independent requests against one
/// resident model.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "service/result_cache.h"

namespace gsb::service {

struct BatchOptions {
  std::size_t threads = 0;       ///< 0 = hardware cores, 1 = run inline
  ResultCache* cache = nullptr;  ///< optional shared response cache
  par::ThreadPool* pool = nullptr;  ///< borrowed pool (serve loop reuse);
                                    ///< must have >= `threads` workers
  /// Borrowed per-thread engines over the same entry (serve loop reuse,
  /// so lazily opened clique readers persist across calls).  Fewer
  /// entries than `threads` clamps the thread count; BatchResult.engine
  /// still reports this call's activity only.
  std::vector<QueryEngine>* engines = nullptr;
};

struct BatchResult {
  std::vector<std::string> responses;  ///< one per input line, input order
  QueryEngineStats engine;             ///< merged across worker engines
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t threads_used = 1;
};

/// Executes every line of \p lines against \p entry and returns the
/// responses in input order.  Per-line failures become `error:` responses;
/// the call itself only throws on setup problems (null entry).
BatchResult execute_batch(std::shared_ptr<const GraphEntry> entry,
                          const std::vector<std::string>& lines,
                          const BatchOptions& options = {});

/// One request line through parse -> cache -> engine — the single code
/// path both execute_batch and the serve loop's connections use, so every
/// transport serves identical bytes.  Successful responses are cached
/// under (entry epoch, canonical query); `error:` responses never are.
std::string execute_cached_line(QueryEngine& engine, ResultCache* cache,
                                const std::string& line,
                                std::uint64_t& cache_hits,
                                std::uint64_t& cache_misses);

}  // namespace gsb::service

#endif  // GSB_SERVICE_BATCH_EXECUTOR_H
