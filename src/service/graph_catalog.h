#ifndef GSB_SERVICE_GRAPH_CATALOG_H
#define GSB_SERVICE_GRAPH_CATALOG_H

/// \file graph_catalog.h
/// Named, ref-counted access to resident graph artifacts.
///
/// The batch pipeline re-opens its inputs on every invocation; the query
/// service keeps them resident instead.  A GraphCatalog maps names to
/// GraphEntry instances — a memory-mapped `.gsbg` (or a loaded text graph),
/// its companion `.gsbc` clique stream, and the `.gsbci` sidecar index when
/// one exists.  Entries are handed out as shared_ptr: the catalog holds one
/// reference, every live query engine holds another, so `close()` (or a
/// replacing `open()`) drops the catalog's reference immediately while
/// in-flight queries finish against the old mapping safely.
///
/// Every successful open stamps the entry with a process-unique, monotone
/// **epoch**.  The result cache keys on (epoch, canonical query), so
/// replacing a graph under the same name can never serve stale cached
/// answers — the old epoch's entries simply age out of the LRU.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "service/clique_index.h"
#include "storage/mapped_graph.h"

namespace gsb::service {

/// What to open under a catalog name.
struct GraphSpec {
  std::string graph_path;    ///< .gsbg (mmap'd) or any text/binary format
  std::string format;        ///< forwarded to the graph loader; "" = sniff
  std::string cliques_path;  ///< optional companion .gsbc
  std::string index_path;    ///< optional .gsbci; "" probes the sidecar
                             ///< default_index_path(cliques_path)
  bool probe_index = true;   ///< false: never auto-load the sidecar
                             ///< (forces stream rescans)
};

/// One resident graph with its clique artifacts.  Read-only after open;
/// the lazily computed participation vector is internally synchronized.
class GraphEntry {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const graph::GraphView& view() const noexcept { return view_; }
  [[nodiscard]] std::size_t order() const noexcept { return view_.order(); }

  [[nodiscard]] bool has_cliques() const noexcept {
    return !cliques_path_.empty();
  }
  [[nodiscard]] const std::string& cliques_path() const noexcept {
    return cliques_path_;
  }
  /// The `.gsbci` index, or nullptr when the entry runs on stream rescans.
  [[nodiscard]] const CliqueIndex* index() const noexcept {
    return index_.is_open() ? &index_ : nullptr;
  }

  /// True when the backing container is degree-sorted (stored ids differ
  /// from the original labeling queries and streams use).
  [[nodiscard]] bool has_permutation() const noexcept {
    return !inverse_permutation_.empty();
  }
  /// Original label -> stored id (identity without a permutation).
  [[nodiscard]] graph::VertexId to_stored(graph::VertexId original)
      const noexcept {
    return has_permutation() ? inverse_permutation_[original] : original;
  }
  /// Stored id -> original label (identity without a permutation).
  [[nodiscard]] graph::VertexId to_original(graph::VertexId stored)
      const noexcept {
    return has_permutation()
               ? static_cast<graph::VertexId>(mapped_.permutation()[stored])
               : stored;
  }

  /// Per-vertex clique participation in *stored* id space, computed once on
  /// first use: from the index posting lengths when present, else one
  /// forward scan of the stream; all zeros without a cliques source.
  const std::vector<std::uint32_t>& participation() const;

 private:
  friend class GraphCatalog;
  GraphEntry() = default;

  std::string name_;
  std::uint64_t epoch_ = 0;
  storage::MappedGraph mapped_;
  graph::Graph owned_;
  graph::GraphView view_;
  std::vector<graph::VertexId> inverse_permutation_;
  std::string cliques_path_;
  CliqueIndex index_;

  mutable std::mutex participation_mutex_;
  mutable std::vector<std::uint32_t> participation_;
  mutable bool participation_ready_ = false;
};

/// Thread-safe name -> GraphEntry map.
class GraphCatalog {
 public:
  /// Opens \p spec under \p name (replacing any previous entry under that
  /// name with a fresh epoch) and returns the shared entry.  Throws
  /// std::runtime_error on any open/validation failure, leaving a previous
  /// entry under the name untouched.
  std::shared_ptr<GraphEntry> open(const std::string& name,
                                   const GraphSpec& spec);

  /// The entry under \p name, or nullptr.
  [[nodiscard]] std::shared_ptr<GraphEntry> get(const std::string& name) const;

  /// Drops the catalog's reference under \p name; returns false when the
  /// name is unknown.  Outstanding handles keep the entry alive.
  bool close(const std::string& name);

  /// Open names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Live handles to \p name's entry outside the catalog (0 when unknown).
  [[nodiscard]] std::size_t external_refs(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<GraphEntry>>> entries_;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_GRAPH_CATALOG_H
