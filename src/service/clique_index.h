#ifndef GSB_SERVICE_CLIQUE_INDEX_H
#define GSB_SERVICE_CLIQUE_INDEX_H

/// \file clique_index.h
/// The `.gsbci` clique-index sidecar: builder, memory-mapped reader, and a
/// random-access record reader over the companion `.gsbc` stream.
///
/// `build_clique_index` makes two forward passes over a `.gsbc` (offsets
/// and participation counts, then CSR posting fill — O(member_total)
/// memory, never a materialized clique set) and writes the sidecar spec'd
/// in storage/gsbci_format.h.  `CliqueIndex`
/// memory-maps the sidecar — opening is O(1) work plus validation scans —
/// and serves per-vertex posting lists and per-clique byte offsets.
/// `CliqueRandomReader` combines both: given a clique id it seeks straight
/// to the record in the `.gsbc` and decodes exactly that record, which is
/// what lets `cliques-containing v` touch |postings(v)| records instead of
/// rescanning the stream.

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "storage/gsbci_format.h"

namespace gsb::service {

/// Totals reported by build_clique_index().
struct CliqueIndexBuildStats {
  std::uint64_t clique_count = 0;
  std::uint64_t posting_total = 0;
  std::uint64_t file_bytes = 0;
};

/// Scans \p gsbc_path once and writes the `.gsbci` sidecar to \p out_path.
/// Throws std::runtime_error on any stream malformation or write failure.
CliqueIndexBuildStats build_clique_index(const std::string& gsbc_path,
                                         const std::string& out_path);

/// Default sidecar path for a stream: `X.gsbc` -> `X.gsbci` (any other
/// extension just gains `.gsbci`).
std::string default_index_path(const std::string& gsbc_path);

/// Memory-mapped `.gsbci` reader.
class CliqueIndex {
 public:
  CliqueIndex() = default;
  ~CliqueIndex();
  CliqueIndex(CliqueIndex&& other) noexcept;
  CliqueIndex& operator=(CliqueIndex&& other) noexcept;
  CliqueIndex(const CliqueIndex&) = delete;
  CliqueIndex& operator=(const CliqueIndex&) = delete;

  /// Maps \p path read-only, validating magic, version, exact file size,
  /// monotone offset arrays and posting bounds.  Throws std::runtime_error
  /// on any malformation.
  static CliqueIndex open(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return base_ != nullptr; }
  [[nodiscard]] const storage::GsbciHeader& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t order() const noexcept { return header_.n; }
  [[nodiscard]] std::uint64_t clique_count() const noexcept {
    return header_.clique_count;
  }
  [[nodiscard]] std::uint64_t posting_total() const noexcept {
    return header_.posting_total;
  }
  /// Header checksum of the companion `.gsbc` this index was built from.
  [[nodiscard]] std::uint64_t source_checksum() const noexcept {
    return header_.source_checksum;
  }

  /// Ascending clique ids whose records contain \p v.
  [[nodiscard]] std::span<const std::uint64_t> postings(
      graph::VertexId v) const noexcept {
    return postings_.subspan(posting_offsets_[v],
                             posting_offsets_[v + 1] - posting_offsets_[v]);
  }

  /// Number of cliques containing \p v — participation without touching
  /// the stream at all.
  [[nodiscard]] std::uint64_t participation(graph::VertexId v) const noexcept {
    return posting_offsets_[v + 1] - posting_offsets_[v];
  }

  /// Absolute byte offset of record \p clique_id in the companion stream.
  [[nodiscard]] std::uint64_t clique_offset(std::uint64_t clique_id)
      const noexcept {
    return clique_offsets_[clique_id];
  }

 private:
  void release() noexcept;

  storage::GsbciHeader header_;
  const char* base_ = nullptr;  ///< mapped (or heap fallback) file bytes
  std::size_t map_bytes_ = 0;
  bool heap_backed_ = false;
  std::span<const std::uint64_t> clique_offsets_;
  std::span<const std::uint64_t> posting_offsets_;
  std::span<const std::uint64_t> postings_;
};

/// Random-access record reader over a `.gsbc`, driven by a CliqueIndex.
/// Holds its own file handle, so each concurrent query thread owns one.
class CliqueRandomReader {
 public:
  /// Opens \p gsbc_path and binds it to \p index: the stream's header
  /// checksum must equal the index's source_checksum (a rebuilt stream
  /// with a stale sidecar is rejected, not silently misread).
  CliqueRandomReader(const std::string& gsbc_path, const CliqueIndex& index);

  CliqueRandomReader(CliqueRandomReader&&) = default;
  CliqueRandomReader& operator=(CliqueRandomReader&&) = default;

  /// Decodes record \p clique_id into \p out (ascending member ids).
  /// Throws std::runtime_error if the record bytes are malformed.
  void read(std::uint64_t clique_id, std::vector<graph::VertexId>& out);

  /// Records decoded since construction (the service_test uses this to
  /// assert indexed queries never rescan the stream).
  [[nodiscard]] std::uint64_t records_decoded() const noexcept {
    return records_decoded_;
  }

 private:
  const CliqueIndex* index_ = nullptr;
  std::ifstream in_;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t universe_ = 0;
  std::vector<unsigned char> buffer_;
  std::uint64_t records_decoded_ = 0;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_CLIQUE_INDEX_H
