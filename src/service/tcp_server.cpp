#include "service/tcp_server.h"

#include <cstring>
#include <stdexcept>

#include "service/batch_executor.h"
#include "service/wire_protocol.h"

#if defined(__linux__)

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "service/control_text.h"
#include "util/io.h"
#include "util/timer.h"

namespace gsb::service {
namespace {

constexpr int kEpollTimeoutMs = 200;
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kMaxReadPerTick = 256 * 1024;
constexpr std::size_t kMaxSendPerCall = 256 * 1024;

std::string trimmed(const std::string& line) {
  const auto begin = line.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = line.find_last_not_of(" \t\r\n");
  return line.substr(begin, end - begin + 1);
}

/// The TCP event loop's counters on the global registry; inert until the
/// registry is enabled.  The epoll wakeup counter ticks on idle timeouts
/// too — a healthy idle server shows ~5/s, a hot one shows wakeups
/// tracking request bursts.
struct LoopMetrics {
  obs::Counter requests;
  obs::Counter connections;
  obs::Counter accept_errors;
  obs::Counter bytes_in;
  obs::Counter bytes_out;
  obs::Counter busy_rejections;
  obs::Counter protocol_errors;
  obs::Counter disconnects;
  obs::Counter reloads;
  obs::Counter epoll_wakeups;
  obs::Counter timeout_requests;
  obs::Counter timeout_idle;
  obs::Counter timeout_write;
  obs::Histogram socket_write;
};

const LoopMetrics& loop_metrics() {
  static const LoopMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    const std::string labels = "transport=\"tcp\"";
    LoopMetrics m;
    m.requests = registry.counter("gsb_requests_total",
                                  "Requests received per transport.", labels);
    m.connections =
        registry.counter("gsb_connections_total",
                         "Connections accepted per transport.", labels);
    m.accept_errors = registry.counter(
        "gsb_accept_errors_total", "Failed accept() calls per transport.",
        labels);
    m.bytes_in = registry.counter(
        "gsb_bytes_read_total", "Request bytes read per transport.", labels);
    m.bytes_out = registry.counter(
        "gsb_bytes_written_total", "Response bytes written per transport.",
        labels);
    m.busy_rejections = registry.counter(
        "gsb_busy_rejections_total",
        "Requests answered `busy:` by admission control.");
    m.protocol_errors = registry.counter(
        "gsb_protocol_errors_total", "Malformed binary-protocol frames.");
    m.disconnects = registry.counter(
        "gsb_disconnects_total", "Connections dropped mid-session.");
    m.reloads = registry.counter("gsb_reloads_total",
                                 "Successful catalog hot reloads.");
    m.epoll_wakeups = registry.counter(
        "gsb_epoll_wakeups_total",
        "Event-loop wakeups (events ready or idle timeout).");
    const char* timeout_name = "gsb_timeouts_total";
    const char* timeout_help =
        "Requests or connections timed out, by timeout kind.";
    m.timeout_requests =
        registry.counter(timeout_name, timeout_help, "kind=\"request\"");
    m.timeout_idle =
        registry.counter(timeout_name, timeout_help, "kind=\"idle\"");
    m.timeout_write =
        registry.counter(timeout_name, timeout_help, "kind=\"write\"");
    m.socket_write = registry.histogram(
        "gsb_socket_write_microseconds",
        "Time spent writing responses to the socket.", labels);
    return m;
  }();
  return metrics;
}

/// One queued request: a query awaiting a worker, a control request
/// answered inline at its turn, or a pre-computed response (admission
/// `busy`) — all three flow through the same per-connection FIFO so
/// responses leave in request order on both protocols.
struct Pending {
  enum class Kind { kQuery, kControl, kReady };
  Kind kind = Kind::kQuery;
  std::uint64_t id = 0;  ///< binary request id; 0 on the line protocol
  std::string text;      ///< request text (kQuery / kControl)
  std::string ready;     ///< response bytes (kReady)
  /// Arrival time; the request deadline runs from here.
  std::chrono::steady_clock::time_point enqueued;
};

struct Conn {
  enum class Proto { kUnknown, kLine, kBinary };

  int fd = -1;
  Proto proto = Proto::kUnknown;
  std::string in;   ///< unparsed input bytes
  std::string out;  ///< framed response bytes awaiting send
  std::deque<Pending> queue;
  bool executing = false;  ///< one request on a worker right now
  bool eof = false;        ///< no more reads: drain queue + out, then close
  bool fatal = false;      ///< protocol error: flush out, then close
  bool dead = false;       ///< unregistered; late completions are discarded
  /// Engine over the entry a worker last built it for; rebuilt (and its
  /// stats banked) when a hot reload swaps the served entry.
  std::unique_ptr<QueryEngine> engine;
  const GraphEntry* engine_entry = nullptr;
  /// Timeout bookkeeping, swept on epoll ticks: last byte read from the
  /// peer, and last forward progress writing to it.
  std::chrono::steady_clock::time_point last_activity;
  std::chrono::steady_clock::time_point last_write_progress;
};

struct Job {
  std::shared_ptr<Conn> conn;
  std::uint64_t id = 0;
  std::string text;
  std::shared_ptr<const GraphEntry> entry;
  std::chrono::steady_clock::time_point enqueued;
};

struct Completion {
  std::shared_ptr<Conn> conn;
  std::uint64_t id = 0;
  std::string response;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::chrono::steady_clock::time_point enqueued;
};

/// The epoll event loop plus its worker pool: all socket I/O on one
/// thread, query execution fanned out, at most one in-flight request per
/// connection (request-order responses, lock-free engine use).
class Loop {
 public:
  Loop(std::shared_ptr<const GraphEntry> entry, int listen_fd,
       const TcpServerOptions& options)
      : entry_(std::move(entry)), options_(options), listen_fd_(listen_fd) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw std::runtime_error("serve: epoll_create1 failed");
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) {
      ::close(epoll_fd_);
      throw std::runtime_error("serve: eventfd failed");
    }
    add_fd(listen_fd_, EPOLLIN);
    add_fd(event_fd_, EPOLLIN);
  }

  ~Loop() {
    stop_workers();
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    for (auto& [fd, conn] : conns_) {
      ::close(fd);
      conn->dead = true;
    }
  }

  TcpServeStats run() {
    std::size_t threads = options_.threads;
    if (threads == 0) threads = par::ThreadPool::default_threads();
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this, t] { worker(t); });
    }

    // Configured timeouts need ticks at roughly half their granularity;
    // without any, the stock 200ms shutdown-poll tick suffices.
    int tick_ms = kEpollTimeoutMs;
    for (const std::size_t t :
         {options_.request_timeout_ms, options_.idle_timeout_ms,
          options_.write_timeout_ms}) {
      if (t != 0) {
        tick_ms = std::min<int>(
            tick_ms, std::max<int>(10, static_cast<int>(t / 2)));
      }
    }

    epoll_event events[64];
    while (true) {
      const int ready = ::epoll_wait(epoll_fd_, events, 64, tick_ms);
      if (ready < 0 && errno != EINTR) {
        throw std::runtime_error("serve: epoll_wait failed");
      }
      metrics_.epoll_wakeups.inc();
      for (int i = 0; i < std::max(ready, 0); ++i) {
        const int fd = events[i].data.fd;
        if (fd == listen_fd_) {
          if (accepting_) accept_new();
        } else if (fd == event_fd_) {
          drain_eventfd();
        } else {
          const auto it = conns_.find(fd);
          if (it == conns_.end()) continue;  // dropped earlier this tick
          const std::shared_ptr<Conn> conn = it->second;
          if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
            readable(conn);
          }
          if (!conn->dead && (events[i].events & EPOLLOUT) != 0) {
            flush_out(conn);
            maybe_close(conn);
          }
        }
      }
      drain_completions();
      sweep_timeouts();
      if (!stopping_ && options_.stop != nullptr &&
          options_.stop->load(std::memory_order_relaxed)) {
        begin_shutdown();
      }
      if (stopping_ && conns_.empty() && inflight_jobs_ == 0) break;
    }

    stop_workers();
    stats_.engine = QueryEngineStats{};
    stats_.engine += engine_stats_;
    stats_.shutdown_requested = shutdown_;
    return stats_;
  }

 private:
  // --- epoll plumbing -------------------------------------------------------

  void add_fd(int fd, std::uint32_t mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw std::runtime_error("serve: epoll_ctl(ADD) failed");
    }
  }

  void update_interest(const std::shared_ptr<Conn>& conn) {
    if (conn->dead) return;
    epoll_event ev{};
    ev.events = 0;
    if (!conn->eof && !conn->fatal) ev.events |= EPOLLIN;
    if (!conn->out.empty()) ev.events |= EPOLLOUT;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void wake() {
    const std::uint64_t one = 1;
    while (::write(event_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
    }
  }

  void drain_eventfd() {
    std::uint64_t value = 0;
    while (::read(event_fd_, &value, sizeof(value)) > 0 || errno == EINTR) {
    }
  }

  // --- connection lifecycle -------------------------------------------------

  void accept_new() {
    while (true) {
      const int fd = util::io::accept_nonblock(listen_fd_);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        ++stats_.accept_errors;
        metrics_.accept_errors.inc();
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->last_activity = std::chrono::steady_clock::now();
      conn->last_write_progress = conn->last_activity;
      conns_.emplace(fd, conn);
      ++stats_.connections;
      metrics_.connections.inc();
      add_fd(fd, EPOLLIN);
    }
  }

  /// Unregisters the connection now; a worker still computing for it
  /// finishes harmlessly (it never touches the fd) and its completion is
  /// discarded.
  void drop(const std::shared_ptr<Conn>& conn) {
    if (conn->dead) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    conn->dead = true;
    conn->queue.clear();
    if (!conn->executing) bank_engine(*conn);
  }

  void disconnect(const std::shared_ptr<Conn>& conn) {
    ++stats_.disconnects;
    metrics_.disconnects.inc();
    drop(conn);
  }

  void maybe_close(const std::shared_ptr<Conn>& conn) {
    if (conn->dead) return;
    if (conn->fatal && conn->out.empty() && !conn->executing) {
      drop(conn);
      return;
    }
    if (conn->eof && conn->out.empty() && conn->queue.empty() &&
        !conn->executing) {
      drop(conn);
    }
  }

  /// Merges a retiring engine's counters (connection close or reload
  /// rebuild).  Workers bank under the completion mutex too, so the sum
  /// is exact however an engine retires.
  void bank_engine(Conn& conn) {
    if (conn.engine == nullptr) return;
    std::lock_guard<std::mutex> lock(completion_mutex_);
    engine_stats_ += conn.engine->stats();
    conn.engine.reset();
    conn.engine_entry = nullptr;
  }

  // --- reading and parsing --------------------------------------------------

  void readable(const std::shared_ptr<Conn>& conn) {
    if (conn->dead || conn->eof || conn->fatal) return;
    char buf[kReadChunk];
    std::size_t total = 0;
    while (total < kMaxReadPerTick) {
      const ssize_t n = util::io::recv_some(conn->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        disconnect(conn);
        return;
      }
      if (n == 0) {
        conn->eof = true;
        break;
      }
      conn->in.append(buf, static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      metrics_.bytes_in.inc(static_cast<std::uint64_t>(n));
    }
    if (total > 0) conn->last_activity = std::chrono::steady_clock::now();
    parse(conn);
    if (conn->dead) return;
    if (conn->eof && conn->proto == Conn::Proto::kLine && !conn->in.empty()) {
      // EOF: a final request without a trailing newline is still a
      // request — answer it before closing instead of dropping it.
      const std::string text = trimmed(conn->in);
      conn->in.clear();
      if (!text.empty()) enqueue_text(conn, 0, text);
    }
    pump(conn);
    if (conn->dead) return;
    flush_out(conn);
    maybe_close(conn);
  }

  void parse(const std::shared_ptr<Conn>& conn) {
    if (conn->proto == Conn::Proto::kUnknown) {
      if (conn->in.empty()) return;
      conn->proto = static_cast<std::uint8_t>(conn->in[0]) == wire::kVersion
                        ? Conn::Proto::kBinary
                        : Conn::Proto::kLine;
    }
    std::size_t pos = 0;
    if (conn->proto == Conn::Proto::kLine) {
      for (std::size_t nl = conn->in.find('\n', pos);
           nl != std::string::npos; nl = conn->in.find('\n', pos)) {
        const std::string text = trimmed(conn->in.substr(pos, nl - pos));
        pos = nl + 1;
        if (text.empty()) continue;  // blank keep-alive: no response
        enqueue_text(conn, 0, text);
        if (conn->dead || conn->fatal) break;
      }
    } else {
      while (!conn->dead && !conn->fatal) {
        std::size_t consumed = 0;
        std::uint64_t id = 0;
        std::string payload;
        const auto result = wire::decode_request(
            std::string_view(conn->in).substr(pos), consumed, id, payload);
        if (result == wire::DecodeResult::kNeedMore) break;
        if (result == wire::DecodeResult::kMalformed) {
          protocol_error(conn);
          break;
        }
        pos += consumed;
        const std::string text = trimmed(payload);
        if (text.empty()) {
          enqueue_ready(conn, id, "error: empty request");
        } else {
          enqueue_text(conn, id, text);
        }
      }
    }
    if (!conn->dead) conn->in.erase(0, pos);
  }

  void protocol_error(const std::shared_ptr<Conn>& conn) {
    ++stats_.protocol_errors;
    metrics_.protocol_errors.inc();
    respond(conn, 0, "error: malformed frame");
    conn->fatal = true;  // flush what is queued on the wire, then close
    conn->queue.clear();
  }

  /// Admission control + enqueue: control requests always pass; queries
  /// beyond the pipeline or in-flight-byte bound are answered `busy` at
  /// their FIFO turn; a connection that floods without draining at all is
  /// disconnected once its backlog reaches 4x the byte budget.
  void enqueue_text(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                    std::string text) {
    ++stats_.requests;
    metrics_.requests.inc();
    if (is_control_request(text)) {
      Pending p;
      p.kind = Pending::Kind::kControl;
      p.id = id;
      p.text = std::move(text);
      conn->queue.push_back(std::move(p));
      return;
    }
    if (conn->out.size() >= 4 * options_.max_inflight_bytes) {
      disconnect(conn);  // overload: client is not reading at all
      return;
    }
    if (conn->queue.size() >= options_.max_pipeline) {
      ++stats_.busy_rejections;
      metrics_.busy_rejections.inc();
      enqueue_ready(conn, id, "busy: pipeline limit reached");
      return;
    }
    if (conn->out.size() >= options_.max_inflight_bytes) {
      ++stats_.busy_rejections;
      metrics_.busy_rejections.inc();
      enqueue_ready(conn, id, "busy: in-flight byte budget exceeded");
      return;
    }
    Pending p;
    p.kind = Pending::Kind::kQuery;
    p.id = id;
    p.text = std::move(text);
    p.enqueued = std::chrono::steady_clock::now();
    conn->queue.push_back(std::move(p));
  }

  void enqueue_ready(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                     std::string response) {
    Pending p;
    p.kind = Pending::Kind::kReady;
    p.id = id;
    p.ready = std::move(response);
    conn->queue.push_back(std::move(p));
  }

  // --- execution ------------------------------------------------------------

  /// Advances the connection's FIFO: ready/control items answer inline,
  /// the first query dispatches to a worker (one in flight per
  /// connection keeps responses in request order).
  void pump(const std::shared_ptr<Conn>& conn) {
    while (!conn->dead && !conn->executing && !conn->queue.empty()) {
      Pending item = std::move(conn->queue.front());
      conn->queue.pop_front();
      switch (item.kind) {
        case Pending::Kind::kReady:
          respond(conn, item.id, item.ready);
          break;
        case Pending::Kind::kControl: {
          const bool is_shutdown = item.text == "shutdown";
          // The response must hit the output buffer before begin_shutdown
          // marks connections EOF — maybe_close drops a drained connection
          // immediately, and the reply must not be the casualty.
          respond(conn, item.id, control_response(item.text));
          if (is_shutdown) begin_shutdown();
          break;
        }
        case Pending::Kind::kQuery: {
          if (past_deadline(item.enqueued)) {
            // Shed at dispatch: the deadline already passed while the
            // request waited its FIFO turn, so answer the typed error
            // in order instead of burning a worker on it.
            ++stats_.timeouts;
            metrics_.timeout_requests.inc();
            respond(conn, item.id, "error: deadline exceeded");
            break;
          }
          conn->executing = true;
          ++inflight_jobs_;
          Job job;
          job.conn = conn;
          job.id = item.id;
          job.text = std::move(item.text);
          job.entry = entry_;
          job.enqueued = std::chrono::steady_clock::now();
          {
            std::lock_guard<std::mutex> lock(jobs_mutex_);
            jobs_.push_back(std::move(job));
          }
          jobs_cv_.notify_one();
          return;
        }
      }
    }
  }

  [[nodiscard]] bool past_deadline(
      std::chrono::steady_clock::time_point enqueued) const {
    return options_.request_timeout_ms != 0 &&
           std::chrono::steady_clock::now() - enqueued >
               std::chrono::milliseconds(options_.request_timeout_ms);
  }

  void respond(const std::shared_ptr<Conn>& conn, std::uint64_t id,
               std::string_view line) {
    if (conn->dead) return;
    if (conn->out.empty()) {
      // The write-stall clock starts when output first becomes pending.
      conn->last_write_progress = std::chrono::steady_clock::now();
    }
    if (conn->proto == Conn::Proto::kBinary) {
      wire::encode_response(conn->out, wire::status_for_response(line), id,
                            line);
    } else {
      conn->out.append(line);
      conn->out.push_back('\n');
    }
  }

  std::string control_response(const std::string& request) {
    if (request == "ping") return "ok pong";
    if (request == "shutdown") {
      shutdown_ = true;  // caller (pump) begins the shutdown after the
      return "ok shutdown";  // response is buffered
    }
    if (request == "reload") {
      if (!options_.reload) return "error: reload unavailable";
      try {
        auto fresh = options_.reload();
        if (fresh == nullptr) return "error: reload unavailable";
        entry_ = std::move(fresh);
        ++stats_.reloads;
        metrics_.reloads.inc();
        return "ok reload epoch=" + std::to_string(entry_->epoch());
      } catch (const std::exception& error) {
        return std::string("error: reload failed: ") + error.what();
      }
    }
    if (const auto profile = profile_response(request)) return *profile;
    if (const auto metrics = metrics_response(request)) return *metrics;
    // stats
    StatsFields fields;
    fields.requests = stats_.requests;
    fields.cache_hits = stats_.cache_hits;
    fields.cache_misses = stats_.cache_misses;
    fields.connections = stats_.connections;
    fields.busy = stats_.busy_rejections;
    fields.accept_errors = stats_.accept_errors;
    fields.backlog = SOMAXCONN;
    fields.epoch = entry_->epoch();
    if (options_.request_timeout_ms != 0 || options_.idle_timeout_ms != 0 ||
        options_.write_timeout_ms != 0) {
      fields.timeouts = stats_.timeouts;
    }
    fields.cache = options_.cache;
    return render_stats_line(fields);
  }

  // --- writing --------------------------------------------------------------

  void flush_out(const std::shared_ptr<Conn>& conn) {
    if (conn->dead) return;
    util::Timer write_timer;
    std::uint64_t sent_bytes = 0;
    while (!conn->out.empty()) {
      const std::size_t chunk = std::min(conn->out.size(), kMaxSendPerCall);
      const ssize_t n =
          util::io::send_some(conn->fd, conn->out.data(), chunk, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        metrics_.bytes_out.inc(sent_bytes);
        disconnect(conn);  // EPIPE/ECONNRESET: client left mid-response
        return;
      }
      conn->out.erase(0, static_cast<std::size_t>(n));
      sent_bytes += static_cast<std::uint64_t>(n);
    }
    if (sent_bytes > 0) {
      metrics_.bytes_out.inc(sent_bytes);
      metrics_.socket_write.observe_micros(
          static_cast<std::uint64_t>(write_timer.micros()));
      conn->last_write_progress = std::chrono::steady_clock::now();
    }
    update_interest(conn);
  }

  // --- timeouts -------------------------------------------------------------

  /// Epoll-tick sweep for idle and slow-reader connections.  Victims are
  /// collected first: disconnect mutates conns_.
  void sweep_timeouts() {
    if (options_.idle_timeout_ms == 0 && options_.write_timeout_ms == 0) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<std::shared_ptr<Conn>, bool>> victims;
    for (const auto& [fd, conn] : conns_) {
      if (conn->dead) continue;
      if (options_.write_timeout_ms != 0 && !conn->out.empty() &&
          now - conn->last_write_progress >
              std::chrono::milliseconds(options_.write_timeout_ms)) {
        victims.emplace_back(conn, /*write=*/true);
        continue;
      }
      if (options_.idle_timeout_ms != 0 && conn->out.empty() &&
          conn->queue.empty() && !conn->executing && conn->in.empty() &&
          !conn->eof &&
          now - conn->last_activity >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        victims.emplace_back(conn, /*write=*/false);
      }
    }
    for (const auto& [conn, write] : victims) {
      ++stats_.timeouts;
      (write ? metrics_.timeout_write : metrics_.timeout_idle).inc();
      disconnect(conn);
    }
  }

  // --- completions ----------------------------------------------------------

  void drain_completions() {
    std::vector<Completion> done;
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      done.swap(completions_);
    }
    for (Completion& completion : done) {
      --inflight_jobs_;
      stats_.cache_hits += completion.hits;
      stats_.cache_misses += completion.misses;
      const std::shared_ptr<Conn>& conn = completion.conn;
      conn->executing = false;
      if (conn->dead) {
        bank_engine(*conn);
        continue;
      }
      if (past_deadline(completion.enqueued)) {
        // The worker finished, but past the deadline: the client was
        // promised a bounded answer, so the typed error replaces the
        // late result (same FIFO slot, order preserved).
        ++stats_.timeouts;
        metrics_.timeout_requests.inc();
        respond(conn, completion.id, "error: deadline exceeded");
      } else {
        respond(conn, completion.id, completion.response);
      }
      pump(conn);
      if (conn->dead) continue;
      flush_out(conn);
      maybe_close(conn);
    }
  }

  // --- shutdown -------------------------------------------------------------

  void begin_shutdown() {
    if (stopping_) return;
    stopping_ = true;
    if (accepting_) {
      accepting_ = false;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    // Every connection drains: queued requests answer, output flushes,
    // then the socket closes.  Parsed-but-unread kernel bytes are not
    // pulled in — the contract covers what the server has received.
    std::vector<std::shared_ptr<Conn>> all;
    all.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) all.push_back(conn);
    for (const std::shared_ptr<Conn>& conn : all) {
      conn->eof = true;
      update_interest(conn);
      maybe_close(conn);
    }
  }

  // --- worker pool ----------------------------------------------------------

  void worker(std::size_t index) {
    obs::TimelineJournal& journal = obs::TimelineJournal::global();
    bool lane_named = false;
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(jobs_mutex_);
        jobs_cv_.wait(lock,
                      [this] { return !jobs_.empty() || workers_stop_; });
        if (jobs_.empty()) return;
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      Conn& conn = *job.conn;
      if (conn.engine == nullptr || conn.engine_entry != job.entry.get()) {
        bank_engine(conn);  // reload swapped the entry: bank + rebuild
        conn.engine = std::make_unique<QueryEngine>(job.entry);
        conn.engine_entry = job.entry.get();
      }
      Completion completion;
      completion.id = job.id;
      completion.enqueued = job.enqueued;
      {
        // Trace the worker-side request lifetime; queue wait (dispatch to
        // pickup) is attributed explicitly since it predates the scope.
        obs::TraceScope trace(obs::Tracer::global(), "tcp", job.text);
        if (trace.active() || journal.enabled()) {
          const auto waited = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - job.enqueued)
                  .count());
          if (trace.active()) {
            trace.add_pre_span(obs::Span::kQueueWait, waited);
          }
          if (journal.enabled()) {
            if (!lane_named) {
              journal.set_thread_lane("tcp-worker-" + std::to_string(index));
              lane_named = true;
            }
            const std::uint64_t now = journal.now_micros();
            journal.record(obs::TimelineEventKind::kQueueWait,
                           now >= waited ? now - waited : 0, waited, job.id,
                           job.text);
          }
        }
        obs::TimelineSpan span(obs::TimelineEventKind::kRequest, job.text,
                               job.id);
        completion.response = execute_cached_line(
            *conn.engine, options_.cache, job.text, completion.hits,
            completion.misses);
      }
      completion.conn = std::move(job.conn);
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        completions_.push_back(std::move(completion));
      }
      wake();
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      workers_stop_ = true;
    }
    jobs_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
  }

  std::shared_ptr<const GraphEntry> entry_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  bool accepting_ = true;
  bool stopping_ = false;
  bool shutdown_ = false;
  std::uint64_t inflight_jobs_ = 0;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  TcpServeStats stats_;
  const LoopMetrics& metrics_ = loop_metrics();

  std::vector<std::thread> workers_;
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool workers_stop_ = false;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;
  QueryEngineStats engine_stats_;
};

/// Parses `HOST:PORT`, binds and listens (SOMAXCONN backlog); returns the
/// non-blocking listen fd and the bound port.
int bind_tcp(const std::string& address, std::uint16_t& port) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("serve: --tcp expects HOST:PORT, got '" +
                             address + "'");
  }
  const std::string host = address.substr(0, colon);
  const std::string service = address.substr(colon + 1);
  if (service.empty()) {
    throw std::runtime_error("serve: --tcp expects HOST:PORT, got '" +
                             address + "'");
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &found);
  if (rc != 0) {
    throw std::runtime_error("serve: cannot resolve '" + address +
                             "': " + gai_strerror(rc));
  }

  int fd = -1;
  std::string error = "no usable address";
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family,
                  ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      error = "socket() failed";
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0) {
      break;
    }
    error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    throw std::runtime_error("serve: cannot bind '" + address +
                             "': " + error);
  }

  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      port = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
    } else if (bound.ss_family == AF_INET6) {
      port = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
    }
  }
  return fd;
}

}  // namespace

TcpServer::TcpServer(std::shared_ptr<const GraphEntry> entry,
                     const std::string& address, TcpServerOptions options)
    : entry_(std::move(entry)), options_(std::move(options)) {
  if (entry_ == nullptr) {
    throw std::invalid_argument("TcpServer: null graph entry");
  }
  listen_fd_ = bind_tcp(address, port_);
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

TcpServeStats TcpServer::serve() {
  Loop loop(entry_, listen_fd_, options_);
  return loop.run();
}

}  // namespace gsb::service

#else  // !__linux__

namespace gsb::service {

TcpServer::TcpServer(std::shared_ptr<const GraphEntry> entry,
                     const std::string&, TcpServerOptions options)
    : entry_(std::move(entry)), options_(std::move(options)) {
  throw std::runtime_error(
      "serve: the TCP transport requires epoll (Linux); use the stdin or "
      "Unix-socket transport");
}

TcpServer::~TcpServer() = default;

TcpServeStats TcpServer::serve() {
  throw std::runtime_error(
      "serve: the TCP transport requires epoll (Linux)");
}

}  // namespace gsb::service

#endif
