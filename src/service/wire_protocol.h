#ifndef GSB_SERVICE_WIRE_PROTOCOL_H
#define GSB_SERVICE_WIRE_PROTOCOL_H

/// \file wire_protocol.h
/// The compact length-prefixed binary protocol the TCP transport speaks
/// alongside the newline-delimited line protocol (spec prose in
/// docs/SERVICE.md).  Header-only: the server, the client library, and
/// the tests share these exact encode/decode routines, so framing can
/// never drift between the endpoints.
///
/// All integers are little-endian.  Frames:
///
///   request   u8 version | u64 request_id | u32 payload_len | payload
///   response  u8 version | u8 status | u64 request_id | u32 payload_len
///             | payload
///
/// The payload of a request is exactly one line-protocol request (no
/// trailing newline); the payload of a response is exactly the response
/// line the line protocol would have produced for it — byte-identical
/// across the two protocols by construction.  The version byte 0x01 also
/// doubles as the per-connection protocol sniff: no line-protocol request
/// starts with byte 0x01, so the first byte a connection sends commits it
/// to one protocol for its lifetime.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace gsb::service::wire {

/// Protocol version and the binary-connection sniff byte.
inline constexpr std::uint8_t kVersion = 0x01;

/// Response status byte.
enum class Status : std::uint8_t {
  kOk = 0,     ///< payload is a `<canonical-query>: ...` response line
  kError = 1,  ///< payload is an `error: ...` response line
  kBusy = 2,   ///< admission control rejected the request (`busy: ...`)
};

inline constexpr std::size_t kRequestHeaderBytes = 1 + 8 + 4;
inline constexpr std::size_t kResponseHeaderBytes = 1 + 1 + 8 + 4;

/// Frame-sanity bound on payload length; a longer length field is a
/// protocol error, not an allocation request.
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;

namespace detail {

inline void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

inline void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

inline std::uint32_t read_u32(const char* p) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return value;
}

inline std::uint64_t read_u64(const char* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return value;
}

}  // namespace detail

/// Appends one encoded request frame to \p out.
inline void encode_request(std::string& out, std::uint64_t request_id,
                           std::string_view payload) {
  out.push_back(static_cast<char>(kVersion));
  detail::append_u64(out, request_id);
  detail::append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
}

/// Appends one encoded response frame to \p out.
inline void encode_response(std::string& out, Status status,
                            std::uint64_t request_id,
                            std::string_view payload) {
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(status));
  detail::append_u64(out, request_id);
  detail::append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
}

enum class DecodeResult {
  kNeedMore,   ///< buffer holds a frame prefix; read more bytes
  kFrame,      ///< one frame decoded; \p consumed bytes used
  kMalformed,  ///< bad version byte or oversized length — protocol error
};

/// Decodes the first request frame of \p buf.
inline DecodeResult decode_request(std::string_view buf,
                                   std::size_t& consumed,
                                   std::uint64_t& request_id,
                                   std::string& payload) {
  if (buf.empty()) return DecodeResult::kNeedMore;
  if (static_cast<std::uint8_t>(buf[0]) != kVersion) {
    return DecodeResult::kMalformed;
  }
  if (buf.size() < kRequestHeaderBytes) return DecodeResult::kNeedMore;
  request_id = detail::read_u64(buf.data() + 1);
  const std::uint32_t len = detail::read_u32(buf.data() + 9);
  if (len > kMaxPayloadBytes) return DecodeResult::kMalformed;
  if (buf.size() < kRequestHeaderBytes + len) return DecodeResult::kNeedMore;
  payload.assign(buf.data() + kRequestHeaderBytes, len);
  consumed = kRequestHeaderBytes + len;
  return DecodeResult::kFrame;
}

/// Decodes the first response frame of \p buf.
inline DecodeResult decode_response(std::string_view buf,
                                    std::size_t& consumed, Status& status,
                                    std::uint64_t& request_id,
                                    std::string& payload) {
  if (buf.empty()) return DecodeResult::kNeedMore;
  if (static_cast<std::uint8_t>(buf[0]) != kVersion) {
    return DecodeResult::kMalformed;
  }
  if (buf.size() < kResponseHeaderBytes) return DecodeResult::kNeedMore;
  const std::uint8_t raw_status = static_cast<std::uint8_t>(buf[1]);
  if (raw_status > static_cast<std::uint8_t>(Status::kBusy)) {
    return DecodeResult::kMalformed;
  }
  status = static_cast<Status>(raw_status);
  request_id = detail::read_u64(buf.data() + 2);
  const std::uint32_t len = detail::read_u32(buf.data() + 10);
  if (len > kMaxPayloadBytes) return DecodeResult::kMalformed;
  if (buf.size() < kResponseHeaderBytes + len) return DecodeResult::kNeedMore;
  payload.assign(buf.data() + kResponseHeaderBytes, len);
  consumed = kResponseHeaderBytes + len;
  return DecodeResult::kFrame;
}

/// Status for a line-protocol response the engine produced: the binary
/// protocol types what the line protocol spells as a prefix.
inline Status status_for_response(std::string_view response) {
  if (response.starts_with("error:")) return Status::kError;
  if (response.starts_with("busy:")) return Status::kBusy;
  return Status::kOk;
}

}  // namespace gsb::service::wire

#endif  // GSB_SERVICE_WIRE_PROTOCOL_H
