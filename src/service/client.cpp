#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <iostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define GSB_HAVE_CLIENT_SOCKETS 1
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "util/io.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: SO_NOSIGPIPE is set on the socket instead
#endif
#endif

namespace gsb::service {

#if GSB_HAVE_CLIENT_SOCKETS

namespace {

constexpr std::size_t kIoChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nosigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

}  // namespace

ServiceClient ServiceClient::connect_tcp(const std::string& host_port,
                                         std::size_t connect_timeout_ms) {
  const auto colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    throw std::runtime_error("client: expected HOST:PORT, got '" +
                             host_port + "'");
  }
  const std::string host = host_port.substr(0, colon);
  const std::string service = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                               service.c_str(), &hints, &found);
  if (rc != 0) {
    throw std::runtime_error("client: cannot resolve '" + host_port +
                             "': " + gai_strerror(rc));
  }
  int fd = -1;
  std::string error = "no usable address";
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = "socket() failed";
      continue;
    }
    if (util::io::connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen,
                                       connect_timeout_ms) == 0) {
      break;
    }
    error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    throw std::runtime_error("client: cannot connect to '" + host_port +
                             "': " + error);
  }
  set_nosigpipe(fd);
  set_nonblocking(fd);
  return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_unix(const std::string& socket_path,
                                          std::size_t connect_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("client: socket() failed");
  if (util::io::connect_with_timeout(
          fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
          connect_timeout_ms) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("client: cannot connect to '" + socket_path +
                             "': " + error);
  }
  set_nosigpipe(fd);
  set_nonblocking(fd);
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), out_(std::move(other.out_)),
      in_(std::move(other.in_)), next_id_(other.next_id_),
      io_timeout_ms_(other.io_timeout_ms_) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    out_ = std::move(other.out_);
    in_ = std::move(other.in_);
    next_id_ = other.next_id_;
    io_timeout_ms_ = other.io_timeout_ms_;
  }
  return *this;
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::finish_sending() {
  flush();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

/// Drives the socket until \p done (which may consume from in_) returns
/// true: sends pending bytes and receives available bytes, interleaved
/// through poll so neither direction can wedge the other.
template <typename DonePredicate>
void ServiceClient::transfer(const DonePredicate& done) {
  if (fd_ < 0) throw std::runtime_error("client: connection is closed");
  const int poll_ms =
      io_timeout_ms_ == 0 ? -1 : static_cast<int>(io_timeout_ms_);
  while (!done()) {
    pollfd poller{};
    poller.fd = fd_;
    poller.events = POLLIN;
    if (!out_.empty()) poller.events |= POLLOUT;
    const int ready = ::poll(&poller, 1, poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: poll failed");
    }
    if (ready == 0) {
      throw std::runtime_error("client: I/O timed out after " +
                               std::to_string(io_timeout_ms_) + "ms");
    }
    if (!out_.empty() && (poller.revents & POLLOUT) != 0) {
      const std::size_t chunk = std::min(out_.size(), kIoChunk);
      const ssize_t n =
          util::io::send_some(fd_, out_.data(), chunk, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          throw std::runtime_error("client: connection lost while sending");
        }
      } else {
        out_.erase(0, static_cast<std::size_t>(n));
      }
    }
    if ((poller.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[kIoChunk];
      const ssize_t n = util::io::recv_some(fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          throw std::runtime_error("client: connection lost while receiving");
        }
      } else if (n == 0) {
        if (done()) return;
        throw std::runtime_error(
            "client: server closed the connection mid-response");
      } else {
        in_.append(buf, static_cast<std::size_t>(n));
      }
    }
  }
}

// --- line protocol ----------------------------------------------------------

std::string ServiceClient::request(const std::string& line) {
  return request_pipelined({line}).front();
}

std::vector<std::string> ServiceClient::request_pipelined(
    const std::vector<std::string>& lines) {
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  request_pipelined_into(lines, 0, responses);
  return responses;
}

void ServiceClient::request_pipelined_into(
    const std::vector<std::string>& lines, std::size_t from,
    std::vector<std::string>& responses) {
  for (std::size_t i = from; i < lines.size(); ++i) {
    out_.append(lines[i]);
    out_.push_back('\n');
  }
  transfer([&] {
    std::size_t start = 0;
    for (std::size_t nl = in_.find('\n');
         nl != std::string::npos && responses.size() < lines.size();
         nl = in_.find('\n', start)) {
      responses.push_back(in_.substr(start, nl - start));
      start = nl + 1;
    }
    if (start > 0) in_.erase(0, start);
    return responses.size() == lines.size();
  });
}

// --- binary protocol --------------------------------------------------------

std::uint64_t ServiceClient::send(const std::string& payload) {
  const std::uint64_t id = next_id_++;
  send(id, payload);
  return id;
}

void ServiceClient::send(std::uint64_t id, const std::string& payload) {
  wire::encode_request(out_, id, payload);
}

void ServiceClient::flush() {
  transfer([&] { return out_.empty(); });
}

ServiceClient::BinaryResponse ServiceClient::receive() {
  BinaryResponse response;
  bool have = false;
  transfer([&] {
    if (have) return true;
    std::size_t consumed = 0;
    const auto result = wire::decode_response(
        in_, consumed, response.status, response.id, response.payload);
    if (result == wire::DecodeResult::kMalformed) {
      throw std::runtime_error("client: malformed response frame");
    }
    if (result == wire::DecodeResult::kFrame) {
      in_.erase(0, consumed);
      have = true;
    }
    return have;
  });
  return response;
}

std::vector<ServiceClient::BinaryResponse> ServiceClient::call_pipelined(
    const std::vector<std::string>& payloads) {
  for (const std::string& payload : payloads) send(payload);
  std::vector<BinaryResponse> responses;
  responses.reserve(payloads.size());
  transfer([&] {
    while (responses.size() < payloads.size()) {
      BinaryResponse response;
      std::size_t consumed = 0;
      const auto result = wire::decode_response(
          in_, consumed, response.status, response.id, response.payload);
      if (result == wire::DecodeResult::kMalformed) {
        throw std::runtime_error("client: malformed response frame");
      }
      if (result == wire::DecodeResult::kNeedMore) break;
      in_.erase(0, consumed);
      responses.push_back(std::move(response));
    }
    return responses.size() == payloads.size();
  });
  return responses;
}

#else  // !GSB_HAVE_CLIENT_SOCKETS

ServiceClient ServiceClient::connect_tcp(const std::string&, std::size_t) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

ServiceClient ServiceClient::connect_unix(const std::string&, std::size_t) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  return *this;
}

ServiceClient::~ServiceClient() = default;

void ServiceClient::close() {}
void ServiceClient::finish_sending() {}

std::string ServiceClient::request(const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

std::vector<std::string> ServiceClient::request_pipelined(
    const std::vector<std::string>&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

void ServiceClient::request_pipelined_into(const std::vector<std::string>&,
                                           std::size_t,
                                           std::vector<std::string>&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

std::uint64_t ServiceClient::send(const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

void ServiceClient::send(std::uint64_t, const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

void ServiceClient::flush() {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

ServiceClient::BinaryResponse ServiceClient::receive() {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

std::vector<ServiceClient::BinaryResponse> ServiceClient::call_pipelined(
    const std::vector<std::string>&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

#endif

// --- RetryingClient ---------------------------------------------------------
//
// Platform-independent: built entirely on the public ServiceClient API,
// so on platforms without sockets it fails the same way ServiceClient
// does (after exhausting its retry budget).

namespace {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

obs::Counter& retry_counter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      "gsb_retries_total", "Client reconnect-and-replay retries.");
  return counter;
}

}  // namespace

RetryingClient::RetryingClient(std::string target, bool unix_socket,
                               RetryPolicy policy)
    : target_(std::move(target)), unix_socket_(unix_socket), policy_(policy),
      rng_(policy.seed) {}

void RetryingClient::close() { client_.reset(); }

ServiceClient& RetryingClient::ensure_connected() {
  if (!client_ || !client_->is_open()) {
    client_.emplace(unix_socket_
                        ? ServiceClient::connect_unix(target_,
                                                      policy_.timeout_ms)
                        : ServiceClient::connect_tcp(target_,
                                                     policy_.timeout_ms));
    client_->set_io_timeout(policy_.timeout_ms);
  }
  return *client_;
}

std::size_t RetryingClient::backoff_ms(std::size_t attempt) {
  if (policy_.base_backoff_ms == 0) return 0;
  const std::size_t shift = std::min<std::size_t>(attempt - 1, 20);
  const std::uint64_t nominal =
      std::min<std::uint64_t>(policy_.base_backoff_ms << shift,
                              policy_.max_backoff_ms);
  rng_ = mix64(rng_);
  const double scale =
      0.5 + 0.5 * (static_cast<double>(rng_ >> 11) * 0x1.0p-53);
  return static_cast<std::size_t>(static_cast<double>(nominal) * scale);
}

std::string RetryingClient::request(const std::string& line) {
  return request_pipelined({line}).front();
}

std::vector<std::string> RetryingClient::request_pipelined(
    const std::vector<std::string>& lines) {
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  std::size_t attempt = 0;
  for (;;) {
    try {
      ensure_connected().request_pipelined_into(lines, responses.size(),
                                                responses);
      return responses;
    } catch (const std::runtime_error& error) {
      client_.reset();  // the connection is in an unknown state: drop it
      if (attempt >= policy_.retries) throw;
      ++attempt;
      ++reconnects_;
      retry_counter().inc();
      const std::size_t delay = backoff_ms(attempt);
      std::cerr << "client: reconnect " << attempt << "/" << policy_.retries
                << " to '" << target_ << "' after error: " << error.what()
                << " (" << (lines.size() - responses.size())
                << " request(s) to replay, backoff " << delay << "ms)\n";
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
  }
}

}  // namespace gsb::service
