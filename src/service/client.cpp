#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GSB_HAVE_CLIENT_SOCKETS 1
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: SO_NOSIGPIPE is set on the socket instead
#endif
#endif

namespace gsb::service {

#if GSB_HAVE_CLIENT_SOCKETS

namespace {

constexpr std::size_t kIoChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nosigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

}  // namespace

ServiceClient ServiceClient::connect_tcp(const std::string& host_port) {
  const auto colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    throw std::runtime_error("client: expected HOST:PORT, got '" +
                             host_port + "'");
  }
  const std::string host = host_port.substr(0, colon);
  const std::string service = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                               service.c_str(), &hints, &found);
  if (rc != 0) {
    throw std::runtime_error("client: cannot resolve '" + host_port +
                             "': " + gai_strerror(rc));
  }
  int fd = -1;
  std::string error = "no usable address";
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = "socket() failed";
      continue;
    }
    int connected;
    do {
      connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (connected != 0 && errno == EINTR);
    if (connected == 0) break;
    error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    throw std::runtime_error("client: cannot connect to '" + host_port +
                             "': " + error);
  }
  set_nosigpipe(fd);
  set_nonblocking(fd);
  return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("client: socket() failed");
  int connected;
  do {
    connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr));
  } while (connected != 0 && errno == EINTR);
  if (connected != 0) {
    ::close(fd);
    throw std::runtime_error("client: cannot connect to '" + socket_path +
                             "'");
  }
  set_nosigpipe(fd);
  set_nonblocking(fd);
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), out_(std::move(other.out_)),
      in_(std::move(other.in_)), next_id_(other.next_id_) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    out_ = std::move(other.out_);
    in_ = std::move(other.in_);
    next_id_ = other.next_id_;
  }
  return *this;
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::finish_sending() {
  flush();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

/// Drives the socket until \p done (which may consume from in_) returns
/// true: sends pending bytes and receives available bytes, interleaved
/// through poll so neither direction can wedge the other.
template <typename DonePredicate>
void ServiceClient::transfer(const DonePredicate& done) {
  if (fd_ < 0) throw std::runtime_error("client: connection is closed");
  while (!done()) {
    pollfd poller{};
    poller.fd = fd_;
    poller.events = POLLIN;
    if (!out_.empty()) poller.events |= POLLOUT;
    const int ready = ::poll(&poller, 1, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: poll failed");
    }
    if (!out_.empty() && (poller.revents & POLLOUT) != 0) {
      const std::size_t chunk = std::min(out_.size(), kIoChunk);
      const ssize_t n = ::send(fd_, out_.data(), chunk, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
          throw std::runtime_error("client: connection lost while sending");
        }
      } else {
        out_.erase(0, static_cast<std::size_t>(n));
      }
    }
    if ((poller.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[kIoChunk];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
          throw std::runtime_error("client: connection lost while receiving");
        }
      } else if (n == 0) {
        if (done()) return;
        throw std::runtime_error(
            "client: server closed the connection mid-response");
      } else {
        in_.append(buf, static_cast<std::size_t>(n));
      }
    }
  }
}

// --- line protocol ----------------------------------------------------------

std::string ServiceClient::request(const std::string& line) {
  return request_pipelined({line}).front();
}

std::vector<std::string> ServiceClient::request_pipelined(
    const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    out_.append(line);
    out_.push_back('\n');
  }
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  transfer([&] {
    std::size_t start = 0;
    for (std::size_t nl = in_.find('\n');
         nl != std::string::npos && responses.size() < lines.size();
         nl = in_.find('\n', start)) {
      responses.push_back(in_.substr(start, nl - start));
      start = nl + 1;
    }
    if (start > 0) in_.erase(0, start);
    return responses.size() == lines.size();
  });
  return responses;
}

// --- binary protocol --------------------------------------------------------

std::uint64_t ServiceClient::send(const std::string& payload) {
  const std::uint64_t id = next_id_++;
  send(id, payload);
  return id;
}

void ServiceClient::send(std::uint64_t id, const std::string& payload) {
  wire::encode_request(out_, id, payload);
}

void ServiceClient::flush() {
  transfer([&] { return out_.empty(); });
}

ServiceClient::BinaryResponse ServiceClient::receive() {
  BinaryResponse response;
  bool have = false;
  transfer([&] {
    if (have) return true;
    std::size_t consumed = 0;
    const auto result = wire::decode_response(
        in_, consumed, response.status, response.id, response.payload);
    if (result == wire::DecodeResult::kMalformed) {
      throw std::runtime_error("client: malformed response frame");
    }
    if (result == wire::DecodeResult::kFrame) {
      in_.erase(0, consumed);
      have = true;
    }
    return have;
  });
  return response;
}

std::vector<ServiceClient::BinaryResponse> ServiceClient::call_pipelined(
    const std::vector<std::string>& payloads) {
  for (const std::string& payload : payloads) send(payload);
  std::vector<BinaryResponse> responses;
  responses.reserve(payloads.size());
  transfer([&] {
    while (responses.size() < payloads.size()) {
      BinaryResponse response;
      std::size_t consumed = 0;
      const auto result = wire::decode_response(
          in_, consumed, response.status, response.id, response.payload);
      if (result == wire::DecodeResult::kMalformed) {
        throw std::runtime_error("client: malformed response frame");
      }
      if (result == wire::DecodeResult::kNeedMore) break;
      in_.erase(0, consumed);
      responses.push_back(std::move(response));
    }
    return responses.size() == payloads.size();
  });
  return responses;
}

#else  // !GSB_HAVE_CLIENT_SOCKETS

ServiceClient ServiceClient::connect_tcp(const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

ServiceClient ServiceClient::connect_unix(const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  fd_ = std::exchange(other.fd_, -1);
  return *this;
}

ServiceClient::~ServiceClient() = default;

void ServiceClient::close() {}
void ServiceClient::finish_sending() {}

std::string ServiceClient::request(const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

std::vector<std::string> ServiceClient::request_pipelined(
    const std::vector<std::string>&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

std::uint64_t ServiceClient::send(const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

void ServiceClient::send(std::uint64_t, const std::string&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

void ServiceClient::flush() {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

ServiceClient::BinaryResponse ServiceClient::receive() {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

std::vector<ServiceClient::BinaryResponse> ServiceClient::call_pipelined(
    const std::vector<std::string>&) {
  throw std::runtime_error("client: sockets unavailable on this platform");
}

#endif

}  // namespace gsb::service
