#include "service/batch_executor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <optional>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace gsb::service {

namespace {

constexpr std::size_t kNumQueryKinds =
    static_cast<std::size_t>(QueryKind::kTopHubs) + 1;

/// Per-query-type series for the one parse→cache→engine path every
/// transport funnels through.  Slot kNumQueryKinds is `type="invalid"`
/// (lines that fail to parse).
struct RequestMetrics {
  std::array<obs::Counter, kNumQueryKinds + 1> requests;
  std::array<obs::Counter, kNumQueryKinds + 1> errors;
  std::array<obs::Histogram, kNumQueryKinds + 1> duration;
  obs::Counter cache_hits;
  obs::Counter cache_misses;
};

const RequestMetrics& request_metrics() {
  static const RequestMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    RequestMetrics m;
    for (std::size_t k = 0; k <= kNumQueryKinds; ++k) {
      const char* type = k < kNumQueryKinds
                             ? query_kind_name(static_cast<QueryKind>(k))
                             : "invalid";
      const std::string labels = std::string("type=\"") + type + "\"";
      m.requests[k] = registry.counter(
          "gsb_requests_by_type_total", "Query requests per query type.",
          labels);
      m.errors[k] = registry.counter(
          "gsb_request_errors_total",
          "Requests answered with an error line, per query type.", labels);
      m.duration[k] = registry.histogram(
          "gsb_request_duration_microseconds",
          "End-to-end request latency (parse + cache + execute).", labels);
    }
    m.cache_hits = registry.counter("gsb_cache_hits_total",
                                    "Result-cache lookups that hit.");
    m.cache_misses = registry.counter("gsb_cache_misses_total",
                                      "Result-cache lookups that missed.");
    return m;
  }();
  return metrics;
}

}  // namespace

std::string execute_cached_line(QueryEngine& engine, ResultCache* cache,
                                const std::string& line,
                                std::uint64_t& cache_hits,
                                std::uint64_t& cache_misses) {
  const RequestMetrics& metrics = request_metrics();
  const bool instrumented = obs::MetricsRegistry::global().enabled();
  util::Timer timer;

  Query query;
  bool parsed = false;
  {
    obs::SpanTimer span(obs::Span::kParse);
    try {
      query = parse_query(line);
      parsed = true;
    } catch (const std::exception&) {
    }
  }
  if (!parsed) {
    // Counted + formatted by the engine; metered as type="invalid".
    std::string response = engine.execute_line(line);
    if (instrumented) {
      metrics.requests[kNumQueryKinds].inc();
      metrics.errors[kNumQueryKinds].inc();
      metrics.duration[kNumQueryKinds].observe_micros(
          static_cast<std::uint64_t>(timer.micros()));
    }
    return response;
  }
  const auto kind = static_cast<std::size_t>(query.kind);
  metrics.requests[kind].inc();
  const auto finish = [&](std::string response) {
    if (instrumented) {
      if (response.starts_with("error:")) metrics.errors[kind].inc();
      metrics.duration[kind].observe_micros(
          static_cast<std::uint64_t>(timer.micros()));
    }
    return response;
  };

  if (cache == nullptr) {
    obs::SpanTimer span(obs::Span::kExecute);
    return finish(engine.execute(query));
  }
  const std::uint64_t epoch = engine.entry().epoch();
  const std::string canonical = canonical_query(query);
  {
    obs::SpanTimer span(obs::Span::kCacheLookup);
    if (auto cached = cache->lookup(epoch, canonical)) {
      ++cache_hits;
      metrics.cache_hits.inc();
      return finish(*std::move(cached));
    }
  }
  ++cache_misses;
  metrics.cache_misses.inc();
  std::string response;
  {
    obs::SpanTimer span(obs::Span::kExecute);
    response = engine.execute(query);
  }
  if (!response.starts_with("error:")) {
    obs::SpanTimer span(obs::Span::kCacheLookup);
    cache->insert(epoch, canonical, response);
  }
  return finish(std::move(response));
}

namespace {

/// This call's activity out of a borrowed engine's cumulative counters.
QueryEngineStats stats_since(const QueryEngineStats& after,
                             const QueryEngineStats& before) {
  QueryEngineStats delta;
  delta.executed = after.executed - before.executed;
  delta.errors = after.errors - before.errors;
  delta.index_queries = after.index_queries - before.index_queries;
  delta.stream_scans = after.stream_scans - before.stream_scans;
  delta.records_decoded = after.records_decoded - before.records_decoded;
  return delta;
}

}  // namespace

BatchResult execute_batch(std::shared_ptr<const GraphEntry> entry,
                          const std::vector<std::string>& lines,
                          const BatchOptions& options) {
  if (entry == nullptr) {
    throw std::invalid_argument("execute_batch: null graph entry");
  }
  static const obs::Counter batches_total =
      obs::MetricsRegistry::global().counter(
          "gsb_batches_total",
          "Batch executions (CLI --batch and serve groups).");
  static const obs::Counter batch_lines_total =
      obs::MetricsRegistry::global().counter(
          "gsb_batch_lines_total", "Query lines executed through batches.");
  batches_total.inc();
  batch_lines_total.inc(lines.size());

  BatchResult result;
  result.responses.resize(lines.size());

  std::size_t threads = options.threads;
  if (threads == 0) threads = par::ThreadPool::default_threads();
  threads = std::min(threads, std::max<std::size_t>(lines.size(), 1));
  if (options.engines != nullptr) {
    threads = std::min(threads, std::max<std::size_t>(
                                    options.engines->size(), 1));
  }
  result.threads_used = threads;
  auto borrowed = [&](std::size_t thread_id) -> QueryEngine* {
    return options.engines != nullptr && thread_id < options.engines->size()
               ? &(*options.engines)[thread_id]
               : nullptr;
  };

  if (threads == 1) {
    std::optional<QueryEngine> local;
    QueryEngine* engine = borrowed(0);
    if (engine == nullptr) engine = &local.emplace(entry);
    const QueryEngineStats before = engine->stats();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      result.responses[i] =
          execute_cached_line(*engine, options.cache, lines[i],
                              result.cache_hits, result.cache_misses);
    }
    result.engine = stats_since(engine->stats(), before);
    return result;
  }

  // Dynamic claiming: response slots make output order a function of the
  // input alone, so work distribution is free to be racy.
  std::atomic<std::size_t> next{0};
  std::vector<QueryEngineStats> engine_stats(threads);
  std::vector<std::uint64_t> hit_counts(threads, 0);
  std::vector<std::uint64_t> miss_counts(threads, 0);
  auto worker = [&](std::size_t thread_id) {
    std::optional<QueryEngine> local;
    QueryEngine* engine = borrowed(thread_id);
    if (engine == nullptr) engine = &local.emplace(entry);
    const QueryEngineStats before = engine->stats();
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= lines.size()) break;
      result.responses[i] =
          execute_cached_line(*engine, options.cache, lines[i],
                              hit_counts[thread_id], miss_counts[thread_id]);
    }
    engine_stats[thread_id] = stats_since(engine->stats(), before);
  };
  std::optional<par::ThreadPool> owned_pool;
  par::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() < threads) {
    owned_pool.emplace(threads);
    pool = &*owned_pool;
  }
  pool->run_round([&](std::size_t thread_id) {
    if (thread_id < threads) worker(thread_id);
  });
  for (std::size_t t = 0; t < threads; ++t) {
    result.engine += engine_stats[t];
    result.cache_hits += hit_counts[t];
    result.cache_misses += miss_counts[t];
  }
  return result;
}

}  // namespace gsb::service
