#include "service/batch_executor.h"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "parallel/job_graph.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace gsb::service {

namespace {

constexpr std::size_t kNumQueryKinds =
    static_cast<std::size_t>(QueryKind::kTopHubs) + 1;

/// Per-query-type series for the one parse→cache→engine path every
/// transport funnels through.  Slot kNumQueryKinds is `type="invalid"`
/// (lines that fail to parse).
struct RequestMetrics {
  std::array<obs::Counter, kNumQueryKinds + 1> requests;
  std::array<obs::Counter, kNumQueryKinds + 1> errors;
  std::array<obs::Histogram, kNumQueryKinds + 1> duration;
  obs::Counter cache_hits;
  obs::Counter cache_misses;
};

const RequestMetrics& request_metrics() {
  static const RequestMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    RequestMetrics m;
    for (std::size_t k = 0; k <= kNumQueryKinds; ++k) {
      const char* type = k < kNumQueryKinds
                             ? query_kind_name(static_cast<QueryKind>(k))
                             : "invalid";
      const std::string labels = std::string("type=\"") + type + "\"";
      m.requests[k] = registry.counter(
          "gsb_requests_by_type_total", "Query requests per query type.",
          labels);
      m.errors[k] = registry.counter(
          "gsb_request_errors_total",
          "Requests answered with an error line, per query type.", labels);
      m.duration[k] = registry.histogram(
          "gsb_request_duration_microseconds",
          "End-to-end request latency (parse + cache + execute).", labels);
    }
    m.cache_hits = registry.counter("gsb_cache_hits_total",
                                    "Result-cache lookups that hit.");
    m.cache_misses = registry.counter("gsb_cache_misses_total",
                                      "Result-cache lookups that missed.");
    return m;
  }();
  return metrics;
}

}  // namespace

std::string execute_cached_line(QueryEngine& engine, ResultCache* cache,
                                const std::string& line,
                                std::uint64_t& cache_hits,
                                std::uint64_t& cache_misses) {
  const RequestMetrics& metrics = request_metrics();
  const bool instrumented = obs::MetricsRegistry::global().enabled();
  util::Timer timer;

  Query query;
  bool parsed = false;
  {
    obs::SpanTimer span(obs::Span::kParse);
    try {
      query = parse_query(line);
      parsed = true;
    } catch (const std::exception&) {
    }
  }
  if (!parsed) {
    // Counted + formatted by the engine; metered as type="invalid".
    std::string response = engine.execute_line(line);
    if (instrumented) {
      metrics.requests[kNumQueryKinds].inc();
      metrics.errors[kNumQueryKinds].inc();
      metrics.duration[kNumQueryKinds].observe_micros(
          static_cast<std::uint64_t>(timer.micros()));
    }
    return response;
  }
  const auto kind = static_cast<std::size_t>(query.kind);
  metrics.requests[kind].inc();
  const auto finish = [&](std::string response) {
    if (instrumented) {
      if (response.starts_with("error:")) metrics.errors[kind].inc();
      metrics.duration[kind].observe_micros(
          static_cast<std::uint64_t>(timer.micros()));
    }
    return response;
  };

  if (cache == nullptr) {
    obs::SpanTimer span(obs::Span::kExecute);
    return finish(engine.execute(query));
  }
  const std::uint64_t epoch = engine.entry().epoch();
  const std::string canonical = canonical_query(query);
  {
    obs::SpanTimer span(obs::Span::kCacheLookup);
    if (auto cached = cache->lookup(epoch, canonical)) {
      ++cache_hits;
      metrics.cache_hits.inc();
      obs::TimelineJournal::global().record_instant(
          obs::TimelineEventKind::kCacheHit, 0, canonical);
      return finish(*std::move(cached));
    }
  }
  ++cache_misses;
  metrics.cache_misses.inc();
  obs::TimelineJournal::global().record_instant(
      obs::TimelineEventKind::kCacheMiss, 0, canonical);
  std::string response;
  {
    obs::SpanTimer span(obs::Span::kExecute);
    response = engine.execute(query);
  }
  if (!response.starts_with("error:")) {
    obs::SpanTimer span(obs::Span::kCacheLookup);
    cache->insert(epoch, canonical, response);
  }
  return finish(std::move(response));
}

namespace {

/// This call's activity out of a borrowed engine's cumulative counters.
QueryEngineStats stats_since(const QueryEngineStats& after,
                             const QueryEngineStats& before) {
  QueryEngineStats delta;
  delta.executed = after.executed - before.executed;
  delta.errors = after.errors - before.errors;
  delta.index_queries = after.index_queries - before.index_queries;
  delta.stream_scans = after.stream_scans - before.stream_scans;
  delta.records_decoded = after.records_decoded - before.records_decoded;
  return delta;
}

}  // namespace

BatchResult execute_batch(std::shared_ptr<const GraphEntry> entry,
                          const std::vector<std::string>& lines,
                          const BatchOptions& options) {
  if (entry == nullptr) {
    throw std::invalid_argument("execute_batch: null graph entry");
  }
  static const obs::Counter batches_total =
      obs::MetricsRegistry::global().counter(
          "gsb_batches_total",
          "Batch executions (CLI --batch and serve groups).");
  static const obs::Counter batch_lines_total =
      obs::MetricsRegistry::global().counter(
          "gsb_batch_lines_total", "Query lines executed through batches.");
  batches_total.inc();
  batch_lines_total.inc(lines.size());

  BatchResult result;
  result.responses.resize(lines.size());

  std::size_t threads = options.threads;
  if (threads == 0) threads = par::ThreadPool::default_threads();
  threads = std::min(threads, std::max<std::size_t>(lines.size(), 1));
  if (options.engines != nullptr) {
    threads = std::min(threads, std::max<std::size_t>(
                                    options.engines->size(), 1));
  }
  result.threads_used = threads;
  auto borrowed = [&](std::size_t thread_id) -> QueryEngine* {
    return options.engines != nullptr && thread_id < options.engines->size()
               ? &(*options.engines)[thread_id]
               : nullptr;
  };

  if (threads == 1) {
    std::optional<QueryEngine> local;
    QueryEngine* engine = borrowed(0);
    if (engine == nullptr) engine = &local.emplace(entry);
    const QueryEngineStats before = engine->stats();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      result.responses[i] =
          execute_cached_line(*engine, options.cache, lines[i],
                              result.cache_hits, result.cache_misses);
    }
    result.engine = stats_since(engine->stats(), before);
    return result;
  }

  // One scheduler job per request line, unordered: response slots make
  // output order a function of the input alone, so work distribution is
  // free to be racy.  A borrowed pool may be larger than the batch's
  // thread budget; worker_limit keeps the clamp (and the engine-per-
  // worker invariant) without re-creating the pool.
  std::optional<par::ThreadPool> owned_pool;
  par::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() < threads) {
    owned_pool.emplace(threads);
    pool = &*owned_pool;
  }
  par::JobGraph::Options graph_options;
  graph_options.worker_limit = threads;
  par::JobGraph jobs(pool, graph_options);

  /// Per-worker engine state, built lazily on the worker's first line.
  struct Worker {
    std::optional<QueryEngine> local;
    QueryEngine* engine = nullptr;
    QueryEngineStats before;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  std::vector<Worker> workers(jobs.workers());
  auto engine_for = [&](std::size_t wid) -> Worker& {
    Worker& w = workers[wid];
    if (w.engine == nullptr) {
      w.engine = borrowed(wid);
      if (w.engine == nullptr) w.engine = &w.local.emplace(entry);
      w.before = w.engine->stats();
    }
    return w;
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    jobs.add([&, i](std::size_t wid) {
      Worker& w = engine_for(wid);
      result.responses[i] = execute_cached_line(*w.engine, options.cache,
                                                lines[i], w.hits, w.misses);
    });
  }
  jobs.run();
  for (const Worker& w : workers) {
    if (w.engine == nullptr) continue;
    result.engine += stats_since(w.engine->stats(), w.before);
    result.cache_hits += w.hits;
    result.cache_misses += w.misses;
  }
  return result;
}

}  // namespace gsb::service
