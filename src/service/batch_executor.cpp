#include "service/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>

namespace gsb::service {

std::string execute_cached_line(QueryEngine& engine, ResultCache* cache,
                                const std::string& line,
                                std::uint64_t& cache_hits,
                                std::uint64_t& cache_misses) {
  Query query;
  try {
    query = parse_query(line);
  } catch (const std::exception&) {
    return engine.execute_line(line);  // counted + formatted by the engine
  }
  if (cache == nullptr) return engine.execute(query);
  const std::uint64_t epoch = engine.entry().epoch();
  const std::string canonical = canonical_query(query);
  if (auto cached = cache->lookup(epoch, canonical)) {
    ++cache_hits;
    return *std::move(cached);
  }
  ++cache_misses;
  std::string response = engine.execute(query);
  if (!response.starts_with("error:")) {
    cache->insert(epoch, canonical, response);
  }
  return response;
}

namespace {

/// This call's activity out of a borrowed engine's cumulative counters.
QueryEngineStats stats_since(const QueryEngineStats& after,
                             const QueryEngineStats& before) {
  QueryEngineStats delta;
  delta.executed = after.executed - before.executed;
  delta.errors = after.errors - before.errors;
  delta.index_queries = after.index_queries - before.index_queries;
  delta.stream_scans = after.stream_scans - before.stream_scans;
  delta.records_decoded = after.records_decoded - before.records_decoded;
  return delta;
}

}  // namespace

BatchResult execute_batch(std::shared_ptr<const GraphEntry> entry,
                          const std::vector<std::string>& lines,
                          const BatchOptions& options) {
  if (entry == nullptr) {
    throw std::invalid_argument("execute_batch: null graph entry");
  }
  BatchResult result;
  result.responses.resize(lines.size());

  std::size_t threads = options.threads;
  if (threads == 0) threads = par::ThreadPool::default_threads();
  threads = std::min(threads, std::max<std::size_t>(lines.size(), 1));
  if (options.engines != nullptr) {
    threads = std::min(threads, std::max<std::size_t>(
                                    options.engines->size(), 1));
  }
  result.threads_used = threads;
  auto borrowed = [&](std::size_t thread_id) -> QueryEngine* {
    return options.engines != nullptr && thread_id < options.engines->size()
               ? &(*options.engines)[thread_id]
               : nullptr;
  };

  if (threads == 1) {
    std::optional<QueryEngine> local;
    QueryEngine* engine = borrowed(0);
    if (engine == nullptr) engine = &local.emplace(entry);
    const QueryEngineStats before = engine->stats();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      result.responses[i] =
          execute_cached_line(*engine, options.cache, lines[i],
                              result.cache_hits, result.cache_misses);
    }
    result.engine = stats_since(engine->stats(), before);
    return result;
  }

  // Dynamic claiming: response slots make output order a function of the
  // input alone, so work distribution is free to be racy.
  std::atomic<std::size_t> next{0};
  std::vector<QueryEngineStats> engine_stats(threads);
  std::vector<std::uint64_t> hit_counts(threads, 0);
  std::vector<std::uint64_t> miss_counts(threads, 0);
  auto worker = [&](std::size_t thread_id) {
    std::optional<QueryEngine> local;
    QueryEngine* engine = borrowed(thread_id);
    if (engine == nullptr) engine = &local.emplace(entry);
    const QueryEngineStats before = engine->stats();
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= lines.size()) break;
      result.responses[i] =
          execute_cached_line(*engine, options.cache, lines[i],
                              hit_counts[thread_id], miss_counts[thread_id]);
    }
    engine_stats[thread_id] = stats_since(engine->stats(), before);
  };
  std::optional<par::ThreadPool> owned_pool;
  par::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() < threads) {
    owned_pool.emplace(threads);
    pool = &*owned_pool;
  }
  pool->run_round([&](std::size_t thread_id) {
    if (thread_id < threads) worker(thread_id);
  });
  for (std::size_t t = 0; t < threads; ++t) {
    result.engine += engine_stats[t];
    result.cache_hits += hit_counts[t];
    result.cache_misses += miss_counts[t];
  }
  return result;
}

}  // namespace gsb::service
