#ifndef GSB_SERVICE_ARTIFACT_VERIFY_H
#define GSB_SERVICE_ARTIFACT_VERIFY_H

/// \file artifact_verify.h
/// `gsb verify`: full-strength integrity check for any of the three
/// container formats.  The artifact kind is sniffed from the 8-byte
/// magic (not the file name), every format is re-hashed end to end —
/// MappedGraph with verify_checksum, GsbcReader with verify_checksum
/// plus a full record drain, CliqueIndex (which always re-hashes) —
/// and structural invariants are revalidated by the normal open paths.
/// The crash-safety contract this checks: a path produced by a
/// FileWriter commit is either a complete, checksummed artifact or
/// absent; verify must therefore never report a *corrupt* artifact
/// after a crash, only a missing one (docs/ROBUSTNESS.md).

#include <string>

namespace gsb::service {

/// Verifies one artifact and returns a one-line human-readable summary
/// (`ok <kind> '<path>': ...`).  Throws std::runtime_error naming the
/// defect when the file is unreadable, unrecognized, or corrupt.
std::string verify_artifact(const std::string& path);

}  // namespace gsb::service

#endif  // GSB_SERVICE_ARTIFACT_VERIFY_H
