#ifndef GSB_SERVICE_QUERY_H
#define GSB_SERVICE_QUERY_H

/// \file query.h
/// The query-service grammar: typed queries parsed from newline-delimited
/// text, and the canonical form used as the cache key and echoed in every
/// response.
///
/// One query per line, whitespace-separated tokens, vertex ids in the
/// graph's original labeling (docs/SERVICE.md is the reference):
///
///   neighbors V                 adjacency list of V
///   degree V                    degree of V
///   common-neighbors U V        N(U) ∩ N(V)
///   induced-subgraph V1 V2 ...  order, size and edge list of G[{V1...}]
///   kcore-membership K V        1 iff V survives iterated K-core peeling
///   cliques-containing V        every maximal clique containing V
///   paraclique-expand G V1 ...  glom the clique {V1...} with glom factor G
///   top-hubs N                  top N vertices by degree, ties by clique
///                               participation
///
/// Canonicalization makes semantically equal queries cache-equal: operand
/// lists are sorted and deduplicated where order is irrelevant, and numbers
/// are re-printed in decimal, so `common-neighbors 9 2` and
/// `common-neighbors 2  9` share one cache entry and one byte-identical
/// response.

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gsb::service {

enum class QueryKind {
  kNeighbors,
  kDegree,
  kCommonNeighbors,
  kInducedSubgraph,
  kKcoreMembership,
  kCliquesContaining,
  kParacliqueExpand,
  kTopHubs,
};

/// One parsed query.  `vertices` holds the vertex operands (canonicalized
/// per kind); `k` is the K of kcore-membership, the N of top-hubs, and the
/// glom factor of paraclique-expand.
struct Query {
  QueryKind kind = QueryKind::kDegree;
  std::vector<graph::VertexId> vertices;
  std::size_t k = 0;
};

/// Parses one query line (already canonicalized on return).  Throws
/// std::runtime_error with a user-facing message on malformed input.
Query parse_query(const std::string& line);

/// The canonical text of \p query — the cache key (with the graph epoch)
/// and the echo prefix of its response.
std::string canonical_query(const Query& query);

/// Keyword for \p kind ("neighbors", "cliques-containing", ...).
const char* query_kind_name(QueryKind kind);

}  // namespace gsb::service

#endif  // GSB_SERVICE_QUERY_H
