#include "service/artifact_verify.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include <unistd.h>

#include "graph/graph.h"
#include "service/clique_index.h"
#include "storage/clique_stream.h"
#include "storage/gsbc_format.h"
#include "storage/gsbci_format.h"
#include "storage/gsbg_format.h"
#include "storage/mapped_graph.h"
#include "util/io.h"

namespace gsb::service {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("verify: '" + path + "': " + what);
}

/// The 8-byte container magic, read without mapping the file.
std::string sniff_magic(const std::string& path) {
  const int fd = util::io::open_for_read(path.c_str());
  if (fd < 0) fail(path, "cannot open for reading");
  char magic[8] = {};
  const bool ok = util::io::read_full(fd, magic, sizeof(magic));
  ::close(fd);
  if (!ok) fail(path, "shorter than a container magic (8 bytes)");
  return std::string(magic, sizeof(magic));
}

std::string verify_gsbg(const std::string& path) {
  storage::MappedGraph::Options options;
  options.verify_checksum = true;
  const auto mapped = storage::MappedGraph::open(path, options);
  return "ok gsbg '" + path + "': n=" + std::to_string(mapped.order()) +
         " m=" + std::to_string(mapped.num_edges()) +
         " sections=" + std::to_string(mapped.sections().size()) +
         " bytes=" + std::to_string(mapped.file_bytes());
}

std::string verify_gsbc(const std::string& path) {
  storage::GsbcReader::Options options;
  options.verify_checksum = true;
  auto reader = storage::GsbcReader::open(path, options);
  // The checksum pass proves the bytes; a full drain additionally proves
  // every record decodes and agrees with the header's counts.
  std::vector<graph::VertexId> members;
  std::uint64_t records = 0;
  while (reader.next(members)) ++records;
  if (records != reader.clique_count()) {
    fail(path, "record drain found " + std::to_string(records) +
                   " cliques, header promises " +
                   std::to_string(reader.clique_count()));
  }
  return "ok gsbc '" + path + "': n=" + std::to_string(reader.order()) +
         " cliques=" + std::to_string(reader.clique_count()) +
         " members=" + std::to_string(reader.member_total()) +
         " max_size=" + std::to_string(reader.max_size());
}

std::string verify_gsbci(const std::string& path) {
  // CliqueIndex::open always re-hashes and validates structure.
  const auto index = CliqueIndex::open(path);
  return "ok gsbci '" + path + "': n=" + std::to_string(index.order()) +
         " cliques=" + std::to_string(index.clique_count()) +
         " postings=" + std::to_string(index.posting_total());
}

}  // namespace

std::string verify_artifact(const std::string& path) {
  const std::string magic = sniff_magic(path);
  if (std::memcmp(magic.data(), storage::kMagic, 8) == 0) {
    return verify_gsbg(path);
  }
  if (std::memcmp(magic.data(), storage::kGsbcMagic, 8) == 0) {
    return verify_gsbc(path);
  }
  if (std::memcmp(magic.data(), storage::kGsbciMagic, 8) == 0) {
    return verify_gsbci(path);
  }
  fail(path, "unrecognized magic (expected a .gsbg/.gsbc/.gsbci container)");
}

}  // namespace gsb::service
