#ifndef GSB_SERVICE_SERVER_H
#define GSB_SERVICE_SERVER_H

/// \file server.h
/// The long-lived serving loop behind `gsb serve`: newline-delimited
/// requests in, one response line per request out, over one of two
/// transports (wire format in docs/SERVICE.md):
///
///   * **stream** — requests on an istream (stdin in the CLI), responses
///     on an ostream.  Contiguously available request lines are grouped
///     and fanned over the thread pool via execute_batch; responses are
///     always emitted in request order, so a scripted session's output is
///     byte-reproducible at any thread count.
///   * **Unix-domain socket** — an accept loop with one worker thread per
///     connection over the shared entry and cache; concurrency across
///     connections, request order preserved within each.
///
/// Control requests: `ping` (liveness), `stats` (served/cache counters),
/// `shutdown` (graceful stop: in-flight requests finish, every connection
/// is answered and closed, the accept loop drains).  An external stop
/// flag serves the same purpose for signal handlers.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "service/batch_executor.h"
#include "service/graph_catalog.h"
#include "service/result_cache.h"

namespace gsb::service {

struct ServeOptions {
  std::size_t threads = 0;       ///< 0 = hardware cores
  ResultCache* cache = nullptr;  ///< optional shared response cache
  /// Optional external shutdown flag (e.g. set by a SIGTERM handler);
  /// polled between requests and by the accept loop.
  const std::atomic<bool>* stop = nullptr;
  /// Request deadline in milliseconds (0 = none).  A query answered later
  /// than this after arriving gets a typed `error: deadline exceeded`
  /// instead of its result; order is preserved, and queued requests
  /// already past deadline are shed without executing.  With a deadline
  /// set the stream transport executes per-line (no batch fan-out) so
  /// every request is individually timed.
  std::size_t request_timeout_ms = 0;
  /// Close a socket connection with no traffic and nothing pending after
  /// this many milliseconds (0 = never).  Socket transport only.
  std::size_t idle_timeout_ms = 0;
};

struct ServeStats {
  std::uint64_t requests = 0;     ///< lines served (control lines included)
  std::uint64_t connections = 0;  ///< socket transport only
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t accept_errors = 0;  ///< failed accept() calls (socket only)
  std::uint64_t timeouts = 0;       ///< deadline + idle timeouts
  QueryEngineStats engine;
  bool shutdown_requested = false;  ///< a client sent `shutdown`
};

/// Serves requests from \p in until EOF, a `shutdown` request, or the
/// external stop flag.  Responses go to \p out in request order, flushed
/// per group.
ServeStats serve_stream(std::shared_ptr<const GraphEntry> entry,
                        std::istream& in, std::ostream& out,
                        const ServeOptions& options);

/// Binds \p socket_path (an existing stale socket file is replaced) and
/// serves until a `shutdown` request or the external stop flag.  Throws
/// std::runtime_error when the transport is unavailable (non-POSIX build)
/// or the socket cannot be bound.
ServeStats serve_unix_socket(std::shared_ptr<const GraphEntry> entry,
                             const std::string& socket_path,
                             const ServeOptions& options);

}  // namespace gsb::service

#endif  // GSB_SERVICE_SERVER_H
