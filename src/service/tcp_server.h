#ifndef GSB_SERVICE_TCP_SERVER_H
#define GSB_SERVICE_TCP_SERVER_H

/// \file tcp_server.h
/// The high-throughput TCP front end behind `gsb serve --tcp`.
///
/// One epoll event loop owns every socket (non-blocking accept, read and
/// write; no thread per connection); parsed requests are executed on a
/// small worker pool, at most one in flight per connection, so responses
/// leave each connection in request order and the engine's per-connection
/// state never needs locks.  Each connection speaks one of two protocols,
/// sniffed from its first byte (wire_protocol.h): the newline-delimited
/// line protocol, or the length-prefixed binary protocol with request ids
/// and pipelining.  Response payloads are produced by the same
/// execute_cached_line path every other transport uses, so bytes are
/// identical across stdin, Unix-socket, TCP-line and TCP-binary serving.
///
/// Admission control: a connection may hold at most `max_pipeline` queued
/// requests and `max_inflight_bytes` of un-drained response bytes; beyond
/// either bound new requests are answered immediately with a typed `busy`
/// response (status kBusy on the binary protocol, a `busy: ...` line on
/// the line protocol) instead of queueing unboundedly.  A client that
/// keeps flooding without reading at all is disconnected once its output
/// backlog reaches four times the byte budget.
///
/// Hot reload: the `reload` control request invokes the injected reload
/// callback (the CLI wires it to a fresh GraphCatalog::open of the same
/// spec) and swaps the served entry under live traffic.  In-flight
/// queries finish against the old epoch through their shared_ptr; every
/// request dispatched after the swap runs against the new epoch — no
/// response ever mixes epochs.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "service/result_cache.h"

namespace gsb::service {

struct TcpServerOptions {
  std::size_t threads = 0;       ///< execution workers; 0 = hardware cores
  ResultCache* cache = nullptr;  ///< optional shared response cache
  /// Optional external shutdown flag (signal handlers); polled by the
  /// event loop.
  const std::atomic<bool>* stop = nullptr;
  /// Per-connection bound on buffered, un-drained response bytes before
  /// admission control answers `busy`.
  std::size_t max_inflight_bytes = 4u << 20;
  /// Per-connection bound on queued (not yet executing) requests before
  /// admission control answers `busy`.
  std::size_t max_pipeline = 256;
  /// Hot-reload hook: returns a freshly opened entry (new epoch) for the
  /// `reload` control request; empty = reload unavailable.
  std::function<std::shared_ptr<const GraphEntry>()> reload;
  /// Request deadline in milliseconds (0 = none).  A query whose age
  /// (enqueue to response) exceeds the deadline answers a typed
  /// `error: deadline exceeded` through the normal FIFO — order is
  /// preserved, and queued requests past deadline are shed without
  /// dispatching to a worker.
  std::size_t request_timeout_ms = 0;
  /// Close a connection with no traffic and nothing pending after this
  /// many milliseconds (0 = never).  Reclaims epoll state held by
  /// silent peers without disturbing other connections.
  std::size_t idle_timeout_ms = 0;
  /// Disconnect a client that accepts no response bytes for this many
  /// milliseconds while output is pending (0 = never) — a slow-reader
  /// bound tighter than the admission-control byte budget.
  std::size_t write_timeout_ms = 0;
};

struct TcpServeStats {
  std::uint64_t requests = 0;     ///< requests parsed (control included)
  std::uint64_t connections = 0;  ///< connections accepted
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t busy_rejections = 0;  ///< requests answered `busy`
  std::uint64_t accept_errors = 0;    ///< failed accept() calls
  std::uint64_t protocol_errors = 0;  ///< malformed binary frames
  std::uint64_t disconnects = 0;      ///< mid-session client disconnects
  std::uint64_t reloads = 0;          ///< successful hot reloads
  std::uint64_t timeouts = 0;         ///< deadline + idle + write timeouts
  QueryEngineStats engine;            ///< merged across connection engines
  bool shutdown_requested = false;    ///< a client sent `shutdown`
};

/// Binds in the constructor (so an ephemeral `HOST:0` port is readable
/// via port() before serving) and runs the event loop in serve().
/// Throws std::runtime_error when the address cannot be bound, or — on
/// platforms without epoll — from the constructor.
class TcpServer {
 public:
  /// \p address is `HOST:PORT`; an empty host binds every interface, port
  /// 0 picks an ephemeral port.
  TcpServer(std::shared_ptr<const GraphEntry> entry, const std::string& address,
            TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (useful after binding port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves until a `shutdown` request or the external stop flag, then
  /// drains: queued requests finish, responses flush, connections close.
  TcpServeStats serve();

 private:
  std::shared_ptr<const GraphEntry> entry_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_TCP_SERVER_H
