#ifndef GSB_SERVICE_QUERY_ENGINE_H
#define GSB_SERVICE_QUERY_ENGINE_H

/// \file query_engine.h
/// Executes typed queries against one resident GraphEntry.
///
/// Every query returns a single serialized text line
/// `<canonical-query>: <payload>` whose bytes are fully determined by the
/// graph artifacts and the canonical query — never by thread count, cache
/// state, or the presence of the `.gsbci` index (indexed and rescanning
/// executions emit identical bytes; service_test pins this on seeded
/// ensembles).  That byte-stability is what makes the ResultCache sound:
/// replaying cached bytes is indistinguishable from re-executing.
///
/// Vertex operands and all reported ids are in the graph's *original*
/// labeling; the engine folds through the degree-sort permutation of a
/// sorted `.gsbg` in both directions, matching the CLI's convention and
/// the labels `.gsbc` streams store.
///
/// An engine is cheap to construct and deliberately not thread-safe (it
/// owns a seekable stream handle); concurrent callers construct one engine
/// per thread over the same shared GraphEntry, which is read-only.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/query.h"

namespace gsb::service {

/// Per-engine execution counters (merged by the batch executor).
struct QueryEngineStats {
  std::uint64_t executed = 0;       ///< queries run (errors included)
  std::uint64_t errors = 0;         ///< queries answered with `error:`
  std::uint64_t index_queries = 0;  ///< clique queries answered via .gsbci
  std::uint64_t stream_scans = 0;   ///< full .gsbc rescans
  std::uint64_t records_decoded = 0;  ///< clique records materialized

  QueryEngineStats& operator+=(const QueryEngineStats& other) noexcept;
};

class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<const GraphEntry> entry);

  /// Executes \p query and returns the serialized single-line response
  /// (no trailing newline).  Never throws for per-query problems: bad
  /// operands or a missing cliques source come back as an `error: ` line,
  /// deterministically.
  std::string execute(const Query& query);

  /// Parses and executes one request line (parse failures become `error: `
  /// responses too, so a batch never aborts on one bad line).
  std::string execute_line(const std::string& line);

  [[nodiscard]] const QueryEngineStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const GraphEntry& entry() const noexcept { return *entry_; }

 private:
  std::string dispatch(const Query& query);
  std::string run_neighbors(const Query& query);
  std::string run_degree(const Query& query);
  std::string run_common_neighbors(const Query& query);
  std::string run_induced_subgraph(const Query& query);
  std::string run_kcore_membership(const Query& query);
  std::string run_cliques_containing(const Query& query);
  std::string run_paraclique_expand(const Query& query);
  std::string run_top_hubs(const Query& query);

  /// Bound-checks an original-label operand and folds it to stored space.
  graph::VertexId stored_operand(graph::VertexId original) const;

  std::shared_ptr<const GraphEntry> entry_;
  std::optional<CliqueRandomReader> random_reader_;  ///< lazy, per engine
  QueryEngineStats stats_;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_QUERY_ENGINE_H
