#include "service/graph_catalog.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "graph/io.h"
#include "storage/clique_stream.h"

namespace gsb::service {
namespace {

std::uint64_t next_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

const std::vector<std::uint32_t>& GraphEntry::participation() const {
  std::lock_guard<std::mutex> lock(participation_mutex_);
  if (participation_ready_) return participation_;
  participation_.assign(order(), 0);
  if (index_.is_open()) {
    // Posting-list lengths — no stream bytes touched at all.  The index
    // counts in original labels; fold through the permutation so the
    // vector lines up with stored ids (what top_hubs consumes).
    for (graph::VertexId v = 0; v < order(); ++v) {
      participation_[to_stored(v)] =
          static_cast<std::uint32_t>(index_.participation(v));
    }
  } else if (!cliques_path_.empty()) {
    auto reader = storage::GsbcReader::open(cliques_path_);
    std::vector<graph::VertexId> clique;
    while (reader.next(clique)) {
      for (const graph::VertexId v : clique) ++participation_[to_stored(v)];
    }
  }
  participation_ready_ = true;
  return participation_;
}

std::shared_ptr<GraphEntry> GraphCatalog::open(const std::string& name,
                                               const GraphSpec& spec) {
  // Build the entry completely before touching the map, so a failed open
  // never disturbs an existing entry under the same name.
  auto entry = std::shared_ptr<GraphEntry>(new GraphEntry());
  entry->name_ = name;
  if (graph::detect_graph_format(spec.graph_path, spec.format) == "gsbg") {
    entry->mapped_ = storage::MappedGraph::open(spec.graph_path);
    if (entry->mapped_.has_bitmap()) {
      entry->view_ = entry->mapped_.view();
    } else {
      entry->owned_ = entry->mapped_.load();
      entry->view_ = graph::GraphView(entry->owned_);
    }
    const auto perm = entry->mapped_.permutation();
    if (!perm.empty()) {
      entry->inverse_permutation_.resize(perm.size());
      for (graph::VertexId stored = 0; stored < perm.size(); ++stored) {
        entry->inverse_permutation_[perm[stored]] = stored;
      }
    }
  } else {
    entry->owned_ = graph::load_graph(spec.graph_path, spec.format);
    entry->view_ = graph::GraphView(entry->owned_);
  }

  if (!spec.cliques_path.empty()) {
    // Validate the stream now (header + size coherence + universe match);
    // queries reopen it per scan.
    const auto stream = storage::GsbcReader::open(spec.cliques_path);
    if (stream.order() != entry->order()) {
      throw std::runtime_error(
          "catalog: clique stream universe (" +
          std::to_string(stream.order()) + ") does not match graph order (" +
          std::to_string(entry->order()) + ")");
    }
    entry->cliques_path_ = spec.cliques_path;

    std::string index_path = spec.index_path;
    if (index_path.empty() && spec.probe_index) {
      // Probe the conventional sidecar; absence is fine (rescan mode).
      const std::string sidecar = default_index_path(spec.cliques_path);
      std::error_code ec;
      if (std::filesystem::exists(sidecar, ec)) index_path = sidecar;
    }
    if (!index_path.empty()) {
      auto index = CliqueIndex::open(index_path);
      if (index.source_checksum() != stream.header().checksum) {
        throw std::runtime_error(
            "catalog: index '" + index_path +
            "' was built from a different stream (rebuild with gsb index)");
      }
      if (index.order() != entry->order()) {
        throw std::runtime_error("catalog: index universe mismatch");
      }
      entry->index_ = std::move(index);
    }
  } else if (!spec.index_path.empty()) {
    throw std::runtime_error("catalog: an index needs its clique stream");
  }

  entry->epoch_ = next_epoch();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, slot] : entries_) {
    if (existing == name) {
      slot = entry;
      return entry;
    }
  }
  entries_.emplace_back(name, entry);
  return entry;
}

std::shared_ptr<GraphEntry> GraphCatalog::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, entry] : entries_) {
    if (existing == name) return entry;
  }
  return nullptr;
}

bool GraphCatalog::close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == name) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<std::string> GraphCatalog::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t GraphCatalog::external_refs(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, entry] : entries_) {
    if (existing == name) {
      const auto count = entry.use_count();
      return count > 0 ? static_cast<std::size_t>(count) - 1 : 0;
    }
  }
  return 0;
}

}  // namespace gsb::service
