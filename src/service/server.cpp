#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "service/control_text.h"
#include "util/io.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#define GSB_HAVE_UNIX_SOCKETS 1
#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: SO_NOSIGPIPE is set on the socket instead
#endif
#endif

namespace gsb::service {
namespace {

/// Counters shared by every transport/connection so `stats` answers for
/// the whole server, not one connection.
struct ServeState {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> accept_errors{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<bool> stopping{false};
  /// stats emits timeouts= only when a deadline/idle bound is configured,
  /// so the default stats line is byte-identical to older servers.
  bool timeouts_configured = false;
  ResultCache* cache = nullptr;
  const std::atomic<bool>* external_stop = nullptr;
  /// Listen backlog in force (0 on the stream transport).  The kernel
  /// drops connections past this bound silently, so `stats` reports the
  /// bound itself alongside the accept failures the server *can* see.
  int listen_backlog = 0;

  [[nodiscard]] bool should_stop() const noexcept {
    return stopping.load(std::memory_order_relaxed) ||
           (external_stop != nullptr &&
            external_stop->load(std::memory_order_relaxed));
  }
};

std::string trimmed(const std::string& line) {
  const auto begin = line.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = line.find_last_not_of(" \t\r\n");
  return line.substr(begin, end - begin + 1);
}

/// Handles `ping` / `stats` / `metrics ...` / `shutdown`; nullopt for
/// ordinary queries.
std::optional<std::string> control_response(ServeState& state,
                                            const std::string& request) {
  if (request == "ping") return std::string("ok pong");
  if (request == "shutdown") {
    state.stopping.store(true, std::memory_order_relaxed);
    return std::string("ok shutdown");
  }
  if (request == "stats") {
    StatsFields fields;
    fields.requests = state.requests.load(std::memory_order_relaxed);
    fields.cache_hits = state.cache_hits.load(std::memory_order_relaxed);
    fields.cache_misses = state.cache_misses.load(std::memory_order_relaxed);
    if (state.timeouts_configured) {
      fields.timeouts = state.timeouts.load(std::memory_order_relaxed);
    }
    fields.accept_errors =
        state.accept_errors.load(std::memory_order_relaxed);
    fields.backlog = state.listen_backlog;
    fields.cache = state.cache;
    return render_stats_line(fields);
  }
  if (const auto profile = profile_response(request)) return *profile;
  return metrics_response(request);
}

/// Per-transport counters on the global registry; inert until the
/// registry is enabled.
struct TransportMetrics {
  obs::Counter requests;
  obs::Counter connections;
  obs::Counter accept_errors;
  obs::Counter bytes_in;
  obs::Counter bytes_out;
  obs::Histogram socket_write;
};

TransportMetrics make_transport_metrics(const char* transport) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::string labels =
      std::string("transport=\"") + transport + "\"";
  TransportMetrics m;
  m.requests = registry.counter("gsb_requests_total",
                                "Requests received per transport.", labels);
  m.connections = registry.counter(
      "gsb_connections_total", "Connections accepted per transport.", labels);
  m.accept_errors = registry.counter(
      "gsb_accept_errors_total", "Failed accept() calls per transport.",
      labels);
  m.bytes_in = registry.counter("gsb_bytes_read_total",
                                "Request bytes read per transport.", labels);
  m.bytes_out = registry.counter(
      "gsb_bytes_written_total", "Response bytes written per transport.",
      labels);
  m.socket_write = registry.histogram(
      "gsb_socket_write_microseconds",
      "Time spent writing responses to the socket.", labels);
  return m;
}

const TransportMetrics& stream_metrics() {
  static const TransportMetrics metrics = make_transport_metrics("stream");
  return metrics;
}

const TransportMetrics& unix_metrics() {
  static const TransportMetrics metrics = make_transport_metrics("unix");
  return metrics;
}

constexpr const char* kDeadlineError = "error: deadline exceeded";
constexpr const char* kTimeoutMetric = "gsb_timeouts_total";
constexpr const char* kTimeoutHelp =
    "Requests or connections timed out, by timeout kind.";

/// Same series the TCP loop registers (the registry dedupes on
/// name+labels), so every transport's timeouts land in one metric.
obs::Counter& request_timeout_counter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      kTimeoutMetric, kTimeoutHelp, "kind=\"request\"");
  return counter;
}

obs::Counter& idle_timeout_counter() {
  static obs::Counter counter = obs::MetricsRegistry::global().counter(
      kTimeoutMetric, kTimeoutHelp, "kind=\"idle\"");
  return counter;
}

}  // namespace

ServeStats serve_stream(std::shared_ptr<const GraphEntry> entry,
                        std::istream& in, std::ostream& out,
                        const ServeOptions& options) {
  if (entry == nullptr) {
    throw std::invalid_argument("serve_stream: null graph entry");
  }
  ServeState state;
  state.cache = options.cache;
  state.external_stop = options.stop;
  state.timeouts_configured = options.request_timeout_ms != 0;
  ServeStats stats;

  // Session-lifetime state: multi-line groups borrow one pool and one set
  // of per-thread engines (no thread setup, no re-opened clique readers
  // per group), and single-line groups — the interactive case — run on
  // one persistent engine.  A long session opens the artifacts once.
  std::size_t threads = options.threads;
  if (threads == 0) threads = par::ThreadPool::default_threads();
  std::optional<par::ThreadPool> pool;
  std::vector<QueryEngine> group_engines;
  if (threads > 1) {
    pool.emplace(threads);
    group_engines.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) group_engines.emplace_back(entry);
  }
  QueryEngine session_engine(entry);
  std::uint64_t session_hits = 0;
  std::uint64_t session_misses = 0;
  if (obs::TimelineJournal::global().enabled()) {
    obs::TimelineJournal::global().set_thread_lane("stream");
  }

  std::vector<std::string> group;
  std::string line;
  auto group_arrival = std::chrono::steady_clock::now();
  const auto past_deadline = [&]() {
    return options.request_timeout_ms != 0 &&
           std::chrono::steady_clock::now() - group_arrival >
               std::chrono::milliseconds(options.request_timeout_ms);
  };
  while (!state.should_stop() && std::getline(in, line)) {
    // Group the contiguously available request lines so independent
    // queries fan out together; responses still flush in request order.
    group.clear();
    group.push_back(line);
    while (in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      group.push_back(line);
    }
    group_arrival = std::chrono::steady_clock::now();

    std::size_t begin = 0;
    auto flush_queries = [&](std::size_t end) {
      if (begin == end) return;
      // A configured deadline forces the per-line path: each request is
      // individually timed against its group's arrival, which batch
      // fan-out cannot provide.
      if (threads == 1 || end - begin == 1 ||
          options.request_timeout_ms != 0) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t h0 = session_hits;
          const std::uint64_t m0 = session_misses;
          if (past_deadline()) {
            // Shed without executing; the slot still answers in order.
            state.timeouts.fetch_add(1, std::memory_order_relaxed);
            request_timeout_counter().inc();
            out << kDeadlineError << '\n';
            continue;
          }
          std::string response;
          {
            obs::TraceScope trace(obs::Tracer::global(), "stream", group[i]);
            obs::TimelineSpan span(obs::TimelineEventKind::kRequest,
                                   group[i]);
            response = execute_cached_line(session_engine, options.cache,
                                           group[i], session_hits,
                                           session_misses);
          }
          if (past_deadline()) {
            state.timeouts.fetch_add(1, std::memory_order_relaxed);
            request_timeout_counter().inc();
            response = kDeadlineError;
          }
          out << response << '\n';
          state.cache_hits.fetch_add(session_hits - h0,
                                     std::memory_order_relaxed);
          state.cache_misses.fetch_add(session_misses - m0,
                                       std::memory_order_relaxed);
        }
        begin = end;
        return;
      }
      const std::vector<std::string> slice(group.begin() + begin,
                                           group.begin() + end);
      BatchOptions batch;
      batch.threads = threads;
      batch.cache = options.cache;
      batch.pool = pool ? &*pool : nullptr;
      batch.engines = group_engines.empty() ? nullptr : &group_engines;
      const auto result = execute_batch(entry, slice, batch);
      for (const std::string& response : result.responses) {
        out << response << '\n';
      }
      stats.engine += result.engine;
      stats.cache_hits += result.cache_hits;
      stats.cache_misses += result.cache_misses;
      state.cache_hits.fetch_add(result.cache_hits,
                                 std::memory_order_relaxed);
      state.cache_misses.fetch_add(result.cache_misses,
                                   std::memory_order_relaxed);
      begin = end;
    };

    for (std::size_t i = 0; i < group.size(); ++i) {
      const std::string request = trimmed(group[i]);
      if (request.empty()) {  // blank keep-alive: no response, not counted
        flush_queries(i);
        begin = i + 1;
        continue;
      }
      state.requests.fetch_add(1, std::memory_order_relaxed);
      stream_metrics().requests.inc();
      ++stats.requests;
      if (is_control_request(request)) {
        // Everything queued before the control line answers first — and
        // must also *execute* first: `stats` reads the cache counters
        // and `profile stop` snapshots the timeline window, so pending
        // queries have to land before the control request evaluates.
        flush_queries(i);
        if (const auto control = control_response(state, request)) {
          begin = i + 1;
          out << *control << '\n';
        }
        // Control-shaped but unsupported here ("reload" without TCP):
        // left in the pending range for the typed engine error.
      }
    }
    flush_queries(group.size());
    out.flush();
  }
  stats.engine += session_engine.stats();
  stats.cache_hits += session_hits;
  stats.cache_misses += session_misses;
  stats.timeouts = state.timeouts.load(std::memory_order_relaxed);
  stats.shutdown_requested = state.stopping.load(std::memory_order_relaxed);
  return stats;
}

#if GSB_HAVE_UNIX_SOCKETS

namespace {

/// Sends the whole buffer through util::io::send_some (EINTR retried
/// there, fault-injectable).  MSG_NOSIGNAL so a client that disconnected
/// mid-response surfaces as EPIPE (connection teardown) instead of a
/// process-killing SIGPIPE.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = util::io::send_some(fd, data.data() + sent,
                                          data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One connection: per-connection engine, shared cache/state; answers
/// request lines until EOF, server stop, or idle timeout.
void handle_connection(int fd, std::shared_ptr<const GraphEntry> entry,
                       ServeState& state, const ServeOptions& options,
                       std::mutex& stats_mutex, ServeStats& stats) {
  QueryEngine engine(entry);
  if (obs::TimelineJournal::global().enabled()) {
    obs::TimelineJournal::global().set_thread_lane("unix-conn");
  }
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t requests = 0;
  std::string pending;
  char chunk[4096];
  bool write_ok = true;   // a failed write aborts the connection
  bool closing = false;   // shutdown seen: drain what is buffered, close
  const TransportMetrics& metrics = unix_metrics();
  auto last_activity = std::chrono::steady_clock::now();
  // Read-batch arrival time: every line parsed from one read shares it,
  // mirroring the TCP loop's enqueue-to-response deadline.
  auto enqueued = last_activity;
  const auto past_deadline = [&]() {
    return options.request_timeout_ms != 0 &&
           std::chrono::steady_clock::now() - enqueued >
               std::chrono::milliseconds(options.request_timeout_ms);
  };
  auto answer = [&](const std::string& request) {
    if (request.empty() || !write_ok) return;
    ++requests;
    state.requests.fetch_add(1, std::memory_order_relaxed);
    metrics.requests.inc();
    obs::TraceScope trace(obs::Tracer::global(), "unix", request);
    obs::TimelineSpan timeline_span(obs::TimelineEventKind::kRequest, request);
    std::string response;
    if (const auto control = control_response(state, request)) {
      response = *control;
      if (request == "shutdown") closing = true;
    } else if (past_deadline()) {
      // Shed without executing; the line still answers in order.
      state.timeouts.fetch_add(1, std::memory_order_relaxed);
      request_timeout_counter().inc();
      response = kDeadlineError;
    } else {
      response =
          execute_cached_line(engine, state.cache, request, hits, misses);
      if (past_deadline()) {
        state.timeouts.fetch_add(1, std::memory_order_relaxed);
        request_timeout_counter().inc();
        response = kDeadlineError;
      }
    }
    std::string payload;
    {
      obs::SpanTimer serialize(obs::Span::kSerialize);
      payload = std::move(response);
      payload.push_back('\n');
    }
    util::Timer write_timer;
    {
      obs::SpanTimer span(obs::Span::kSocketWrite);
      write_ok = write_all(fd, payload);
    }
    metrics.socket_write.observe_micros(
        static_cast<std::uint64_t>(write_timer.micros()));
    metrics.bytes_out.inc(payload.size());
  };
  int tick_ms = 200;
  if (options.idle_timeout_ms != 0) {
    tick_ms = std::min<int>(
        tick_ms,
        std::max<int>(10, static_cast<int>(options.idle_timeout_ms / 2)));
  }
  while (write_ok && !closing) {
    struct pollfd poller{fd, POLLIN, 0};
    const int ready = ::poll(&poller, 1, tick_ms);
    if (state.should_stop()) break;  // graceful: in-flight lines finished
    if (ready < 0) {
      if (errno == EINTR) continue;  // interrupted: re-check the stop flags
      break;
    }
    if (ready == 0) {
      if (options.idle_timeout_ms != 0 &&
          std::chrono::steady_clock::now() - last_activity >
              std::chrono::milliseconds(options.idle_timeout_ms)) {
        state.timeouts.fetch_add(1, std::memory_order_relaxed);
        idle_timeout_counter().inc();
        break;  // reclaim the worker held by a silent peer
      }
      continue;
    }
    const ssize_t n = util::io::read_some(fd, chunk, sizeof(chunk));
    enqueued = std::chrono::steady_clock::now();
    if (n <= 0) {
      // EOF: a final request without a trailing newline is still a
      // request — answer it before closing instead of dropping it.
      if (n == 0) answer(trimmed(pending));
      break;
    }
    last_activity = enqueued;
    pending.append(chunk, static_cast<std::size_t>(n));
    metrics.bytes_in.inc(static_cast<std::uint64_t>(n));
    // Answer every complete buffered line — including lines received
    // after a `shutdown` in the same read, matching the stream
    // transport's drain-then-stop contract.
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start);
         nl != std::string::npos; nl = pending.find('\n', start)) {
      const std::string request = trimmed(pending.substr(start, nl - start));
      start = nl + 1;
      answer(request);
    }
    pending.erase(0, start);
  }
  ::close(fd);
  state.cache_hits.fetch_add(hits, std::memory_order_relaxed);
  state.cache_misses.fetch_add(misses, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex);
  stats.requests += requests;
  stats.cache_hits += hits;
  stats.cache_misses += misses;
  stats.engine += engine.stats();
}

}  // namespace

ServeStats serve_unix_socket(std::shared_ptr<const GraphEntry> entry,
                             const std::string& socket_path,
                             const ServeOptions& options) {
  if (entry == nullptr) {
    throw std::invalid_argument("serve_unix_socket: null graph entry");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // Replace a *stale* socket file only: never delete a non-socket, and
  // never hijack a path another live server is still accepting on (a
  // connect() probe distinguishes the two — a live listener accepts, a
  // leftover file refuses).
  struct stat st{};
  if (::stat(socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw std::runtime_error("serve: '" + socket_path +
                               "' exists and is not a socket");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const int live = ::connect(
          probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      ::close(probe);
      if (live == 0) {
        throw std::runtime_error("serve: '" + socket_path +
                                 "' is already served by a live process");
      }
    }
    ::unlink(socket_path.c_str());
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) throw std::runtime_error("serve: socket() failed");
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, SOMAXCONN) != 0) {
    ::close(listen_fd);
    throw std::runtime_error("serve: cannot bind '" + socket_path + "'");
  }
  // Identity of the socket file *we* bound: exit-time cleanup must not
  // delete a replacement bound by a newer server instance.
  struct stat bound{};
  const bool have_bound = ::stat(socket_path.c_str(), &bound) == 0;

  ServeState state;
  state.cache = options.cache;
  state.external_stop = options.stop;
  state.timeouts_configured =
      options.request_timeout_ms != 0 || options.idle_timeout_ms != 0;
  state.listen_backlog = SOMAXCONN;
  ServeStats stats;
  std::mutex stats_mutex;

  // Finished connections are reaped on every accept-loop tick so a
  // long-lived daemon's thread resources stay proportional to *live*
  // connections, not to how many it has ever served.
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> workers;
  auto reap = [&](bool all) {
    for (auto it = workers.begin(); it != workers.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = workers.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!state.should_stop()) {
    struct pollfd poller{listen_fd, POLLIN, 0};
    const int ready = ::poll(&poller, 1, 200);
    reap(false);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flags
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != ECONNABORTED) {
        state.accept_errors.fetch_add(1, std::memory_order_relaxed);
        unix_metrics().accept_errors.inc();
      }
      continue;
    }
    unix_metrics().connections.inc();
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.connections;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    workers.push_back(Connection{
        std::thread([fd, entry, &state, &options, &stats_mutex, &stats,
                     done] {
          handle_connection(fd, entry, state, options, stats_mutex, stats);
          done->store(true, std::memory_order_release);
        }),
        done});
  }
  ::close(listen_fd);
  reap(true);
  struct stat current{};
  if (have_bound && ::stat(socket_path.c_str(), &current) == 0 &&
      current.st_ino == bound.st_ino && current.st_dev == bound.st_dev) {
    ::unlink(socket_path.c_str());
  }
  stats.accept_errors = state.accept_errors.load(std::memory_order_relaxed);
  stats.timeouts = state.timeouts.load(std::memory_order_relaxed);
  stats.shutdown_requested = state.stopping.load(std::memory_order_relaxed);
  return stats;
}

#else  // !GSB_HAVE_UNIX_SOCKETS

ServeStats serve_unix_socket(std::shared_ptr<const GraphEntry>,
                             const std::string&, const ServeOptions&) {
  throw std::runtime_error(
      "serve: Unix-domain sockets are unavailable on this platform; use the "
      "stdin transport");
}

#endif

}  // namespace gsb::service
