#ifndef GSB_SERVICE_CLIENT_H
#define GSB_SERVICE_CLIENT_H

/// \file client.h
/// A small C++ client for the serving transports: TCP (`gsb serve --tcp`)
/// and Unix-domain sockets (`--socket`), speaking both wire protocols
/// (docs/SERVICE.md).
///
/// The line protocol is the scripting surface: `request()` for one
/// round trip, `request_pipelined()` to keep many requests on the wire at
/// once (responses in request order).  The binary protocol adds request
/// ids and typed statuses: `send()` buffers frames without blocking on
/// responses, `flush()`/`receive()` drive them, and `call_pipelined()`
/// is the batch convenience around all three.  Pipelined calls interleave
/// sends and receives through poll(), so a batch larger than both socket
/// buffers cannot deadlock.  All I/O retries EINTR and sends with
/// MSG_NOSIGNAL — a server that disappears surfaces as std::runtime_error,
/// never SIGPIPE.

#include <cstdint>
#include <string>
#include <vector>

#include "service/wire_protocol.h"

namespace gsb::service {

class ServiceClient {
 public:
  struct BinaryResponse {
    std::uint64_t id = 0;
    wire::Status status = wire::Status::kOk;
    std::string payload;
  };

  /// Connects to `HOST:PORT`.  Throws std::runtime_error on failure.
  static ServiceClient connect_tcp(const std::string& host_port);
  /// Connects to a Unix-domain socket path.
  static ServiceClient connect_unix(const std::string& socket_path);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  // --- line protocol --------------------------------------------------------

  /// One request line -> its response line (no trailing newline).
  std::string request(const std::string& line);

  /// Sends every line before reading, interleaved via poll(); returns the
  /// response lines in request order.
  std::vector<std::string> request_pipelined(
      const std::vector<std::string>& lines);

  // --- binary protocol ------------------------------------------------------

  /// Buffers one request frame (auto-assigned id, returned); does not
  /// block on the response.
  std::uint64_t send(const std::string& payload);
  /// Buffers one request frame under an explicit id.
  void send(std::uint64_t id, const std::string& payload);
  /// Writes every buffered frame to the socket.
  void flush();
  /// Blocks for the next response frame (flushing buffered sends first,
  /// so a lone send()+receive() cannot deadlock).
  BinaryResponse receive();
  /// Pipelines one binary request per payload and returns the responses
  /// in arrival order (== request order on a conforming server).
  std::vector<BinaryResponse> call_pipelined(
      const std::vector<std::string>& payloads);

  /// Half-closes the send direction (the server sees EOF after draining).
  void finish_sending();
  /// Closes the socket.
  void close();
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  /// poll()-driven engine under both pipelined paths: drains `out_` while
  /// collecting input until \p done says enough arrived.
  template <typename DonePredicate>
  void transfer(const DonePredicate& done);

  int fd_ = -1;
  std::string out_;      ///< encoded frames / lines awaiting send
  std::string in_;       ///< received bytes awaiting decode
  std::uint64_t next_id_ = 1;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_CLIENT_H
