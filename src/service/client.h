#ifndef GSB_SERVICE_CLIENT_H
#define GSB_SERVICE_CLIENT_H

/// \file client.h
/// A small C++ client for the serving transports: TCP (`gsb serve --tcp`)
/// and Unix-domain sockets (`--socket`), speaking both wire protocols
/// (docs/SERVICE.md).
///
/// The line protocol is the scripting surface: `request()` for one
/// round trip, `request_pipelined()` to keep many requests on the wire at
/// once (responses in request order).  The binary protocol adds request
/// ids and typed statuses: `send()` buffers frames without blocking on
/// responses, `flush()`/`receive()` drive them, and `call_pipelined()`
/// is the batch convenience around all three.  Pipelined calls interleave
/// sends and receives through poll(), so a batch larger than both socket
/// buffers cannot deadlock.  All I/O retries EINTR and sends with
/// MSG_NOSIGNAL — a server that disappears surfaces as std::runtime_error,
/// never SIGPIPE.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/wire_protocol.h"

namespace gsb::service {

class ServiceClient {
 public:
  struct BinaryResponse {
    std::uint64_t id = 0;
    wire::Status status = wire::Status::kOk;
    std::string payload;
  };

  /// Connects to `HOST:PORT`.  Throws std::runtime_error on failure
  /// (including ETIMEDOUT when a connect bound is set; 0 = no bound).
  static ServiceClient connect_tcp(const std::string& host_port,
                                   std::size_t connect_timeout_ms = 0);
  /// Connects to a Unix-domain socket path.
  static ServiceClient connect_unix(const std::string& socket_path,
                                    std::size_t connect_timeout_ms = 0);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  // --- line protocol --------------------------------------------------------

  /// One request line -> its response line (no trailing newline).
  std::string request(const std::string& line);

  /// Sends every line before reading, interleaved via poll(); returns the
  /// response lines in request order.
  std::vector<std::string> request_pipelined(
      const std::vector<std::string>& lines);

  /// Resumable core of request_pipelined: sends `lines[from..)` and
  /// appends response lines to \p responses as they arrive.  On a
  /// connection failure it throws with the already-arrived responses
  /// retained — the hook RetryingClient uses to replay only the
  /// unanswered suffix after reconnecting.
  void request_pipelined_into(const std::vector<std::string>& lines,
                              std::size_t from,
                              std::vector<std::string>& responses);

  /// Bounds every poll() inside a transfer: if the socket makes no
  /// progress for this long the call throws (0 = wait forever).
  void set_io_timeout(std::size_t timeout_ms) noexcept {
    io_timeout_ms_ = timeout_ms;
  }

  // --- binary protocol ------------------------------------------------------

  /// Buffers one request frame (auto-assigned id, returned); does not
  /// block on the response.
  std::uint64_t send(const std::string& payload);
  /// Buffers one request frame under an explicit id.
  void send(std::uint64_t id, const std::string& payload);
  /// Writes every buffered frame to the socket.
  void flush();
  /// Blocks for the next response frame (flushing buffered sends first,
  /// so a lone send()+receive() cannot deadlock).
  BinaryResponse receive();
  /// Pipelines one binary request per payload and returns the responses
  /// in arrival order (== request order on a conforming server).
  std::vector<BinaryResponse> call_pipelined(
      const std::vector<std::string>& payloads);

  /// Half-closes the send direction (the server sees EOF after draining).
  void finish_sending();
  /// Closes the socket.
  void close();
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  /// poll()-driven engine under both pipelined paths: drains `out_` while
  /// collecting input until \p done says enough arrived.
  template <typename DonePredicate>
  void transfer(const DonePredicate& done);

  int fd_ = -1;
  std::string out_;      ///< encoded frames / lines awaiting send
  std::string in_;       ///< received bytes awaiting decode
  std::uint64_t next_id_ = 1;
  std::size_t io_timeout_ms_ = 0;  ///< poll bound inside transfer (0 = none)
};

/// Knobs for RetryingClient.  Backoff between reconnects is exponential
/// (base doubling per attempt, capped) with deterministic seeded jitter
/// in [0.5, 1.0] of the nominal delay, so chaos runs replay exactly.
struct RetryPolicy {
  std::size_t retries = 0;     ///< reconnects allowed before giving up
  std::size_t timeout_ms = 0;  ///< connect + per-poll I/O bound (0 = none)
  std::uint64_t seed = 2005;   ///< jitter seed
  std::size_t base_backoff_ms = 10;
  std::size_t max_backoff_ms = 2000;
};

/// Reconnect-and-replay wrapper over the line protocol.  Safe because
/// every query is read-only and deterministic: after a connection
/// failure (connect, send, receive, or I/O timeout) it reconnects with
/// backoff and resends only the requests whose responses have not
/// arrived, so the caller sees the same response vector a fault-free
/// session would produce.  Each reconnect increments gsb_retries_total
/// and logs one `client: reconnect ...` line to stderr.
class RetryingClient {
 public:
  /// \p target is `HOST:PORT` when \p unix_socket is false, else a
  /// socket path.  Connection is lazy (first request).
  RetryingClient(std::string target, bool unix_socket, RetryPolicy policy);

  /// One request line -> its response line, with retry.
  std::string request(const std::string& line);
  /// Pipelined lines -> responses in request order, with
  /// reconnect-and-replay of the unanswered suffix.
  std::vector<std::string> request_pipelined(
      const std::vector<std::string>& lines);

  /// Reconnects performed over the client's lifetime.
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  void close();

 private:
  ServiceClient& ensure_connected();
  std::size_t backoff_ms(std::size_t attempt);

  std::string target_;
  bool unix_socket_ = false;
  RetryPolicy policy_;
  std::optional<ServiceClient> client_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t rng_ = 0;
};

}  // namespace gsb::service

#endif  // GSB_SERVICE_CLIENT_H
