#include "service/clique_index.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GSB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "storage/clique_stream.h"
#include "util/io.h"

namespace gsb::service {
namespace {

using storage::GsbciHeader;
using storage::kGsbciHeaderBytes;
using storage::kGsbciMagic;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("gsbci: " + what);
}

void serialize_header(char (&buffer)[kGsbciHeaderBytes],
                      const GsbciHeader& header) {
  std::memset(buffer, 0, sizeof(buffer));
  std::memcpy(buffer, kGsbciMagic, sizeof(kGsbciMagic));
  std::memcpy(buffer + 8, &header.version, 4);
  std::memcpy(buffer + 12, &header.flags, 4);
  std::memcpy(buffer + 16, &header.n, 8);
  std::memcpy(buffer + 24, &header.clique_count, 8);
  std::memcpy(buffer + 32, &header.posting_total, 8);
  std::memcpy(buffer + 40, &header.source_checksum, 8);
  std::memcpy(buffer + 48, &header.checksum, 8);
}

/// Writes one u64 array as payload bytes, folding it into \p sum.
void write_array(util::io::FileWriter& out, storage::Fnv1a& sum,
                 const std::vector<std::uint64_t>& values) {
  const auto* bytes = reinterpret_cast<const char*>(values.data());
  const std::size_t count = values.size() * sizeof(std::uint64_t);
  sum.update(bytes, count);
  out.write(bytes, count);
}

}  // namespace

std::string default_index_path(const std::string& gsbc_path) {
  if (gsbc_path.ends_with(".gsbc")) return gsbc_path + "i";
  return gsbc_path + ".gsbci";
}

CliqueIndexBuildStats build_clique_index(const std::string& gsbc_path,
                                         const std::string& out_path) {
  // Pass 1: record offsets + per-vertex participation counts.
  auto reader = storage::GsbcReader::open(gsbc_path);
  GsbciHeader header;
  header.n = reader.header().n;
  header.clique_count = reader.header().clique_count;
  header.posting_total = reader.header().member_total;
  header.source_checksum = reader.header().checksum;

  std::vector<std::uint64_t> clique_offsets;
  clique_offsets.reserve(header.clique_count);
  std::vector<std::uint64_t> posting_offsets(header.n + 1, 0);
  std::vector<graph::VertexId> clique;
  while (true) {
    const std::uint64_t offset = reader.next_record_offset();
    if (!reader.next(clique)) break;
    clique_offsets.push_back(offset);
    for (const graph::VertexId v : clique) ++posting_offsets[v + 1];
  }
  for (std::size_t v = 0; v < header.n; ++v) {
    posting_offsets[v + 1] += posting_offsets[v];
  }

  // Pass 2: fill the inverted postings in clique-id order, so every
  // per-vertex list comes out ascending (== stream order).
  std::vector<std::uint64_t> postings(header.posting_total);
  std::vector<std::uint64_t> cursor(posting_offsets.begin(),
                                    posting_offsets.end() - 1);
  auto refill = storage::GsbcReader::open(gsbc_path);
  for (std::uint64_t id = 0; refill.next(clique); ++id) {
    for (const graph::VertexId v : clique) postings[cursor[v]++] = id;
  }

  // Crash safety: the index is assembled in `<out_path>.tmp.<pid>` and
  // atomically renamed on commit, like the .gsbg/.gsbc writers.
  util::io::FileWriter out(out_path);
  char raw[kGsbciHeaderBytes];
  serialize_header(raw, header);  // placeholder; patched below
  out.write(raw, sizeof(raw));
  storage::Fnv1a sum;
  write_array(out, sum, clique_offsets);
  write_array(out, sum, posting_offsets);
  write_array(out, sum, postings);
  header.checksum = sum.digest();
  serialize_header(raw, header);
  out.write_at(0, raw, sizeof(raw));
  out.commit();

  CliqueIndexBuildStats stats;
  stats.clique_count = header.clique_count;
  stats.posting_total = header.posting_total;
  stats.file_bytes =
      kGsbciHeaderBytes +
      8 * (clique_offsets.size() + posting_offsets.size() + postings.size());
  return stats;
}

// --- reader -----------------------------------------------------------------

CliqueIndex::~CliqueIndex() { release(); }

CliqueIndex::CliqueIndex(CliqueIndex&& other) noexcept {
  *this = std::move(other);
}

CliqueIndex& CliqueIndex::operator=(CliqueIndex&& other) noexcept {
  if (this != &other) {
    release();
    header_ = other.header_;
    base_ = std::exchange(other.base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    heap_backed_ = std::exchange(other.heap_backed_, false);
    clique_offsets_ = std::exchange(other.clique_offsets_, {});
    posting_offsets_ = std::exchange(other.posting_offsets_, {});
    postings_ = std::exchange(other.postings_, {});
  }
  return *this;
}

void CliqueIndex::release() noexcept {
  if (base_ == nullptr) return;
#if GSB_HAVE_MMAP
  if (!heap_backed_) {
    ::munmap(const_cast<char*>(base_), map_bytes_);
    base_ = nullptr;
    return;
  }
#endif
  delete[] base_;
  base_ = nullptr;
}

CliqueIndex CliqueIndex::open(const std::string& path) {
  CliqueIndex index;

#if GSB_HAVE_MMAP
  const int fd = util::io::open_for_read(path.c_str());
  if (fd < 0) fail("cannot open '" + path + "' for reading");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat '" + path + "'");
  }
  index.map_bytes_ = static_cast<std::size_t>(st.st_size);
  if (index.map_bytes_ == 0) {
    ::close(fd);
    fail("file is empty");
  }
  void* map = util::io::mmap_read(index.map_bytes_, fd);
  ::close(fd);
  if (map == MAP_FAILED) fail("mmap failed for '" + path + "'");
  index.base_ = static_cast<const char*>(map);
#else
  // Portability fallback: read the whole file into heap memory.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open '" + path + "' for reading");
  const auto size = in.tellg();
  if (size <= 0) fail("file is empty");
  index.map_bytes_ = static_cast<std::size_t>(size);
  char* buffer = new char[index.map_bytes_];
  in.seekg(0);
  in.read(buffer, static_cast<std::streamsize>(index.map_bytes_));
  if (!in) {
    delete[] buffer;
    fail("short read from '" + path + "'");
  }
  index.base_ = buffer;
  index.heap_backed_ = true;
#endif

  if (index.map_bytes_ < kGsbciHeaderBytes) fail("file shorter than header");
  if (std::memcmp(index.base_, kGsbciMagic, sizeof(kGsbciMagic)) != 0) {
    fail("bad magic (not a .gsbci file)");
  }
  GsbciHeader& header = index.header_;
  std::memcpy(&header.version, index.base_ + 8, 4);
  std::memcpy(&header.flags, index.base_ + 12, 4);
  std::memcpy(&header.n, index.base_ + 16, 8);
  std::memcpy(&header.clique_count, index.base_ + 24, 8);
  std::memcpy(&header.posting_total, index.base_ + 32, 8);
  std::memcpy(&header.source_checksum, index.base_ + 40, 8);
  std::memcpy(&header.checksum, index.base_ + 48, 8);
  if (header.version != storage::kGsbciVersion) {
    fail("unsupported version " + std::to_string(header.version));
  }
  // Ceiling the counts before the size arithmetic: crafted values near
  // 2^64/8 would wrap `expected` back onto the real file size and turn
  // the span construction below into out-of-bounds reads.
  constexpr std::uint64_t kCountCeiling = 1ull << 56;
  if (header.clique_count >= kCountCeiling || header.n >= kCountCeiling ||
      header.posting_total >= kCountCeiling) {
    fail("header counts out of range");
  }
  const std::uint64_t expected =
      kGsbciHeaderBytes +
      8 * (header.clique_count + header.n + 1 + header.posting_total);
  if (index.map_bytes_ != expected) {
    fail("file size " + std::to_string(index.map_bytes_) +
         " does not match header counts (expected " +
         std::to_string(expected) + ")");
  }

  // Integrity pass, always on: the structural checks below catch shape
  // corruption, but only the hash catches an in-range flipped posting or
  // offset value (which would silently misanswer queries).  Same O(file)
  // order as the structural scans, paid once per open.
  storage::Fnv1a sum;
  sum.update(index.base_ + kGsbciHeaderBytes,
             index.map_bytes_ - kGsbciHeaderBytes);
  if (sum.digest() != header.checksum) fail("payload checksum mismatch");

  const auto* words = reinterpret_cast<const std::uint64_t*>(
      index.base_ + kGsbciHeaderBytes);
  index.clique_offsets_ = {words, header.clique_count};
  index.posting_offsets_ = {words + header.clique_count, header.n + 1};
  index.postings_ = {words + header.clique_count + header.n + 1,
                     header.posting_total};

  // Structural validation (O(clique_count + n + postings), like the .gsbg
  // open-time CSR scan): offsets monotone, postings in range and ascending
  // per vertex.
  for (std::uint64_t i = 0; i < header.clique_count; ++i) {
    const std::uint64_t lo =
        i == 0 ? storage::kGsbcHeaderBytes : index.clique_offsets_[i - 1] + 1;
    if (index.clique_offsets_[i] < lo) fail("clique offsets not ascending");
  }
  if (index.posting_offsets_[0] != 0 ||
      index.posting_offsets_[header.n] != header.posting_total) {
    fail("posting offsets do not span the postings array");
  }
  for (std::uint64_t v = 0; v < header.n; ++v) {
    if (index.posting_offsets_[v] > index.posting_offsets_[v + 1]) {
      fail("posting offsets not monotone");
    }
    const auto row = index.postings(static_cast<graph::VertexId>(v));
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] >= header.clique_count ||
          (i > 0 && row[i] <= row[i - 1])) {
        fail("posting list malformed for vertex " + std::to_string(v));
      }
    }
  }
  return index;
}

// --- random-access record reader --------------------------------------------

CliqueRandomReader::CliqueRandomReader(const std::string& gsbc_path,
                                       const CliqueIndex& index)
    : index_(&index), universe_(index.order()) {
  // Reuse the stream reader's full open-time validation, then keep only the
  // header and our own seekable handle.
  const auto stream = storage::GsbcReader::open(gsbc_path);
  if (stream.header().checksum != index.source_checksum()) {
    fail("index does not match this stream (source checksum differs)");
  }
  if (stream.header().clique_count != index.clique_count()) {
    fail("index clique count does not match the stream");
  }
  in_.open(gsbc_path, std::ios::binary);
  if (!in_) fail("cannot open '" + gsbc_path + "'");
  in_.seekg(0, std::ios::end);
  file_bytes_ = static_cast<std::uint64_t>(in_.tellg());
}

void CliqueRandomReader::read(std::uint64_t clique_id,
                              std::vector<graph::VertexId>& out) {
  const std::uint64_t begin = index_->clique_offset(clique_id);
  const std::uint64_t end = clique_id + 1 < index_->clique_count()
                                ? index_->clique_offset(clique_id + 1)
                                : file_bytes_;
  if (begin >= end || end > file_bytes_) {
    fail("record " + std::to_string(clique_id) + " offset out of range");
  }
  buffer_.resize(end - begin);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(begin));
  in_.read(reinterpret_cast<char*>(buffer_.data()),
           static_cast<std::streamsize>(buffer_.size()));
  if (static_cast<std::uint64_t>(in_.gcount()) != buffer_.size()) {
    fail("short read for record " + std::to_string(clique_id));
  }

  std::size_t pos = 0;
  const std::uint64_t size = storage::decode_leb128(buffer_, pos);
  if (size == 0 || size > universe_) fail("record size out of range");
  out.clear();
  out.reserve(size);
  std::uint64_t member = storage::decode_leb128(buffer_, pos);
  for (std::uint64_t i = 0;; ++i) {
    if (member >= universe_) fail("member id out of range");
    out.push_back(static_cast<graph::VertexId>(member));
    if (i + 1 == size) break;
    const std::uint64_t delta = storage::decode_leb128(buffer_, pos);
    if (delta == 0) fail("non-ascending member delta");
    member += delta;
  }
  if (pos != buffer_.size()) {
    fail("record " + std::to_string(clique_id) + " has trailing bytes");
  }
  ++records_decoded_;
}

}  // namespace gsb::service
