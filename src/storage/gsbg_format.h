#ifndef GSB_STORAGE_GSBG_FORMAT_H
#define GSB_STORAGE_GSBG_FORMAT_H

/// \file gsbg_format.h
/// On-disk layout of the `.gsbg` graph container — the persistent half of
/// the out-of-core storage engine.
///
/// A `.gsbg` file is a fixed 64-byte header, a section table, and a set of
/// 64-byte-aligned sections.  The compact CSR sections are always present
/// (they are the canonical, smallest lossless encoding); the bitmap section
/// is the memory-mappable row-major adjacency the clique kernels consume
/// zero-copy (identical layout to the in-RAM representation, so mapping it
/// costs nothing over loading it — the OS pages in only the rows that are
/// touched); the WAH sections store each row compressed with
/// bits::WahBitset for cold archival of sparse genome-scale graphs.
///
/// All integers are little-endian; the format is declared for
/// little-endian hosts (checked at open on the magic).  Byte layout:
///
///   Header (64 bytes, offset 0):
///     char[8]  magic      "GSBGRPH1"
///     u32      version    kVersion
///     u32      flags      bit 0: degree-sorted (PERMUTATION present)
///     u64      n          number of vertices
///     u64      m          number of undirected edges
///     u64      checksum   FNV-1a 64 over bytes [64, file size)
///     u64      section_count
///     u64[2]   reserved   zero
///   Section table (offset 64): section_count entries of 32 bytes
///     u32      kind       SectionKind
///     u32      reserved   zero
///     u64      offset     absolute, 64-byte aligned
///     u64      size       payload bytes (excluding alignment padding)
///     u64      reserved2  zero
///   Sections (in kind order, each 64-byte aligned, zero-padded):
///     kCsrOffsets   (n+1) u64    row r's neighbors are targets[off[r]..off[r+1])
///     kCsrTargets   2m u32       sorted neighbor ids per row
///     kBitmap       n*wpr u64    wpr = ceil(n/64); row r at word r*wpr;
///                                bits >= n in a row's last word are zero
///     kWahOffsets   (n+1) u64    u32-word offsets into kWahWords per row
///     kWahWords     ... u32      concatenated WahBitset words
///     kPermutation  n u32        original id of stored vertex i
///
/// The checksum covers the section table and every section including
/// alignment padding, so truncation, bit rot, and table tampering are all
/// detectable with one pass.

#include <cstddef>
#include <cstdint>

namespace gsb::storage {

inline constexpr char kMagic[8] = {'G', 'S', 'B', 'G', 'R', 'P', 'H', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kSectionEntryBytes = 32;
inline constexpr std::size_t kSectionAlign = 64;

/// Header flag bits.
inline constexpr std::uint32_t kFlagDegreeSorted = 1u << 0;

enum class SectionKind : std::uint32_t {
  kCsrOffsets = 1,
  kCsrTargets = 2,
  kBitmap = 3,
  kWahOffsets = 4,
  kWahWords = 5,
  kPermutation = 6,
};

/// In-memory mirror of the fixed header (not the serialized form; the
/// reader/writer move fields explicitly to stay layout-exact).
struct GsbgHeader {
  std::uint32_t version = kVersion;
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t checksum = 0;
  std::uint64_t section_count = 0;
};

/// One section-table entry.
struct GsbgSection {
  SectionKind kind{};
  std::uint64_t offset = 0;  ///< absolute file offset, 64-byte aligned
  std::uint64_t size = 0;    ///< payload bytes
};

/// Incremental FNV-1a 64 — the container's integrity checksum.  Chosen for
/// being dependency-free, streaming, and byte-order independent.
class Fnv1a {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = hash_;
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
    hash_ = h;
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

/// Rounds \p offset up to the section alignment.
constexpr std::uint64_t align_up(std::uint64_t offset) noexcept {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

}  // namespace gsb::storage

#endif  // GSB_STORAGE_GSBG_FORMAT_H
