#ifndef GSB_STORAGE_GSBCI_FORMAT_H
#define GSB_STORAGE_GSBCI_FORMAT_H

/// \file gsbci_format.h
/// On-disk layout of the `.gsbci` clique-index sidecar — random access into
/// a `.gsbc` clique stream.
///
/// A `.gsbc` stream is a strict forward scan by design; that is perfect for
/// one-pass analytics but makes per-vertex membership queries O(stream).
/// The sidecar inverts the stream once so the query service can answer
/// `cliques-containing v` by touching only the |postings(v)| records that
/// matter.  All integers are little-endian.  Byte layout:
///
///   Header (64 bytes, offset 0):
///     char[8]  magic            "GSBCIDX1"
///     u32      version          kGsbciVersion
///     u32      flags            zero (reserved)
///     u64      n                vertex universe (== companion .gsbc n)
///     u64      clique_count     records in the companion stream
///     u64      posting_total    sum of posting-list lengths (== member_total)
///     u64      source_checksum  header checksum of the companion .gsbc —
///                               binds the index to the exact stream bytes
///     u64      checksum         FNV-1a 64 over bytes [64, file size)
///     u64      reserved         zero
///   Payload (offset 64, contiguous u64 arrays):
///     u64  clique_offsets[clique_count]  absolute .gsbc offset of record i
///     u64  posting_offsets[n + 1]        CSR bounds into postings, monotone
///     u64  postings[posting_total]       ascending clique ids containing v
///
/// The file size is therefore exactly
///   64 + 8 * (clique_count + n + 1 + posting_total)
/// which the reader checks before trusting any array bound.

#include <cstddef>
#include <cstdint>

#include "storage/gsbg_format.h"  // Fnv1a — the shared integrity checksum

namespace gsb::storage {

inline constexpr char kGsbciMagic[8] = {'G', 'S', 'B', 'C', 'I', 'D', 'X',
                                        '1'};
inline constexpr std::uint32_t kGsbciVersion = 1;
inline constexpr std::size_t kGsbciHeaderBytes = 64;

/// In-memory mirror of the fixed header (the reader/writer move fields
/// explicitly to stay layout-exact, as for .gsbg/.gsbc).
struct GsbciHeader {
  std::uint32_t version = kGsbciVersion;
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t clique_count = 0;
  std::uint64_t posting_total = 0;
  std::uint64_t source_checksum = 0;
  std::uint64_t checksum = 0;
};

}  // namespace gsb::storage

#endif  // GSB_STORAGE_GSBCI_FORMAT_H
