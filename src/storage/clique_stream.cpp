#include "storage/clique_stream.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/io.h"

namespace gsb::storage {
namespace {

constexpr std::size_t kIoBuffer = 1 << 16;  ///< 64 KiB writer/reader chunks

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("gsbc: " + what);
}

void serialize_header(char (&buffer)[kGsbcHeaderBytes],
                      const GsbcHeader& header) {
  std::memset(buffer, 0, sizeof(buffer));
  std::memcpy(buffer, kGsbcMagic, sizeof(kGsbcMagic));
  std::memcpy(buffer + 8, &header.version, 4);
  std::memcpy(buffer + 12, &header.flags, 4);
  std::memcpy(buffer + 16, &header.n, 8);
  std::memcpy(buffer + 24, &header.clique_count, 8);
  std::memcpy(buffer + 32, &header.member_total, 8);
  std::memcpy(buffer + 40, &header.max_size, 8);
  std::memcpy(buffer + 48, &header.checksum, 8);
}

}  // namespace

// --- LEB128 varints ---------------------------------------------------------

void append_leb128(std::vector<unsigned char>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<unsigned char>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<unsigned char>(value));
}

std::uint64_t decode_leb128(std::span<const unsigned char> bytes,
                            std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    if (pos == bytes.size()) fail("truncated varint");
    const unsigned char byte = bytes[pos++];
    if (shift >= 63 && (byte >> 1) != 0) fail("varint overflow");
    if (shift > 0 && byte == 0) fail("over-long varint encoding");
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

// --- writer -----------------------------------------------------------------

GsbcWriter::GsbcWriter(const std::string& path, std::size_t order)
    : path_(path), out_(std::make_unique<util::io::FileWriter>(path)) {
  header_.n = order;
  char raw[kGsbcHeaderBytes];
  serialize_header(raw, header_);  // placeholder; patched in close()
  out_->write(raw, sizeof(raw));
  buffer_.reserve(kIoBuffer);
  open_ = true;
}

// An abandoned writer discards its temp file (FileWriter's destructor);
// the destination path is untouched.
GsbcWriter::~GsbcWriter() = default;

void GsbcWriter::put_varint(std::uint64_t value) {
  append_leb128(buffer_, value);
}

void GsbcWriter::flush_buffer() {
  if (buffer_.empty()) return;
  sum_.update(buffer_.data(), buffer_.size());
  out_->write(buffer_.data(), buffer_.size());
  payload_bytes_ += buffer_.size();
  buffer_.clear();
}

void GsbcWriter::append(std::span<const graph::VertexId> clique) {
  if (!open_) fail("append on a closed writer");
  if (clique.empty()) fail("empty clique");
  scratch_.assign(clique.begin(), clique.end());
  std::sort(scratch_.begin(), scratch_.end());
  // Validate fully before emitting a single byte: a rejected clique must
  // leave the stream exactly as it was (a caller may catch and continue).
  if (scratch_.back() >= header_.n) {
    fail("member id out of range for the declared vertex universe");
  }
  for (std::size_t i = 1; i < scratch_.size(); ++i) {
    if (scratch_[i] == scratch_[i - 1]) fail("duplicate member in clique");
  }
  put_varint(scratch_.size());
  put_varint(scratch_.front());
  for (std::size_t i = 1; i < scratch_.size(); ++i) {
    put_varint(scratch_[i] - scratch_[i - 1]);
  }
  ++header_.clique_count;
  header_.member_total += scratch_.size();
  header_.max_size = std::max<std::uint64_t>(header_.max_size,
                                             scratch_.size());
  if (buffer_.size() >= kIoBuffer) flush_buffer();
}

GsbcWriteStats GsbcWriter::close() {
  if (!open_) fail("double close");
  open_ = false;
  flush_buffer();
  header_.checksum = sum_.digest();
  char raw[kGsbcHeaderBytes];
  serialize_header(raw, header_);
  out_->write_at(0, raw, sizeof(raw));
  out_->commit();  // fsync + atomic rename into path_
  return GsbcWriteStats{header_.clique_count, header_.member_total,
                        header_.max_size,
                        kGsbcHeaderBytes + payload_bytes_};
}

// --- reader -----------------------------------------------------------------

GsbcReader GsbcReader::open(const std::string& path, const Options& options) {
  GsbcReader reader;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) fail("cannot open '" + path + "'");

  char raw[kGsbcHeaderBytes];
  reader.in_.read(raw, sizeof(raw));
  if (reader.in_.gcount() != static_cast<std::streamsize>(sizeof(raw))) {
    fail("file shorter than the header");
  }
  if (std::memcmp(raw, kGsbcMagic, sizeof(kGsbcMagic)) != 0) {
    fail("bad magic (not a .gsbc file)");
  }
  GsbcHeader& header = reader.header_;
  std::memcpy(&header.version, raw + 8, 4);
  std::memcpy(&header.flags, raw + 12, 4);
  std::memcpy(&header.n, raw + 16, 8);
  std::memcpy(&header.clique_count, raw + 24, 8);
  std::memcpy(&header.member_total, raw + 32, 8);
  std::memcpy(&header.max_size, raw + 40, 8);
  std::memcpy(&header.checksum, raw + 48, 8);
  if (header.version != kGsbcVersion) {
    fail("unsupported version " + std::to_string(header.version));
  }
  if (header.max_size > header.member_total ||
      (header.clique_count == 0) != (header.member_total == 0)) {
    fail("inconsistent header counts");
  }

  // Bound the payload by the header counts before trusting either: every
  // record is at least one byte per varint (size + members) and at most ten,
  // so a truncated stream or trailing garbage is rejected at open — not
  // after a half-parsed header has already been reported.
  reader.in_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(reader.in_.tellg());
  reader.in_.seekg(kGsbcHeaderBytes);
  const std::uint64_t payload = file_size - kGsbcHeaderBytes;
  const std::uint64_t varints = header.clique_count + header.member_total;
  if (payload < varints) {
    fail("file truncated: " + std::to_string(payload) +
         " payload bytes cannot hold " + std::to_string(header.clique_count) +
         " cliques");
  }
  if (payload > 10 * varints) {  // varints <= payload < 2^60: no overflow
    fail(varints == 0 ? "trailing bytes in an empty stream"
                      : "file size inconsistent with header counts");
  }

  if (options.verify_checksum) {
    Fnv1a sum;
    std::vector<unsigned char> chunk(kIoBuffer);
    while (reader.in_) {
      reader.in_.read(reinterpret_cast<char*>(chunk.data()),
                      static_cast<std::streamsize>(chunk.size()));
      const std::streamsize got = reader.in_.gcount();
      if (got <= 0) break;
      sum.update(chunk.data(), static_cast<std::size_t>(got));
    }
    if (sum.digest() != header.checksum) fail("checksum mismatch");
    reader.in_.clear();
    reader.in_.seekg(kGsbcHeaderBytes);
  }

  reader.buffer_.resize(kIoBuffer);
  return reader;
}

bool GsbcReader::fill() {
  buf_file_base_ += buf_end_;
  in_.read(reinterpret_cast<char*>(buffer_.data()),
           static_cast<std::streamsize>(buffer_.size()));
  buf_end_ = static_cast<std::size_t>(in_.gcount());
  buf_pos_ = 0;
  return buf_end_ > 0;
}

std::uint64_t GsbcReader::read_varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    if (buf_pos_ == buf_end_ && !fill()) {
      fail("truncated record (unexpected end of stream)");
    }
    const unsigned char byte = buffer_[buf_pos_++];
    if (shift >= 63 && (byte >> 1) != 0) fail("varint overflow");
    if (shift > 0 && byte == 0) fail("over-long varint encoding");
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

bool GsbcReader::next(std::vector<graph::VertexId>& out) {
  if (buf_pos_ == buf_end_ && !fill()) {
    if (cliques_read_ != header_.clique_count) {
      fail("stream ended after " + std::to_string(cliques_read_) + " of " +
           std::to_string(header_.clique_count) + " cliques");
    }
    // The payload checksum does not protect the header, so the aggregate
    // fields are cross-checked against what the scan actually decoded —
    // a doctored member_total/max_size must not survive a clean drain.
    if (members_read_ != header_.member_total) {
      fail("header claims " + std::to_string(header_.member_total) +
           " members, stream holds " + std::to_string(members_read_));
    }
    if (max_seen_ != header_.max_size) {
      fail("header max clique size disagrees with the stream");
    }
    return false;
  }
  if (cliques_read_ == header_.clique_count) {
    fail("trailing bytes after the declared clique count");
  }
  const std::uint64_t size = read_varint();
  if (size == 0 || size > header_.n) fail("record size out of range");
  out.clear();
  out.reserve(size);
  std::uint64_t member = read_varint();
  for (std::uint64_t i = 0;; ++i) {
    if (member >= header_.n) fail("member id out of range");
    out.push_back(static_cast<graph::VertexId>(member));
    if (i + 1 == size) break;
    const std::uint64_t delta = read_varint();
    if (delta == 0) fail("non-ascending member delta");
    member += delta;
  }
  ++cliques_read_;
  members_read_ += size;
  max_seen_ = std::max(max_seen_, size);
  return true;
}

}  // namespace gsb::storage
