#include "storage/mapped_graph.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GSB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "bitset/dynamic_bitset.h"
#include "util/io.h"

namespace gsb::storage {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("gsbg: " + what);
}

/// Reads the fixed header fields out of the first 64 bytes.
GsbgHeader parse_header(const char* base, std::size_t bytes) {
  if (bytes < kHeaderBytes) fail("file shorter than header");
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) fail("bad magic");
  GsbgHeader header;
  std::memcpy(&header.version, base + 8, 4);
  std::memcpy(&header.flags, base + 12, 4);
  std::memcpy(&header.n, base + 16, 8);
  std::memcpy(&header.m, base + 24, 8);
  std::memcpy(&header.checksum, base + 32, 8);
  std::memcpy(&header.section_count, base + 40, 8);
  if (header.version != kVersion) {
    fail("unsupported version " + std::to_string(header.version));
  }
  return header;
}

}  // namespace

MappedGraph::~MappedGraph() { release(); }

MappedGraph::MappedGraph(MappedGraph&& other) noexcept {
  *this = std::move(other);
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    release();
    header_ = other.header_;
    sections_ = std::move(other.sections_);
    base_ = std::exchange(other.base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    heap_backed_ = std::exchange(other.heap_backed_, false);
    offsets_ = std::exchange(other.offsets_, {});
    targets_ = std::exchange(other.targets_, {});
    bitmap_ = std::exchange(other.bitmap_, nullptr);
    words_per_row_ = std::exchange(other.words_per_row_, 0);
    wah_offsets_ = std::exchange(other.wah_offsets_, {});
    wah_words_ = std::exchange(other.wah_words_, {});
    permutation_ = std::exchange(other.permutation_, {});
    degrees_ = std::move(other.degrees_);
  }
  return *this;
}

void MappedGraph::release() noexcept {
  if (base_ == nullptr) return;
#if GSB_HAVE_MMAP
  if (!heap_backed_) {
    ::munmap(const_cast<char*>(base_), map_bytes_);
    base_ = nullptr;
    return;
  }
#endif
  delete[] base_;
  base_ = nullptr;
}

MappedGraph MappedGraph::open(const std::string& path,
                              const Options& options) {
  MappedGraph g;

#if GSB_HAVE_MMAP
  const int fd = util::io::open_for_read(path.c_str());
  if (fd < 0) fail("cannot open '" + path + "' for reading");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat '" + path + "'");
  }
  g.map_bytes_ = static_cast<std::size_t>(st.st_size);
  if (g.map_bytes_ > 0) {
    void* map = util::io::mmap_read(g.map_bytes_, fd);
    ::close(fd);
    if (map == MAP_FAILED) fail("mmap failed for '" + path + "'");
    g.base_ = static_cast<const char*>(map);
  } else {
    ::close(fd);
    fail("file is empty");
  }
#else
  // Portability fallback: read the whole file into heap memory.  Loses the
  // out-of-core property but keeps the format usable.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("cannot open '" + path + "' for reading");
  const auto size = in.tellg();
  if (size <= 0) fail("file is empty");
  g.map_bytes_ = static_cast<std::size_t>(size);
  char* buffer = new char[g.map_bytes_];
  in.seekg(0);
  in.read(buffer, static_cast<std::streamsize>(g.map_bytes_));
  if (!in) {
    delete[] buffer;
    fail("short read from '" + path + "'");
  }
  g.base_ = buffer;
  g.heap_backed_ = true;
#endif

  g.header_ = parse_header(g.base_, g.map_bytes_);
  const std::uint64_t n = g.header_.n;
  // Sanity-bound n and m before any size arithmetic: vertex ids are 32-bit
  // and m <= n(n-1)/2, so a header that violates either is corrupt — and
  // letting it through would let (n+1)*8 etc. wrap past the mapping.
  if (n > (std::uint64_t{1} << 32)) fail("implausible vertex count");
  if (n > 0 && g.header_.m > n * (n - 1) / 2) fail("implausible edge count");
  if (n == 0 && g.header_.m != 0) fail("edges without vertices");
  const std::uint64_t nnz = 2 * g.header_.m;

  // --- section table ---------------------------------------------------------
  if (g.header_.section_count > 64) fail("implausible section count");
  const std::uint64_t table_end =
      kHeaderBytes + g.header_.section_count * kSectionEntryBytes;
  if (table_end > g.map_bytes_) fail("truncated section table");
  g.sections_.reserve(g.header_.section_count);
  for (std::uint64_t i = 0; i < g.header_.section_count; ++i) {
    const char* entry = g.base_ + kHeaderBytes + i * kSectionEntryBytes;
    std::uint32_t kind = 0;
    GsbgSection section;
    std::memcpy(&kind, entry, 4);
    std::memcpy(&section.offset, entry + 8, 8);
    std::memcpy(&section.size, entry + 16, 8);
    section.kind = static_cast<SectionKind>(kind);
    if (section.offset % kSectionAlign != 0 ||
        section.offset < table_end ||
        section.offset + section.size > g.map_bytes_ ||
        section.offset + section.size < section.offset) {
      fail("section " + std::to_string(kind) + " out of bounds");
    }
    g.sections_.push_back(section);
  }

  auto find = [&](SectionKind kind) -> const GsbgSection* {
    for (const auto& section : g.sections_) {
      if (section.kind == kind) return &section;
    }
    return nullptr;
  };
  auto section_span = [&](const GsbgSection& section) {
    return g.base_ + section.offset;
  };

  // --- CSR (required) --------------------------------------------------------
  const GsbgSection* offsets = find(SectionKind::kCsrOffsets);
  const GsbgSection* targets = find(SectionKind::kCsrTargets);
  if (offsets == nullptr || targets == nullptr) fail("missing CSR sections");
  if (offsets->size != (n + 1) * sizeof(std::uint64_t)) {
    fail("csr offsets section has wrong size");
  }
  if (targets->size != nnz * sizeof(std::uint32_t)) {
    fail("csr targets section has wrong size");
  }
  g.offsets_ = {reinterpret_cast<const std::uint64_t*>(section_span(*offsets)),
                static_cast<std::size_t>(n + 1)};
  g.targets_ = {reinterpret_cast<const std::uint32_t*>(section_span(*targets)),
                static_cast<std::size_t>(nnz)};
  if (g.offsets_.front() != 0 || g.offsets_.back() != nnz) {
    fail("csr offsets do not cover the target array");
  }
  g.degrees_.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (g.offsets_[v + 1] < g.offsets_[v]) fail("csr offsets not monotone");
    g.degrees_[v] =
        static_cast<std::size_t>(g.offsets_[v + 1] - g.offsets_[v]);
  }

  // --- optional sections -----------------------------------------------------
  if (const GsbgSection* bitmap = find(SectionKind::kBitmap)) {
    g.words_per_row_ = bits::DynamicBitset::word_count(n);
    if (bitmap->size != n * g.words_per_row_ * sizeof(std::uint64_t)) {
      fail("bitmap section has wrong size");
    }
    g.bitmap_ = reinterpret_cast<const std::uint64_t*>(section_span(*bitmap));
    // The bit-string kernels rely on the writer's invariant that bits at
    // positions >= n in each row's last word are zero; a violated row
    // would silently corrupt every AND/any-bit test that touches it, so
    // check it here (O(n) reads) rather than trusting the (optional)
    // checksum pass.
    if (n % 64 != 0) {
      const std::uint64_t pad_mask = ~((std::uint64_t{1} << (n % 64)) - 1);
      for (std::uint64_t v = 0; v < n; ++v) {
        if ((g.bitmap_[(v + 1) * g.words_per_row_ - 1] & pad_mask) != 0) {
          fail("bitmap row has padding bits set (corrupt)");
        }
      }
    }
  }
  const GsbgSection* wah_offsets = find(SectionKind::kWahOffsets);
  const GsbgSection* wah_words = find(SectionKind::kWahWords);
  if ((wah_offsets == nullptr) != (wah_words == nullptr)) {
    fail("wah sections must appear together");
  }
  if (wah_offsets != nullptr) {
    if (wah_offsets->size != (n + 1) * sizeof(std::uint64_t)) {
      fail("wah offsets section has wrong size");
    }
    g.wah_offsets_ = {
        reinterpret_cast<const std::uint64_t*>(section_span(*wah_offsets)),
        static_cast<std::size_t>(n + 1)};
    if (g.wah_offsets_.back() * sizeof(std::uint32_t) != wah_words->size) {
      fail("wah words section disagrees with its offsets");
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      if (g.wah_offsets_[v + 1] < g.wah_offsets_[v]) {
        fail("wah offsets not monotone");
      }
    }
    g.wah_words_ = {
        reinterpret_cast<const std::uint32_t*>(section_span(*wah_words)),
        static_cast<std::size_t>(g.wah_offsets_.back())};
  }
  if (const GsbgSection* perm = find(SectionKind::kPermutation)) {
    if (perm->size != n * sizeof(std::uint32_t)) {
      fail("permutation section has wrong size");
    }
    g.permutation_ = {
        reinterpret_cast<const std::uint32_t*>(section_span(*perm)),
        static_cast<std::size_t>(n)};
    // Content check: entries feed indexing (original_id, inverse tables),
    // so a corrupt section must not pass as a valid bijection on [0, n).
    std::vector<bool> seen(n, false);
    for (const std::uint32_t original : g.permutation_) {
      if (original >= n || seen[original]) {
        fail("permutation section is not a bijection");
      }
      seen[original] = true;
    }
  }
  if (g.degree_sorted() && g.permutation_.empty()) {
    fail("degree-sorted flag without permutation section");
  }

  if (options.verify_checksum) g.verify_checksum();
  return g;
}

double MappedGraph::density() const noexcept {
  const double n = static_cast<double>(order());
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0) / 2.0);
}

graph::GraphView MappedGraph::view() const {
  if (!has_bitmap()) {
    fail("file has no bitmap section; use load() or rewrite with bitmap");
  }
  return graph::GraphView(bitmap_, words_per_row_, order(), num_edges(),
                          degrees_.data());
}

graph::Graph MappedGraph::load() const {
  graph::Graph g(order());
  const std::uint64_t n = header_.n;
  for (std::uint64_t v = 0; v < n; ++v) {
    for (const std::uint32_t u : csr_row(static_cast<graph::VertexId>(v))) {
      if (u >= n) fail("csr target out of range");
      if (u > v) g.add_edge(static_cast<graph::VertexId>(v), u);
    }
  }
  if (g.num_edges() != num_edges()) {
    fail("csr edge count disagrees with header");
  }
  return g;
}

bits::WahBitset MappedGraph::wah_row(graph::VertexId v) const {
  if (!has_wah()) fail("file has no WAH sections");
  const auto row = wah_words_.subspan(
      wah_offsets_[v], wah_offsets_[v + 1] - wah_offsets_[v]);
  // The decode loops trust the words to cover exactly ceil(n/31) groups;
  // verify before handing file data to them (O(row words), negligible
  // against the decompression itself).
  if (!bits::WahBitset::words_cover(row, order())) {
    fail("wah row is corrupt (group count mismatch)");
  }
  return bits::WahBitset::from_words(row, order());
}

void MappedGraph::verify_checksum() const {
  Fnv1a sum;
  sum.update(base_ + kHeaderBytes, map_bytes_ - kHeaderBytes);
  if (sum.digest() != header_.checksum) {
    fail("checksum mismatch (file corrupt or truncated)");
  }
}

}  // namespace gsb::storage
