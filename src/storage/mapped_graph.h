#ifndef GSB_STORAGE_MAPPED_GRAPH_H
#define GSB_STORAGE_MAPPED_GRAPH_H

/// \file mapped_graph.h
/// Memory-mapped read access to a `.gsbg` graph container.
///
/// Opening is O(n) (header/section validation plus a degree scan of the CSR
/// offsets) and maps the file read-only; no adjacency data is copied.  When
/// the file carries a bitmap section, view() exposes it through the same
/// graph::GraphView every clique algorithm consumes, so enumeration,
/// maximum clique, paracliques and hub analysis run directly off disk —
/// the OS pages in exactly the rows the algorithms touch, which is the
/// storage/compute separation the genome-scale instances need.
///
/// Files without a bitmap section (written with bitmap=false for
/// compactness) are still fully usable through load(), which materializes
/// an in-memory Graph from the CSR sections.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bitset/wah_bitset.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "storage/gsbg_format.h"

namespace gsb::storage {

class MappedGraph {
 public:
  struct Options {
    /// Re-hash the payload at open and reject on checksum mismatch.  Costs
    /// one sequential pass over the file; off by default so that opening
    /// stays O(n) for trusted files.
    bool verify_checksum = false;
  };

  MappedGraph() = default;
  ~MappedGraph();
  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;

  /// Maps \p path read-only, validating magic, version, section table and
  /// CSR structure.  Throws std::runtime_error on any malformation.
  static MappedGraph open(const std::string& path, const Options& options);
  static MappedGraph open(const std::string& path) {
    return open(path, Options{});
  }

  [[nodiscard]] bool is_open() const noexcept { return base_ != nullptr; }
  [[nodiscard]] std::size_t order() const noexcept { return header_.n; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return header_.m; }
  [[nodiscard]] double density() const noexcept;
  [[nodiscard]] const GsbgHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<GsbgSection>& sections() const noexcept {
    return sections_;
  }
  [[nodiscard]] std::size_t file_bytes() const noexcept { return map_bytes_; }

  [[nodiscard]] bool has_bitmap() const noexcept { return bitmap_ != nullptr; }
  [[nodiscard]] bool has_wah() const noexcept { return !wah_offsets_.empty(); }
  [[nodiscard]] bool degree_sorted() const noexcept {
    return (header_.flags & kFlagDegreeSorted) != 0;
  }

  [[nodiscard]] std::size_t degree(graph::VertexId v) const noexcept {
    return degrees_[v];
  }

  /// CSR accessors (always present).
  [[nodiscard]] std::span<const std::uint64_t> csr_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> csr_targets() const noexcept {
    return targets_;
  }
  /// Sorted neighbors of \p v straight out of the mapped CSR.
  [[nodiscard]] std::span<const std::uint32_t> csr_row(graph::VertexId v)
      const noexcept {
    return targets_.subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  /// Stored-id -> original-id permutation; empty unless degree_sorted().
  [[nodiscard]] std::span<const std::uint32_t> permutation() const noexcept {
    return permutation_;
  }

  /// Zero-copy adjacency view over the mapped bitmap section.  Throws if
  /// the file was written without one.  The view (and anything holding it)
  /// must not outlive this MappedGraph.
  [[nodiscard]] graph::GraphView view() const;

  /// Materializes an in-memory Graph from the CSR sections.
  [[nodiscard]] graph::Graph load() const;

  /// One row of the WAH section, reconstituted.  Throws without has_wah().
  [[nodiscard]] bits::WahBitset wah_row(graph::VertexId v) const;

  /// Full payload checksum pass; throws on mismatch.
  void verify_checksum() const;

 private:
  void release() noexcept;

  GsbgHeader header_;
  std::vector<GsbgSection> sections_;
  const char* base_ = nullptr;     ///< mapped (or heap fallback) file bytes
  std::size_t map_bytes_ = 0;
  bool heap_backed_ = false;       ///< base_ owns heap memory, not a mapping
  std::span<const std::uint64_t> offsets_;
  std::span<const std::uint32_t> targets_;
  const std::uint64_t* bitmap_ = nullptr;
  std::size_t words_per_row_ = 0;
  std::span<const std::uint64_t> wah_offsets_;
  std::span<const std::uint32_t> wah_words_;
  std::span<const std::uint32_t> permutation_;
  std::vector<std::size_t> degrees_;  ///< from CSR offsets, for GraphView
};

}  // namespace gsb::storage

#endif  // GSB_STORAGE_MAPPED_GRAPH_H
