#ifndef GSB_STORAGE_CLIQUE_STREAM_H
#define GSB_STORAGE_CLIQUE_STREAM_H

/// \file clique_stream.h
/// Sequential writer and iterator reader for the `.gsbc` clique-stream
/// container (byte layout in gsbc_format.h / docs/FORMATS.md).
///
/// The writer is an append-only sink: one buffered pass, O(largest clique)
/// memory, header (counts + checksum) patched on close.  It accepts
/// cliques in any member order and canonicalizes to ascending ids before
/// delta coding, so it can sit directly behind any enumerator's
/// CliqueCallback.  The reader is a strict forward scan returning one
/// clique at a time — `analysis::clique_spectrum`, participation counting
/// and paraclique seeding all consume it in O(1) clique memory, which is
/// the whole point: the clique set never has to exist in RAM at once.

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "storage/gsbc_format.h"

namespace gsb::util::io {
class FileWriter;
}  // namespace gsb::util::io

namespace gsb::storage {

/// --- LEB128 varints ---------------------------------------------------------
/// The `.gsbc` record coding, exposed so the `.gsbci` index and the tests
/// can share the exact encoder/decoder the stream uses.

/// Appends the unsigned LEB128 encoding of \p value (1..10 bytes).
void append_leb128(std::vector<unsigned char>& out, std::uint64_t value);

/// Decodes one varint starting at \p pos, advancing \p pos past it.
/// Throws std::runtime_error on truncation, on values that overflow 64
/// bits, and on non-canonical (over-long) encodings — a trailing 0x00
/// continuation byte never appears in a minimal encoding.
std::uint64_t decode_leb128(std::span<const unsigned char> bytes,
                            std::size_t& pos);

/// Totals reported by GsbcWriter::close().
struct GsbcWriteStats {
  std::uint64_t clique_count = 0;
  std::uint64_t member_total = 0;
  std::uint64_t max_size = 0;
  std::uint64_t file_bytes = 0;
};

/// Streaming `.gsbc` writer.
class GsbcWriter {
 public:
  /// Opens `<path>.tmp.<pid>` for writing and reserves the header.
  /// \p order is the vertex universe of the source graph (member ids
  /// must be < order).  Nothing appears at \p path until close().
  GsbcWriter(const std::string& path, std::size_t order);

  /// Discards the temp file if close() was never called: an abandoned
  /// or crashed writer never publishes a partial stream.
  ~GsbcWriter();

  GsbcWriter(const GsbcWriter&) = delete;
  GsbcWriter& operator=(const GsbcWriter&) = delete;

  /// Appends one clique (any member order; duplicates are invalid and
  /// rejected, as is an id >= order or an empty clique).
  void append(std::span<const graph::VertexId> clique);

  /// Flushes, patches the header with counts and checksum, fsyncs, and
  /// atomically renames the temp file into place.
  GsbcWriteStats close();

  [[nodiscard]] std::uint64_t clique_count() const noexcept {
    return header_.clique_count;
  }

 private:
  void put_varint(std::uint64_t value);
  void flush_buffer();

  std::string path_;
  std::unique_ptr<util::io::FileWriter> out_;
  GsbcHeader header_;
  Fnv1a sum_;
  std::vector<unsigned char> buffer_;
  std::vector<graph::VertexId> scratch_;  ///< sort buffer, one clique
  std::uint64_t payload_bytes_ = 0;
  bool open_ = false;
};

/// Forward-iterating `.gsbc` reader.
class GsbcReader {
 public:
  struct Options {
    /// Re-hash the payload at open and reject on checksum mismatch (one
    /// extra sequential pass).  Off by default, as for .gsbg.
    bool verify_checksum = false;
  };

  /// Opens \p path, validating magic, version and header/file coherence.
  /// Throws std::runtime_error on any malformation.
  static GsbcReader open(const std::string& path, const Options& options);
  static GsbcReader open(const std::string& path) {
    return open(path, Options{});
  }

  GsbcReader(GsbcReader&&) = default;
  GsbcReader& operator=(GsbcReader&&) = default;

  [[nodiscard]] const GsbcHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::size_t order() const noexcept { return header_.n; }
  [[nodiscard]] std::uint64_t clique_count() const noexcept {
    return header_.clique_count;
  }
  [[nodiscard]] std::uint64_t member_total() const noexcept {
    return header_.member_total;
  }
  [[nodiscard]] std::uint64_t max_size() const noexcept {
    return header_.max_size;
  }

  /// Reads the next clique into \p out (ascending member ids).  Returns
  /// false at a clean end of stream; throws on truncation, malformed
  /// varints, non-ascending members, ids >= order(), or a record count
  /// that disagrees with the header.
  bool next(std::vector<graph::VertexId>& out);

  /// Absolute file offset of the record the next next() call will decode
  /// (the `.gsbci` builder records these for random access).
  [[nodiscard]] std::uint64_t next_record_offset() const noexcept {
    return buf_file_base_ + buf_pos_;
  }

 private:
  GsbcReader() = default;

  [[nodiscard]] bool fill();
  [[nodiscard]] std::uint64_t read_varint();

  std::ifstream in_;
  GsbcHeader header_;
  std::vector<unsigned char> buffer_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_end_ = 0;
  std::uint64_t buf_file_base_ = kGsbcHeaderBytes;  ///< offset of buffer_[0]
  std::uint64_t cliques_read_ = 0;
  std::uint64_t members_read_ = 0;
  std::uint64_t max_seen_ = 0;
};

}  // namespace gsb::storage

#endif  // GSB_STORAGE_CLIQUE_STREAM_H
