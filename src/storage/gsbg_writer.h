#ifndef GSB_STORAGE_GSBG_WRITER_H
#define GSB_STORAGE_GSBG_WRITER_H

/// \file gsbg_writer.h
/// Streaming `.gsbg` writer.
///
/// Writes are row-at-a-time: peak memory is one adjacency row (a
/// ceil(n/64)-word bitset plus its neighbor list), never the whole bitmap —
/// this is what lets the out-of-core correlation builder finalize graphs
/// whose bitmap adjacency would not fit in RAM.  The optional WAH section
/// is buffered (it is one to two orders of magnitude smaller than the
/// bitmap it compresses).

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph_view.h"

namespace gsb::storage {

struct GsbgWriteOptions {
  /// Write the memory-mappable bitmap adjacency section.  Without it the
  /// file is ~8(n+m) bytes but must be loaded (not mapped) for clique
  /// analysis.
  bool bitmap = true;
  /// Write the WAH-compressed adjacency sections.
  bool wah = false;
  /// Relabel vertices by descending degree (ties by original id) and store
  /// the permutation.  Dense rows land first, improving page locality of
  /// the mapped bitmap; consumers translate results back through
  /// MappedGraph::permutation().
  bool degree_sort = false;
};

/// Serializes \p g (in-memory or itself a mapped view) to \p path.
void write_gsbg_file(const graph::GraphView& g, const std::string& path,
                     const GsbgWriteOptions& options = {});

/// Serializes a graph given directly as symmetric CSR adjacency:
/// \p offsets has n+1 entries, \p targets holds each row's sorted neighbor
/// ids (every undirected edge appears in both rows).  This is the
/// finalization entry point of the tiled correlation builder — no Graph or
/// bitmap is ever materialized in RAM.
void write_gsbg_from_csr(std::size_t n,
                         std::span<const std::uint64_t> offsets,
                         std::span<const std::uint32_t> targets,
                         const std::string& path,
                         const GsbgWriteOptions& options = {});

}  // namespace gsb::storage

#endif  // GSB_STORAGE_GSBG_WRITER_H
