#include "storage/gsbg_writer.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "bitset/wah_bitset.h"
#include "storage/gsbg_format.h"
#include "util/io.h"

namespace gsb::storage {
namespace {

using bits::DynamicBitset;
using graph::VertexId;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("gsbg: " + what);
}

/// Uniform row access over the writer's two inputs (GraphView, raw CSR),
/// with an optional degree-sort relabeling applied on the fly.
/// `stored` ids are file ids; perm_[stored] is the source id.
class RowSource {
 public:
  virtual ~RowSource() = default;

  [[nodiscard]] std::size_t order() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return m_; }
  [[nodiscard]] bool relabeled() const noexcept { return !perm_.empty(); }
  [[nodiscard]] const std::vector<std::uint32_t>& permutation()
      const noexcept {
    return perm_;
  }

  [[nodiscard]] std::size_t degree(std::uint32_t stored) const {
    return source_degree(source_id(stored));
  }

  /// Sorted stored-namespace neighbor ids of stored vertex \p stored.
  void row(std::uint32_t stored, std::vector<std::uint32_t>& out) const {
    out.clear();
    source_row(source_id(stored), out);
    if (relabeled()) {
      for (auto& v : out) v = inverse_[v];
      std::sort(out.begin(), out.end());
    }
  }

  /// Installs the degree-descending relabeling (ties by source id).
  void sort_by_degree() {
    perm_.resize(n_);
    std::iota(perm_.begin(), perm_.end(), 0u);
    std::stable_sort(perm_.begin(), perm_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return source_degree(a) > source_degree(b);
                     });
    inverse_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i) inverse_[perm_[i]] = i;
  }

 protected:
  RowSource(std::size_t n, std::size_t m) : n_(n), m_(m) {}

  [[nodiscard]] virtual std::size_t source_degree(std::uint32_t v) const = 0;
  virtual void source_row(std::uint32_t v,
                          std::vector<std::uint32_t>& out) const = 0;

 private:
  [[nodiscard]] std::uint32_t source_id(std::uint32_t stored) const noexcept {
    return relabeled() ? perm_[stored] : stored;
  }

  std::size_t n_;
  std::size_t m_;
  std::vector<std::uint32_t> perm_;     ///< stored id -> source id
  std::vector<std::uint32_t> inverse_;  ///< source id -> stored id
};

class ViewSource final : public RowSource {
 public:
  explicit ViewSource(const graph::GraphView& g)
      : RowSource(g.order(), g.num_edges()), g_(g) {}

 protected:
  std::size_t source_degree(std::uint32_t v) const override {
    return g_.degree(v);
  }
  void source_row(std::uint32_t v,
                  std::vector<std::uint32_t>& out) const override {
    g_.neighbors(v).for_each(
        [&](std::size_t u) { out.push_back(static_cast<std::uint32_t>(u)); });
  }

 private:
  const graph::GraphView& g_;
};

class CsrSource final : public RowSource {
 public:
  CsrSource(std::size_t n, std::span<const std::uint64_t> offsets,
            std::span<const std::uint32_t> targets)
      : RowSource(n, targets.size() / 2), offsets_(offsets),
        targets_(targets) {
    if (offsets.size() != n + 1) fail("csr offsets must have n+1 entries");
    if (offsets.front() != 0 || offsets.back() != targets.size()) {
      fail("csr offsets do not cover the target array");
    }
  }

 protected:
  std::size_t source_degree(std::uint32_t v) const override {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }
  void source_row(std::uint32_t v,
                  std::vector<std::uint32_t>& out) const override {
    out.insert(out.end(), targets_.begin() + static_cast<std::ptrdiff_t>(
                                                 offsets_[v]),
               targets_.begin() + static_cast<std::ptrdiff_t>(
                                      offsets_[v + 1]));
  }

 private:
  std::span<const std::uint64_t> offsets_;
  std::span<const std::uint32_t> targets_;
};

/// Checksummed sequential writer for everything after the header.
class PayloadWriter {
 public:
  PayloadWriter(util::io::FileWriter& out) : out_(out) {}

  void raw(const void* data, std::size_t bytes) {
    out_.write(data, bytes);
    sum_.update(data, bytes);
    pos_ += bytes;
  }

  template <typename T>
  void put(T value) {
    raw(&value, sizeof(value));
  }

  /// Zero-fills up to absolute file offset \p target.
  void pad_to(std::uint64_t target) {
    static constexpr char zeros[kSectionAlign] = {};
    while (position() < target) {
      const std::size_t chunk =
          std::min<std::uint64_t>(sizeof(zeros), target - position());
      raw(zeros, chunk);
    }
  }

  /// Current absolute file offset (header included).
  [[nodiscard]] std::uint64_t position() const noexcept {
    return kHeaderBytes + pos_;
  }
  [[nodiscard]] std::uint64_t checksum() const noexcept {
    return sum_.digest();
  }

 private:
  util::io::FileWriter& out_;
  Fnv1a sum_;
  std::uint64_t pos_ = 0;  ///< bytes written past the header
};

void serialize_header(const GsbgHeader& header,
                      char (&buffer)[kHeaderBytes]) {
  std::memset(buffer, 0, sizeof(buffer));
  std::memcpy(buffer, kMagic, sizeof(kMagic));
  std::memcpy(buffer + 8, &header.version, 4);
  std::memcpy(buffer + 12, &header.flags, 4);
  std::memcpy(buffer + 16, &header.n, 8);
  std::memcpy(buffer + 24, &header.m, 8);
  std::memcpy(buffer + 32, &header.checksum, 8);
  std::memcpy(buffer + 40, &header.section_count, 8);
}

void write_gsbg(RowSource& source, const std::string& path,
                const GsbgWriteOptions& options) {
  const std::size_t n = source.order();
  if (n >= (std::uint64_t{1} << 32)) fail("graph too large for 32-bit ids");
  if (options.degree_sort) source.sort_by_degree();

  const std::size_t wpr = DynamicBitset::word_count(n);
  const std::uint64_t nnz = 2 * source.num_edges();

  // --- optional WAH pre-pass: compressed sizes must be known before the
  // section table is emitted.  The buffers hold the *compressed* rows.
  std::vector<std::uint64_t> wah_offsets;
  std::vector<std::uint32_t> wah_words;
  if (options.wah) {
    wah_offsets.reserve(n + 1);
    wah_offsets.push_back(0);
    DynamicBitset row_bits(n);
    std::vector<std::uint32_t> row;
    for (std::uint32_t v = 0; v < n; ++v) {
      row_bits.clear_all();
      source.row(v, row);
      for (std::uint32_t u : row) row_bits.set(u);
      const bits::WahBitset wah = bits::WahBitset::compress(row_bits);
      wah_words.insert(wah_words.end(), wah.words().begin(),
                       wah.words().end());
      wah_offsets.push_back(wah_words.size());
    }
  }

  // --- section plan ---------------------------------------------------------
  std::vector<GsbgSection> sections;
  auto plan = [&](SectionKind kind, std::uint64_t size) {
    sections.push_back(GsbgSection{kind, 0, size});
  };
  plan(SectionKind::kCsrOffsets, (n + 1) * sizeof(std::uint64_t));
  plan(SectionKind::kCsrTargets, nnz * sizeof(std::uint32_t));
  if (options.bitmap) {
    plan(SectionKind::kBitmap, n * wpr * sizeof(std::uint64_t));
  }
  if (options.wah) {
    plan(SectionKind::kWahOffsets, (n + 1) * sizeof(std::uint64_t));
    plan(SectionKind::kWahWords, wah_words.size() * sizeof(std::uint32_t));
  }
  if (source.relabeled()) {
    plan(SectionKind::kPermutation, n * sizeof(std::uint32_t));
  }
  std::uint64_t cursor =
      align_up(kHeaderBytes + sections.size() * kSectionEntryBytes);
  for (auto& section : sections) {
    section.offset = cursor;
    cursor = align_up(section.offset + section.size);
  }

  // Crash safety: all bytes land in `<path>.tmp.<pid>`; commit() below
  // fsyncs and atomically renames, so `path` is never a torn container.
  util::io::FileWriter out(path);

  GsbgHeader header;
  header.flags = source.relabeled() ? kFlagDegreeSorted : 0u;
  header.n = n;
  header.m = source.num_edges();
  header.section_count = sections.size();
  char header_bytes[kHeaderBytes];
  serialize_header(header, header_bytes);  // checksum patched below
  out.write(header_bytes, sizeof(header_bytes));

  PayloadWriter payload(out);
  for (const auto& section : sections) {
    payload.put(static_cast<std::uint32_t>(section.kind));
    payload.put(std::uint32_t{0});
    payload.put(section.offset);
    payload.put(section.size);
    payload.put(std::uint64_t{0});
  }

  std::vector<std::uint32_t> row;
  auto begin_section = [&](std::size_t index) {
    payload.pad_to(sections[index].offset);
  };
  std::size_t section_index = 0;

  // kCsrOffsets
  begin_section(section_index++);
  std::uint64_t offset = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    payload.put(offset);
    offset += source.degree(v);
  }
  payload.put(offset);
  if (offset != nnz) fail("degree sum disagrees with edge count");

  // kCsrTargets
  begin_section(section_index++);
  for (std::uint32_t v = 0; v < n; ++v) {
    source.row(v, row);
    payload.raw(row.data(), row.size() * sizeof(std::uint32_t));
  }

  // kBitmap — one row bitset of scratch, regardless of graph size.
  if (options.bitmap) {
    begin_section(section_index++);
    DynamicBitset row_bits(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      row_bits.clear_all();
      source.row(v, row);
      for (std::uint32_t u : row) row_bits.set(u);
      payload.raw(row_bits.words().data(), wpr * sizeof(std::uint64_t));
    }
  }

  if (options.wah) {
    begin_section(section_index++);
    payload.raw(wah_offsets.data(),
                wah_offsets.size() * sizeof(std::uint64_t));
    begin_section(section_index++);
    payload.raw(wah_words.data(), wah_words.size() * sizeof(std::uint32_t));
  }

  if (source.relabeled()) {
    begin_section(section_index++);
    payload.raw(source.permutation().data(), n * sizeof(std::uint32_t));
  }
  payload.pad_to(cursor);

  header.checksum = payload.checksum();
  serialize_header(header, header_bytes);
  out.write_at(0, header_bytes, sizeof(header_bytes));
  out.commit();
}

}  // namespace

void write_gsbg_file(const graph::GraphView& g, const std::string& path,
                     const GsbgWriteOptions& options) {
  ViewSource source(g);
  write_gsbg(source, path, options);
}

void write_gsbg_from_csr(std::size_t n,
                         std::span<const std::uint64_t> offsets,
                         std::span<const std::uint32_t> targets,
                         const std::string& path,
                         const GsbgWriteOptions& options) {
  CsrSource source(n, offsets, targets);
  write_gsbg(source, path, options);
}

}  // namespace gsb::storage
