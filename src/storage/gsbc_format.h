#ifndef GSB_STORAGE_GSBC_FORMAT_H
#define GSB_STORAGE_GSBC_FORMAT_H

/// \file gsbc_format.h
/// On-disk layout of the `.gsbc` clique-stream container — the output-side
/// half of the out-of-core engine, next to the `.gsbg` graph container.
///
/// The paper's instances produce clique sets that dwarf the graphs they
/// come from, so enumeration output must stream to disk instead of
/// accumulating in RAM.  A `.gsbc` file is an append-only record stream
/// with a fixed 64-byte header patched on close.  All integers are
/// little-endian; varints are unsigned LEB128 (7 payload bits per byte,
/// high bit = continuation).  Byte layout:
///
///   Header (64 bytes, offset 0):
///     char[8]  magic         "GSBCLQS1"
///     u32      version       kGsbcVersion
///     u32      flags         zero (reserved)
///     u64      n             vertex universe of the source graph
///     u64      clique_count  number of records
///     u64      member_total  sum of record sizes
///     u64      max_size      largest record size (0 when empty)
///     u64      checksum      FNV-1a 64 over bytes [64, file size)
///     u64      reserved      zero
///   Records (offset 64, back to back):
///     varint   size          member count, >= 1
///     varint   member[0]     smallest member id
///     varint   delta[i]      member[i] - member[i-1] for i in [1, size),
///                            always >= 1 (members strictly ascending)
///
/// Delta-varint coding makes dense genome-scale clique sets compact (most
/// deltas fit one byte) while keeping the reader a strict forward scan —
/// no index, no seeks, O(1) memory per clique.

#include <cstddef>
#include <cstdint>

#include "storage/gsbg_format.h"  // Fnv1a — the shared integrity checksum

namespace gsb::storage {

inline constexpr char kGsbcMagic[8] = {'G', 'S', 'B', 'C', 'L', 'Q', 'S',
                                       '1'};
inline constexpr std::uint32_t kGsbcVersion = 1;
inline constexpr std::size_t kGsbcHeaderBytes = 64;

/// In-memory mirror of the fixed header (not the serialized form; the
/// reader/writer move fields explicitly to stay layout-exact).
struct GsbcHeader {
  std::uint32_t version = kGsbcVersion;
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t clique_count = 0;
  std::uint64_t member_total = 0;
  std::uint64_t max_size = 0;
  std::uint64_t checksum = 0;
};

}  // namespace gsb::storage

#endif  // GSB_STORAGE_GSBC_FORMAT_H
