#ifndef GSB_BIO_PRESETS_H
#define GSB_BIO_PRESETS_H

/// \file presets.h
/// Synthetic analogs of the paper's three evaluation graphs.
///
/// | preset       | paper source                          |    n   |    m    | max clique |
/// |--------------|---------------------------------------|--------|---------|-----------|
/// | kBrainSparse | mouse brain, U74Av2, tight threshold   | 12,422 |   6,151 |    17     |
/// | kBrainDense  | mouse brain, U74Av2, loose threshold   | 12,422 | 229,297 |   110     |
/// | kMyogenic    | myogenic differentiation data [41]     |  2,895 |  10,914 |    28     |
///
/// The real inputs are proprietary; these presets regenerate graphs with
/// the same vertex count, edge count and maximum clique size from the
/// planted-module ensemble (DESIGN.md documents the substitution).  A
/// `scale` in (0, 1] shrinks n and m proportionally while preserving the
/// maximum clique size and the clumpy local structure, so benchmark
/// workloads stay shape-faithful at container-friendly sizes.

#include <string>

#include "graph/generators.h"
#include "util/rng.h"

namespace gsb::bio {

enum class PaperDataset { kBrainSparse, kBrainDense, kMyogenic };

/// Published parameters of one dataset (scaled).
struct PaperGraphSpec {
  std::string name;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t max_clique = 0;
  double edge_density = 0.0;
};

/// Spec after applying \p scale (clamped to [0.01, 1]).
PaperGraphSpec paper_spec(PaperDataset dataset, double scale);

/// Generates the synthetic analog graph (plus ground-truth modules).
graph::ModuleGraph make_paper_graph(PaperDataset dataset, double scale,
                                    util::Rng& rng);

}  // namespace gsb::bio

#endif  // GSB_BIO_PRESETS_H
