#ifndef GSB_BIO_EXPRESSION_H
#define GSB_BIO_EXPRESSION_H

/// \file expression.h
/// Gene-expression matrix: genes (probe sets) by samples (arrays), the raw
/// material of the paper's pipeline — the evaluation graphs come from
/// "raw microarray data after normalization, pairwise rank coefficient
/// calculation, and filtering using threshold".

#include <span>
#include <string>
#include <vector>

namespace gsb::bio {

/// Dense row-major genes x samples matrix with optional gene names.
class ExpressionMatrix {
 public:
  ExpressionMatrix() = default;

  /// Zero-filled matrix.
  ExpressionMatrix(std::size_t genes, std::size_t samples)
      : genes_(genes), samples_(samples), values_(genes * samples, 0.0) {}

  [[nodiscard]] std::size_t genes() const noexcept { return genes_; }
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  [[nodiscard]] double at(std::size_t gene, std::size_t sample) const noexcept {
    return values_[gene * samples_ + sample];
  }
  double& at(std::size_t gene, std::size_t sample) noexcept {
    return values_[gene * samples_ + sample];
  }

  /// A gene's expression profile across samples.
  [[nodiscard]] std::span<const double> row(std::size_t gene) const noexcept {
    return {values_.data() + gene * samples_, samples_};
  }
  [[nodiscard]] std::span<double> row(std::size_t gene) noexcept {
    return {values_.data() + gene * samples_, samples_};
  }

  /// Gene names; empty when unnamed.  When set, must have genes() entries.
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  void set_names(std::vector<std::string> names) { names_ = std::move(names); }

  /// Name of a gene ("gene<idx>" when unnamed).
  [[nodiscard]] std::string name_of(std::size_t gene) const;

 private:
  std::size_t genes_ = 0;
  std::size_t samples_ = 0;
  std::vector<double> values_;
  std::vector<std::string> names_;
};

}  // namespace gsb::bio

#endif  // GSB_BIO_EXPRESSION_H
