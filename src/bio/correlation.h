#ifndef GSB_BIO_CORRELATION_H
#define GSB_BIO_CORRELATION_H

/// \file correlation.h
/// Pairwise gene correlation and thresholded graph construction — stages
/// two and three of the paper's pipeline ("pairwise rank coefficient
/// calculation, and filtering using threshold").

#include <cstdint>
#include <vector>

#include "bio/expression.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace gsb::bio {

enum class CorrelationMethod {
  kPearson,
  kSpearman  ///< rank coefficient — the paper's choice
};

/// Pearson correlation of two equal-length profiles (0 if either is
/// constant).
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (tie-averaged ranks, then Pearson).
double spearman(std::span<const double> x, std::span<const double> y);

/// Tie-averaged ranks of a profile (1-based averages, standard midranks).
std::vector<double> midranks(std::span<const double> values);

/// Reusable scratch for standardized_profile_into: the Spearman path needs
/// a sort permutation and a rank buffer per call, and reusing them across
/// a genes-long standardization pass removes the per-row allocation churn.
struct StandardizeScratch {
  std::vector<double> ranks;
  std::vector<std::uint32_t> order;
};

/// midranks, but writing into scratch.ranks and reusing scratch.order for
/// the sort permutation — no allocations after the first call.
void midranks_into(std::span<const double> values,
                   StandardizeScratch& scratch);

/// Standardizes a profile for dot-product correlation under \p method
/// (rank-transforms first for Spearman): mean 0, unit norm, written
/// directly into \p out (profile.size() doubles — e.g. a destination row
/// of an AlignedRows block, no staging buffer).  Returns false for
/// constant profiles, leaving out all-zero.  Every builder goes through
/// this one function, which is what makes their edge sets bit-identical.
bool standardized_profile_into(std::span<const double> profile,
                               CorrelationMethod method, double* out,
                               StandardizeScratch& scratch);

/// Convenience overload producing a std::vector (resized to the profile
/// length).  Prefer standardized_profile_into in loops.
bool standardized_profile(std::span<const double> profile,
                          CorrelationMethod method, std::vector<double>& out);

/// Plain sequential dot product — the correlation inner loop.  Kept as a
/// named function so every builder accumulates in the same order (floating
/// point addition is not associative; a different order could flip edges
/// sitting exactly on the threshold).
double profile_dot(const double* a, const double* b, std::size_t n) noexcept;

/// Dense symmetric correlation matrix (genes x genes, float to halve the
/// footprint).  Quadratic in genes; prefer build_correlation_graph for
/// thresholded use.
class CorrelationMatrix {
 public:
  CorrelationMatrix() = default;
  explicit CorrelationMatrix(std::size_t n) : n_(n), values_(n * n, 0.0f) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] float at(std::size_t i, std::size_t j) const noexcept {
    return values_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, float value) noexcept {
    values_[i * n_ + j] = value;
    values_[j * n_ + i] = value;
  }

 private:
  std::size_t n_ = 0;
  std::vector<float> values_;
};

/// Full correlation matrix under the chosen method.  Computed with the
/// blocked kernel over upper-triangle block pairs only; symmetric entries
/// are mirrored, never recomputed.  \p threads workers compute disjoint
/// blocks (0 = hardware concurrency, 1 = sequential); the result is
/// identical for every thread count.
CorrelationMatrix correlation_matrix(const ExpressionMatrix& expression,
                                     CorrelationMethod method,
                                     std::size_t threads = 1);

/// Options for thresholded graph construction.
struct CorrelationGraphOptions {
  CorrelationMethod method = CorrelationMethod::kSpearman;
  /// Edge iff |corr| >= threshold (used when target_edges == 0).
  double threshold = 0.85;
  /// When nonzero, pick the threshold as the |corr| quantile that yields
  /// approximately this many edges (estimated from sampled pairs).
  std::size_t target_edges = 0;
  /// Pairs sampled for the quantile estimate.
  std::size_t quantile_samples = 200000;
  /// Worker threads for the blocked correlation sweep: 0 = hardware
  /// concurrency, 1 = sequential.  The edge set is identical at every
  /// thread count (see corr_kernel.h's determinism contract).
  std::size_t threads = 1;
  /// Rows per cache block in the sweep; 0 = kernel default.
  std::size_t corr_block = 0;
};

/// Result of graph construction.
struct CorrelationGraphResult {
  graph::Graph graph;
  double threshold_used = 0.0;
};

/// Builds the thresholded co-expression graph without materializing the
/// full correlation matrix.
CorrelationGraphResult build_correlation_graph(
    const ExpressionMatrix& expression,
    const CorrelationGraphOptions& options, util::Rng& rng);

}  // namespace gsb::bio

#endif  // GSB_BIO_CORRELATION_H
