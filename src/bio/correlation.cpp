#include "bio/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.h"

namespace gsb::bio {
namespace {

/// Standardizes profiles to mean 0 / unit norm so correlation reduces to a
/// dot product.  Returns false for constant profiles.
bool standardize(std::span<const double> in, std::vector<double>& out) {
  const std::size_t n = in.size();
  out.resize(n);
  const double mean =
      std::accumulate(in.begin(), in.end(), 0.0) / static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in[i] - mean;
    ss += out[i] * out[i];
  }
  if (ss == 0.0) return false;
  const double inv = 1.0 / std::sqrt(ss);
  for (double& v : out) v *= inv;
  return true;
}

/// Row-standardized matrix (genes x samples) for dot-product correlation;
/// `valid[g]` false marks constant rows.
struct Standardized {
  std::vector<double> values;  // row-major
  std::vector<bool> valid;
  std::size_t samples = 0;

  [[nodiscard]] const double* row(std::size_t g) const noexcept {
    return values.data() + g * samples;
  }
};

Standardized standardize_all(const ExpressionMatrix& expression,
                             CorrelationMethod method) {
  Standardized out;
  const std::size_t genes = expression.genes();
  out.samples = expression.samples();
  out.values.resize(genes * out.samples);
  out.valid.assign(genes, false);
  std::vector<double> buffer;
  for (std::size_t g = 0; g < genes; ++g) {
    out.valid[g] = standardized_profile(expression.row(g), method, buffer);
    std::copy(buffer.begin(), buffer.end(),
              out.values.begin() + static_cast<std::ptrdiff_t>(g * out.samples));
  }
  return out;
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
  return profile_dot(a, b, n);
}

}  // namespace

bool standardized_profile(std::span<const double> profile,
                          CorrelationMethod method, std::vector<double>& out) {
  if (method == CorrelationMethod::kSpearman) {
    const std::vector<double> ranks = midranks(profile);
    if (standardize(ranks, out)) return true;
  } else if (standardize(profile, out)) {
    return true;
  }
  out.assign(profile.size(), 0.0);
  return false;
}

double profile_dot(const double* a, const double* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

std::vector<double> midranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && values[order[j]] == values[order[i]]) ++j;
    // Average 1-based rank for the tie group [i, j).
    const double rank = (static_cast<double>(i) + static_cast<double>(j - 1)) /
                            2.0 +
                        1.0;
    for (std::size_t t = i; t < j; ++t) ranks[order[t]] = rank;
    i = j;
  }
  return ranks;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  std::vector<double> sx;
  std::vector<double> sy;
  if (x.size() != y.size() || x.empty()) return 0.0;
  if (!standardize(x, sx) || !standardize(y, sy)) return 0.0;
  return dot(sx.data(), sy.data(), sx.size());
}

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::vector<double> rx = midranks(x);
  const std::vector<double> ry = midranks(y);
  return pearson(rx, ry);
}

CorrelationMatrix correlation_matrix(const ExpressionMatrix& expression,
                                     CorrelationMethod method) {
  const std::size_t genes = expression.genes();
  CorrelationMatrix out(genes);
  const Standardized std_rows = standardize_all(expression, method);
  for (std::size_t i = 0; i < genes; ++i) {
    out.set(i, i, 1.0f);
    if (!std_rows.valid[i]) continue;
    for (std::size_t j = i + 1; j < genes; ++j) {
      if (!std_rows.valid[j]) continue;
      out.set(i, j,
              static_cast<float>(
                  dot(std_rows.row(i), std_rows.row(j), std_rows.samples)));
    }
  }
  return out;
}

CorrelationGraphResult build_correlation_graph(
    const ExpressionMatrix& expression,
    const CorrelationGraphOptions& options, util::Rng& rng) {
  const std::size_t genes = expression.genes();
  CorrelationGraphResult result{graph::Graph(genes), options.threshold};
  if (genes < 2) return result;
  const Standardized rows = standardize_all(expression, options.method);

  double threshold = options.threshold;
  if (options.target_edges > 0) {
    // Estimate the |corr| quantile matching the edge budget from sampled
    // pairs: P(edge) = target_edges / (n choose 2).
    const double total_pairs =
        static_cast<double>(genes) * static_cast<double>(genes - 1) / 2.0;
    const double fraction =
        std::min(1.0, static_cast<double>(options.target_edges) / total_pairs);
    std::vector<double> sample;
    const std::size_t draws =
        std::min<std::size_t>(options.quantile_samples,
                              static_cast<std::size_t>(total_pairs));
    sample.reserve(draws);
    for (std::size_t d = 0; d < draws; ++d) {
      const auto i = static_cast<std::size_t>(rng.below(genes));
      const auto j = static_cast<std::size_t>(rng.below(genes));
      if (i == j) {
        --d;  // retry this draw
        continue;
      }
      if (!rows.valid[i] || !rows.valid[j]) {
        sample.push_back(0.0);
        continue;
      }
      sample.push_back(
          std::fabs(dot(rows.row(i), rows.row(j), rows.samples)));
    }
    threshold = util::quantile(std::move(sample), 1.0 - fraction);
  }
  result.threshold_used = threshold;

  for (std::size_t i = 0; i < genes; ++i) {
    if (!rows.valid[i]) continue;
    for (std::size_t j = i + 1; j < genes; ++j) {
      if (!rows.valid[j]) continue;
      const double corr = dot(rows.row(i), rows.row(j), rows.samples);
      if (std::fabs(corr) >= threshold) {
        result.graph.add_edge(static_cast<graph::VertexId>(i),
                              static_cast<graph::VertexId>(j));
      }
    }
  }
  return result;
}

}  // namespace gsb::bio
