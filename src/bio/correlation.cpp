#include "bio/correlation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <optional>

#include "bio/corr_kernel.h"
#include "parallel/thread_pool.h"
#include "util/stats.h"

namespace gsb::bio {
namespace {

/// Standardizes \p n values to mean 0 / unit norm directly into \p out so
/// correlation reduces to a dot product.  Returns false for constant
/// profiles (out is zero-filled).
bool standardize_into(const double* in, std::size_t n, double* out) {
  const double mean =
      std::accumulate(in, in + n, 0.0) / static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in[i] - mean;
    ss += out[i] * out[i];
  }
  if (ss == 0.0) {
    std::fill(out, out + n, 0.0);
    return false;
  }
  const double inv = 1.0 / std::sqrt(ss);
  for (std::size_t i = 0; i < n; ++i) out[i] *= inv;
  return true;
}

bool standardize(std::span<const double> in, std::vector<double>& out) {
  out.resize(in.size());
  return standardize_into(in.data(), in.size(), out.data());
}

std::size_t resolve_threads(std::size_t threads) {
  return threads == 0 ? par::ThreadPool::default_threads() : threads;
}

}  // namespace

void midranks_into(std::span<const double> values,
                   StandardizeScratch& scratch) {
  const std::size_t n = values.size();
  scratch.order.resize(n);
  std::iota(scratch.order.begin(), scratch.order.end(), 0u);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return values[a] < values[b];
            });
  scratch.ranks.assign(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && values[scratch.order[j]] == values[scratch.order[i]]) ++j;
    // Average 1-based rank for the tie group [i, j).
    const double rank = (static_cast<double>(i) + static_cast<double>(j - 1)) /
                            2.0 +
                        1.0;
    for (std::size_t t = i; t < j; ++t) scratch.ranks[scratch.order[t]] = rank;
    i = j;
  }
}

std::vector<double> midranks(std::span<const double> values) {
  StandardizeScratch scratch;
  midranks_into(values, scratch);
  return std::move(scratch.ranks);
}

bool standardized_profile_into(std::span<const double> profile,
                               CorrelationMethod method, double* out,
                               StandardizeScratch& scratch) {
  if (method == CorrelationMethod::kSpearman) {
    midranks_into(profile, scratch);
    return standardize_into(scratch.ranks.data(), profile.size(), out);
  }
  return standardize_into(profile.data(), profile.size(), out);
}

bool standardized_profile(std::span<const double> profile,
                          CorrelationMethod method, std::vector<double>& out) {
  out.resize(profile.size());
  StandardizeScratch scratch;
  return standardized_profile_into(profile, method, out.data(), scratch);
}

double profile_dot(const double* a, const double* b, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  std::vector<double> sx;
  std::vector<double> sy;
  if (x.size() != y.size() || x.empty()) return 0.0;
  if (!standardize(x, sx) || !standardize(y, sy)) return 0.0;
  return profile_dot(sx.data(), sy.data(), sx.size());
}

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::vector<double> rx = midranks(x);
  const std::vector<double> ry = midranks(y);
  return pearson(rx, ry);
}

CorrelationMatrix correlation_matrix(const ExpressionMatrix& expression,
                                     CorrelationMethod method,
                                     std::size_t threads) {
  const std::size_t genes = expression.genes();
  CorrelationMatrix out(genes);
  if (genes == 0) return out;
  const StandardizedRows rows = standardize_rows(expression, method);
  const std::size_t samples = expression.samples();
  const std::size_t block = kDefaultCorrBlock;

  // Upper-triangle block pairs only; set() mirrors each entry, so the
  // lower triangle is never recomputed.  Constant rows standardize to
  // all-zero, so their correlations come out exactly 0 without a branch.
  struct Task {
    std::size_t i0;
    std::size_t j0;
  };
  std::vector<Task> tasks;
  for (std::size_t i0 = 0; i0 < genes; i0 += block) {
    for (std::size_t j0 = i0; j0 < genes; j0 += block) {
      tasks.push_back(Task{i0, j0});
    }
  }
  auto fill_task = [&](const Task& task, std::vector<double>& dense,
                       std::vector<double>& pack) {
    const std::size_t ci = std::min(block, genes - task.i0);
    const std::size_t cj = std::min(block, genes - task.j0);
    dense.resize(ci * cj);
    correlation_block(rows.rows.row(task.i0), ci, rows.rows.row(task.j0), cj,
                      samples, rows.rows.stride(), rows.rows.stride(),
                      dense.data(), cj, pack);
    for (std::size_t i = 0; i < ci; ++i) {
      const std::size_t gi = task.i0 + i;
      std::size_t j = task.j0 == task.i0 ? i + 1 : 0;
      for (; j < cj; ++j) {
        out.set(gi, task.j0 + j, static_cast<float>(dense[i * cj + j]));
      }
    }
  };

  const std::size_t workers = resolve_threads(threads);
  if (workers <= 1 || tasks.size() <= 1) {
    std::vector<double> dense;
    std::vector<double> pack;
    for (const Task& task : tasks) fill_task(task, dense, pack);
  } else {
    // Each block pair owns a disjoint set of (i, j) cells (and their
    // mirrors), so workers write without synchronization.
    par::ThreadPool pool(workers);
    std::atomic<std::size_t> next{0};
    pool.run_round([&](std::size_t) {
      std::vector<double> dense;
      std::vector<double> pack;
      while (true) {
        const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks.size()) return;
        fill_task(tasks[t], dense, pack);
      }
    });
  }
  for (std::size_t i = 0; i < genes; ++i) out.set(i, i, 1.0f);
  return out;
}

CorrelationGraphResult build_correlation_graph(
    const ExpressionMatrix& expression,
    const CorrelationGraphOptions& options, util::Rng& rng) {
  const std::size_t genes = expression.genes();
  CorrelationGraphResult result{graph::Graph(genes), options.threshold};
  if (genes < 2) return result;
  const StandardizedRows rows = standardize_rows(expression, options.method);
  const std::size_t samples = expression.samples();

  double threshold = options.threshold;
  if (options.target_edges > 0) {
    // Estimate the |corr| quantile matching the edge budget from sampled
    // pairs: P(edge) = target_edges / (n choose 2).
    const double total_pairs =
        static_cast<double>(genes) * static_cast<double>(genes - 1) / 2.0;
    const double fraction =
        std::min(1.0, static_cast<double>(options.target_edges) / total_pairs);
    std::vector<double> sample;
    const std::size_t draws =
        std::min<std::size_t>(options.quantile_samples,
                              static_cast<std::size_t>(total_pairs));
    sample.reserve(draws);
    for (std::size_t d = 0; d < draws; ++d) {
      const auto i = static_cast<std::size_t>(rng.below(genes));
      const auto j = static_cast<std::size_t>(rng.below(genes));
      if (i == j) {
        --d;  // retry this draw
        continue;
      }
      if (rows.valid[i] == 0 || rows.valid[j] == 0) {
        sample.push_back(0.0);
        continue;
      }
      sample.push_back(
          std::fabs(profile_dot(rows.rows.row(i), rows.rows.row(j), samples)));
    }
    threshold = util::quantile(std::move(sample), 1.0 - fraction);
  }
  result.threshold_used = threshold;

  const std::size_t workers = resolve_threads(options.threads);
  std::optional<par::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  CorrSweepOptions sweep;
  sweep.block = options.corr_block;
  sweep.pool = pool ? &*pool : nullptr;
  correlation_self(rows.rows, genes, rows.valid.data(), threshold, sweep,
                   [&](std::uint32_t u, std::uint32_t v, double) {
                     result.graph.add_edge(static_cast<graph::VertexId>(u),
                                           static_cast<graph::VertexId>(v));
                   });
  return result;
}

}  // namespace gsb::bio
