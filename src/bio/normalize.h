#ifndef GSB_BIO_NORMALIZE_H
#define GSB_BIO_NORMALIZE_H

/// \file normalize.h
/// Expression normalization — the first stage of the paper's pipeline
/// ("raw microarray data after normalization ...").

#include "bio/expression.h"

namespace gsb::bio {

/// Standardizes each gene's profile to mean 0 / sample stddev 1 in place.
/// Constant rows become all zeros.
void zscore_rows(ExpressionMatrix& matrix);

/// Quantile normalization across samples (columns): forces every sample to
/// share one empirical distribution (the cross-array calibration used for
/// Affymetrix data).  Ties receive the mean of their quantile values.
void quantile_normalize(ExpressionMatrix& matrix);

/// log2(x - min + 1) transform per matrix (variance stabilization).
void log2_transform(ExpressionMatrix& matrix);

}  // namespace gsb::bio

#endif  // GSB_BIO_NORMALIZE_H
