#ifndef GSB_BIO_CORR_KERNEL_H
#define GSB_BIO_CORR_KERNEL_H

/// \file corr_kernel.h
/// The shared high-performance correlation kernel.
///
/// Both correlation builders — the in-memory one (bio/correlation.h) and
/// the tiled out-of-core one (bio/tiled_correlation.h) — spend their time
/// in the same place: all-pairs dot products of standardized expression
/// profiles, an O(genes² × samples) GEMM-shaped workload.  This header
/// provides the one kernel they both call:
///
///   * AlignedRows — standardized profiles stored row-major with each row
///     start 64-byte aligned and the row length padded to a multiple of
///     eight doubles (one cache line).  Padding is zero-filled so kernels
///     may read a full stride without changing any dot product.
///   * correlation_block — a cache-blocked, register-tiled dense block
///     product: packs the B rows into a transposed (sample-major) panel so
///     the inner loop is SIMD-friendly (contiguous loads, one broadcast),
///     and keeps eight independent accumulator chains per A row so the
///     floating-point latency chain of the naive scalar loop disappears.
///   * correlation_cross / correlation_self — block-pair sweeps that
///     dispatch blocks over a par::ThreadPool and emit thresholded edges
///     through a reorder buffer.
///
/// Determinism contract: for every pair (i, j) the kernel accumulates
/// a[k] * b[k] in ascending k with a single accumulator per pair — exactly
/// the order of the scalar reference profile_dot().  Vectorization happens
/// *across* pairs (independent accumulator chains in SIMD lanes), never
/// within one, so every produced correlation is bit-identical to the
/// scalar reference.  The sweep drivers additionally emit edges in a fixed
/// (block pair, i, j) order regardless of thread count or scheduling, so
/// edge sets — and anything built from them, including .gsbg containers —
/// are byte-identical across thread counts.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "bio/correlation.h"
#include "bio/expression.h"
#include "parallel/thread_pool.h"

namespace gsb::bio {

/// Default rows per cache block for the sweep drivers.  Two 128-row blocks
/// of 64–512 samples (128 KiB – 1 MiB of doubles) sit comfortably in L2
/// while each packed panel is reused across the whole opposing block.
inline constexpr std::size_t kDefaultCorrBlock = 128;

/// Row-major matrix of profiles with 64-byte-aligned, zero-padded rows —
/// the SoA layout the blocked kernel consumes.  stride() is samples()
/// rounded up to a whole cache line of doubles; the pad lanes are zero and
/// must stay zero (kernels may load them).
class AlignedRows {
 public:
  static constexpr std::size_t kAlignment = 64;  // bytes
  static constexpr std::size_t kAlignDoubles = kAlignment / sizeof(double);

  AlignedRows() = default;
  AlignedRows(std::size_t rows, std::size_t samples)
      : rows_(rows),
        samples_(samples),
        stride_((samples + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles) {
    const std::size_t total = rows_ * stride_ * sizeof(double);
    if (total == 0) return;
    data_.reset(static_cast<double*>(std::aligned_alloc(kAlignment, total)));
    if (data_ == nullptr) throw std::bad_alloc();
    std::fill_n(data_.get(), rows_ * stride_, 0.0);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }
  /// Doubles between consecutive row starts (>= samples, multiple of 8).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  /// Bytes owned by the backing allocation.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return rows_ * stride_ * sizeof(double);
  }

  [[nodiscard]] double* row(std::size_t r) noexcept {
    return data_.get() + r * stride_;
  }
  [[nodiscard]] const double* row(std::size_t r) const noexcept {
    return data_.get() + r * stride_;
  }

 private:
  struct FreeDeleter {
    void operator()(double* p) const noexcept { std::free(p); }
  };

  std::size_t rows_ = 0;
  std::size_t samples_ = 0;
  std::size_t stride_ = 0;
  std::unique_ptr<double[], FreeDeleter> data_;
};

/// Standardized profiles plus per-row validity (false marks constant rows,
/// whose standardized profile is all-zero).
struct StandardizedRows {
  AlignedRows rows;
  std::vector<unsigned char> valid;
};

/// Standardizes every row of \p expression under \p method straight into
/// an aligned, padded row block (no per-row staging buffer; Spearman rank
/// scratch is reused across rows).
StandardizedRows standardize_rows(const ExpressionMatrix& expression,
                                  CorrelationMethod method);

/// Dense block product: out[i * out_stride + j] = dot(a_i, b_j) over
/// \p samples entries, for i < a_count, j < b_count.  Rows are read at
/// \p a_stride / \p b_stride doubles apart (use AlignedRows::stride()).
/// \p scratch holds the packed transposed B panel and is reused across
/// calls.  out must not alias the inputs.  Every out entry is bit-identical
/// to profile_dot(a_i, b_j, samples).
void correlation_block(const double* a_rows, std::size_t a_count,
                       const double* b_rows, std::size_t b_count,
                       std::size_t samples, std::size_t a_stride,
                       std::size_t b_stride, double* out,
                       std::size_t out_stride, std::vector<double>& scratch);

/// Options for the block-pair sweep drivers.
struct CorrSweepOptions {
  /// Rows per cache block; 0 = kDefaultCorrBlock.
  std::size_t block = 0;
  /// Worker pool for block-level parallelism; nullptr (or a 1-thread pool)
  /// runs sequentially.  The produced edge sequence is identical either
  /// way.
  par::ThreadPool* pool = nullptr;
};

/// Receives one thresholded pair: global ids (u, v) and the correlation.
using CorrEdgeSink =
    std::function<void(std::uint32_t, std::uint32_t, double)>;

/// Sweeps all (i, j) pairs between row block A (global ids a_first + i)
/// and row block B (global ids b_first + j), emitting every pair with both
/// rows valid and |corr| >= threshold.  \p diagonal marks A and B as the
/// *same* row range (then only pairs with global i < j are emitted and
/// only upper-triangle block pairs are visited).  Validity pointers may be
/// null (all rows valid); they index block-local rows.  The sink is called
/// from one thread at a time, in ascending (block pair, i, j) order,
/// independent of thread count.
void correlation_cross(const AlignedRows& a, std::size_t a_count,
                       const unsigned char* a_valid, std::uint32_t a_first,
                       const AlignedRows& b, std::size_t b_count,
                       const unsigned char* b_valid, std::uint32_t b_first,
                       bool diagonal, double threshold,
                       const CorrSweepOptions& options,
                       const CorrEdgeSink& sink);

/// All-pairs upper-triangle sweep of one row block (the in-memory
/// builder's shape): correlation_cross of the block with itself.
void correlation_self(const AlignedRows& rows, std::size_t count,
                      const unsigned char* valid, double threshold,
                      const CorrSweepOptions& options,
                      const CorrEdgeSink& sink);

}  // namespace gsb::bio

#endif  // GSB_BIO_CORR_KERNEL_H
