#include "bio/normalize.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace gsb::bio {

void zscore_rows(ExpressionMatrix& matrix) {
  const std::size_t s = matrix.samples();
  if (s < 2) return;
  for (std::size_t g = 0; g < matrix.genes(); ++g) {
    auto row = matrix.row(g);
    const double mean =
        std::accumulate(row.begin(), row.end(), 0.0) / static_cast<double>(s);
    double ss = 0.0;
    for (double v : row) ss += (v - mean) * (v - mean);
    const double sd = std::sqrt(ss / static_cast<double>(s - 1));
    if (sd == 0.0) {
      std::fill(row.begin(), row.end(), 0.0);
      continue;
    }
    for (double& v : row) v = (v - mean) / sd;
  }
}

void quantile_normalize(ExpressionMatrix& matrix) {
  const std::size_t genes = matrix.genes();
  const std::size_t samples = matrix.samples();
  if (genes == 0 || samples == 0) return;

  // Rank the genes within each sample.
  std::vector<std::vector<std::uint32_t>> order(samples,
                                                std::vector<std::uint32_t>(genes));
  for (std::size_t s = 0; s < samples; ++s) {
    auto& idx = order[s];
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(), [&](std::uint32_t a, std::uint32_t b) {
      return matrix.at(a, s) < matrix.at(b, s);
    });
  }
  // Reference distribution: mean across samples at each rank.
  std::vector<double> reference(genes, 0.0);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t r = 0; r < genes; ++r) {
      reference[r] += matrix.at(order[s][r], s);
    }
  }
  for (double& v : reference) v /= static_cast<double>(samples);
  // Substitute each value by the reference value of its rank.
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t r = 0; r < genes; ++r) {
      matrix.at(order[s][r], s) = reference[r];
    }
  }
}

void log2_transform(ExpressionMatrix& matrix) {
  double min_value = 0.0;
  bool first = true;
  for (std::size_t g = 0; g < matrix.genes(); ++g) {
    for (double v : matrix.row(g)) {
      if (first || v < min_value) {
        min_value = v;
        first = false;
      }
    }
  }
  for (std::size_t g = 0; g < matrix.genes(); ++g) {
    for (double& v : matrix.row(g)) {
      v = std::log2(v - min_value + 1.0);
    }
  }
}

}  // namespace gsb::bio
