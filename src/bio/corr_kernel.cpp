#include "bio/corr_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "parallel/job_graph.h"

namespace gsb::bio {
namespace {

/// Packed-panel columns per register tile: one cache line of doubles.
constexpr std::size_t kPackJ = 8;

// The register-tiled micro kernel exists in three flavors sharing one
// body: a portable scalar fallback, an explicit 128-bit vector version
// (SSE2 / NEON — two lanes per register, sixteen independent chains), and
// a 256-bit AVX version selected at runtime on x86-64.  The explicit
// vector form matters: left to itself the autovectorizer turns the k loop
// into an in-order vectorized reduction (it may not reassociate the adds),
// which runs at half the speed of vectorizing *across* columns.  Every
// flavor accumulates each (row, column) pair in ascending k with one
// accumulator lane — the exact profile_dot order — so all three produce
// bit-identical results on every ISA.
#if defined(__GNUC__) || defined(__clang__)
#define GSB_CORR_VECTOR_KERNEL 1
#endif

#if defined(GSB_CORR_VECTOR_KERNEL)

using V2df = double __attribute__((vector_size(16)));
using V4df = double __attribute__((vector_size(32)));

/// Computes kIRows consecutive output rows against the packed panel with
/// kPackJ accumulator lanes of type Vec per row.  Lane (r, j0 + w * lanes
/// + l) folds a_r[k] * b[k] in ascending k — profile_dot's order — and
/// lanes never mix, so the result is independent of the vector width.
template <std::size_t kIRows, typename Vec>
__attribute__((always_inline)) inline void panel_rows(
    const double* a, std::size_t a_stride, const double* bt, std::size_t ldb,
    std::size_t samples, std::size_t b_count, double* out,
    std::size_t out_stride) {
  constexpr std::size_t kLanes = sizeof(Vec) / sizeof(double);
  constexpr std::size_t kVecs = kPackJ / kLanes;
  const std::size_t j_full = b_count / kPackJ * kPackJ;
  for (std::size_t j0 = 0; j0 < b_count; j0 += kPackJ) {
    Vec acc[kIRows][kVecs] = {};
    const double* panel = bt + j0;
    for (std::size_t k = 0; k < samples; ++k) {
      const double* b = panel + k * ldb;
      Vec bv[kVecs];
      for (std::size_t w = 0; w < kVecs; ++w) {
        std::memcpy(&bv[w], b + w * kLanes, sizeof(Vec));
      }
      for (std::size_t r = 0; r < kIRows; ++r) {
        const double av = a[r * a_stride + k];  // broadcast over each lane
        for (std::size_t w = 0; w < kVecs; ++w) acc[r][w] += bv[w] * av;
      }
    }
    if (j0 < j_full) {
      for (std::size_t r = 0; r < kIRows; ++r) {
        for (std::size_t w = 0; w < kVecs; ++w) {
          std::memcpy(out + r * out_stride + j0 + w * kLanes, &acc[r][w],
                      sizeof(Vec));
        }
      }
    } else {
      // Ragged tail tile: spill the full tile, copy the live columns.
      const std::size_t jn = b_count - j0;
      double tail[kPackJ];
      for (std::size_t r = 0; r < kIRows; ++r) {
        for (std::size_t w = 0; w < kVecs; ++w) {
          std::memcpy(tail + w * kLanes, &acc[r][w], sizeof(Vec));
        }
        for (std::size_t t = 0; t < jn; ++t) {
          out[r * out_stride + j0 + t] = tail[t];
        }
      }
    }
  }
}

void compute_block_v128(const double* a_rows, std::size_t a_count,
                        std::size_t a_stride, const double* bt,
                        std::size_t ldb, std::size_t samples,
                        std::size_t b_count, double* out,
                        std::size_t out_stride) {
  std::size_t i = 0;
  for (; i + 2 <= a_count; i += 2) {
    panel_rows<2, V2df>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                        b_count, out + i * out_stride, out_stride);
  }
  if (i < a_count) {
    panel_rows<1, V2df>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                        b_count, out + i * out_stride, out_stride);
  }
}

#if defined(__x86_64__) || defined(__i386__)
#define GSB_CORR_AVX_KERNEL 1
/// 256-bit variant: four A rows in flight, eight ymm accumulators.  No
/// FMA even on machines that have it — fusing would round differently
/// from the scalar reference and break the bitwise contract.
__attribute__((target("avx"))) void compute_block_avx(
    const double* a_rows, std::size_t a_count, std::size_t a_stride,
    const double* bt, std::size_t ldb, std::size_t samples,
    std::size_t b_count, double* out, std::size_t out_stride) {
  std::size_t i = 0;
  for (; i + 4 <= a_count; i += 4) {
    panel_rows<4, V4df>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                        b_count, out + i * out_stride, out_stride);
  }
  for (; i + 2 <= a_count; i += 2) {
    panel_rows<2, V4df>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                        b_count, out + i * out_stride, out_stride);
  }
  if (i < a_count) {
    panel_rows<1, V4df>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                        b_count, out + i * out_stride, out_stride);
  }
}
#endif  // x86

#else  // !GSB_CORR_VECTOR_KERNEL

/// Portable fallback for compilers without GNU vector extensions.
template <std::size_t kIRows>
void micro_panel_scalar(const double* a, std::size_t a_stride,
                        const double* bt, std::size_t ldb,
                        std::size_t samples, std::size_t b_count, double* out,
                        std::size_t out_stride) {
  for (std::size_t j0 = 0; j0 < b_count; j0 += kPackJ) {
    double acc[kIRows][kPackJ] = {};
    const double* panel = bt + j0;
    for (std::size_t k = 0; k < samples; ++k) {
      const double* b = panel + k * ldb;
      for (std::size_t r = 0; r < kIRows; ++r) {
        const double av = a[r * a_stride + k];
        for (std::size_t t = 0; t < kPackJ; ++t) acc[r][t] += av * b[t];
      }
    }
    const std::size_t jn = std::min(kPackJ, b_count - j0);
    for (std::size_t r = 0; r < kIRows; ++r) {
      for (std::size_t t = 0; t < jn; ++t) {
        out[r * out_stride + j0 + t] = acc[r][t];
      }
    }
  }
}

void compute_block_scalar(const double* a_rows, std::size_t a_count,
                          std::size_t a_stride, const double* bt,
                          std::size_t ldb, std::size_t samples,
                          std::size_t b_count, double* out,
                          std::size_t out_stride) {
  std::size_t i = 0;
  for (; i + 2 <= a_count; i += 2) {
    micro_panel_scalar<2>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                          b_count, out + i * out_stride, out_stride);
  }
  if (i < a_count) {
    micro_panel_scalar<1>(a_rows + i * a_stride, a_stride, bt, ldb, samples,
                          b_count, out + i * out_stride, out_stride);
  }
}

#endif  // GSB_CORR_VECTOR_KERNEL

}  // namespace

void correlation_block(const double* a_rows, std::size_t a_count,
                       const double* b_rows, std::size_t b_count,
                       std::size_t samples, std::size_t a_stride,
                       std::size_t b_stride, double* out,
                       std::size_t out_stride, std::vector<double>& scratch) {
  if (a_count == 0 || b_count == 0) return;
  // Pack B transposed (sample-major) with the column count rounded up to a
  // whole register tile; pad columns stay zero so full-tile loads are safe.
  const std::size_t ldb = (b_count + kPackJ - 1) / kPackJ * kPackJ;
  scratch.resize(samples * ldb);
  if (ldb != b_count) {
    // Only the pad columns need zeroing; the live ones are overwritten by
    // the pack loop below (a full assign would double the packing
    // traffic on the hot path).
    for (std::size_t k = 0; k < samples; ++k) {
      double* pad = scratch.data() + k * ldb + b_count;
      std::fill(pad, pad + (ldb - b_count), 0.0);
    }
  }
  for (std::size_t j = 0; j < b_count; ++j) {
    const double* src = b_rows + j * b_stride;
    double* dst = scratch.data() + j;
    for (std::size_t k = 0; k < samples; ++k) dst[k * ldb] = src[k];
  }
#if defined(GSB_CORR_AVX_KERNEL)
  static const bool have_avx = __builtin_cpu_supports("avx") != 0;
  if (have_avx) {
    compute_block_avx(a_rows, a_count, a_stride, scratch.data(), ldb, samples,
                      b_count, out, out_stride);
    return;
  }
#endif
#if defined(GSB_CORR_VECTOR_KERNEL)
  compute_block_v128(a_rows, a_count, a_stride, scratch.data(), ldb, samples,
                     b_count, out, out_stride);
#else
  compute_block_scalar(a_rows, a_count, a_stride, scratch.data(), ldb,
                       samples, b_count, out, out_stride);
#endif
}

void correlation_cross(const AlignedRows& a, std::size_t a_count,
                       const unsigned char* a_valid, std::uint32_t a_first,
                       const AlignedRows& b, std::size_t b_count,
                       const unsigned char* b_valid, std::uint32_t b_first,
                       bool diagonal, double threshold,
                       const CorrSweepOptions& options,
                       const CorrEdgeSink& sink) {
  if (a_count == 0 || b_count == 0) return;
  if (a.samples() != b.samples()) {
    throw std::invalid_argument("correlation_cross: sample count mismatch");
  }
  const std::size_t samples = a.samples();
  const std::size_t block =
      options.block == 0 ? kDefaultCorrBlock : options.block;

  struct Task {
    std::size_t i0;
    std::size_t j0;
  };
  std::vector<Task> tasks;
  for (std::size_t i0 = 0; i0 < a_count; i0 += block) {
    for (std::size_t j0 = diagonal ? i0 : 0; j0 < b_count; j0 += block) {
      tasks.push_back(Task{i0, j0});
    }
  }
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    static const obs::Counter sweeps = registry.counter(
        "gsb_correlation_sweeps_total", "Blocked correlation sweeps run.");
    static const obs::Counter blocks = registry.counter(
        "gsb_correlation_blocks_total",
        "Correlation tile blocks computed across sweeps.");
    sweeps.inc();
    blocks.inc(tasks.size());
  }

  struct Hit {
    std::uint32_t u;
    std::uint32_t v;
    double corr;
  };
  auto scan_task = [&](const Task& task, std::vector<double>& dense,
                       std::vector<double>& pack, std::vector<Hit>& hits) {
    const std::size_t ci = std::min(block, a_count - task.i0);
    const std::size_t cj = std::min(block, b_count - task.j0);
    dense.resize(ci * cj);
    correlation_block(a.row(task.i0), ci, b.row(task.j0), cj, samples,
                      a.stride(), b.stride(), dense.data(), cj, pack);
    for (std::size_t i = 0; i < ci; ++i) {
      if (a_valid != nullptr && a_valid[task.i0 + i] == 0) continue;
      // On a diagonal block pair only pairs above the diagonal are new.
      std::size_t j = diagonal && task.j0 == task.i0 ? i + 1 : 0;
      const double* row = dense.data() + i * cj;
      for (; j < cj; ++j) {
        if (b_valid != nullptr && b_valid[task.j0 + j] == 0) continue;
        const double corr = row[j];
        if (std::fabs(corr) >= threshold) {
          hits.push_back(
              Hit{a_first + static_cast<std::uint32_t>(task.i0 + i),
                  b_first + static_cast<std::uint32_t>(task.j0 + j), corr});
        }
      }
    }
  };

  par::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() <= 1 || tasks.size() <= 1) {
    std::vector<double> dense;
    std::vector<double> pack;
    std::vector<Hit> hits;
    for (const Task& task : tasks) {
      hits.clear();
      scan_task(task, dense, pack, hits);
      for (const Hit& h : hits) sink(h.u, h.v, h.corr);
    }
    return;
  }

  // One scheduler job per tile; bodies run work-stealing across the
  // pool while the ordered completions replay each tile's hits in task
  // order, so the sink sees the exact sequence of the sequential path.
  par::JobGraph::Options graph_options;
  graph_options.ordered = true;
  par::JobGraph jobs(pool, graph_options);
  struct Scratch {
    std::vector<double> dense;
    std::vector<double> pack;
  };
  std::vector<Scratch> scratch(jobs.workers());
  std::vector<std::vector<Hit>> completed(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    par::JobGraph::JobSpec spec;
    spec.run = [&, t](std::size_t wid) {
      Scratch& s = scratch[wid];
      std::vector<Hit> hits;
      scan_task(tasks[t], s.dense, s.pack, hits);
      jobs.set_bytes(static_cast<par::JobId>(t), hits.size() * sizeof(Hit));
      completed[t] = std::move(hits);
    };
    spec.complete = [&, t] {
      for (const Hit& h : completed[t]) sink(h.u, h.v, h.corr);
      completed[t] = {};
    };
    jobs.add(std::move(spec));
  }
  jobs.run();
}

void correlation_self(const AlignedRows& rows, std::size_t count,
                      const unsigned char* valid, double threshold,
                      const CorrSweepOptions& options,
                      const CorrEdgeSink& sink) {
  correlation_cross(rows, count, valid, 0, rows, count, valid, 0,
                    /*diagonal=*/true, threshold, options, sink);
}

StandardizedRows standardize_rows(const ExpressionMatrix& expression,
                                  CorrelationMethod method) {
  StandardizedRows out{
      AlignedRows(expression.genes(), expression.samples()),
      std::vector<unsigned char>(expression.genes(), 0)};
  StandardizeScratch scratch;
  for (std::size_t g = 0; g < expression.genes(); ++g) {
    out.valid[g] = standardized_profile_into(expression.row(g), method,
                                             out.rows.row(g), scratch)
                       ? 1
                       : 0;
  }
  return out;
}

}  // namespace gsb::bio
