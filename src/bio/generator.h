#ifndef GSB_BIO_GENERATOR_H
#define GSB_BIO_GENERATOR_H

/// \file generator.h
/// Synthetic microarray generator.
///
/// Substitute for the paper's proprietary inputs (Affymetrix U74Av2
/// mouse-brain data [17] and the myogenic differentiation set [41]): a
/// latent-factor model in which each co-regulated module m has a hidden
/// per-sample activity z_m ~ N(0,1) and each member gene expresses
///   x = sqrt(rho) * z_m + sqrt(1-rho) * noise,
/// giving within-module correlations near rho, exactly the structure that
/// thresholded rank correlation turns into overlapping near-cliques.  The
/// returned module memberships are ground truth for tests and examples.

#include <cstdint>
#include <vector>

#include "bio/expression.h"
#include "util/rng.h"

namespace gsb::bio {

/// Generator configuration.
struct MicroarrayConfig {
  std::size_t genes = 2000;
  std::size_t samples = 40;
  std::size_t modules = 25;
  std::size_t min_module_size = 5;
  std::size_t max_module_size = 25;
  double size_power = 2.0;      ///< module-size distribution exponent
  double within_module_corr = 0.9;  ///< target within-module correlation rho
  double overlap = 0.10;        ///< chance a member is reused across modules
  double baseline_level = 8.0;  ///< additive expression baseline (log scale)
  double gene_scale_jitter = 0.3;  ///< per-gene multiplicative variation
};

/// Generator output.
struct SyntheticMicroarray {
  ExpressionMatrix expression;
  std::vector<std::vector<std::uint32_t>> modules;  ///< ground-truth members
};

/// Draws one synthetic dataset.
SyntheticMicroarray generate_microarray(const MicroarrayConfig& config,
                                        util::Rng& rng);

}  // namespace gsb::bio

#endif  // GSB_BIO_GENERATOR_H
