#include "bio/presets.h"

#include <algorithm>
#include <cmath>

#include "bitset/dynamic_bitset.h"

namespace gsb::bio {
namespace {

struct RawSpec {
  const char* name;
  std::size_t vertices;
  std::size_t edges;
  std::size_t max_clique;
  // Module-ensemble shape parameters (tuned so the enumeration workload
  // resembles thresholded correlation graphs: dense overlapping clumps on a
  // faint background).
  std::size_t min_module;
  double size_power;
  double overlap;
  double p_in;
  double modules_per_vertex;
};

RawSpec raw_spec(PaperDataset dataset) {
  switch (dataset) {
    case PaperDataset::kBrainSparse:
      // Very sparse graph whose edges are almost entirely clique clumps.
      return RawSpec{"brain-sparse (U74Av2, 0.008%)", 12422, 6151, 17,
                     3, 1.6, 0.20, 1.0, 1.0 / 45.0};
    case PaperDataset::kBrainDense:
      // The terabyte-scale instance: big, heavily overlapping modules.
      return RawSpec{"brain-dense (U74Av2, 0.3%)", 12422, 229297, 110,
                     4, 1.4, 0.35, 0.98, 1.0 / 18.0};
    case PaperDataset::kMyogenic:
      return RawSpec{"myogenic (0.2%)", 2895, 10914, 28,
                     4, 1.5, 0.30, 1.0, 1.0 / 16.0};
  }
  return RawSpec{"?", 0, 0, 0, 3, 2.0, 0.2, 1.0, 0.05};
}

}  // namespace

PaperGraphSpec paper_spec(PaperDataset dataset, double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  const RawSpec raw = raw_spec(dataset);
  PaperGraphSpec spec;
  spec.name = raw.name;
  spec.vertices = std::max<std::size_t>(
      raw.max_clique + 2,
      static_cast<std::size_t>(std::lround(raw.vertices * scale)));
  spec.edges = std::max<std::size_t>(
      raw.max_clique * (raw.max_clique - 1) / 2,
      static_cast<std::size_t>(std::lround(raw.edges * scale)));
  spec.max_clique = raw.max_clique;
  const double n = static_cast<double>(spec.vertices);
  spec.edge_density = n < 2 ? 0.0
                            : static_cast<double>(spec.edges) /
                                  (n * (n - 1.0) / 2.0);
  return spec;
}

graph::ModuleGraph make_paper_graph(PaperDataset dataset, double scale,
                                    util::Rng& rng) {
  scale = std::clamp(scale, 0.01, 1.0);
  const RawSpec raw = raw_spec(dataset);
  const PaperGraphSpec spec = paper_spec(dataset, scale);

  graph::ModuleGraph result{graph::Graph(spec.vertices), {}};
  std::vector<graph::VertexId> used;
  bits::DynamicBitset used_mask(spec.vertices);

  // The maximum-clique module is planted first; further modules are added
  // only while the edge budget allows, so the generated edge count tracks
  // the published one at every scale.
  result.modules.push_back(graph::plant_module(result.graph, spec.max_clique,
                                               raw.p_in, 0.0, used, used_mask,
                                               rng));
  const auto module_budget =
      static_cast<std::size_t>(0.88 * static_cast<double>(spec.edges));
  std::size_t stall_guard = 0;
  while (result.graph.num_edges() < module_budget &&
         stall_guard < spec.vertices * 4) {
    const std::size_t size = graph::sample_module_size(
        raw.min_module, spec.max_clique, raw.size_power, rng);
    const std::size_t before = result.graph.num_edges();
    // Would this module overshoot the budget badly?  Cap its size.
    const std::size_t room = module_budget - before;
    std::size_t capped = size;
    while (capped > raw.min_module && capped * (capped - 1) / 2 > room * 2) {
      --capped;
    }
    result.modules.push_back(graph::plant_module(result.graph, capped,
                                                 raw.p_in, raw.overlap, used,
                                                 used_mask, rng));
    if (result.graph.num_edges() == before) ++stall_guard;
  }

  // Sparse uniform background up to the edge target.
  std::size_t attempts = 0;
  const std::size_t limit = spec.edges * 40 + 1000;
  while (result.graph.num_edges() < spec.edges && attempts < limit) {
    ++attempts;
    const auto u = static_cast<graph::VertexId>(rng.below(spec.vertices));
    const auto v = static_cast<graph::VertexId>(rng.below(spec.vertices));
    result.graph.add_edge(u, v);
  }
  return result;
}

}  // namespace gsb::bio
