#include "bio/generator.h"

#include <algorithm>
#include <cmath>

#include "bitset/dynamic_bitset.h"

namespace gsb::bio {
namespace {

std::size_t sample_module_size(const MicroarrayConfig& config,
                               util::Rng& rng) {
  const std::size_t lo = config.min_module_size;
  const std::size_t hi = config.max_module_size;
  if (hi <= lo) return lo;
  double total = 0.0;
  for (std::size_t s = lo; s <= hi; ++s) {
    total += std::pow(static_cast<double>(s), -config.size_power);
  }
  double pick = rng.uniform() * total;
  for (std::size_t s = lo; s <= hi; ++s) {
    pick -= std::pow(static_cast<double>(s), -config.size_power);
    if (pick <= 0.0) return s;
  }
  return hi;
}

}  // namespace

SyntheticMicroarray generate_microarray(const MicroarrayConfig& config,
                                        util::Rng& rng) {
  SyntheticMicroarray out;
  out.expression = ExpressionMatrix(config.genes, config.samples);

  const double load = std::sqrt(std::clamp(config.within_module_corr, 0.0, 1.0));
  const double noise = std::sqrt(1.0 - load * load);

  // --- draw module memberships (the first module is forced to max size so
  // the largest clique of the thresholded graph is predictable) -------------
  std::vector<std::uint32_t> used;
  bits::DynamicBitset used_mask(config.genes);
  for (std::size_t m = 0; m < config.modules; ++m) {
    const std::size_t size =
        m == 0 ? config.max_module_size : sample_module_size(config, rng);
    std::vector<std::uint32_t> members;
    bits::DynamicBitset chosen(config.genes);
    // Fresh members avoid already-used genes so `overlap` is the *only*
    // source of cross-module sharing (fallback once genes run short).
    std::size_t attempts = 0;
    const std::size_t max_attempts = size * 50 + 200;
    while (members.size() < std::min(size, config.genes) &&
           attempts < max_attempts) {
      ++attempts;
      std::uint32_t g;
      if (!used.empty() && rng.chance(config.overlap)) {
        g = used[rng.below(used.size())];
      } else {
        g = static_cast<std::uint32_t>(rng.below(config.genes));
        if (used_mask.test(g) && attempts * 2 < max_attempts) continue;
      }
      if (chosen.test(g)) continue;
      chosen.set(g);
      members.push_back(g);
    }
    std::sort(members.begin(), members.end());
    for (std::uint32_t g : members) {
      if (!used_mask.test(g)) {
        used_mask.set(g);
        used.push_back(g);
      }
    }
    out.modules.push_back(std::move(members));
  }

  // --- hidden per-sample module activities ----------------------------------
  std::vector<std::vector<double>> factor(
      config.modules, std::vector<double>(config.samples));
  for (auto& z : factor) {
    for (double& v : z) v = rng.normal();
  }

  // Modules per gene (genes in several modules mix their activities, which
  // is what couples modules into overlapping near-cliques downstream).
  std::vector<std::vector<std::uint32_t>> gene_modules(config.genes);
  for (std::uint32_t m = 0; m < out.modules.size(); ++m) {
    for (std::uint32_t g : out.modules[m]) gene_modules[g].push_back(m);
  }

  // --- expression synthesis ----------------------------------------------------
  for (std::size_t g = 0; g < config.genes; ++g) {
    const double scale =
        1.0 + config.gene_scale_jitter * (rng.uniform() - 0.5) * 2.0;
    const auto& mods = gene_modules[g];
    const double norm =
        mods.empty() ? 0.0 : 1.0 / std::sqrt(static_cast<double>(mods.size()));
    for (std::size_t s = 0; s < config.samples; ++s) {
      double signal = 0.0;
      for (std::uint32_t m : mods) signal += factor[m][s];
      const double value =
          mods.empty() ? rng.normal()
                       : load * signal * norm + noise * rng.normal();
      out.expression.at(g, s) = config.baseline_level + scale * value;
    }
  }

  std::vector<std::string> names(config.genes);
  for (std::size_t g = 0; g < config.genes; ++g) {
    names[g] = "probe_" + std::to_string(g);
  }
  out.expression.set_names(std::move(names));
  return out;
}

}  // namespace gsb::bio
