#include "bio/expression.h"

namespace gsb::bio {

std::string ExpressionMatrix::name_of(std::size_t gene) const {
  if (gene < names_.size()) return names_[gene];
  return "gene" + std::to_string(gene);
}

}  // namespace gsb::bio
