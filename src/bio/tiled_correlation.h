#ifndef GSB_BIO_TILED_CORRELATION_H
#define GSB_BIO_TILED_CORRELATION_H

/// \file tiled_correlation.h
/// Tiled, out-of-core thresholded-correlation graph construction.
///
/// The in-memory builder (bio/correlation.h) standardizes every profile at
/// once and holds the full bitmap graph while thresholding — O(genes ×
/// samples) + O(genes² / 8) bytes, which is exactly what caps the repo
/// below genome scale.  This builder instead
///   1. streams expression rows block-by-block, writing standardized
///      profiles to a scratch file (one pass, one tile resident);
///   2. sweeps tile × tile over the scratch file with the blocked,
///      multithreaded kernel (bio/corr_kernel.h), appending every edge
///      with |corr| >= threshold to an edge spill file (two tiles
///      resident);
///   3. finalizes the spill into CSR and hands it to the streaming .gsbg
///      writer (O(n + m) resident, one bitmap row of scratch).
/// Peak resident bytes are therefore bounded by the tile budget plus the
/// *output* size, never by genes² — the Fabregat-Traver/Bientinesi
/// out-of-core recipe applied to the paper's pipeline.  All arithmetic
/// goes through the same standardization and blocked-dot kernels as the
/// in-memory builder (every dot product accumulated in the scalar
/// profile_dot order), so the produced edge set is bit-identical — across
/// builders and across thread counts.

#include <cstdint>
#include <memory>
#include <string>

#include "bio/correlation.h"
#include "bio/expression.h"
#include "storage/gsbg_writer.h"
#include "util/memory_tracker.h"

namespace gsb::bio {

/// Streaming source of expression rows.  Implementations exist for the
/// in-RAM ExpressionMatrix and for a binary on-disk matrix; the builder
/// never asks for more than one tile of rows at a time.
class RowBlockSource {
 public:
  virtual ~RowBlockSource() = default;
  [[nodiscard]] virtual std::size_t genes() const = 0;
  [[nodiscard]] virtual std::size_t samples() const = 0;
  /// Copies rows [first, first + count) row-major into \p out
  /// (count * samples() doubles).
  virtual void fetch(std::size_t first, std::size_t count,
                     double* out) const = 0;
};

/// Adapter over an in-RAM matrix (useful for tests and synthetic data; the
/// builder still only touches it tile-by-tile).
class MatrixRowSource final : public RowBlockSource {
 public:
  explicit MatrixRowSource(const ExpressionMatrix& matrix)
      : matrix_(matrix) {}
  [[nodiscard]] std::size_t genes() const override { return matrix_.genes(); }
  [[nodiscard]] std::size_t samples() const override {
    return matrix_.samples();
  }
  void fetch(std::size_t first, std::size_t count,
             double* out) const override;

 private:
  const ExpressionMatrix& matrix_;
};

/// On-disk expression matrix: 8-byte magic "GSBXPR01", u64 genes,
/// u64 samples, then genes*samples little-endian f64 row-major.
class BinaryFileRowSource final : public RowBlockSource {
 public:
  explicit BinaryFileRowSource(const std::string& path);
  ~BinaryFileRowSource() override;
  [[nodiscard]] std::size_t genes() const override { return genes_; }
  [[nodiscard]] std::size_t samples() const override { return samples_; }
  void fetch(std::size_t first, std::size_t count,
             double* out) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t genes_ = 0;
  std::size_t samples_ = 0;
};

/// Writes an ExpressionMatrix in the BinaryFileRowSource format.
void write_expression_binary(const ExpressionMatrix& matrix,
                             const std::string& path);

struct TiledCorrelationOptions {
  CorrelationMethod method = CorrelationMethod::kSpearman;
  /// Edge iff |corr| >= threshold.  (No target-edges mode: quantile
  /// estimation would need a second full sweep; pick the threshold with
  /// the in-memory estimator on a sample if needed.)
  double threshold = 0.85;
  /// Rows per tile — the memory budget knob.  Peak resident expression
  /// bytes are 2 * tile_rows * stride * 8 (stride = samples padded to a
  /// cache line of doubles).
  std::size_t tile_rows = 512;
  /// Worker threads for the blocked tile x tile sweep: 0 = hardware
  /// concurrency, 1 = sequential.  The produced .gsbg is byte-identical
  /// at every thread count (see corr_kernel.h's determinism contract).
  std::size_t threads = 1;
  /// Rows per cache block inside a tile pair; 0 = kernel default.
  std::size_t block_rows = 0;
  /// Directory for the two scratch files; "" = alongside the output.
  std::string scratch_dir;
  /// Options forwarded to the .gsbg writer (bitmap/wah/degree-sort).
  storage::GsbgWriteOptions storage;
  /// Byte-accounting sink; defaults to the process-global tracker.  Every
  /// buffer the builder allocates is reported here, so the tracker's peak
  /// is the builder's bounded-memory proof.
  util::MemoryTracker* tracker = nullptr;
};

struct TiledCorrelationResult {
  std::size_t genes = 0;
  std::size_t edges = 0;
  std::size_t tiles = 0;
  double threshold_used = 0.0;
  /// Peak bytes the builder had resident (tracked buffers only).
  std::size_t peak_tracked_bytes = 0;
};

/// Builds the thresholded correlation graph of \p source out-of-core and
/// writes it to \p out_path as a .gsbg container.
TiledCorrelationResult build_correlation_gsbg(
    const RowBlockSource& source, const std::string& out_path,
    const TiledCorrelationOptions& options = {});

/// Convenience overload for an in-RAM matrix.
TiledCorrelationResult build_correlation_gsbg(
    const ExpressionMatrix& expression, const std::string& out_path,
    const TiledCorrelationOptions& options = {});

}  // namespace gsb::bio

#endif  // GSB_BIO_TILED_CORRELATION_H
