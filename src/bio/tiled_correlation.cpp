#include "bio/tiled_correlation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <vector>

#include "bio/corr_kernel.h"
#include "parallel/thread_pool.h"

namespace gsb::bio {
namespace {

using util::MemTag;

constexpr char kExpressionMagic[8] = {'G', 'S', 'B', 'X', 'P', 'R', '0', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tiled correlation: " + what);
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open '" + path + "' for writing");
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "' for reading");
  return in;
}

/// Scratch file that deletes itself on scope exit.
class ScratchFile {
 public:
  explicit ScratchFile(std::string path) : path_(std::move(path)) {}
  ~ScratchFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// One thresholded edge in the spill file.
struct SpillEdge {
  std::uint32_t u;
  std::uint32_t v;
};

/// RAII allocation recorded against two trackers: the builder's private one
/// (whose peak is the bounded-memory measurement the result reports) and
/// the caller's (process-wide accounting, whose peak is left untouched by
/// this builder's lifecycle).
class DualAlloc {
 public:
  DualAlloc(util::MemoryTracker& local, util::MemoryTracker& external,
            std::size_t bytes, MemTag tag) noexcept
      : local_(local), external_(external), bytes_(bytes), tag_(tag) {
    local_.allocate(bytes_, tag_);
    external_.allocate(bytes_, tag_);
  }
  DualAlloc(const DualAlloc&) = delete;
  DualAlloc& operator=(const DualAlloc&) = delete;
  ~DualAlloc() {
    local_.release(bytes_, tag_);
    external_.release(bytes_, tag_);
  }

 private:
  util::MemoryTracker& local_;
  util::MemoryTracker& external_;
  std::size_t bytes_;
  MemTag tag_;
};

}  // namespace

void MatrixRowSource::fetch(std::size_t first, std::size_t count,
                            double* out) const {
  for (std::size_t r = 0; r < count; ++r) {
    const auto row = matrix_.row(first + r);
    std::copy(row.begin(), row.end(), out + r * matrix_.samples());
  }
}

struct BinaryFileRowSource::Impl {
  mutable std::ifstream in;
};

BinaryFileRowSource::BinaryFileRowSource(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->in = open_in(path);
  char magic[8];
  std::uint64_t genes = 0;
  std::uint64_t samples = 0;
  impl_->in.read(magic, 8);
  impl_->in.read(reinterpret_cast<char*>(&genes), 8);
  impl_->in.read(reinterpret_cast<char*>(&samples), 8);
  if (!impl_->in || std::memcmp(magic, kExpressionMagic, 8) != 0) {
    fail("bad expression file '" + path + "'");
  }
  genes_ = genes;
  samples_ = samples;
}

BinaryFileRowSource::~BinaryFileRowSource() = default;

void BinaryFileRowSource::fetch(std::size_t first, std::size_t count,
                                double* out) const {
  const std::streamoff base = 24;
  impl_->in.seekg(base + static_cast<std::streamoff>(
                             first * samples_ * sizeof(double)));
  impl_->in.read(reinterpret_cast<char*>(out),
                 static_cast<std::streamsize>(count * samples_ *
                                              sizeof(double)));
  if (!impl_->in) fail("short read from expression file");
}

void write_expression_binary(const ExpressionMatrix& matrix,
                             const std::string& path) {
  auto out = open_out(path);
  out.write(kExpressionMagic, 8);
  const std::uint64_t genes = matrix.genes();
  const std::uint64_t samples = matrix.samples();
  out.write(reinterpret_cast<const char*>(&genes), 8);
  out.write(reinterpret_cast<const char*>(&samples), 8);
  for (std::size_t g = 0; g < matrix.genes(); ++g) {
    const auto row = matrix.row(g);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(double)));
  }
  if (!out) fail("write failed for '" + path + "'");
}

TiledCorrelationResult build_correlation_gsbg(
    const RowBlockSource& source, const std::string& out_path,
    const TiledCorrelationOptions& options) {
  const std::size_t n = source.genes();
  const std::size_t s = source.samples();
  const std::size_t tile = std::max<std::size_t>(options.tile_rows, 1);
  util::MemoryTracker& external = options.tracker != nullptr
                                      ? *options.tracker
                                      : util::global_memory_tracker();
  util::MemoryTracker tracker;  // private: its peak is the bounded-RSS proof

  TiledCorrelationResult result;
  result.genes = n;
  result.threshold_used = options.threshold;
  result.tiles = n == 0 ? 0 : (n + tile - 1) / tile;

  const std::string scratch_base =
      options.scratch_dir.empty()
          ? out_path
          : (std::filesystem::path(options.scratch_dir) /
             std::filesystem::path(out_path).filename())
                .string();
  ScratchFile std_file(scratch_base + ".std");
  ScratchFile edge_file(scratch_base + ".edges");

  // Validity of each profile (constant rows correlate with nothing); n
  // bytes resident, the same O(n) class as the CSR offsets.
  std::vector<unsigned char> valid(n, 0);
  DualAlloc valid_bytes(tracker, external, valid.capacity(),
                        MemTag::kScratch);

  // --- pass 1: standardized rows to scratch, one tile resident ------------
  {
    auto out = open_out(std_file.path());
    std::vector<double> block(tile * s);
    std::vector<double> standardized(s);
    DualAlloc block_bytes(
        tracker, external,
        (block.capacity() + standardized.capacity()) * sizeof(double),
        MemTag::kScratch);
    StandardizeScratch scratch;  // rank buffers reused across all rows
    for (std::size_t first = 0; first < n; first += tile) {
      const std::size_t count = std::min(tile, n - first);
      source.fetch(first, count, block.data());
      for (std::size_t r = 0; r < count; ++r) {
        valid[first + r] = standardized_profile_into(
                               std::span<const double>(block.data() + r * s,
                                                       s),
                               options.method, standardized.data(), scratch)
                               ? 1
                               : 0;
        out.write(reinterpret_cast<const char*>(standardized.data()),
                  static_cast<std::streamsize>(s * sizeof(double)));
      }
    }
    if (!out) fail("write failed for standardized scratch");
  }

  // --- pass 2: blocked tile x tile sweep, two tiles resident ----------------
  // The arithmetic runs through the shared blocked kernel; blocks are
  // dispatched over the thread pool and their edges reordered back into a
  // fixed sequence, so the spill file — and the final container — is
  // byte-identical at every thread count.
  std::uint64_t edges = 0;
  // Degrees stream out of the sweep itself (counting is order-free), so
  // the spill file is read once, for the scatter, instead of twice.
  std::vector<std::uint64_t> offsets(n + 1, 0);
  DualAlloc offsets_bytes(tracker, external,
                          offsets.capacity() * sizeof(std::uint64_t),
                          MemTag::kGraph);
  {
    auto std_in = open_in(std_file.path());
    auto read_tile = [&](std::size_t first, std::size_t count,
                         AlignedRows& dst) {
      std_in.seekg(static_cast<std::streamoff>(first * s * sizeof(double)));
      for (std::size_t r = 0; r < count; ++r) {
        std_in.read(reinterpret_cast<char*>(dst.row(r)),
                    static_cast<std::streamsize>(s * sizeof(double)));
      }
      if (!std_in) fail("short read from standardized scratch");
    };

    auto edges_out = open_out(edge_file.path());
    std::vector<SpillEdge> edge_buffer;
    edge_buffer.reserve(4096);
    DualAlloc edge_buffer_bytes(tracker, external,
                                edge_buffer.capacity() * sizeof(SpillEdge),
                                MemTag::kScratch);
    auto flush_edges = [&] {
      edges_out.write(reinterpret_cast<const char*>(edge_buffer.data()),
                      static_cast<std::streamsize>(edge_buffer.size() *
                                                   sizeof(SpillEdge)));
      edge_buffer.clear();
    };

    AlignedRows tile_a(tile, s);
    AlignedRows tile_b(tile, s);
    DualAlloc tiles_bytes(tracker, external, tile_a.bytes() + tile_b.bytes(),
                          MemTag::kScratch);

    const std::size_t threads = options.threads == 0
                                    ? par::ThreadPool::default_threads()
                                    : options.threads;
    std::optional<par::ThreadPool> pool;
    if (threads > 1 && n > 1) pool.emplace(threads);
    CorrSweepOptions sweep;
    sweep.block = options.block_rows;
    sweep.pool = pool ? &*pool : nullptr;
    const CorrEdgeSink sink = [&](std::uint32_t u, std::uint32_t v, double) {
      edge_buffer.push_back(SpillEdge{u, v});
      ++offsets[u + 1];
      ++offsets[v + 1];
      ++edges;
      if (edge_buffer.size() == edge_buffer.capacity()) flush_edges();
    };

    for (std::size_t fi = 0; fi < n; fi += tile) {
      const std::size_t ci = std::min(tile, n - fi);
      read_tile(fi, ci, tile_a);
      for (std::size_t fj = fi; fj < n; fj += tile) {
        const std::size_t cj = std::min(tile, n - fj);
        const AlignedRows* rows_b = &tile_a;
        if (fj != fi) {
          read_tile(fj, cj, tile_b);
          rows_b = &tile_b;
        }
        correlation_cross(tile_a, ci, valid.data() + fi,
                          static_cast<std::uint32_t>(fi), *rows_b, cj,
                          valid.data() + fj, static_cast<std::uint32_t>(fj),
                          /*diagonal=*/fj == fi, options.threshold, sweep,
                          sink);
      }
    }
    flush_edges();
    if (!edges_out) fail("write failed for edge spill");
  }
  result.edges = edges;

  // --- pass 3: spill -> CSR -> streaming .gsbg writer -----------------------
  // Degrees were counted in-flight above, so the spill is swept exactly
  // once here, for the scatter.
  {
    std::vector<std::uint32_t> targets(2 * edges);
    DualAlloc csr_bytes(tracker, external,
                        targets.capacity() * sizeof(std::uint32_t),
                        MemTag::kGraph);

    auto sweep_spill = [&](auto&& per_edge) {
      auto in = open_in(edge_file.path());
      std::vector<SpillEdge> buffer(4096);
      std::uint64_t remaining = edges;
      while (remaining > 0) {
        const std::size_t count =
            static_cast<std::size_t>(std::min<std::uint64_t>(buffer.size(),
                                                             remaining));
        in.read(reinterpret_cast<char*>(buffer.data()),
                static_cast<std::streamsize>(count * sizeof(SpillEdge)));
        if (!in) fail("short read from edge spill");
        for (std::size_t e = 0; e < count; ++e) per_edge(buffer[e]);
        remaining -= count;
      }
    };

    for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    DualAlloc cursor_bytes(tracker, external,
                           cursor.capacity() * sizeof(std::uint64_t),
                           MemTag::kScratch);
    sweep_spill([&](const SpillEdge& e) {
      targets[cursor[e.u]++] = e.v;
      targets[cursor[e.v]++] = e.u;
    });
    for (std::size_t v = 0; v < n; ++v) {
      std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    }

    storage::write_gsbg_from_csr(n, offsets, targets, out_path,
                                 options.storage);
  }

  result.peak_tracked_bytes = tracker.peak();
  return result;
}

TiledCorrelationResult build_correlation_gsbg(
    const ExpressionMatrix& expression, const std::string& out_path,
    const TiledCorrelationOptions& options) {
  MatrixRowSource source(expression);
  return build_correlation_gsbg(source, out_path, options);
}

}  // namespace gsb::bio
