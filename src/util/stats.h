#ifndef GSB_UTIL_STATS_H
#define GSB_UTIL_STATS_H

/// \file stats.h
/// Streaming statistics (Welford) and small-sample summaries.  Figure 8 of
/// the paper reports mean and standard deviation of per-processor run times;
/// StatsAccumulator provides exactly those moments.

#include <cstddef>
#include <vector>

namespace gsb::util {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StatsAccumulator {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction-friendly).
  void merge(const StatsAccumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Convenience: summary of a complete sample.
StatsAccumulator summarize(const std::vector<double>& values) noexcept;

/// Linear-interpolated quantile of a sample (q in [0,1]).  Sorts a copy.
double quantile(std::vector<double> values, double q);

}  // namespace gsb::util

#endif  // GSB_UTIL_STATS_H
