#ifndef GSB_UTIL_LOG_H
#define GSB_UTIL_LOG_H

/// \file log.h
/// Minimal leveled logging.  Long-running enumerations report per-level
/// progress (an explicitly desired feature of the paper's algorithm: the user
/// can "track the algorithm's progress") through this interface.

#include <string>

namespace gsb::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.  Defaults to kWarn so
/// library users see nothing unless they opt in (benches/examples raise it).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr with an RFC 3339 UTC timestamp and level
/// prefix when enabled.  The line is formatted up front and written with
/// a single fwrite under a mutex, so concurrent callers never interleave
/// fragments.
void log_message(LogLevel level, const std::string& message);

/// The exact line log_message emits
/// (`<rfc3339-utc> [level] <message>\n`); exposed for tests.
std::string format_log_line(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace gsb::util

#endif  // GSB_UTIL_LOG_H
