#include "util/fault_injection.h"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"

namespace gsb::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

Schedule g_schedule;  // mutated only while disabled (install/ScheduleScope)
std::array<std::atomic<std::uint64_t>, kNumOps> g_calls{};
std::atomic<std::uint64_t> g_injected{0};

constexpr std::array<const char*, kNumOps> kOpNames{
    "read", "write", "send",  "recv",   "accept",
    "connect", "open", "fsync", "rename", "mmap"};

/// splitmix64: decision randomness is a pure hash of (seed, op, call),
/// so a schedule replays identically regardless of thread interleaving
/// within each op's call sequence.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

const obs::Counter& injected_counter() {
  static const obs::Counter counter = obs::MetricsRegistry::global().counter(
      "gsb_faults_injected_total",
      "Faults injected by the deterministic fault-injection shim.");
  return counter;
}

int errno_from_name(const std::string& name) {
  if (name == "EIO") return EIO;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "ECONNRESET") return ECONNRESET;
  if (name == "EPIPE") return EPIPE;
  if (name == "EAGAIN") return EAGAIN;
  if (name == "ETIMEDOUT") return ETIMEDOUT;
  if (name == "EACCES") return EACCES;
  if (name == "EMFILE") return EMFILE;
  throw std::runtime_error("fault schedule: unknown errno name '" + name +
                           "'");
}

double parse_probability(const std::string& clause, const std::string& text) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || p < 0.0 || p >= 1.0) {
    throw std::runtime_error("fault schedule: probability in '" + clause +
                             "' must be a number in [0, 1)");
  }
  return p;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const auto end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

}  // namespace

const char* op_name(Op op) noexcept {
  return kOpNames[static_cast<unsigned>(op)];
}

std::optional<Op> op_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (name == kOpNames[i]) return static_cast<Op>(i);
  }
  return std::nullopt;
}

Schedule parse_schedule(const std::string& text) {
  Schedule schedule;
  for (const auto& clause : split(text, ';')) {
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("fault schedule: clause '" + clause +
                               "' has no '='");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "seed") {
      try {
        schedule.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw std::runtime_error("fault schedule: bad seed '" + value + "'");
      }
      continue;
    }
    const auto dot = key.find('.');
    if (dot == std::string::npos) {
      throw std::runtime_error("fault schedule: unknown clause '" + clause +
                               "' (want <op>.<mode>=...)");
    }
    const auto op = op_from_name(key.substr(0, dot));
    if (!op) {
      throw std::runtime_error("fault schedule: unknown op '" +
                               key.substr(0, dot) + "'");
    }
    OpSchedule& entry = schedule.ops[static_cast<unsigned>(*op)];
    const std::string mode = key.substr(dot + 1);
    if (mode == "eintr") {
      entry.eintr = parse_probability(clause, value);
    } else if (mode == "short") {
      entry.short_io = parse_probability(clause, value);
    } else if (mode == "error") {
      // ERRNO:P — a named errno at a probability.
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("fault schedule: '" + clause +
                                 "' wants ERRNO:probability");
      }
      entry.error_errno = errno_from_name(value.substr(0, colon));
      entry.error = parse_probability(clause, value.substr(colon + 1));
    } else if (mode == "fail_after") {
      // N:ERRNO — fail the Nth call, once.
      const auto colon = value.find(':');
      const std::string count =
          colon == std::string::npos ? value : value.substr(0, colon);
      try {
        entry.fail_after = std::stoull(count);
      } catch (const std::exception&) {
        entry.fail_after = 0;
      }
      if (entry.fail_after == 0) {
        throw std::runtime_error("fault schedule: '" + clause +
                                 "' wants a positive call number");
      }
      if (colon != std::string::npos) {
        entry.fail_errno = errno_from_name(value.substr(colon + 1));
      }
    } else {
      throw std::runtime_error("fault schedule: unknown mode '" + mode +
                               "' in '" + clause + "'");
    }
  }
  return schedule;
}

Decision decide(Op op, std::size_t requested) noexcept {
  const auto index = static_cast<unsigned>(op);
  const std::uint64_t call =
      g_calls[index].fetch_add(1, std::memory_order_relaxed) + 1;
  const OpSchedule& entry = g_schedule.ops[index];

  Decision decision;
  if (entry.fail_after != 0 && call == entry.fail_after) {
    decision.kind = Decision::Kind::kError;
    decision.injected_errno = entry.fail_errno;
  } else {
    const double roll =
        uniform(mix(g_schedule.seed ^ (0x1000003ULL * (index + 1)) ^
                    (call * 0x9e3779b97f4a7c15ULL)));
    if (roll < entry.error) {
      decision.kind = Decision::Kind::kError;
      decision.injected_errno = entry.error_errno;
    } else if (roll < entry.error + entry.eintr) {
      decision.kind = Decision::Kind::kEintr;
      decision.injected_errno = EINTR;
    } else if (requested > 1 &&
               roll < entry.error + entry.eintr + entry.short_io) {
      decision.kind = Decision::Kind::kShort;
      decision.count =
          1 + static_cast<std::size_t>(
                  mix(g_schedule.seed ^ call ^ 0xdecafULL) % (requested - 1));
    }
  }
  if (decision.kind != Decision::Kind::kNone) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    injected_counter().inc();
  }
  return decision;
}

void install(const Schedule& schedule) {
  detail::g_enabled.store(false, std::memory_order_relaxed);
  g_schedule = schedule;
  for (auto& count : g_calls) count.store(0, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() noexcept {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t injected_total() noexcept {
  return g_injected.load(std::memory_order_relaxed);
}

bool install_from_env() {
  const char* text = std::getenv("GSB_FAULT_SCHEDULE");
  if (text == nullptr || *text == '\0') return false;
  install(parse_schedule(text));
  return true;
}

}  // namespace gsb::fault
