// Hardened POSIX I/O helpers: every raw read/write/send/recv the
// project performs outside the epoll loop's eventfd plumbing goes
// through here, so EINTR retry and short-I/O continuation live in one
// place — and so the fault-injection shim (util/fault_injection.h) can
// intercept each call deterministically.
//
// Also home to FileWriter, the crash-safe artifact writer shared by the
// .gsbg/.gsbc/.gsbci builders: it writes to `<path>.tmp.<pid>`, fsyncs
// the file and its directory, and atomically renames into place, so a
// reader never observes a partial container and a crash leaves only a
// removable temp file (see find_stale_temps).

#ifndef GSB_UTIL_IO_H
#define GSB_UTIL_IO_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>

namespace gsb::util::io {

// -- syscall wrappers (EINTR-retrying, fault-injectable) --------------------
//
// The *_some calls behave like the underlying syscall minus EINTR: they
// may return short but never -1/EINTR.  The *_full calls additionally
// loop over short transfers; they return false with errno set on a real
// error (write_full) or on error/premature EOF (read_full).

ssize_t read_some(int fd, void* buf, std::size_t n) noexcept;
ssize_t recv_some(int fd, void* buf, std::size_t n, int flags) noexcept;
ssize_t send_some(int fd, const void* buf, std::size_t n, int flags) noexcept;
bool read_full(int fd, void* buf, std::size_t n) noexcept;
bool write_full(int fd, const void* buf, std::size_t n) noexcept;
bool pwrite_full(int fd, const void* buf, std::size_t n,
                 std::uint64_t offset) noexcept;

/// accept4(SOCK_NONBLOCK | SOCK_CLOEXEC) with EINTR retry and fault
/// interception; -1/errno like accept (ENOSYS off Linux).
int accept_nonblock(int listen_fd) noexcept;

/// Non-blocking connect with an optional bound: sets O_NONBLOCK on
/// \p fd, starts the connect, polls up to \p timeout_ms for the
/// handshake (0 = wait forever), and reads back SO_ERROR.  The fd stays
/// non-blocking.  Returns 0 on success, -1 with errno set (ETIMEDOUT on
/// expiry).  Fault point: Op::kConnect.
int connect_with_timeout(int fd, const struct sockaddr* addr,
                         socklen_t addr_len, std::size_t timeout_ms) noexcept;

/// open(O_RDONLY | O_CLOEXEC) with EINTR retry and fault interception.
int open_for_read(const char* path) noexcept;

/// fsync with EINTR retry and fault interception; 0 or -1/errno.
int fsync_fd(int fd) noexcept;

/// rename with fault interception; 0 or -1/errno.
int rename_path(const char* from, const char* to) noexcept;

/// PROT_READ MAP_PRIVATE mmap of [0, bytes) with fault interception;
/// MAP_FAILED on error.
void* mmap_read(std::size_t bytes, int fd) noexcept;

// -- crash-safe artifact writer ---------------------------------------------

/// Buffered writer with atomic-publish semantics.  All data lands in
/// `<path>.tmp.<pid>`; commit() flushes, fsyncs the file, fsyncs the
/// parent directory, and renames over `path`.  If the writer is
/// destroyed (or commit fails) before a successful commit, the temp
/// file is unlinked — the final path is either the complete artifact or
/// untouched.  All methods throw std::runtime_error on I/O failure.
class FileWriter {
 public:
  explicit FileWriter(std::string path);
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Appends at the sequential position (buffered).
  void write(const void* data, std::size_t n);
  /// Random-access overwrite of already-written bytes (flushes the
  /// buffer first); used to patch headers after the payload is known.
  void write_at(std::uint64_t offset, const void* data, std::size_t n);
  /// Flush + fsync(file) + close + fsync(dir) + rename; records the
  /// fsync latency in the per-stage gsb_fsync_microseconds histogram.
  void commit();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return position_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& temp_path() const noexcept {
    return temp_;
  }

 private:
  void flush_buffer();
  void discard() noexcept;
  [[noreturn]] void fail(const std::string& what);

  std::string path_;
  std::string temp_;
  int fd_ = -1;
  bool committed_ = false;
  std::uint64_t position_ = 0;
  std::vector<char> buffer_;
};

/// "<path>.tmp.<pid>" for this process.
std::string temp_path_for(const std::string& path);

// -- stale temp-file scan ---------------------------------------------------

struct StaleTemp {
  std::string path;
  long pid = 0;
};

/// Files in `dir` matching `*.tmp.<pid>` whose pid no longer exists —
/// the debris a crashed FileWriter leaves behind.  Temps owned by live
/// processes (an in-flight build) are not reported.
std::vector<StaleTemp> find_stale_temps(const std::string& dir);

}  // namespace gsb::util::io

#endif  // GSB_UTIL_IO_H
