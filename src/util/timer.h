#ifndef GSB_UTIL_TIMER_H
#define GSB_UTIL_TIMER_H

/// \file timer.h
/// Wall-clock timing utilities used by the benchmark harnesses and by the
/// load balancer's per-task cost measurements.

#include <chrono>

namespace gsb::util {

/// Monotonic stopwatch.  Constructed running.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

  /// Microseconds elapsed.
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  clock::time_point start_;
};

/// CPU time consumed by the calling thread, in seconds.  Unlike wall time,
/// this is meaningful on oversubscribed machines: a thread descheduled by
/// the OS accrues no CPU time, so per-thread load comparisons (Figure 8's
/// metric) stay valid when benchmark thread counts exceed the core count.
double thread_cpu_seconds() noexcept;

/// Adds the elapsed lifetime of the guard to an accumulator on destruction.
/// Used to attribute time to per-level / per-thread counters without
/// scattering explicit timer arithmetic through the enumerator.
class ScopedAccumTimer {
 public:
  explicit ScopedAccumTimer(double& sink) noexcept : sink_(sink) {}
  ScopedAccumTimer(const ScopedAccumTimer&) = delete;
  ScopedAccumTimer& operator=(const ScopedAccumTimer&) = delete;
  ~ScopedAccumTimer() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace gsb::util

#endif  // GSB_UTIL_TIMER_H
