#include "util/memory_tracker.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace gsb::util {

void MemoryTracker::allocate(std::size_t bytes, MemTag tag) noexcept {
  per_tag_[index(tag)].fetch_add(bytes, std::memory_order_relaxed);
  const std::size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(std::size_t bytes, MemTag tag) noexcept {
  per_tag_[index(tag)].fetch_sub(bytes, std::memory_order_relaxed);
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::reset() noexcept {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  for (auto& counter : per_tag_) counter.store(0, std::memory_order_relaxed);
}

std::string_view MemoryTracker::tag_name(MemTag tag) noexcept {
  switch (tag) {
    case MemTag::kCliqueStorage:
      return "clique-storage";
    case MemTag::kNextLevel:
      return "next-level";
    case MemTag::kBitmaps:
      return "bitmaps";
    case MemTag::kGraph:
      return "graph";
    case MemTag::kScratch:
      return "scratch";
    case MemTag::kResultCache:
      return "result-cache";
    case MemTag::kOther:
      return "other";
    case MemTag::kNumTags:
      break;
  }
  return "?";
}

MemoryTracker& global_memory_tracker() noexcept {
  static MemoryTracker tracker;
  return tracker;
}

std::size_t process_peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB elsewhere
#endif
#else
  return 0;
#endif
}

std::size_t process_current_rss_bytes() noexcept {
#if defined(__linux__)
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long size_pages = 0;
    unsigned long resident_pages = 0;
    const int matched =
        std::fscanf(statm, "%lu %lu", &size_pages, &resident_pages);
    std::fclose(statm);
    if (matched == 2) {
      const long page = sysconf(_SC_PAGESIZE);
      return static_cast<std::size_t>(resident_pages) *
             static_cast<std::size_t>(page > 0 ? page : 4096);
    }
  }
#endif
  return process_peak_rss_bytes();
}

ByteString format_bytes(std::size_t bytes) noexcept {
  ByteString out{};
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(units)) {
    value /= 1024.0;
    ++unit;
  }
  std::snprintf(out.text, sizeof(out.text), unit == 0 ? "%.0f %s" : "%.2f %s",
                value, units[unit]);
  return out;
}

}  // namespace gsb::util
