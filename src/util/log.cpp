#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace gsb::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* prefix(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug]";
    case LogLevel::kInfo:
      return "[info ]";
    case LogLevel::kWarn:
      return "[warn ]";
    case LogLevel::kError:
      return "[error]";
  }
  return "[?]";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::string format_log_line(LogLevel level, const std::string& message) {
  // RFC 3339 UTC wall-clock stamp ("2026-08-08T12:34:56Z").  Second
  // granularity keeps the prefix fixed-width and greppable; sub-second
  // ordering belongs to the timeline journal, not the log.
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm utc{};
  gmtime_r(&ts.tv_sec, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);

  std::string line = stamp;
  line += ' ';
  line += prefix(level);
  line += ' ';
  line += message;
  line += '\n';
  return line;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Format first, then emit the whole line with one write: fprintf with
  // multiple conversions may reach unbuffered stderr in fragments, so
  // concurrent callers could interleave mid-line even under the mutex
  // (which only serializes in-process callers, not the fragments another
  // fd writer slots between).
  const std::string line = format_log_line(level, message);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_debug(const std::string& message) {
  log_message(LogLevel::kDebug, message);
}
void log_info(const std::string& message) {
  log_message(LogLevel::kInfo, message);
}
void log_warn(const std::string& message) {
  log_message(LogLevel::kWarn, message);
}
void log_error(const std::string& message) {
  log_message(LogLevel::kError, message);
}

}  // namespace gsb::util
