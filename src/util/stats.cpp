#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace gsb::util {

void StatsAccumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StatsAccumulator::merge(const StatsAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StatsAccumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StatsAccumulator::stddev() const noexcept {
  return std::sqrt(variance());
}

double StatsAccumulator::cv() const noexcept {
  return mean() != 0.0 ? stddev() / mean() : 0.0;
}

StatsAccumulator summarize(const std::vector<double>& values) noexcept {
  StatsAccumulator acc;
  for (double v : values) acc.add(v);
  return acc;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace gsb::util
