#ifndef GSB_UTIL_TABLE_H
#define GSB_UTIL_TABLE_H

/// \file table.h
/// Aligned console tables and CSV emission for the benchmark harnesses.
/// Every bench binary prints the rows/series of the paper table or figure it
/// regenerates; TableWriter keeps that output consistent and optionally
/// mirrors it to a CSV file for plotting.

#include <cstdio>
#include <string>
#include <vector>

namespace gsb::util {

/// Column-aligned table that renders to stdout and/or a CSV file.
///
/// Usage:
///   TableWriter t({"procs", "time_s", "speedup"});
///   t.add_row({"8", "12.42", "6.9"});
///   t.print();
///   t.write_csv("fig5.csv");
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a fully formatted row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with padded columns to \p out (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Writes headers+rows as CSV.  Returns false if the file can't be opened.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats seconds adaptively ("438 us", "12.3 ms", "45.1 s").
std::string format_seconds(double seconds);

}  // namespace gsb::util

#endif  // GSB_UTIL_TABLE_H
