#ifndef GSB_UTIL_CLI_H
#define GSB_UTIL_CLI_H

/// \file cli.h
/// A small declarative command-line parser for the bench and example
/// binaries.  Flags take the form `--name value` or `--name=value`; boolean
/// flags may omit the value.  Every flag can also be supplied through an
/// environment variable `GSB_<NAME>` (upper-cased, dashes to underscores) so
/// the whole bench suite can be rescaled with one export.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gsb::util {

/// Parsed argument set with typed accessors and defaults.
class Cli {
 public:
  /// Parses argv.  Unknown flags are collected and reported by unknown().
  Cli(int argc, const char* const* argv);

  /// True if the flag was given on the command line or via environment.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags that were passed but never queried — useful for catching typos in
  /// scripts; benches print these as warnings.
  [[nodiscard]] std::vector<std::string> unqueried() const;

 private:
  [[nodiscard]] const std::string* lookup(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace gsb::util

#endif  // GSB_UTIL_CLI_H
