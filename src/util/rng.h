#ifndef GSB_UTIL_RNG_H
#define GSB_UTIL_RNG_H

/// \file rng.h
/// Deterministic, seedable random number generation for workload synthesis.
///
/// Every generator, sampler, and synthetic-data module in this repository is
/// driven by an explicit Rng instance so that graphs, expression matrices and
/// benchmark workloads are bit-for-bit reproducible from a seed.  The engine
/// is xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that
/// small, human-friendly seeds still yield well-mixed state.

#include <cstdint>
#include <limits>
#include <vector>

namespace gsb::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions when convenient, but also provides
/// direct helpers that avoid distribution-object overhead in hot loops.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed.  Identical seeds produce
  /// identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  /// Re-initializes the state from \p seed via splitmix64.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  \p bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability \p p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal deviate (Marsaglia polar method; caches the spare).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_impl(-2.0 * log_impl(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Samples \p k distinct values from [0, n) in increasing order
  /// (Floyd's algorithm followed by a sort-free insertion into a flag pass
  /// would be overkill; n here is small enough for selection sampling).
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Derives an independent child generator; useful for giving each thread
  /// or each synthetic module its own stream.
  Rng split() noexcept {
    return Rng(operator()() ^ 0xa02bdbf7bb3c0a7ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // Thin indirections so this header does not pull <cmath> into every TU.
  static double sqrt_impl(double x) noexcept;
  static double log_impl(double x) noexcept;

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gsb::util

#endif  // GSB_UTIL_RNG_H
