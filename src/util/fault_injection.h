// Deterministic fault-injection shim for the I/O layer.
//
// Every syscall the project routes through util::io consults this shim
// when it is enabled.  A Schedule assigns each intercepted operation a
// seeded probability of EINTR, short I/O, or a typed errno failure
// (ENOSPC, EIO, ECONNRESET, ...), plus an optional one-shot "fail the
// Nth call" trigger.  Decisions are a pure function of (seed, op,
// per-op call number), so a given schedule replays the same fault
// sequence on every run — which is what lets the chaos suite assert
// byte-identical artifacts under recoverable faults.
//
// When disabled (the default, and the only state production ever runs
// in) the cost at each call site is one relaxed atomic load and a
// predictable branch; the acceptance bench pins this at <1% on the
// closed-loop TCP path.

#ifndef GSB_UTIL_FAULT_INJECTION_H
#define GSB_UTIL_FAULT_INJECTION_H

#include <array>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gsb::fault {

/// Intercepted operations.  Socket reads/writes are distinct from file
/// reads/writes so a schedule can hammer the transport without
/// perturbing artifact builds (and vice versa).
enum class Op : unsigned {
  kRead,
  kWrite,
  kSend,
  kRecv,
  kAccept,
  kConnect,
  kOpen,
  kFsync,
  kRename,
  kMmap,
};
inline constexpr std::size_t kNumOps = 10;

const char* op_name(Op op) noexcept;
std::optional<Op> op_from_name(std::string_view name) noexcept;

/// Per-op fault probabilities.  `short_io` only applies to the four
/// byte-count ops (read/write/send/recv); the rest ignore it.
struct OpSchedule {
  double eintr = 0.0;     ///< probability of an injected EINTR
  double short_io = 0.0;  ///< probability of a truncated byte count
  double error = 0.0;     ///< probability of failing with `error_errno`
  int error_errno = EIO;
  std::uint64_t fail_after = 0;  ///< one-shot: the Nth call (1-based) fails
  int fail_errno = EIO;
};

struct Schedule {
  std::uint64_t seed = 2005;
  std::array<OpSchedule, kNumOps> ops{};
};

/// Parses the GSB_FAULT_SCHEDULE grammar: semicolon-separated clauses of
/// `seed=N`, `<op>.eintr=P`, `<op>.short=P`, `<op>.error=ERRNO:P`, or
/// `<op>.fail_after=N:ERRNO`, e.g.
///   "seed=7;write.eintr=0.2;fsync.error=EIO:0.01;recv.fail_after=3:ECONNRESET"
/// Recognised errno names: EIO, ENOSPC, ECONNRESET, EPIPE, EAGAIN,
/// ETIMEDOUT, EACCES, EMFILE.  Throws std::runtime_error on malformed
/// input (probabilities must be in [0, 1)).
Schedule parse_schedule(const std::string& text);

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The one branch every intercepted call site pays when no faults are
/// scheduled.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

struct Decision {
  enum class Kind { kNone, kEintr, kShort, kError };
  Kind kind = Kind::kNone;
  int injected_errno = 0;  ///< errno to surface for kEintr/kError
  std::size_t count = 0;   ///< truncated byte count for kShort
};

/// Consulted by the util::io wrappers once per intercepted call (after
/// the enabled() gate).  Thread-safe; deterministic per (op, call
/// number) under a fixed seed.
Decision decide(Op op, std::size_t requested) noexcept;

/// Installs `schedule` process-wide, resets the per-op call counters,
/// and enables the shim.
void install(const Schedule& schedule);

/// Disables the shim; the schedule stays installed.
void disable() noexcept;

/// Faults injected since the last install() (also exported through the
/// metrics registry as gsb_faults_injected_total).
std::uint64_t injected_total() noexcept;

/// Reads GSB_FAULT_SCHEDULE and installs it when present.  Returns
/// false when the variable is unset; throws on a malformed schedule.
bool install_from_env();

/// RAII enable for tests: installs on construction, disables on
/// destruction.
class ScheduleScope {
 public:
  explicit ScheduleScope(const Schedule& schedule) { install(schedule); }
  ~ScheduleScope() { disable(); }
  ScheduleScope(const ScheduleScope&) = delete;
  ScheduleScope& operator=(const ScheduleScope&) = delete;
};

}  // namespace gsb::fault

#endif  // GSB_UTIL_FAULT_INJECTION_H
