#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace gsb::util {

double Rng::sqrt_impl(double x) noexcept { return std::sqrt(x); }
double Rng::log_impl(double x) noexcept { return std::log(x); }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  k = std::min(k, n);
  std::vector<std::uint32_t> picked;
  picked.reserve(k);
  // Selection sampling (Knuth 3.4.2 algorithm S): one pass, emits sorted.
  std::uint32_t remaining = k;
  for (std::uint32_t i = 0; i < n && remaining > 0; ++i) {
    const std::uint64_t pool = n - i;
    if (below(pool) < remaining) {
      picked.push_back(i);
      --remaining;
    }
  }
  return picked;
}

}  // namespace gsb::util
