#ifndef GSB_UTIL_MEMORY_TRACKER_H
#define GSB_UTIL_MEMORY_TRACKER_H

/// \file memory_tracker.h
/// Explicit byte accounting for the memory-intensive data structures.
///
/// The paper's Figure 9 reports gigabytes held in candidate-clique storage as
/// a function of clique size, and Section 2.3 gives the closed-form cost
///   M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer).
/// Rather than hooking the global allocator (which would fold in noise from
/// unrelated containers), the enumerators report their structure sizes to a
/// MemoryTracker at the points where sub-lists are created and retired.  The
/// tracker keeps current and high-water-mark totals, globally and per tag.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gsb::util {

/// Accounting categories.  Kept as a fixed enum so per-tag counters can be
/// lock-free atomics.
enum class MemTag : unsigned {
  kCliqueStorage = 0,  ///< candidate sub-lists at the current level
  kNextLevel,          ///< sub-lists being generated for level k+1
  kBitmaps,            ///< common-neighbor bit strings
  kGraph,              ///< adjacency structures
  kScratch,            ///< transient working buffers
  kResultCache,        ///< query-service cached responses
  kOther,
  kNumTags
};

/// Thread-safe current/peak byte counter.
class MemoryTracker {
 public:
  /// Records an allocation of \p bytes under \p tag.
  void allocate(std::size_t bytes, MemTag tag = MemTag::kOther) noexcept;

  /// Records a release of \p bytes under \p tag.
  void release(std::size_t bytes, MemTag tag = MemTag::kOther) noexcept;

  /// Current live bytes across all tags.
  [[nodiscard]] std::size_t current() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  /// High-water mark across all tags since construction or reset_peak().
  [[nodiscard]] std::size_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Current live bytes for one tag.
  [[nodiscard]] std::size_t current(MemTag tag) const noexcept {
    return per_tag_[index(tag)].load(std::memory_order_relaxed);
  }

  /// Resets the peak to the current level (the live counters are preserved).
  void reset_peak() noexcept {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  /// Zeroes everything.
  void reset() noexcept;

  /// Human-readable tag name for reports.
  static std::string_view tag_name(MemTag tag) noexcept;

 private:
  static constexpr std::size_t index(MemTag tag) noexcept {
    return static_cast<std::size_t>(tag);
  }

  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::array<std::atomic<std::size_t>,
             static_cast<std::size_t>(MemTag::kNumTags)>
      per_tag_{};
};

/// Process-wide tracker used by default throughout the library.  Components
/// accept an optional tracker pointer; when none is supplied they fall back
/// to this instance.
MemoryTracker& global_memory_tracker() noexcept;

/// RAII guard pairing an allocate() with its release().
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryTracker& tracker, std::size_t bytes,
                   MemTag tag) noexcept
      : tracker_(tracker), bytes_(bytes), tag_(tag) {
    tracker_.allocate(bytes_, tag_);
  }
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;
  ~ScopedAllocation() { tracker_.release(bytes_, tag_); }

 private:
  MemoryTracker& tracker_;
  std::size_t bytes_;
  MemTag tag_;
};

/// Peak resident set size of this process in bytes, straight from the OS
/// (getrusage ru_maxrss), or 0 where unavailable.  Complements the
/// tracker's structure-level accounting: the tracker proves which
/// structures grew; this proves what the process actually held — the
/// number an out-of-core run quotes to demonstrate bounded memory.
std::size_t process_peak_rss_bytes() noexcept;

/// Current resident set size in bytes (/proc/self/statm on Linux), or
/// the peak RSS where instantaneous residency is unavailable.  Feeds the
/// `rss_bytes` stats field and the gsb_process_rss_bytes gauge.
std::size_t process_current_rss_bytes() noexcept;

/// Formats a byte count as a human-readable string ("12.3 MB").
/// Returns a small fixed-capacity buffer by value.
struct ByteString {
  char text[32];
  [[nodiscard]] const char* c_str() const noexcept { return text; }
};
ByteString format_bytes(std::size_t bytes) noexcept;

}  // namespace gsb::util

#endif  // GSB_UTIL_MEMORY_TRACKER_H
