#include "util/io.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/fault_injection.h"

namespace gsb::util::io {

namespace {

/// Optional syscall span for the full-transfer helpers.  Doubly gated
/// (journal enabled AND io spans on) so per-read events only appear when
/// explicitly requested; the disabled cost stays one relaxed load.
class IoSpan {
 public:
  IoSpan(const char* label, std::size_t bytes) noexcept {
    obs::TimelineJournal& journal = obs::TimelineJournal::global();
    if (!journal.io_spans_enabled()) return;
    journal_ = &journal;
    label_ = label;
    bytes_ = bytes;
    start_ = journal.now_micros();
  }
  IoSpan(const IoSpan&) = delete;
  IoSpan& operator=(const IoSpan&) = delete;
  ~IoSpan() {
    if (journal_ == nullptr) return;
    journal_->record(obs::TimelineEventKind::kIo, start_,
                     journal_->now_micros() - start_, bytes_, label_);
  }

 private:
  obs::TimelineJournal* journal_ = nullptr;
  const char* label_ = "";
  std::uint64_t bytes_ = 0;
  std::uint64_t start_ = 0;
};

/// Injected EINTR storms must terminate even under a hostile schedule:
/// after this many consecutive injected interrupts a wrapper stops
/// consulting the shim for the current call and issues the real syscall.
constexpr int kMaxInjectedRetries = 256;

/// Applies the shim's verdict for one attempt of a byte-count op.
/// Returns true when the caller should retry (injected EINTR), and
/// leaves `n` truncated for short-I/O injection.
bool injected_fault(fault::Op op, std::size_t& n, ssize_t& result,
                    int attempts) noexcept {
  if (!fault::enabled() || attempts >= kMaxInjectedRetries) return false;
  const auto decision = fault::decide(op, n);
  switch (decision.kind) {
    case fault::Decision::Kind::kError:
      errno = decision.injected_errno;
      result = -1;
      return false;
    case fault::Decision::Kind::kEintr:
      return true;
    case fault::Decision::Kind::kShort:
      n = decision.count;
      return false;
    case fault::Decision::Kind::kNone:
      return false;
  }
  return false;
}

struct FsyncHistograms {
  obs::Histogram gsbg;
  obs::Histogram gsbc;
  obs::Histogram gsbci;
  obs::Histogram other;
};

const FsyncHistograms& fsync_histograms() {
  static const FsyncHistograms histograms = [] {
    auto& registry = obs::MetricsRegistry::global();
    const char* name = "gsb_fsync_microseconds";
    const char* help =
        "Commit fsync latency (file + directory) per artifact stage.";
    FsyncHistograms h;
    h.gsbg = registry.histogram(name, help, "stage=\"gsbg\"");
    h.gsbc = registry.histogram(name, help, "stage=\"gsbc\"");
    h.gsbci = registry.histogram(name, help, "stage=\"gsbci\"");
    h.other = registry.histogram(name, help, "stage=\"other\"");
    return h;
  }();
  return histograms;
}

const obs::Histogram& fsync_histogram_for(const std::string& path) {
  const auto& h = fsync_histograms();
  if (path.ends_with(".gsbci")) return h.gsbci;
  if (path.ends_with(".gsbc")) return h.gsbc;
  if (path.ends_with(".gsbg")) return h.gsbg;
  return h.other;
}

std::string parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

ssize_t read_some(int fd, void* buf, std::size_t n) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t want = n;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kRead, want, injected, attempts)) continue;
    if (injected < 0) return injected;
    const ssize_t got = ::read(fd, buf, want);
    if (got >= 0 || errno != EINTR) return got;
  }
}

ssize_t recv_some(int fd, void* buf, std::size_t n, int flags) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t want = n;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kRecv, want, injected, attempts)) continue;
    if (injected < 0) return injected;
    const ssize_t got = ::recv(fd, buf, want, flags);
    if (got >= 0 || errno != EINTR) return got;
  }
}

ssize_t send_some(int fd, const void* buf, std::size_t n,
                  int flags) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t want = n;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kSend, want, injected, attempts)) continue;
    if (injected < 0) return injected;
    const ssize_t sent = ::send(fd, buf, want, flags);
    if (sent >= 0 || errno != EINTR) return sent;
  }
}

bool read_full(int fd, void* buf, std::size_t n) noexcept {
  IoSpan span("read", n);
  auto* cursor = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = read_some(fd, cursor, n);
    if (got < 0) return false;
    if (got == 0) {
      errno = EIO;  // premature EOF: the file is shorter than promised
      return false;
    }
    cursor += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) noexcept {
  IoSpan span("write", n);
  const auto* cursor = static_cast<const char*>(buf);
  while (n > 0) {
    std::size_t want = n;
    ssize_t injected = 0;
    int attempts = 0;
    while (injected_fault(fault::Op::kWrite, want, injected, attempts)) {
      ++attempts;
      want = n;
    }
    if (injected < 0) return false;
    const ssize_t wrote = ::write(fd, cursor, want);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool pwrite_full(int fd, const void* buf, std::size_t n,
                 std::uint64_t offset) noexcept {
  const auto* cursor = static_cast<const char*>(buf);
  while (n > 0) {
    std::size_t want = n;
    ssize_t injected = 0;
    int attempts = 0;
    while (injected_fault(fault::Op::kWrite, want, injected, attempts)) {
      ++attempts;
      want = n;
    }
    if (injected < 0) return false;
    const ssize_t wrote =
        ::pwrite(fd, cursor, want, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += wrote;
    offset += static_cast<std::uint64_t>(wrote);
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

int accept_nonblock(int listen_fd) noexcept {
#if defined(__linux__)
  for (int attempts = 0;; ++attempts) {
    std::size_t unused = 0;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kAccept, unused, injected, attempts)) {
      continue;
    }
    if (injected < 0) return -1;
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0 || errno != EINTR) return fd;
  }
#else
  (void)listen_fd;
  errno = ENOSYS;
  return -1;
#endif
}

int connect_with_timeout(int fd, const struct sockaddr* addr,
                         socklen_t addr_len,
                         std::size_t timeout_ms) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t unused = 0;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kConnect, unused, injected, attempts)) {
      continue;
    }
    if (injected < 0) return -1;
    break;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc;
  do {
    rc = ::connect(fd, addr, addr_len);
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) return 0;
  if (errno != EINPROGRESS) return -1;
  struct pollfd poller{fd, POLLOUT, 0};
  const int wait_ms = timeout_ms == 0 ? -1 : static_cast<int>(timeout_ms);
  int ready;
  do {
    ready = ::poll(&poller, 1, wait_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready == 0) {
    errno = ETIMEDOUT;
    return -1;
  }
  if (ready < 0) return -1;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

int open_for_read(const char* path) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t unused = 0;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kOpen, unused, injected, attempts)) {
      continue;
    }
    if (injected < 0) return -1;
    const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int fsync_fd(int fd) noexcept {
  IoSpan span("fsync", 0);
  for (int attempts = 0;; ++attempts) {
    std::size_t unused = 0;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kFsync, unused, injected, attempts)) {
      continue;
    }
    if (injected < 0) return -1;
    const int rc = ::fsync(fd);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

int rename_path(const char* from, const char* to) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t unused = 0;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kRename, unused, injected, attempts)) {
      continue;
    }
    if (injected < 0) return -1;
    const int rc = ::rename(from, to);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

void* mmap_read(std::size_t bytes, int fd) noexcept {
  if (fault::enabled()) {
    const auto decision = fault::decide(fault::Op::kMmap, bytes);
    if (decision.kind == fault::Decision::Kind::kError ||
        decision.kind == fault::Decision::Kind::kEintr) {
      errno = decision.kind == fault::Decision::Kind::kEintr
                  ? EINTR
                  : decision.injected_errno;
      return MAP_FAILED;
    }
  }
  return ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
}

// -- FileWriter --------------------------------------------------------------

namespace {

constexpr std::size_t kWriterBuffer = std::size_t{1} << 18;  // 256 KiB

int open_for_write(const char* path) noexcept {
  for (int attempts = 0;; ++attempts) {
    std::size_t unused = 0;
    ssize_t injected = 0;
    if (injected_fault(fault::Op::kOpen, unused, injected, attempts)) {
      continue;
    }
    if (injected < 0) return -1;
    const int fd =
        ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

}  // namespace

std::string temp_path_for(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

FileWriter::FileWriter(std::string path)
    : path_(std::move(path)), temp_(temp_path_for(path_)) {
  buffer_.reserve(kWriterBuffer);
  fd_ = open_for_write(temp_.c_str());
  if (fd_ < 0) {
    throw std::runtime_error("io: cannot open '" + temp_ +
                             "' for writing: " + std::strerror(errno));
  }
}

FileWriter::~FileWriter() {
  if (!committed_) discard();
}

void FileWriter::discard() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) ::unlink(temp_.c_str());
}

void FileWriter::fail(const std::string& what) {
  const int err = errno;
  discard();
  throw std::runtime_error("io: " + what + " for '" + path_ +
                           "': " + std::strerror(err));
}

void FileWriter::write(const void* data, std::size_t n) {
  if (fd_ < 0) fail("write after close");
  const auto* cursor = static_cast<const char*>(data);
  while (n > 0) {
    const std::size_t room = kWriterBuffer - buffer_.size();
    const std::size_t take = std::min(n, room);
    buffer_.insert(buffer_.end(), cursor, cursor + take);
    cursor += take;
    n -= take;
    position_ += take;
    if (buffer_.size() == kWriterBuffer) flush_buffer();
  }
}

void FileWriter::flush_buffer() {
  if (buffer_.empty()) return;
  if (!write_full(fd_, buffer_.data(), buffer_.size())) fail("write failed");
  buffer_.clear();
}

void FileWriter::write_at(std::uint64_t offset, const void* data,
                          std::size_t n) {
  if (fd_ < 0) fail("write after close");
  flush_buffer();
  if (!pwrite_full(fd_, data, n, offset)) fail("header patch failed");
}

void FileWriter::commit() {
  if (fd_ < 0) fail("commit after close");
  flush_buffer();
  const auto begin = std::chrono::steady_clock::now();
  if (fsync_fd(fd_) != 0) fail("fsync failed");
  if (::close(fd_) != 0) {
    fd_ = -1;
    fail("close failed");
  }
  fd_ = -1;
  // Durability of the rename itself: the directory entry must be on
  // disk before the artifact is considered published.
  const std::string dir = parent_dir(path_);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dir_fd < 0) fail("cannot open directory '" + dir + "'");
  if (rename_path(temp_.c_str(), path_.c_str()) != 0) {
    ::close(dir_fd);
    fail("rename failed");
  }
  committed_ = true;  // the artifact is in place; temp no longer exists
  const bool dir_synced = fsync_fd(dir_fd) == 0;
  ::close(dir_fd);
  if (!dir_synced) {
    throw std::runtime_error("io: directory fsync failed for '" + path_ +
                             "': " + std::strerror(errno));
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
  fsync_histogram_for(path_).observe_micros(
      static_cast<std::uint64_t>(micros));
}

// -- stale temp scan ---------------------------------------------------------

std::vector<StaleTemp> find_stale_temps(const std::string& dir) {
  std::vector<StaleTemp> stale;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const auto marker = name.rfind(".tmp.");
    if (marker == std::string::npos) continue;
    const std::string digits = name.substr(marker + 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    long pid = 0;
    try {
      pid = std::stol(digits);
    } catch (const std::exception&) {
      continue;
    }
    if (pid <= 0) continue;
    if (::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH) {
      stale.push_back({entry.path().string(), pid});
    }
  }
  std::sort(stale.begin(), stale.end(),
            [](const StaleTemp& a, const StaleTemp& b) {
              return a.path < b.path;
            });
  return stale;
}

}  // namespace gsb::util::io
