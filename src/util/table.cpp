#include "util/table.h"

#include <cstdarg>
#include <stdexcept>

namespace gsb::util {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableWriter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::size_t total = headers_.size() ? (headers_.size() - 1) * 2 : 0;
  for (std::size_t w : widths) total += w;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

bool TableWriter::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(f, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(f, "\n");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  std::fclose(f);
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_seconds(double seconds) {
  if (seconds < 1e-3) return format("%.0f us", seconds * 1e6);
  if (seconds < 1.0) return format("%.2f ms", seconds * 1e3);
  return format("%.3f s", seconds);
}

}  // namespace gsb::util
