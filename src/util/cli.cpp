#include "util/cli.h"

#include <cctype>
#include <cstdlib>

namespace gsb::util {
namespace {

std::string env_name(const std::string& flag) {
  std::string out = "GSB_";
  for (char ch : flag) {
    out.push_back(ch == '-' ? '_'
                            : static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(ch))));
  }
  return out;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") {
      // Conventional end-of-flags marker: the rest is positional even when
      // it starts with dashes (lets a boolean flag precede, e.g.
      // `gsb query --stats -- 'cliques-containing 17'`).
      for (++i; i < argc; ++i) positional_.emplace_back(argv[i]);
      break;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value` unless the next token is another flag (or absent), in
    // which case it is treated as boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_.insert_or_assign(std::move(arg), std::string(argv[++i]));
    } else {
      values_.insert_or_assign(std::move(arg), std::string("1"));
    }
  }
}

const std::string* Cli::lookup(const std::string& name) const {
  queried_[name] = true;
  if (auto it = values_.find(name); it != values_.end()) return &it->second;
  static thread_local std::string env_value;
  if (const char* env = std::getenv(env_name(name).c_str())) {
    env_value = env;
    return &env_value;
  }
  return nullptr;
}

bool Cli::has(const std::string& name) const {
  return lookup(name) != nullptr;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const std::string* v = lookup(name);
  return v != nullptr ? *v : fallback;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const std::string* v = lookup(name);
  if (v == nullptr) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string* v = lookup(name);
  if (v == nullptr) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const std::string* v = lookup(name);
  if (v == nullptr) return fallback;
  return !(*v == "0" || *v == "false" || *v == "no" || *v == "off");
}

std::vector<std::string> Cli::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace gsb::util
