#ifndef GSB_GRAPH_IO_H
#define GSB_GRAPH_IO_H

/// \file io.h
/// Graph serialization: DIMACS .clq ASCII (the lingua franca of clique
/// benchmarks), a plain edge-list text format, and a compact binary format
/// for large instances.

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace gsb::graph {

/// --- DIMACS (ASCII) -------------------------------------------------------
/// Format:  `c` comment lines, one `p edge <n> <m>` line, `e <u> <v>` lines
/// with 1-based vertex indices.

/// Parses a DIMACS graph from a stream.  Throws std::runtime_error on
/// malformed input.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);
void write_dimacs(const Graph& g, std::ostream& out,
                  const std::string& comment = {});
void write_dimacs_file(const Graph& g, const std::string& path,
                       const std::string& comment = {});

/// --- edge list (ASCII) ------------------------------------------------------
/// First non-comment line: `<n>`; every following line `u v` (0-based).
/// `#` starts a comment.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// --- binary ------------------------------------------------------------------
/// Magic "GSBG", u32 version, u64 n, u64 m, then m (u32,u32) edge pairs,
/// little-endian.
Graph read_binary(std::istream& in);
Graph read_binary_file(const std::string& path);
void write_binary(const Graph& g, std::ostream& out);
void write_binary_file(const Graph& g, const std::string& path);

}  // namespace gsb::graph

#endif  // GSB_GRAPH_IO_H
