#ifndef GSB_GRAPH_IO_H
#define GSB_GRAPH_IO_H

/// \file io.h
/// Graph serialization: DIMACS .clq ASCII (the lingua franca of clique
/// benchmarks), a plain edge-list text format, and a compact binary format
/// for large instances.

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace gsb::graph {

/// --- DIMACS (ASCII) -------------------------------------------------------
/// Format:  `c` comment lines, one `p edge <n> <m>` line, `e <u> <v>` lines
/// with 1-based vertex indices.

/// Parses a DIMACS graph from a stream.  Throws std::runtime_error on
/// malformed input.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);
void write_dimacs(const Graph& g, std::ostream& out,
                  const std::string& comment = {});
void write_dimacs_file(const Graph& g, const std::string& path,
                       const std::string& comment = {});

/// --- edge list (ASCII) ------------------------------------------------------
/// First non-comment line: `<n>`; every following line `u v` (0-based).
/// `#` starts a comment.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// --- binary ------------------------------------------------------------------
/// Magic "GSBG", u32 version, u64 n, u64 m, then m (u32,u32) edge pairs,
/// little-endian.  (The mappable container format is .gsbg, in
/// storage/gsbg_format.h; this is the legacy stream format, kept for .bin.)
Graph read_binary(std::istream& in);
Graph read_binary_file(const std::string& path);
void write_binary(const Graph& g, std::ostream& out);
void write_binary_file(const Graph& g, const std::string& path);

/// --- unified front door -----------------------------------------------------
/// Canonical format names: "dimacs", "edges", "binary", "gsbg".

/// Returns \p format when non-empty; otherwise sniffs the path extension
/// (.clq/.dimacs -> dimacs, .bin -> binary, .gsbg -> gsbg, otherwise
/// edges).  "-" with no explicit format returns "" (content-sniffed).
std::string detect_graph_format(const std::string& path,
                                const std::string& format = {});

/// One loader for every command: reads \p path in the named or sniffed
/// format; path "-" reads standard input (text formats only there; with no
/// format given the content is sniffed — DIMACS lines start with 'c' or
/// 'p').  The "gsbg" container is not loadable through a stream; callers
/// open those via storage::MappedGraph (the CLI does this dispatch).
Graph load_graph(const std::string& path, const std::string& format = {});

/// Counterpart writer ("gsbg" rejected likewise; use storage's writer).
void save_graph(const Graph& g, const std::string& path,
                const std::string& format = {},
                const std::string& comment = {});

}  // namespace gsb::graph

#endif  // GSB_GRAPH_IO_H
