#include "graph/graph_view.h"

#include <algorithm>

namespace gsb::graph {

GraphView::GraphView(const Graph& g)
    : n_(g.order()), num_edges_(g.num_edges()), degrees_(g.degrees_data()) {
  rows_.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    rows_[v] = g.neighbors(static_cast<VertexId>(v)).words().data();
  }
}

GraphView::GraphView(const Word* base, std::size_t words_per_row,
                     std::size_t n, std::size_t num_edges,
                     const std::size_t* degrees)
    : n_(n), num_edges_(num_edges), degrees_(degrees) {
  rows_.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    rows_[v] = base + v * words_per_row;
  }
}

std::size_t GraphView::max_degree() const noexcept {
  std::size_t best = 0;
  for (std::size_t v = 0; v < n_; ++v) best = std::max(best, degrees_[v]);
  return best;
}

std::vector<std::pair<VertexId, VertexId>> GraphView::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < n_; ++u) {
    neighbors(u).for_each([&](std::size_t v) {
      if (v > u) edges.emplace_back(u, static_cast<VertexId>(v));
    });
  }
  return edges;
}

Graph materialize(const GraphView& g) {
  Graph out(g.order());
  for (VertexId u = 0; u < g.order(); ++u) {
    g.neighbors(u).for_each([&](std::size_t v) {
      if (v > u) out.add_edge(u, static_cast<VertexId>(v));
    });
  }
  return out;
}

}  // namespace gsb::graph
