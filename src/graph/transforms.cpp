#include "graph/transforms.h"

#include <algorithm>
#include <stdexcept>

namespace gsb::graph {

Graph complement(const Graph& g) {
  const std::size_t n = g.order();
  Graph out(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v)) out.add_edge(u, v);
    }
  }
  return out;
}

InducedSubgraph induced_subgraph(const GraphView& g,
                                 const std::vector<VertexId>& vertices) {
  std::vector<VertexId> sorted(vertices);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  InducedSubgraph out{Graph(sorted.size()), sorted};
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    for (std::size_t j = i + 1; j < sorted.size(); ++j) {
      if (g.has_edge(sorted[i], sorted[j])) {
        out.graph.add_edge(static_cast<VertexId>(i),
                           static_cast<VertexId>(j));
      }
    }
  }
  return out;
}

bits::DynamicBitset kcore_mask(const GraphView& g, std::size_t k) {
  const std::size_t n = g.order();
  bits::DynamicBitset alive(n);
  alive.set_all();
  std::vector<std::size_t> degree(n);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    if (degree[v] < k) queue.push_back(v);
  }
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    if (!alive.test(v)) continue;
    alive.reset(v);
    g.neighbors(v).for_each([&](std::size_t u) {
      if (alive.test(u) && degree[u]-- == k) {
        queue.push_back(static_cast<VertexId>(u));
      }
    });
  }
  return alive;
}

InducedSubgraph kcore_subgraph(const GraphView& g, std::size_t k) {
  const bits::DynamicBitset alive = kcore_mask(g, k);
  std::vector<VertexId> survivors;
  survivors.reserve(alive.count());
  alive.for_each([&](std::size_t v) {
    survivors.push_back(static_cast<VertexId>(v));
  });
  return induced_subgraph(g, survivors);
}

DegeneracyResult degeneracy_order(const GraphView& g) {
  const std::size_t n = g.order();
  DegeneracyResult result;
  result.order.reserve(n);
  std::vector<std::size_t> degree(n);
  bits::DynamicBitset alive(n);
  alive.set_all();

  // Bucket queue over degrees.
  std::vector<std::vector<VertexId>> buckets(n + 1);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    buckets[degree[v]].push_back(v);
  }
  std::size_t cursor = 0;
  for (std::size_t removed = 0; removed < n; ++removed) {
    // Find the next live minimum-degree vertex, skipping stale bucket
    // entries (vertices re-filed after a degree decrease leave their old
    // entries behind; the check below discards them).
    VertexId v = 0;
    while (true) {
      auto& bucket = buckets[cursor];
      if (bucket.empty()) {
        ++cursor;
        continue;
      }
      v = bucket.back();
      bucket.pop_back();
      if (alive.test(v) && degree[v] == cursor) break;
    }
    result.degeneracy = std::max(result.degeneracy, cursor);
    alive.reset(v);
    result.order.push_back(v);
    g.neighbors(v).for_each([&](std::size_t u) {
      if (alive.test(u)) {
        --degree[u];
        buckets[degree[u]].push_back(static_cast<VertexId>(u));
        if (degree[u] < cursor) cursor = degree[u];
      }
    });
  }
  return result;
}

Components connected_components(const Graph& g) {
  const std::size_t n = g.order();
  Components result;
  result.component.assign(n, UINT32_MAX);
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (result.component[root] != UINT32_MAX) continue;
    const auto id = static_cast<std::uint32_t>(result.count++);
    result.component[root] = id;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      g.neighbors(v).for_each([&](std::size_t u) {
        if (result.component[u] == UINT32_MAX) {
          result.component[u] = id;
          stack.push_back(static_cast<VertexId>(u));
        }
      });
    }
  }
  return result;
}

Graph relabel(const Graph& g, const std::vector<VertexId>& perm) {
  const std::size_t n = g.order();
  if (perm.size() != n) {
    throw std::invalid_argument("relabel: permutation size mismatch");
  }
  std::vector<VertexId> inverse(n, 0);
  std::vector<bool> seen(n, false);
  for (VertexId i = 0; i < n; ++i) {
    if (perm[i] >= n || seen[perm[i]]) {
      throw std::invalid_argument("relabel: not a permutation");
    }
    seen[perm[i]] = true;
    inverse[perm[i]] = i;
  }
  Graph out(n);
  for (const auto& [u, v] : g.edge_list()) {
    out.add_edge(inverse[u], inverse[v]);
  }
  return out;
}

}  // namespace gsb::graph
