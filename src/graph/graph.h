#ifndef GSB_GRAPH_GRAPH_H
#define GSB_GRAPH_GRAPH_H

/// \file graph.h
/// Undirected graph with bitmap adjacency — the data representation the
/// paper builds its framework on.
///
/// Each vertex stores its neighborhood as a DynamicBitset over the full
/// vertex universe, so that
///   * adjacency tests are single bit probes,
///   * common-neighbor computations are word-parallel ANDs, and
///   * the structures are directly sharable across threads (read-only during
///     enumeration, mirroring the paper's globally addressable memory usage).
///
/// For an n-vertex graph this costs n * ceil(n/64) * 8 bytes; at the paper's
/// largest instance (n = 12,422) that is ~19 MB, trivially in-core.

#include <cstdint>
#include <vector>

#include "bitset/dynamic_bitset.h"

namespace gsb::graph {

using VertexId = std::uint32_t;

/// Simple undirected graph (no self-loops, no multi-edges).
class Graph {
 public:
  /// Empty graph on \p n vertices.
  explicit Graph(std::size_t n = 0);

  /// Builds a graph from an explicit edge list (duplicates and self-loops
  /// are ignored).
  static Graph from_edges(std::size_t n,
                          const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Number of vertices.
  [[nodiscard]] std::size_t order() const noexcept { return rows_.size(); }

  /// Number of edges.
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Edge density: m / (n choose 2).
  [[nodiscard]] double density() const noexcept;

  /// Inserts edge {u, v}.  No-op for self-loops or existing edges.
  void add_edge(VertexId u, VertexId v);

  /// Removes edge {u, v} if present.
  void remove_edge(VertexId u, VertexId v);

  /// Adjacency test (single bit probe).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept {
    return rows_[u].test(v);
  }

  /// The neighborhood bit string N(v) — the operand of the paper's bitwise
  /// common-neighbor updates.
  [[nodiscard]] const bits::DynamicBitset& neighbors(VertexId v) const noexcept {
    return rows_[v];
  }

  /// Degree of \p v.
  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return degrees_[v];
  }

  /// Flat degree array (n entries) — the backing store GraphView borrows.
  [[nodiscard]] const std::size_t* degrees_data() const noexcept {
    return degrees_.data();
  }

  /// Maximum degree over all vertices (0 for the empty graph).
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Neighbor indices of \p v in increasing order.
  [[nodiscard]] std::vector<VertexId> neighbor_list(VertexId v) const;

  /// All edges as (u < v) pairs in lexicographic order.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edge_list() const;

  /// Structural equality (same order, same edge set).
  bool operator==(const Graph& other) const noexcept;

  /// Bytes used by the adjacency bitmaps.
  [[nodiscard]] std::size_t adjacency_bytes() const noexcept;

 private:
  std::vector<bits::DynamicBitset> rows_;
  std::vector<std::size_t> degrees_;
  std::size_t num_edges_ = 0;
};

}  // namespace gsb::graph

#endif  // GSB_GRAPH_GRAPH_H
