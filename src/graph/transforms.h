#ifndef GSB_GRAPH_TRANSFORMS_H
#define GSB_GRAPH_TRANSFORMS_H

/// \file transforms.h
/// Structural graph transformations used across the framework:
///   * complement        — the clique ↔ vertex-cover / independent-set bridge
///                         exploited by the FPT maximum-clique route (§2.1);
///   * k-core reduction  — the paper's §2.2 preprocessing ("eliminate all
///                         vertices of degree less than k-1"), iterated to a
///                         fixed point;
///   * induced subgraphs, connected components, degeneracy order, relabeling.

#include <vector>

#include "bitset/dynamic_bitset.h"
#include "graph/graph.h"
#include "graph/graph_view.h"

namespace gsb::graph {

/// Complement graph (no self-loops).
Graph complement(const Graph& g);

/// Subgraph induced by \p vertices (need not be sorted; duplicates ignored).
/// `mapping[i]` gives the original id of new vertex i (sorted ascending).
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> mapping;  ///< new id -> original id
};
InducedSubgraph induced_subgraph(const GraphView& g,
                                 const std::vector<VertexId>& vertices);

/// Vertices surviving iterated peeling of vertices with degree < k
/// (the k-core).  For k-clique search pass k-1 per the paper's rule: a
/// vertex of a k-clique has at least k-1 neighbors *within the clique*.
bits::DynamicBitset kcore_mask(const GraphView& g, std::size_t k);

/// The k-core as a reduced graph (may be empty).
InducedSubgraph kcore_subgraph(const GraphView& g, std::size_t k);

/// Degeneracy ordering (repeatedly remove a minimum-degree vertex).
/// Accepts any GraphView, so the ordering can be computed directly off a
/// memory-mapped .gsbg (the degeneracy-ordered Bron–Kerbosch outer loop
/// depends on this).
struct DegeneracyResult {
  std::vector<VertexId> order;  ///< removal order
  std::size_t degeneracy = 0;   ///< max degree at removal time
};
DegeneracyResult degeneracy_order(const GraphView& g);

/// Connected components: `component[v]` in [0, count).
struct Components {
  std::vector<std::uint32_t> component;
  std::size_t count = 0;
};
Components connected_components(const Graph& g);

/// Relabels vertices: new vertex i is old `perm[i]`.  `perm` must be a
/// permutation of [0, n).
Graph relabel(const Graph& g, const std::vector<VertexId>& perm);

}  // namespace gsb::graph

#endif  // GSB_GRAPH_TRANSFORMS_H
