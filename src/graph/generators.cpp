#include "graph/generators.h"

#include <algorithm>
#include <cmath>

namespace gsb::graph {

Graph gnp(std::size_t n, double p, util::Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v);
    }
    return g;
  }
  // Geometric skipping (Batagelj–Brandes): expected O(n + m) work.
  const double log_q = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = rng.uniform();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(1.0 - r) / log_q));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return g;
}

Graph gnm(std::size_t n, std::size_t m, util::Rng& rng) {
  Graph g(n);
  const std::size_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  m = std::min(m, max_edges);
  while (g.num_edges() < m) {
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    g.add_edge(u, v);
  }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t attach, util::Rng& rng) {
  attach = std::max<std::size_t>(1, attach);
  const std::size_t seed_size = std::min(n, attach + 1);
  Graph g(n);
  // Repeated-endpoint list: preferential attachment by uniform sampling.
  std::vector<VertexId> endpoints;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      g.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = static_cast<VertexId>(seed_size); v < n; ++v) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < attach && attempts < attach * 20 + 40) {
      ++attempts;
      const VertexId target = endpoints.empty()
                                  ? static_cast<VertexId>(rng.below(v))
                                  : endpoints[rng.below(endpoints.size())];
      if (target == v || g.has_edge(v, target)) continue;
      g.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
      ++added;
    }
  }
  return g;
}

PlantedClique planted_clique(std::size_t n, std::size_t clique_size,
                             double background_p, util::Rng& rng) {
  PlantedClique result{gnp(n, background_p, rng),
                       rng.sample_without_replacement(
                           static_cast<std::uint32_t>(n),
                           static_cast<std::uint32_t>(clique_size))};
  for (std::size_t i = 0; i < result.members.size(); ++i) {
    for (std::size_t j = i + 1; j < result.members.size(); ++j) {
      result.graph.add_edge(result.members[i], result.members[j]);
    }
  }
  return result;
}

std::size_t sample_module_size(std::size_t lo, std::size_t hi, double power,
                               util::Rng& rng) {
  if (hi <= lo) return lo;
  double total = 0.0;
  for (std::size_t s = lo; s <= hi; ++s) {
    total += std::pow(static_cast<double>(s), -power);
  }
  double pick = rng.uniform() * total;
  for (std::size_t s = lo; s <= hi; ++s) {
    pick -= std::pow(static_cast<double>(s), -power);
    if (pick <= 0.0) return s;
  }
  return hi;
}

std::vector<VertexId> plant_module(Graph& g, std::size_t size, double p_in,
                                   double overlap,
                                   std::vector<VertexId>& used,
                                   bits::DynamicBitset& used_mask,
                                   util::Rng& rng) {
  const std::size_t n = g.order();
  std::vector<VertexId> members;
  members.reserve(size);
  bits::DynamicBitset chosen(n);
  // A fraction of members is re-drawn from previously used vertices so
  // modules overlap (shared regulators across co-expression modules);
  // fresh members avoid used vertices so `overlap` is exact (fallback to
  // any vertex when nearly all are used).
  std::size_t attempts = 0;
  const std::size_t max_attempts = size * 50 + 200;
  while (members.size() < std::min(size, n) && attempts < max_attempts) {
    ++attempts;
    VertexId v;
    if (!used.empty() && rng.chance(overlap)) {
      v = used[rng.below(used.size())];
    } else {
      v = static_cast<VertexId>(rng.below(n));
      if (used_mask.test(v) && attempts * 2 < max_attempts) continue;
    }
    if (chosen.test(v)) continue;
    chosen.set(v);
    members.push_back(v);
  }
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (p_in >= 1.0 || rng.chance(p_in)) {
        g.add_edge(members[i], members[j]);
      }
    }
  }
  for (VertexId v : members) {
    if (!used_mask.test(v)) {
      used_mask.set(v);
      used.push_back(v);
    }
  }
  return members;
}

ModuleGraph planted_modules(const ModuleGraphConfig& config, util::Rng& rng) {
  ModuleGraph result{Graph(config.n), {}};
  std::vector<VertexId> used;  // vertices already in some module
  bits::DynamicBitset used_mask(config.n);

  // The largest module is planted first at max_module_size so the ensemble's
  // maximum clique size is deterministic when p_in == 1.
  for (std::size_t mod = 0; mod < config.num_modules; ++mod) {
    const std::size_t size =
        mod == 0 ? config.max_module_size
                 : sample_module_size(config.min_module_size,
                                      config.max_module_size,
                                      config.size_power, rng);
    result.modules.push_back(plant_module(result.graph, size, config.p_in,
                                          config.overlap, used, used_mask,
                                          rng));
  }

  // Sparse uniform background.
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t limit = config.background_edges * 20 + 100;
  while (added < config.background_edges && attempts < limit) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.below(config.n));
    const auto v = static_cast<VertexId>(rng.below(config.n));
    if (u == v || result.graph.has_edge(u, v)) continue;
    result.graph.add_edge(u, v);
    ++added;
  }
  return result;
}

ModuleGraph planted_modules_with_edges(ModuleGraphConfig config,
                                       std::size_t target_edges,
                                       util::Rng& rng) {
  config.background_edges = 0;
  ModuleGraph result = planted_modules(config, rng);
  std::size_t attempts = 0;
  const std::size_t limit = target_edges * 40 + 1000;
  while (result.graph.num_edges() < target_edges && attempts < limit) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.below(config.n));
    const auto v = static_cast<VertexId>(rng.below(config.n));
    result.graph.add_edge(u, v);
  }
  return result;
}

}  // namespace gsb::graph
