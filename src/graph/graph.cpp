#include "graph/graph.h"

namespace gsb::graph {

Graph::Graph(std::size_t n)
    : rows_(n, bits::DynamicBitset(n)), degrees_(n, 0) {}

Graph Graph::from_edges(
    std::size_t n, const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

double Graph::density() const noexcept {
  const double n = static_cast<double>(order());
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges_) / (n * (n - 1.0) / 2.0);
}

void Graph::add_edge(VertexId u, VertexId v) {
  if (u == v || rows_[u].test(v)) return;
  rows_[u].set(v);
  rows_[v].set(u);
  ++degrees_[u];
  ++degrees_[v];
  ++num_edges_;
}

void Graph::remove_edge(VertexId u, VertexId v) {
  if (u == v || !rows_[u].test(v)) return;
  rows_[u].reset(v);
  rows_[v].reset(u);
  --degrees_[u];
  --degrees_[v];
  --num_edges_;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (std::size_t d : degrees_) best = std::max(best, d);
  return best;
}

std::vector<VertexId> Graph::neighbor_list(VertexId v) const {
  return rows_[v].to_vector();
}

std::vector<std::pair<VertexId, VertexId>> Graph::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < order(); ++u) {
    rows_[u].for_each([&](std::size_t v) {
      if (v > u) edges.emplace_back(u, static_cast<VertexId>(v));
    });
  }
  return edges;
}

bool Graph::operator==(const Graph& other) const noexcept {
  if (order() != other.order() || num_edges_ != other.num_edges_) return false;
  for (std::size_t v = 0; v < order(); ++v) {
    if (!(rows_[v] == other.rows_[v])) return false;
  }
  return true;
}

std::size_t Graph::adjacency_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& row : rows_) total += row.size_bytes();
  return total;
}

}  // namespace gsb::graph
