#ifndef GSB_GRAPH_GRAPH_VIEW_H
#define GSB_GRAPH_GRAPH_VIEW_H

/// \file graph_view.h
/// Non-owning, backend-agnostic read view of a bitmap-adjacency graph.
///
/// Every clique algorithm in core/, analysis/ and parallel/ consumes a graph
/// through exactly this surface: order, degrees, and per-vertex neighborhood
/// bit strings.  A GraphView can be built from
///   * an in-memory graph::Graph (implicit conversion — existing callers
///     compile unchanged), or
///   * the bitmap section of a memory-mapped .gsbg file
///     (storage::MappedGraph::view()), in which case the enumerators run
///     directly off disk: the OS pages in only the rows they touch.
///
/// The view borrows: its source (and, for mapped graphs, the mapping) must
/// outlive it.  Construction is O(n) (a row-pointer table); all accessors
/// are as cheap as the Graph originals.

#include <cstdint>
#include <utility>
#include <vector>

#include "bitset/bitset_view.h"
#include "graph/graph.h"

namespace gsb::graph {

class GraphView {
 public:
  using Word = bits::BitsetView::Word;

  GraphView() = default;

  /// View of an in-memory graph (intentionally implicit so `const Graph&`
  /// call sites keep working against view-based signatures).
  GraphView(const Graph& g);  // NOLINT

  /// View over a contiguous row-major bitmap: row v occupies
  /// words_per_row words starting at base + v * words_per_row.  \p degrees
  /// must hold n entries and outlive the view.  This is the mapped-file
  /// entry point.
  GraphView(const Word* base, std::size_t words_per_row, std::size_t n,
            std::size_t num_edges, const std::size_t* degrees);

  [[nodiscard]] std::size_t order() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Edge density: m / (n choose 2).
  [[nodiscard]] double density() const noexcept {
    const double n = static_cast<double>(n_);
    if (n < 2) return 0.0;
    return static_cast<double>(num_edges_) / (n * (n - 1.0) / 2.0);
  }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept {
    return neighbors(u).test(v);
  }

  /// The neighborhood bit string N(v).
  [[nodiscard]] bits::BitsetView neighbors(VertexId v) const noexcept {
    return bits::BitsetView(rows_[v], n_);
  }

  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return degrees_[v];
  }

  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Neighbor indices of \p v in increasing order.
  [[nodiscard]] std::vector<VertexId> neighbor_list(VertexId v) const {
    return neighbors(v).to_vector();
  }

  /// All edges as (u < v) pairs in lexicographic order.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edge_list() const;

 private:
  std::size_t n_ = 0;
  std::size_t num_edges_ = 0;
  std::vector<const Word*> rows_;   ///< row word pointers, one per vertex
  const std::size_t* degrees_ = nullptr;
};

/// Deep-copies a view into an owning in-memory Graph (used where an
/// algorithm must mutate, e.g. the paraclique residue).
Graph materialize(const GraphView& g);

}  // namespace gsb::graph

#endif  // GSB_GRAPH_GRAPH_VIEW_H
