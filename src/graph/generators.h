#ifndef GSB_GRAPH_GENERATORS_H
#define GSB_GRAPH_GENERATORS_H

/// \file generators.h
/// Synthetic graph ensembles.
///
/// The paper evaluates on gene co-expression graphs built from microarray
/// data (see src/bio for that pipeline).  The generators here provide
/// controlled analogs used by the tests and the benchmark harnesses:
/// correlation graphs are characteristically *sparse globally but locally
/// near-complete* — co-regulated gene modules appear as overlapping
/// near-cliques on a faint random background — and `planted_modules`
/// reproduces exactly that shape with a prescribed vertex count, edge
/// density and maximum clique size.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gsb::graph {

/// Erdős–Rényi G(n, p): each pair independently with probability p.
Graph gnp(std::size_t n, double p, util::Rng& rng);

/// Erdős–Rényi G(n, m): exactly m distinct uniform edges.
Graph gnm(std::size_t n, std::size_t m, util::Rng& rng);

/// Barabási–Albert preferential attachment with \p attach edges per new
/// vertex; produces the heavy-tailed degree sequences typical of biological
/// interaction networks.
Graph barabasi_albert(std::size_t n, std::size_t attach, util::Rng& rng);

/// A single clique of size \p clique_size planted in G(n, background_p);
/// returns the graph and the planted member set (sorted).
struct PlantedClique {
  Graph graph;
  std::vector<VertexId> members;
};
PlantedClique planted_clique(std::size_t n, std::size_t clique_size,
                             double background_p, util::Rng& rng);

/// Configuration for the co-expression-like ensemble.
struct ModuleGraphConfig {
  std::size_t n = 1000;            ///< vertex count
  std::size_t num_modules = 30;    ///< number of planted modules
  std::size_t min_module_size = 4; ///< smallest module
  std::size_t max_module_size = 20;///< largest module (≈ max clique size)
  double size_power = 2.0;         ///< size ~ (1/s^power); larger → fewer big modules
  double p_in = 1.0;               ///< intra-module edge probability
  double overlap = 0.15;           ///< fraction of a module drawn from previously used vertices
  std::size_t background_edges = 0;///< extra uniform random edges
};

/// A module-structured graph plus the planted module memberships.
struct ModuleGraph {
  Graph graph;
  std::vector<std::vector<VertexId>> modules;
};

/// Generates overlapping near-clique modules on a sparse background.
/// With p_in = 1 the largest planted module is a clique of that size; the
/// background density is background_edges / (n choose 2).
ModuleGraph planted_modules(const ModuleGraphConfig& config, util::Rng& rng);

/// Samples a module size in [lo, hi] with P(s) proportional to s^-power.
std::size_t sample_module_size(std::size_t lo, std::size_t hi, double power,
                               util::Rng& rng);

/// Draws one module's member set (with the overlap policy: each member is
/// re-drawn from previously used vertices with probability \p overlap,
/// otherwise from fresh ones) and plants its intra-module edges with
/// probability \p p_in.  \p used / \p used_mask accumulate the vertices
/// touched by earlier modules.  Returns the sorted member list.
std::vector<VertexId> plant_module(Graph& g, std::size_t size, double p_in,
                                   double overlap,
                                   std::vector<VertexId>& used,
                                   bits::DynamicBitset& used_mask,
                                   util::Rng& rng);

/// Convenience: a planted-module graph tuned to hit a target edge count by
/// padding with background edges (or truncating background if modules alone
/// exceed the budget, in which case the result may exceed the target).
ModuleGraph planted_modules_with_edges(ModuleGraphConfig config,
                                       std::size_t target_edges,
                                       util::Rng& rng);

}  // namespace gsb::graph

#endif  // GSB_GRAPH_GENERATORS_H
