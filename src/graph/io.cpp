#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "util/io.h"

namespace gsb::graph {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph io: " + what);
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  if (!in) fail("cannot open '" + path + "' for reading");
  return in;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) fail("cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  bool have_problem = false;
  Graph g;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'c') continue;
    if (kind == 'p') {
      std::string tag;
      std::size_t m = 0;
      ls >> tag >> n >> m;
      if (!ls || (tag != "edge" && tag != "col")) fail("bad problem line");
      g = Graph(n);
      have_problem = true;
      continue;
    }
    if (kind == 'e') {
      if (!have_problem) fail("edge before problem line");
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      ls >> u >> v;
      if (!ls || u < 1 || v < 1 || u > n || v > n) fail("bad edge line");
      g.add_edge(static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1));
      continue;
    }
    fail("unrecognized line kind '" + std::string(1, kind) + "'");
  }
  if (!have_problem) fail("missing problem line");
  return g;
}

Graph read_dimacs_file(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  return read_dimacs(in);
}

void write_dimacs(const Graph& g, std::ostream& out,
                  const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << "\n";
  out << "p edge " << g.order() << " " << g.num_edges() << "\n";
  for (const auto& [u, v] : g.edge_list()) {
    out << "e " << (u + 1) << " " << (v + 1) << "\n";
  }
}

void write_dimacs_file(const Graph& g, const std::string& path,
                       const std::string& comment) {
  auto out = open_out(path, std::ios::out);
  write_dimacs(g, out, comment);
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  bool have_n = false;
  std::size_t n = 0;
  Graph g;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    if (!have_n) {
      if (ls >> n) {
        g = Graph(n);
        have_n = true;
      }
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ls >> u >> v)) continue;
    if (u >= n || v >= n) fail("edge endpoint out of range");
    g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  if (!have_n) fail("missing vertex-count header");
  return g;
}

Graph read_edge_list_file(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.order() << "\n";
  for (const auto& [u, v] : g.edge_list()) out << u << " " << v << "\n";
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  write_edge_list(g, out);
}

namespace {
constexpr char kMagic[4] = {'G', 'S', 'B', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T take(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) fail("truncated binary graph");
  return value;
}
}  // namespace

Graph read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
    fail("bad magic");
  }
  const auto version = take<std::uint32_t>(in);
  if (version != kVersion) fail("unsupported version");
  const auto n = take<std::uint64_t>(in);
  const auto m = take<std::uint64_t>(in);
  Graph g(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = take<std::uint32_t>(in);
    const auto v = take<std::uint32_t>(in);
    if (u >= n || v >= n) fail("edge endpoint out of range");
    g.add_edge(u, v);
  }
  return g;
}

Graph read_binary_file(const std::string& path) {
  // fd-based load through util::io so short reads and EINTR are handled
  // in one place (and so the fault shim can exercise this loader).
  const int fd = util::io::open_for_read(path.c_str());
  if (fd < 0) fail("cannot open '" + path + "'");
  std::string bytes;
  char chunk[1 << 16];
  while (true) {
    const ssize_t got = util::io::read_some(fd, chunk, sizeof(chunk));
    if (got < 0) {
      ::close(fd);
      fail("read failed for '" + path + "'");
    }
    if (got == 0) break;
    bytes.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  std::istringstream in(std::move(bytes));
  return read_binary(in);
}

void write_binary(const Graph& g, std::ostream& out) {
  out.write(kMagic, 4);
  put<std::uint32_t>(out, kVersion);
  put<std::uint64_t>(out, g.order());
  put<std::uint64_t>(out, g.num_edges());
  for (const auto& [u, v] : g.edge_list()) {
    put<std::uint32_t>(out, u);
    put<std::uint32_t>(out, v);
  }
}

void write_binary_file(const Graph& g, const std::string& path) {
  // Crash-safe like the container writers: temp file, fsync, rename.
  std::ostringstream buffered;
  write_binary(g, buffered);
  const std::string bytes = buffered.str();
  util::io::FileWriter out(path);
  out.write(bytes.data(), bytes.size());
  out.commit();
}

std::string detect_graph_format(const std::string& path,
                                const std::string& format) {
  if (!format.empty()) return format;
  if (path.ends_with(".clq") || path.ends_with(".dimacs")) return "dimacs";
  if (path.ends_with(".bin")) return "binary";
  if (path.ends_with(".gsbg")) return "gsbg";
  if (path == "-") return "";  // sniffed from content
  return "edges";
}

namespace {

/// DIMACS vs edge-list sniff for streams without a telling filename: the
/// first non-blank line of a DIMACS file starts with 'c' or 'p'.
Graph read_text_sniffed(std::istream& in) {
  std::stringstream buffered;
  buffered << in.rdbuf();
  std::string content = buffered.str();
  std::size_t i = 0;
  while (i < content.size() &&
         (content[i] == ' ' || content[i] == '\t' || content[i] == '\n' ||
          content[i] == '\r')) {
    ++i;
  }
  const bool dimacs =
      i < content.size() && (content[i] == 'c' || content[i] == 'p');
  std::istringstream replay(std::move(content));
  return dimacs ? read_dimacs(replay) : read_edge_list(replay);
}

}  // namespace

Graph load_graph(const std::string& path, const std::string& format) {
  const std::string kind = detect_graph_format(path, format);
  if (kind == "gsbg") {
    fail("'" + path + "' is a .gsbg container; open it with "
         "storage::MappedGraph (gsb does this automatically)");
  }
  if (path == "-") {
    if (kind == "dimacs") return read_dimacs(std::cin);
    if (kind == "edges") return read_edge_list(std::cin);
    if (kind.empty()) return read_text_sniffed(std::cin);
    fail("stdin supports only text formats (dimacs, edges)");
  }
  if (kind == "dimacs") return graph::read_dimacs_file(path);
  if (kind == "binary") return graph::read_binary_file(path);
  if (kind == "edges") return graph::read_edge_list_file(path);
  fail("unknown format '" + kind + "'");
}

void save_graph(const Graph& g, const std::string& path,
                const std::string& format, const std::string& comment) {
  const std::string kind = detect_graph_format(path, format);
  if (kind == "gsbg") {
    fail("write .gsbg containers through storage::write_gsbg_file");
  }
  if (path == "-") {
    if (kind == "dimacs" || kind.empty()) {
      return write_dimacs(g, std::cout, comment);
    }
    if (kind == "edges") return write_edge_list(g, std::cout);
    fail("stdout supports only text formats (dimacs, edges)");
  }
  if (kind == "dimacs") return write_dimacs_file(g, path, comment);
  if (kind == "binary") return write_binary_file(g, path);
  if (kind == "edges") return write_edge_list_file(g, path);
  fail("unknown format '" + kind + "'");
}

}  // namespace gsb::graph
