#include "bitset/wah_bitset.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gsb::bits {
namespace {

constexpr std::uint32_t kGroupMask = 0x7fffffffu;  // low 31 bits
constexpr std::uint32_t kFillFlag = 0x80000000u;   // MSB: fill word
constexpr std::uint32_t kFillBit = 0x40000000u;    // fill value (0 or 1)
constexpr std::uint32_t kCountMask = 0x3fffffffu;  // 30-bit run length

constexpr bool is_fill(std::uint32_t word) noexcept {
  return (word & kFillFlag) != 0;
}
constexpr bool fill_value(std::uint32_t word) noexcept {
  return (word & kFillBit) != 0;
}
constexpr std::uint32_t fill_count(std::uint32_t word) noexcept {
  return word & kCountMask;
}
constexpr std::uint32_t make_fill(bool value, std::uint32_t count) noexcept {
  return kFillFlag | (value ? kFillBit : 0u) | count;
}

}  // namespace

/// Streams the logical sequence of 31-bit groups out of a compressed word
/// vector, one group at a time (fills are expanded lazily).
class WahBitset::GroupCursor {
 public:
  explicit GroupCursor(const std::vector<std::uint32_t>& words) noexcept
      : words_(&words) {}

  /// Returns the next group's payload.  Caller must not read past the
  /// logical group count.
  std::uint32_t next() noexcept {
    const std::uint32_t word = (*words_)[index_];
    if (!is_fill(word)) {
      ++index_;
      return word & kGroupMask;
    }
    const std::uint32_t payload = fill_value(word) ? kGroupMask : 0u;
    if (++consumed_ == fill_count(word)) {
      ++index_;
      consumed_ = 0;
    }
    return payload;
  }

  /// Number of groups remaining in the current fill (1 for literals).
  /// Enables run-skipping in the compressed-domain operators.
  std::uint32_t run_remaining() const noexcept {
    const std::uint32_t word = (*words_)[index_];
    if (!is_fill(word)) return 1;
    return fill_count(word) - consumed_;
  }

  /// True if the cursor currently sits inside a fill of the given value.
  bool at_fill(bool value) const noexcept {
    const std::uint32_t word = (*words_)[index_];
    return is_fill(word) && fill_value(word) == value;
  }

  /// Skips \p groups groups; only valid while inside a single fill run.
  void skip(std::uint32_t groups) noexcept {
    const std::uint32_t word = (*words_)[index_];
    assert(is_fill(word) && consumed_ + groups <= fill_count(word));
    consumed_ += groups;
    if (consumed_ == fill_count(word)) {
      ++index_;
      consumed_ = 0;
    }
  }

 private:
  const std::vector<std::uint32_t>* words_;
  std::size_t index_ = 0;
  std::uint32_t consumed_ = 0;
};

void WahBitset::append_group(std::uint32_t group) {
  group &= kGroupMask;
  const bool uniform0 = group == 0;
  const bool uniform1 = group == kGroupMask;
  if ((uniform0 || uniform1) && !words_.empty() && is_fill(words_.back()) &&
      fill_value(words_.back()) == uniform1 &&
      fill_count(words_.back()) < kCountMask) {
    ++words_.back();
    return;
  }
  if (uniform0 || uniform1) {
    words_.push_back(make_fill(uniform1, 1));
  } else {
    words_.push_back(group);
  }
}

WahBitset WahBitset::from_words(std::span<const std::uint32_t> words,
                                std::size_t nbits) {
  WahBitset out;
  out.nbits_ = nbits;
  out.words_.assign(words.begin(), words.end());
  return out;
}

bool WahBitset::words_cover(std::span<const std::uint32_t> words,
                            std::size_t nbits) noexcept {
  const std::uint64_t expected =
      (nbits + kGroupBits - 1) / kGroupBits;
  std::uint64_t groups = 0;
  for (const std::uint32_t word : words) {
    if (is_fill(word)) {
      if (fill_count(word) == 0) return false;
      groups += fill_count(word);
    } else {
      ++groups;
    }
  }
  return groups == expected;
}

WahBitset WahBitset::compress(BitsetView bits) {
  WahBitset out;
  out.nbits_ = bits.size();
  const std::size_t groups = (bits.size() + kGroupBits - 1) / kGroupBits;
  out.words_.reserve(groups / 4 + 4);
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint32_t payload = 0;
    const std::size_t base = g * kGroupBits;
    const std::size_t limit = std::min<std::size_t>(kGroupBits,
                                                    bits.size() - base);
    // Gather up to 31 bits spanning at most two 64-bit source words.
    for (std::size_t b = 0; b < limit; ++b) {
      if (bits.test(base + b)) payload |= 1u << b;
    }
    out.append_group(payload);
  }
  return out;
}

DynamicBitset WahBitset::decompress() const {
  DynamicBitset out(nbits_);
  std::size_t bit = 0;
  GroupCursor cursor(words_);
  const std::size_t groups = (nbits_ + kGroupBits - 1) / kGroupBits;
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint32_t payload = cursor.next();
    while (payload != 0) {
      const int b = __builtin_ctz(payload);
      const std::size_t pos = bit + static_cast<std::size_t>(b);
      if (pos < nbits_) out.set(pos);
      payload &= payload - 1;
    }
    bit += kGroupBits;
  }
  return out;
}

std::size_t WahBitset::count() const noexcept {
  std::size_t total = 0;
  for (std::uint32_t word : words_) {
    if (is_fill(word)) {
      if (fill_value(word)) {
        total += static_cast<std::size_t>(fill_count(word)) * kGroupBits;
      }
    } else {
      total += static_cast<std::size_t>(__builtin_popcount(word));
    }
  }
  // A trailing 1-fill may cover bits past nbits_; the encoder only emits
  // groups up to the logical length, and partial final groups are stored as
  // literals with zero padding, so no correction is needed except when the
  // final group is part of a 1-fill.
  const std::size_t groups = (nbits_ + kGroupBits - 1) / kGroupBits;
  const std::size_t logical = groups * kGroupBits;
  if (logical > nbits_ && !words_.empty() && is_fill(words_.back()) &&
      fill_value(words_.back())) {
    total -= logical - nbits_;
  }
  return total;
}

bool WahBitset::any() const noexcept {
  for (std::uint32_t word : words_) {
    if (is_fill(word)) {
      if (fill_value(word)) return true;
    } else if ((word & kGroupMask) != 0) {
      return true;
    }
  }
  return false;
}

WahBitset WahBitset::and_with(const WahBitset& other) const {
  if (nbits_ != other.nbits_) {
    throw std::invalid_argument("WahBitset::and_with: size mismatch");
  }
  WahBitset out;
  out.nbits_ = nbits_;
  const std::size_t groups = (nbits_ + kGroupBits - 1) / kGroupBits;
  GroupCursor a(words_);
  GroupCursor b(other.words_);
  std::size_t g = 0;
  while (g < groups) {
    // Run-skipping: a 0-fill on either side forces a 0-fill in the output.
    if (a.at_fill(false) || b.at_fill(false)) {
      const std::uint32_t runa = a.at_fill(false) ? a.run_remaining() : 0;
      const std::uint32_t runb = b.at_fill(false) ? b.run_remaining() : 0;
      std::uint32_t run = std::max(runa, runb);
      run = std::min<std::uint32_t>(run, static_cast<std::uint32_t>(groups - g));
      // Advance both cursors by `run` groups.
      std::uint32_t advanced = 0;
      while (advanced < run) {
        const std::uint32_t step =
            std::min({run - advanced, a.run_remaining(), b.run_remaining()});
        if (a.at_fill(true) || a.at_fill(false)) {
          a.skip(step);
        } else {
          a.next();
        }
        if (b.at_fill(true) || b.at_fill(false)) {
          b.skip(step);
        } else {
          b.next();
        }
        advanced += step;
      }
      for (std::uint32_t i = 0; i < run; ++i) out.append_group(0);
      g += run;
      continue;
    }
    out.append_group(a.next() & b.next());
    ++g;
  }
  return out;
}

WahBitset WahBitset::or_with(const WahBitset& other) const {
  if (nbits_ != other.nbits_) {
    throw std::invalid_argument("WahBitset::or_with: size mismatch");
  }
  WahBitset out;
  out.nbits_ = nbits_;
  const std::size_t groups = (nbits_ + kGroupBits - 1) / kGroupBits;
  GroupCursor a(words_);
  GroupCursor b(other.words_);
  for (std::size_t g = 0; g < groups; ++g) {
    out.append_group(a.next() | b.next());
  }
  return out;
}

bool WahBitset::intersects(const WahBitset& a, const WahBitset& b) noexcept {
  assert(a.nbits_ == b.nbits_);
  const std::size_t groups = (a.nbits_ + kGroupBits - 1) / kGroupBits;
  GroupCursor ca(a.words_);
  GroupCursor cb(b.words_);
  std::size_t g = 0;
  while (g < groups) {
    if (ca.at_fill(false) || cb.at_fill(false)) {
      const std::uint32_t runa = ca.at_fill(false) ? ca.run_remaining() : 0;
      const std::uint32_t runb = cb.at_fill(false) ? cb.run_remaining() : 0;
      std::uint32_t run = std::max(runa, runb);
      run = std::min<std::uint32_t>(run, static_cast<std::uint32_t>(groups - g));
      std::uint32_t advanced = 0;
      while (advanced < run) {
        const std::uint32_t step =
            std::min({run - advanced, ca.run_remaining(), cb.run_remaining()});
        if (ca.at_fill(true) || ca.at_fill(false)) {
          ca.skip(step);
        } else {
          ca.next();
        }
        if (cb.at_fill(true) || cb.at_fill(false)) {
          cb.skip(step);
        } else {
          cb.next();
        }
        advanced += step;
      }
      g += run;
      continue;
    }
    if ((ca.next() & cb.next()) != 0) return true;
    ++g;
  }
  return false;
}

}  // namespace gsb::bits
