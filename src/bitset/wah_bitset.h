#ifndef GSB_BITSET_WAH_BITSET_H
#define GSB_BITSET_WAH_BITSET_H

/// \file wah_bitset.h
/// Word-Aligned Hybrid (WAH) compressed bitmap.
///
/// The paper's conclusion notes that "the sparcity of the bitmap memory
/// index can potentially provide high compression rate and allow for bitwise
/// operations to be performed on the compressed data. The work in this
/// direction is underway."  This module completes that direction: WAH
/// encodes a bit string as a sequence of 32-bit words that are either
/// literals (31 payload bits) or fills (a run of identical 31-bit groups),
/// and implements AND / OR / population-count / any-bit directly on the
/// compressed form.  Neighborhoods of sparse genome-scale graphs (edge
/// density well below 1%) compress by one to two orders of magnitude.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bitset/dynamic_bitset.h"

namespace gsb::bits {

/// Immutable WAH-compressed bitmap.
///
/// Encoding (per 32-bit word, MSB first):
///   0 | 31 payload bits                      -- literal group
///   1 | fill bit | 30-bit count              -- `count` groups of the fill bit
/// The logical length (number of bits) is stored separately; the final group
/// may be partial.
class WahBitset {
 public:
  static constexpr std::uint32_t kGroupBits = 31;

  WahBitset() = default;

  /// Compresses an uncompressed bit string (a DynamicBitset converts
  /// implicitly; a view into a mapped adjacency row works equally).
  static WahBitset compress(BitsetView bits);

  /// Reconstitutes a WahBitset from raw compressed words (e.g. a row of a
  /// .gsbg WAH section) and its logical bit length.
  static WahBitset from_words(std::span<const std::uint32_t> words,
                              std::size_t nbits);

  /// True iff \p words decode to exactly the group count \p nbits needs
  /// (no zero-length fills, no shortfall/overshoot).  The decode loops
  /// assume this; callers handing over untrusted bytes (mapped files)
  /// must check it first.
  static bool words_cover(std::span<const std::uint32_t> words,
                          std::size_t nbits) noexcept;

  /// Expands back to an uncompressed bitset.
  [[nodiscard]] DynamicBitset decompress() const;

  /// Logical number of bit positions.
  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }

  /// Compressed storage footprint in bytes.
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return words_.size() * sizeof(std::uint32_t);
  }

  /// Uncompressed-equivalent footprint in bytes (for compression-ratio
  /// reporting).
  [[nodiscard]] std::size_t uncompressed_bytes() const noexcept {
    return DynamicBitset::word_count(nbits_) * sizeof(std::uint64_t);
  }

  /// uncompressed_bytes() / size_bytes(); >1 means compression won.
  [[nodiscard]] double compression_ratio() const noexcept {
    return size_bytes() == 0
               ? 1.0
               : static_cast<double>(uncompressed_bytes()) /
                     static_cast<double>(size_bytes());
  }

  /// Population count computed on the compressed form.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True if any bit is set; computed on the compressed form.
  [[nodiscard]] bool any() const noexcept;

  /// Bitwise AND computed entirely in the compressed domain.
  /// Both operands must have equal size().
  [[nodiscard]] WahBitset and_with(const WahBitset& other) const;

  /// Bitwise OR computed entirely in the compressed domain.
  [[nodiscard]] WahBitset or_with(const WahBitset& other) const;

  /// True iff (a AND b) is non-empty, without materializing the result.
  static bool intersects(const WahBitset& a, const WahBitset& b) noexcept;

  bool operator==(const WahBitset& other) const noexcept {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  /// Raw compressed words (tests / diagnostics).
  [[nodiscard]] const std::vector<std::uint32_t>& words() const noexcept {
    return words_;
  }

 private:
  /// Appends one literal 31-bit group, merging into fills when possible.
  void append_group(std::uint32_t group);

  /// Iteration support: a cursor that yields consecutive 31-bit groups.
  class GroupCursor;

  std::size_t nbits_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace gsb::bits

#endif  // GSB_BITSET_WAH_BITSET_H
