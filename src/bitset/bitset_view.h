#ifndef GSB_BITSET_BITSET_VIEW_H
#define GSB_BITSET_BITSET_VIEW_H

/// \file bitset_view.h
/// Non-owning view over a fixed-universe bit string.
///
/// The clique kernels consume neighborhoods purely through word-parallel
/// reads (AND, any-bit, popcount, set-bit iteration).  BitsetView is the
/// common currency those kernels operate on: it can point into a
/// DynamicBitset's heap words just as well as into a row of a memory-mapped
/// .gsbg bitmap section, which is what lets the enumerators run directly
/// off disk.
///
/// Invariant (shared with DynamicBitset, and guaranteed by the .gsbg
/// writer): bits at positions >= size() in the last word are zero.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gsb::bits {

class BitsetView {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  constexpr BitsetView() = default;

  /// View over \p nbits positions backed by \p words (must cover
  /// word_count(nbits) words and outlive the view).
  constexpr BitsetView(const Word* words, std::size_t nbits) noexcept
      : words_(words), nbits_(nbits) {}

  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }
  [[nodiscard]] std::size_t num_words() const noexcept {
    return word_count(nbits_);
  }
  [[nodiscard]] std::span<const Word> words() const noexcept {
    return {words_, num_words()};
  }
  [[nodiscard]] const Word* data() const noexcept { return words_; }

  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    const std::size_t nw = num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      total += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
    }
    return total;
  }

  /// Population count of positions in [pos, size()).
  [[nodiscard]] std::size_t count_from(std::size_t pos) const noexcept {
    if (pos >= nbits_) return 0;
    std::size_t w = pos / kWordBits;
    std::size_t total = static_cast<std::size_t>(
        __builtin_popcountll(words_[w] & (~Word{0} << (pos % kWordBits))));
    const std::size_t nw = num_words();
    for (++w; w < nw; ++w) {
      total += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
    }
    return total;
  }

  [[nodiscard]] bool none() const noexcept {
    const std::size_t nw = num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      if (words_[w] != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool any() const noexcept { return !none(); }

  [[nodiscard]] std::size_t find_first() const noexcept {
    const std::size_t nw = num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      if (words_[w] != 0) {
        return w * kWordBits +
               static_cast<std::size_t>(__builtin_ctzll(words_[w]));
      }
    }
    return nbits_;
  }

  [[nodiscard]] std::size_t find_next(std::size_t pos) const noexcept {
    ++pos;
    if (pos >= nbits_) return nbits_;
    std::size_t w = pos / kWordBits;
    Word word = words_[w] & (~Word{0} << (pos % kWordBits));
    const std::size_t nw = num_words();
    while (true) {
      if (word != 0) {
        return w * kWordBits + static_cast<std::size_t>(__builtin_ctzll(word));
      }
      if (++w >= nw) return nbits_;
      word = words_[w];
    }
  }

  /// Calls \p fn(index) for every set bit in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t nw = num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      Word word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * kWordBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Materializes the set bits as a sorted vector of 32-bit indices.
  [[nodiscard]] std::vector<std::uint32_t> to_vector() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for_each([&](std::size_t index) {
      out.push_back(static_cast<std::uint32_t>(index));
    });
    return out;
  }

  /// True iff every set bit of this is also set in \p other (equal sizes).
  [[nodiscard]] bool is_subset_of(BitsetView other) const noexcept {
    const std::size_t nw = num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  /// True iff (a AND b) has any set bit; early-exits on the first hit.
  static bool intersects(BitsetView a, BitsetView b) noexcept {
    const std::size_t nw = a.num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      if ((a.words_[w] & b.words_[w]) != 0) return true;
    }
    return false;
  }

  /// Population count of (a AND b) without materializing it.
  static std::size_t count_and(BitsetView a, BitsetView b) noexcept {
    std::size_t total = 0;
    const std::size_t nw = a.num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      total += static_cast<std::size_t>(
          __builtin_popcountll(a.words_[w] & b.words_[w]));
    }
    return total;
  }

  friend bool operator==(BitsetView a, BitsetView b) noexcept {
    if (a.nbits_ != b.nbits_) return false;
    const std::size_t nw = a.num_words();
    for (std::size_t w = 0; w < nw; ++w) {
      if (a.words_[w] != b.words_[w]) return false;
    }
    return true;
  }

  static constexpr std::size_t word_count(std::size_t nbits) noexcept {
    return (nbits + kWordBits - 1) / kWordBits;
  }

 private:
  const Word* words_ = nullptr;
  std::size_t nbits_ = 0;
};

}  // namespace gsb::bits

#endif  // GSB_BITSET_BITSET_VIEW_H
