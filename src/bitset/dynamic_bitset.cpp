#include "bitset/dynamic_bitset.h"

#include <cassert>

namespace gsb::bits {

void DynamicBitset::resize(std::size_t nbits) {
  nbits_ = nbits;
  words_.resize(word_count(nbits), 0);
  trim();
}

void DynamicBitset::clear_all() noexcept {
  for (auto& word : words_) word = 0;
}

void DynamicBitset::set_all() noexcept {
  for (auto& word : words_) word = ~Word{0};
  trim();
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (Word word : words_) {
    total += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return total;
}

std::size_t DynamicBitset::count_from(std::size_t pos) const noexcept {
  if (pos >= nbits_) return 0;
  std::size_t w = pos / kWordBits;
  std::size_t total = static_cast<std::size_t>(
      __builtin_popcountll(words_[w] & (~Word{0} << (pos % kWordBits))));
  for (++w; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
  }
  return total;
}

bool DynamicBitset::none() const noexcept {
  for (Word word : words_) {
    if (word != 0) return false;
  }
  return true;
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return nbits_;
}

std::size_t DynamicBitset::find_next(std::size_t pos) const noexcept {
  ++pos;
  if (pos >= nbits_) return nbits_;
  std::size_t w = pos / kWordBits;
  Word word = words_[w] & (~Word{0} << (pos % kWordBits));
  while (true) {
    if (word != 0) {
      return w * kWordBits + static_cast<std::size_t>(__builtin_ctzll(word));
    }
    if (++w >= words_.size()) return nbits_;
    word = words_[w];
  }
}

std::vector<std::uint32_t> DynamicBitset::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each([&](std::size_t index) {
    out.push_back(static_cast<std::uint32_t>(index));
  });
  return out;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) noexcept {
  assert(nbits_ == other.nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) noexcept {
  assert(nbits_ == other.nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) noexcept {
  assert(nbits_ == other.nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::and_not(const DynamicBitset& other) noexcept {
  assert(nbits_ == other.nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= ~other.words_[w];
  }
  return *this;
}

void DynamicBitset::flip_all() noexcept {
  for (auto& word : words_) word = ~word;
  trim();
}

void DynamicBitset::assign_and(const DynamicBitset& a,
                               const DynamicBitset& b) noexcept {
  assert(a.nbits_ == b.nbits_ && nbits_ == a.nbits_);
  const Word* pa = a.words_.data();
  const Word* pb = b.words_.data();
  Word* out = words_.data();
  for (std::size_t w = 0; w < words_.size(); ++w) out[w] = pa[w] & pb[w];
}

bool DynamicBitset::intersects(const DynamicBitset& a,
                               const DynamicBitset& b) noexcept {
  assert(a.nbits_ == b.nbits_);
  const Word* pa = a.words_.data();
  const Word* pb = b.words_.data();
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    if ((pa[w] & pb[w]) != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::count_and(const DynamicBitset& a,
                                     const DynamicBitset& b) noexcept {
  assert(a.nbits_ == b.nbits_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    total += static_cast<std::size_t>(
        __builtin_popcountll(a.words_[w] & b.words_[w]));
  }
  return total;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const noexcept {
  assert(nbits_ == other.nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

std::string DynamicBitset::to_string() const {
  std::string out(nbits_, '0');
  for_each([&](std::size_t index) { out[index] = '1'; });
  return out;
}

void DynamicBitset::trim() noexcept {
  const std::size_t used = nbits_ % kWordBits;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

}  // namespace gsb::bits
