#include "bitset/dynamic_bitset.h"

#include <cassert>

namespace gsb::bits {

void DynamicBitset::resize(std::size_t nbits) {
  nbits_ = nbits;
  words_.resize(word_count(nbits), 0);
  trim();
}

void DynamicBitset::clear_all() noexcept {
  for (auto& word : words_) word = 0;
}

void DynamicBitset::set_all() noexcept {
  for (auto& word : words_) word = ~Word{0};
  trim();
}

// The read-only scan kernels live in BitsetView; delegating keeps exactly
// one copy of each word loop for both backends.
std::size_t DynamicBitset::count() const noexcept { return view().count(); }

std::size_t DynamicBitset::count_from(std::size_t pos) const noexcept {
  return view().count_from(pos);
}

bool DynamicBitset::none() const noexcept { return view().none(); }

std::size_t DynamicBitset::find_first() const noexcept {
  return view().find_first();
}

std::size_t DynamicBitset::find_next(std::size_t pos) const noexcept {
  return view().find_next(pos);
}

std::vector<std::uint32_t> DynamicBitset::to_vector() const {
  return view().to_vector();
}

DynamicBitset& DynamicBitset::operator&=(BitsetView other) noexcept {
  assert(nbits_ == other.size());
  const Word* po = other.data();
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= po[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(BitsetView other) noexcept {
  assert(nbits_ == other.size());
  const Word* po = other.data();
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= po[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(BitsetView other) noexcept {
  assert(nbits_ == other.size());
  const Word* po = other.data();
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= po[w];
  return *this;
}

DynamicBitset& DynamicBitset::and_not(BitsetView other) noexcept {
  assert(nbits_ == other.size());
  const Word* po = other.data();
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= ~po[w];
  }
  return *this;
}

void DynamicBitset::flip_all() noexcept {
  for (auto& word : words_) word = ~word;
  trim();
}

void DynamicBitset::assign(BitsetView other) noexcept {
  assert(nbits_ == other.size());
  const Word* po = other.data();
  Word* out = words_.data();
  for (std::size_t w = 0; w < words_.size(); ++w) out[w] = po[w];
}

void DynamicBitset::assign_and(BitsetView a, BitsetView b) noexcept {
  assert(a.size() == b.size() && nbits_ == a.size());
  const Word* pa = a.data();
  const Word* pb = b.data();
  Word* out = words_.data();
  for (std::size_t w = 0; w < words_.size(); ++w) out[w] = pa[w] & pb[w];
}

bool DynamicBitset::is_subset_of(BitsetView other) const noexcept {
  assert(nbits_ == other.size());
  return view().is_subset_of(other);
}

std::string DynamicBitset::to_string() const {
  std::string out(nbits_, '0');
  for_each([&](std::size_t index) { out[index] = '1'; });
  return out;
}

void DynamicBitset::trim() noexcept {
  const std::size_t used = nbits_ % kWordBits;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

}  // namespace gsb::bits
