#ifndef GSB_BITSET_DYNAMIC_BITSET_H
#define GSB_BITSET_DYNAMIC_BITSET_H

/// \file dynamic_bitset.h
/// The globally-addressable bitmap index at the heart of the framework.
///
/// The paper (Section 2.3) represents the *common neighbors* of a clique as
/// a bit string of ceil(n/8) bytes: bit i is 1 iff vertex i is adjacent to
/// every vertex of the clique.  Two operations dominate the algorithm:
///
///   * common-neighbor update:  C' = C AND N(v)      (one bitwise AND)
///   * maximality test:         "does C' contain a 1 bit?"
///
/// DynamicBitset provides those as allocation-free primitives
/// (and_assign / assign_and / intersects) over 64-bit words, plus the usual
/// set-algebra, population counts and set-bit iteration used by the graph
/// substrate and the FPT kernels.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bitset/bitset_view.h"

namespace gsb::bits {

/// Fixed-universe resizable bitset over 64-bit words.
///
/// Invariant: bits at positions >= size() in the last word are zero.  All
/// binary operations require equally-sized operands (checked by assert in
/// debug builds; callers in the library always operate within one graph's
/// vertex universe).
class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  /// Empty bitset over a zero-sized universe.
  DynamicBitset() = default;

  /// Bitset over a universe of \p nbits positions, all clear.
  explicit DynamicBitset(std::size_t nbits)
      : nbits_(nbits), words_(word_count(nbits), 0) {}

  /// Number of addressable bit positions.
  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }

  /// Number of backing words.
  [[nodiscard]] std::size_t num_words() const noexcept {
    return words_.size();
  }

  /// Bytes of backing storage (the paper's ceil(n/8) accounting rounds to
  /// whole words here; memory reports use size_bytes()).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return words_.size() * sizeof(Word);
  }

  /// Resizes the universe; newly exposed bits are clear.
  void resize(std::size_t nbits);

  /// --- single-bit operations -------------------------------------------
  void set(std::size_t pos) noexcept {
    words_[pos / kWordBits] |= Word{1} << (pos % kWordBits);
  }
  void reset(std::size_t pos) noexcept {
    words_[pos / kWordBits] &= ~(Word{1} << (pos % kWordBits));
  }
  void flip(std::size_t pos) noexcept {
    words_[pos / kWordBits] ^= Word{1} << (pos % kWordBits);
  }
  [[nodiscard]] bool test(std::size_t pos) const noexcept {
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
  }

  /// --- whole-set operations --------------------------------------------
  void clear_all() noexcept;
  void set_all() noexcept;

  /// Population count.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Population count of positions in [pos, size()).  This is the
  /// |CANDIDATES| term of the k-clique enumerator's boundary condition
  /// (canonical extension only uses vertices above the current one).
  [[nodiscard]] std::size_t count_from(std::size_t pos) const noexcept;

  /// True if no bit is set.  This is the paper's clique-maximality test.
  [[nodiscard]] bool none() const noexcept;
  [[nodiscard]] bool any() const noexcept { return !none(); }

  /// Index of the first set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the first set bit strictly after \p pos, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t pos) const noexcept;

  /// Calls \p fn(index) for every set bit in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    view().for_each(static_cast<Fn&&>(fn));
  }

  /// Materializes the set bits as a sorted vector of 32-bit indices.
  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;

  /// --- in-place set algebra ---------------------------------------------
  /// Operands may be DynamicBitsets (implicit conversion) or views into
  /// foreign storage such as a memory-mapped adjacency row.
  DynamicBitset& operator&=(BitsetView other) noexcept;
  DynamicBitset& operator|=(BitsetView other) noexcept;
  DynamicBitset& operator^=(BitsetView other) noexcept;
  /// this = this AND NOT other.
  DynamicBitset& and_not(BitsetView other) noexcept;
  /// Flips every bit in the universe.
  void flip_all() noexcept;

  /// --- allocation-free fused kernels (hot path of the enumerator) -------

  /// this = other (equal universes).  The copy counterpart of assign_and,
  /// for loading a foreign row (e.g. a mapped adjacency row) into an owned
  /// working set without an allocation.
  void assign(BitsetView other) noexcept;

  /// this = a AND b.  All three must share one universe; `this` may alias
  /// either operand.
  void assign_and(BitsetView a, BitsetView b) noexcept;

  /// True iff (a AND b) has any set bit; early-exits on the first hit.
  /// Equivalent to BitOneExists(BitAND(a, b)) from the paper's pseudocode
  /// without materializing the intersection.
  static bool intersects(BitsetView a, BitsetView b) noexcept {
    return BitsetView::intersects(a, b);
  }

  /// Population count of (a AND b) without materializing it.
  static std::size_t count_and(BitsetView a, BitsetView b) noexcept {
    return BitsetView::count_and(a, b);
  }

  /// --- comparisons -------------------------------------------------------
  bool operator==(const DynamicBitset& other) const noexcept {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  /// True iff every set bit of this is also set in \p other.
  [[nodiscard]] bool is_subset_of(BitsetView other) const noexcept;

  /// --- raw access ---------------------------------------------------------
  [[nodiscard]] std::span<const Word> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<Word> words() noexcept { return words_; }

  /// Non-owning view of this bitset (valid until the next resize or
  /// reallocation).  The implicit conversion lets DynamicBitsets flow into
  /// every view-based kernel unchanged.
  [[nodiscard]] BitsetView view() const noexcept {
    return BitsetView(words_.data(), nbits_);
  }
  operator BitsetView() const noexcept { return view(); }  // NOLINT

  /// "0110..." rendering (bit 0 first), for debugging and tests.
  [[nodiscard]] std::string to_string() const;

  static constexpr std::size_t word_count(std::size_t nbits) noexcept {
    return (nbits + kWordBits - 1) / kWordBits;
  }

 private:
  /// Clears any bits beyond nbits_ in the last word (restores invariant).
  void trim() noexcept;

  std::size_t nbits_ = 0;
  std::vector<Word> words_;
};

}  // namespace gsb::bits

#endif  // GSB_BITSET_DYNAMIC_BITSET_H
