#ifndef GSB_NETOPS_OPS_H
#define GSB_NETOPS_OPS_H

/// \file ops.h
/// Boolean graph algebra over a shared vertex set.
///
/// The paper's introduction prescribes these queries for cleaning noisy
/// protein-interaction data: replicated experiments are recorded as
/// undirected graphs, and "queries consisting of Boolean graph operations
/// (e.g., graph intersection and at-least-k-of-n over multiple graphs) can
/// be used to refine the data" before clique analysis.  All operations run
/// word-parallel over the bitmap adjacency rows; at_least_k_of_n uses a
/// bit-sliced counter so n graphs are combined in O(n log n) word ops per
/// row instead of per-edge arithmetic.

#include <span>
#include <vector>

#include "graph/graph.h"

namespace gsb::netops {

/// Edge-wise intersection: edge present iff present in every input.
/// All graphs must share one vertex count (checked).
graph::Graph graph_intersection(std::span<const graph::Graph> graphs);

/// Edge-wise union.
graph::Graph graph_union(std::span<const graph::Graph> graphs);

/// Edges of \p a that are not in \p b.
graph::Graph graph_difference(const graph::Graph& a, const graph::Graph& b);

/// Edges in exactly one of \p a, \p b.
graph::Graph graph_symmetric_difference(const graph::Graph& a,
                                        const graph::Graph& b);

/// Consensus filter: edge present iff it appears in at least \p k of the
/// inputs.  k = 1 is union; k = n is intersection.
graph::Graph at_least_k_of_n(std::span<const graph::Graph> graphs,
                             std::size_t k);

/// Two-graph convenience overloads.
graph::Graph graph_intersection(const graph::Graph& a, const graph::Graph& b);
graph::Graph graph_union(const graph::Graph& a, const graph::Graph& b);

}  // namespace gsb::netops

#endif  // GSB_NETOPS_OPS_H
