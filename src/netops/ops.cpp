#include "netops/ops.h"

#include <stdexcept>

#include "bitset/dynamic_bitset.h"

namespace gsb::netops {
namespace {

using bits::DynamicBitset;
using graph::Graph;
using graph::VertexId;

std::size_t common_order(std::span<const Graph> graphs) {
  if (graphs.empty()) {
    throw std::invalid_argument("netops: empty graph list");
  }
  const std::size_t n = graphs.front().order();
  for (const Graph& g : graphs) {
    if (g.order() != n) {
      throw std::invalid_argument("netops: vertex-count mismatch");
    }
  }
  return n;
}

/// Builds a graph from per-row result bits (upper triangle only is read).
Graph from_rows(std::size_t n, const std::vector<DynamicBitset>& rows) {
  Graph out(n);
  for (VertexId u = 0; u < n; ++u) {
    rows[u].for_each([&](std::size_t v) {
      if (v > u) out.add_edge(u, static_cast<VertexId>(v));
    });
  }
  return out;
}

}  // namespace

Graph graph_intersection(std::span<const Graph> graphs) {
  const std::size_t n = common_order(graphs);
  std::vector<DynamicBitset> rows;
  rows.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    DynamicBitset row = graphs.front().neighbors(v);
    for (std::size_t g = 1; g < graphs.size(); ++g) {
      row &= graphs[g].neighbors(v);
    }
    rows.push_back(std::move(row));
  }
  return from_rows(n, rows);
}

Graph graph_union(std::span<const Graph> graphs) {
  const std::size_t n = common_order(graphs);
  std::vector<DynamicBitset> rows;
  rows.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    DynamicBitset row = graphs.front().neighbors(v);
    for (std::size_t g = 1; g < graphs.size(); ++g) {
      row |= graphs[g].neighbors(v);
    }
    rows.push_back(std::move(row));
  }
  return from_rows(n, rows);
}

Graph graph_difference(const Graph& a, const Graph& b) {
  const std::size_t n = a.order();
  if (b.order() != n) {
    throw std::invalid_argument("netops: vertex-count mismatch");
  }
  Graph out(n);
  for (VertexId u = 0; u < n; ++u) {
    DynamicBitset row = a.neighbors(u);
    row.and_not(b.neighbors(u));
    row.for_each([&](std::size_t v) {
      if (v > u) out.add_edge(u, static_cast<VertexId>(v));
    });
  }
  return out;
}

Graph graph_symmetric_difference(const Graph& a, const Graph& b) {
  const std::size_t n = a.order();
  if (b.order() != n) {
    throw std::invalid_argument("netops: vertex-count mismatch");
  }
  Graph out(n);
  for (VertexId u = 0; u < n; ++u) {
    DynamicBitset row = a.neighbors(u);
    row ^= b.neighbors(u);
    row.for_each([&](std::size_t v) {
      if (v > u) out.add_edge(u, static_cast<VertexId>(v));
    });
  }
  return out;
}

Graph at_least_k_of_n(std::span<const Graph> graphs, std::size_t k) {
  const std::size_t n = common_order(graphs);
  if (k == 0 || k > graphs.size()) {
    throw std::invalid_argument("netops: k must be in [1, n_graphs]");
  }
  Graph out(n);
  // Bit-sliced counting: counter_[b] holds bit b of the per-position count.
  // Adding one input row is a ripple-carry over the slices — O(log n_graphs)
  // word operations per word of adjacency.
  const std::size_t slices = [&] {
    std::size_t bits = 1;
    while ((std::size_t{1} << bits) <= graphs.size()) ++bits;
    return bits;
  }();
  std::vector<DynamicBitset> counter(slices, DynamicBitset(n));
  DynamicBitset carry(n);
  DynamicBitset next_carry(n);
  DynamicBitset result(n);
  for (VertexId u = 0; u < n; ++u) {
    for (auto& slice : counter) slice.clear_all();
    for (const Graph& g : graphs) {
      carry = g.neighbors(u);
      for (std::size_t b = 0; b < slices && carry.any(); ++b) {
        // next_carry = counter[b] AND carry; counter[b] ^= carry.
        next_carry.assign_and(counter[b], carry);
        counter[b] ^= carry;
        carry = next_carry;
      }
    }
    // result = positions where counter >= k: compare bit-sliced counter
    // against constant k, MSB first.
    result.clear_all();
    DynamicBitset equal(n);
    equal.set_all();
    for (std::size_t b = slices; b-- > 0;) {
      const bool k_bit = (k >> b) & 1u;
      if (!k_bit) {
        // count bit 1 while k bit 0 and equal so far -> count > k.
        next_carry.assign_and(equal, counter[b]);
        result |= next_carry;
      } else {
        // count bit 0 while k bit 1 -> count < k on this branch: drop from
        // `equal`; (no contribution to result).
      }
      // equal &= (counter[b] == k_bit)
      if (k_bit) {
        equal &= counter[b];
      } else {
        next_carry = counter[b];
        next_carry.flip_all();
        equal &= next_carry;
      }
    }
    result |= equal;  // count == k
    result.for_each([&](std::size_t v) {
      if (v > u) out.add_edge(u, static_cast<VertexId>(v));
    });
  }
  return out;
}

Graph graph_intersection(const Graph& a, const Graph& b) {
  const Graph pair[] = {a, b};
  return graph_intersection(std::span<const Graph>(pair, 2));
}

Graph graph_union(const Graph& a, const Graph& b) {
  const Graph pair[] = {a, b};
  return graph_union(std::span<const Graph>(pair, 2));
}

}  // namespace gsb::netops
