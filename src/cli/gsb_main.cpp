// gsb — the pipeline driver: every stage of the paper's workflow behind one
// binary.
//
// The paper's genomics pipeline is "raw microarray data after normalization,
// pairwise rank coefficient calculation, and filtering using threshold",
// followed by clique-based analysis of the resulting relationship graph.
// This tool exposes that chain end to end, plus the individual stages, so a
// run can start from synthetic expression data, a saved graph file, or a
// generated random ensemble.  Graphs live in text formats, a legacy binary
// stream, or the out-of-core `.gsbg` container: the latter is memory-mapped
// and analyzed directly off disk, never loaded.
//
//   $ gsb pipeline --genes 800 --samples 60 --threshold 0.70 --threads 4
//   $ gsb pipeline --out-of-core --genes 20000 --graph-out big.gsbg
//   $ gsb pipeline --graph-file big.gsbg --threads 8
//   $ gsb cliques graph.clq --min 4 --threads 8 --count-only
//   $ gsb cliques big.gsbg --engine bk --threads 8 --clique-out big.gsbc
//   $ gsb maximum graph.clq
//   $ gsb generate --kind modules --n 2000 --out graph.clq
//   $ gsb convert graph.clq graph.gsbg --degree-sort --wah
//   $ gsb info graph.gsbg --verify
//   $ gsb index big.gsbc
//   $ gsb query --graph-file big.gsbg --cliques big.gsbc 'cliques-containing 17'
//   $ gsb query --graph-file big.gsbg --batch queries.txt --threads 8 --cache
//   $ gsb serve --graph-file big.gsbg --cliques big.gsbc --socket /tmp/gsb.sock
//   $ cat graph.clq | gsb cliques - --min 5
//   $ gsb --help

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bitset/dynamic_bitset.h"

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/tiled_correlation.h"
#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "core/clique_enumerator.h"
#include "core/maximum_clique.h"
#include "core/parallel_bk.h"
#include "core/parallel_enumerator.h"
#include "graph/generators.h"
#include "graph/graph_view.h"
#include "graph/io.h"
#include "graph/transforms.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/timeline_export.h"
#include "obs/trace.h"
#include "service/control_text.h"
#include "pipeline/overlap.h"
#include "service/artifact_verify.h"
#include "service/batch_executor.h"
#include "service/client.h"
#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/tcp_server.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "util/cli.h"
#include "util/fault_injection.h"
#include "util/io.h"
#include "util/log.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gsb;

int usage(std::FILE* out) {
  std::fprintf(out,
R"(gsb — genome-scale clique analysis (SC'05 framework)

usage: gsb <command> [flags]

commands:
  pipeline   microarray -> normalize -> rank correlation -> threshold graph
             -> maximal cliques -> paracliques -> hub genes
  cliques    enumerate maximal cliques of a graph file
  maximum    exact maximum clique of a graph file
  generate   synthesize a graph file (G(n,p) or planted modules)
  convert    re-encode a graph (including to/from the .gsbg container)
  info       describe a graph file (.gsbg: header, sections, integrity)
  index      build the .gsbci random-access sidecar for a .gsbc stream
  query      answer graph/clique queries against resident artifacts
  serve      long-lived query loop (stdin, a Unix-domain socket, or TCP)
  verify     re-hash .gsbg/.gsbc/.gsbci artifacts end to end
  help       this text

graph inputs: DIMACS (.clq/.dimacs), edge list, legacy binary (.bin), or
the mappable .gsbg container.  Text formats also read from stdin via "-".
.gsbg graphs are memory-mapped and analyzed off disk, not loaded.

pipeline flags:
  --genes N --samples S     synthetic microarray shape   (800 x 60)
  --modules M               planted co-regulated modules (genes/40)
  --method pearson|spearman correlation method           (spearman)
  --threshold T             edge iff |corr| >= T         (0.70)
  --target-edges E          pick threshold for ~E edges  (off, in-core only)
  --graph-file FILE         skip expression stages, use graph (mmap for .gsbg)
  --out-of-core             tiled correlation -> .gsbg -> mmap'd analysis
  --tile-rows R             tile budget for --out-of-core (512)
  --graph-out FILE          where --out-of-core writes its .gsbg
  --init-k K --max-k K      enumeration size window      (4, unbounded)
  --threads P               worker threads, 0 = cores, 1 = sequential (0)
                            (correlation sweep + clique enumeration; edge
                            sets are identical at every thread count)
  --corr-block B            correlation kernel rows per cache block (128)
  --glom G                  paraclique non-neighbor allowance (1)
  --min-paraclique S        stop extraction below size S (5)
  --hubs H                  hub genes reported           (10)
  --seed X                  RNG seed                     (2005)
  --clique-out FILE.gsbc    stream cliques to disk instead of collecting
  --overlap                 schedule analysis stages as a dependency DAG:
                            independent stages run concurrently, hubs start
                            the moment enumeration finishes, and mapped
                            .gsbg inputs prefetch behind compute; artifacts
                            and stage output stay byte-identical to the
                            default staged order
  --csv PREFIX              also write PREFIX_*.csv tables
  --trace-out FILE.json     write the run's execution timeline as Chrome
                            trace JSON (open in Perfetto / chrome://tracing)
  --trace-io                also record per-syscall I/O spans in the trace

cliques flags: <file|-> [--graph-file FILE] [--format dimacs|edges|binary|gsbg]
               [--min K] [--max K] [--threads P] [--engine bk|enumerator]
               [--clique-out FILE.gsbc] [--count-only] [--progress]
               [--trace-out FILE.json] [--trace-io]
               --engine bk = degeneracy-ordered Bron-Kerbosch (parallel via
               work stealing); enumerator = size-ordered Clique Enumerator.
               --clique-out spills cliques to a .gsbc stream (bounded memory)
maximum flags: <file|-> [--graph-file FILE] [--format F]
generate flags: --kind gnp|modules --n N [--p P | --edges E] --out FILE
                [--seed X] [--format F] [--modules M] [--max-module S]
convert flags: <in> <out> [--in-format F] [--format F]
               [--degree-sort] [--wah] [--no-bitmap]    (.gsbg outputs)
info flags:    <file> [--format F] [--verify]   (also reads .gsbc streams)
index flags:   <file.gsbc> [--out FILE.gsbci] [--clean-tmp]
query flags:   --graph-file FILE ['QUERY' | --batch FILE|-] [--cliques F.gsbc]
               [--index F.gsbci] [--no-index] [--format F] [--threads P]
               [--cache] [--cache-bytes N] [--stats]
               remote: --connect HOST:PORT|SOCKET ['QUERY' | --batch FILE|-]
               [--binary] [--retries N] [--timeout-ms T]
               (pipelined against a running gsb serve; --retries
               reconnects and replays unanswered line-protocol requests)
serve flags:   --graph-file FILE [--cliques F.gsbc] [--index F.gsbci]
               [--no-index] [--format F] [--socket PATH | --tcp HOST:PORT]
               [--threads P] [--cache] [--cache-bytes N] [--inflight-bytes N]
               [--metrics] [--slow-query-log MICROS] [--request-timeout MS]
               [--idle-timeout MS] [--write-timeout MS] [--clean-tmp]
               [--trace-out FILE.json] [--trace-io]
               --metrics enables the registry and the `metrics` control
               request (Prometheus/JSON/traces: docs/OBSERVABILITY.md);
               --trace-out records request/job timelines for the whole
               run, and the `profile start`/`profile stop` control
               requests capture a bounded window over the wire
verify flags:  <artifact>...   (exit 1 when any artifact fails)

Every flag can also be set through the environment as GSB_<NAME>.
GSB_FAULT_SCHEDULE injects deterministic I/O faults for chaos testing
(grammar and fault model: docs/ROBUSTNESS.md).
Full reference with worked examples: docs/CLI.md; the query grammar and
wire format live in docs/SERVICE.md.
)");
  return out == stdout ? 0 : 2;
}

/// A graph ready for analysis: either owned in memory or memory-mapped from
/// a .gsbg container.  `view` stays valid across moves (it points into
/// heap/mapped storage, not into this struct).
struct GraphInput {
  graph::Graph owned;
  storage::MappedGraph mapped;
  bool use_mapped = false;
  graph::GraphView view;

  [[nodiscard]] std::size_t order() const noexcept { return view.order(); }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return view.num_edges();
  }

  /// Maps a stored vertex id back to the original labeling (identity unless
  /// the container is degree-sorted — also when the container lacked a
  /// bitmap and was loaded from its CSR).
  [[nodiscard]] graph::VertexId original_id(graph::VertexId v) const {
    if (mapped.is_open() && !mapped.permutation().empty()) {
      return mapped.permutation()[v];
    }
    return v;
  }
};

GraphInput adopt_graph(graph::Graph g) {
  GraphInput input;
  input.owned = std::move(g);
  input.view = graph::GraphView(input.owned);
  return input;
}

GraphInput adopt_mapped(storage::MappedGraph mapped) {
  GraphInput input;
  input.mapped = std::move(mapped);  // kept either way: owns the permutation
  if (input.mapped.has_bitmap()) {
    input.use_mapped = true;
    input.view = input.mapped.view();
  } else {
    // Compact container without the mappable section: load the CSR.
    input.owned = input.mapped.load();
    input.view = graph::GraphView(input.owned);
  }
  return input;
}

/// The one loader every command funnels through: dispatches .gsbg to the
/// mmap path, everything else (files or stdin "-") to graph::load_graph.
GraphInput load_input(const std::string& path, const std::string& format) {
  if (graph::detect_graph_format(path, format) == "gsbg") {
    return adopt_mapped(storage::MappedGraph::open(path));
  }
  return adopt_graph(graph::load_graph(path, format));
}

void save_output(const graph::Graph& g, const std::string& path,
                 const std::string& format, const std::string& comment,
                 const storage::GsbgWriteOptions& gsbg_options = {}) {
  if (graph::detect_graph_format(path, format) == "gsbg") {
    storage::write_gsbg_file(g, path, gsbg_options);
    return;
  }
  graph::save_graph(g, path, format, comment);
}

/// Non-negative integer flag; rejects `--threads -1`-style values instead of
/// letting them wrap through size_t into absurd allocation sizes.
std::size_t size_flag(const util::Cli& cli, const std::string& name,
                      std::int64_t fallback) {
  const std::int64_t value = cli.get_int(name, fallback);
  if (value < 0) {
    throw std::runtime_error("--" + name + " must be >= 0, got " +
                             std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

/// Runs the Clique Enumerator (sequential when threads == 1).
core::EnumerationStats enumerate(const graph::GraphView& g,
                                 const core::SizeRange& range,
                                 std::size_t threads,
                                 const core::CliqueCallback& sink) {
  if (threads == 1) {
    core::CliqueEnumeratorOptions options;
    options.range = range;
    return core::enumerate_maximal_cliques(g, sink, options);
  }
  core::ParallelOptions options;
  options.range = range;
  options.threads = threads;
  return core::enumerate_maximal_cliques_parallel(g, sink, options).base;
}

/// Runs the degeneracy-ordered Bron–Kerbosch engine (`--engine bk`):
/// sequential at --threads 1, the work-stealing parallel driver otherwise.
/// \p ordered selects the deterministic merge — callers whose sink is
/// order-insensitive (pure counting) skip the reorder buffering entirely.
/// Returns wall seconds; scheduling detail goes to stderr when verbose.
double run_bk_engine(const graph::GraphView& g, const core::SizeRange& range,
                     std::size_t threads, const core::CliqueCallback& sink,
                     bool ordered, bool verbose) {
  util::Timer timer;
  if (threads == 1) {
    core::degeneracy_bk(g, sink, range);
    return timer.seconds();
  }
  core::ParallelBkOptions options;
  options.range = range;
  options.threads = threads;
  options.deterministic = ordered;
  const auto stats = core::parallel_bk(g, sink, options);
  if (verbose) {
    std::fprintf(stderr,
                 "bk: degeneracy %zu, %zu threads, %llu roots stolen, "
                 "reorder peak %s\n",
                 stats.degeneracy, stats.threads,
                 static_cast<unsigned long long>(stats.steals),
                 util::format_bytes(stats.peak_pending_bytes).c_str());
  }
  return timer.seconds();
}

void warn_unqueried(const util::Cli& cli) {
  for (const auto& flag : cli.unqueried()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
  }
}

/// Startup hygiene for the directories a command writes artifacts into:
/// report `*.tmp.<pid>` debris left behind by crashed writers, and with
/// --clean-tmp remove it.  Temps owned by live pids (concurrent builds)
/// are never touched.
void handle_stale_temps(const util::Cli& cli,
                        const std::vector<std::string>& artifact_paths) {
  const bool clean = cli.get_bool("clean-tmp", false);
  std::vector<std::string> dirs;
  for (const std::string& path : artifact_paths) {
    if (path.empty()) continue;
    std::string parent = std::filesystem::path(path).parent_path().string();
    if (parent.empty()) parent = ".";
    if (std::find(dirs.begin(), dirs.end(), parent) == dirs.end()) {
      dirs.push_back(parent);
    }
  }
  for (const std::string& dir : dirs) {
    for (const auto& stale : util::io::find_stale_temps(dir)) {
      if (clean) {
        std::error_code ec;
        std::filesystem::remove(stale.path, ec);
        std::fprintf(stderr, "%s stale temp %s (pid %ld is dead)\n",
                     ec ? "warning: cannot remove" : "removed",
                     stale.path.c_str(), stale.pid);
      } else {
        std::fprintf(stderr,
                     "warning: stale temp %s (pid %ld is dead); remove it "
                     "with --clean-tmp\n",
                     stale.path.c_str(), stale.pid);
      }
    }
  }
}

/// Memory summary: the tracker's structure-level accounting next to the
/// OS-reported peak RSS — the numbers an out-of-core run quotes to prove
/// bounded memory.
void print_memory_summary(const std::string& csv,
                          std::size_t ooc_peak_bytes = 0) {
  const util::MemoryTracker& tracker = util::global_memory_tracker();
  util::TableWriter table({"memory", "bytes", "human"});
  auto row = [&](const char* label, std::size_t bytes) {
    table.add_row({label, util::format("%zu", bytes),
                   util::format_bytes(bytes).c_str()});
  };
  for (unsigned t = 0; t < static_cast<unsigned>(util::MemTag::kNumTags);
       ++t) {
    const auto tag = static_cast<util::MemTag>(t);
    const std::size_t bytes = tracker.current(tag);
    if (bytes != 0) {
      row(util::format("tracked %s",
                       std::string(util::MemoryTracker::tag_name(tag)).c_str())
              .c_str(),
          bytes);
    }
  }
  row("tracked peak", tracker.peak());
  if (ooc_peak_bytes != 0) row("out-of-core build peak", ooc_peak_bytes);
  row("process peak rss", util::process_peak_rss_bytes());
  std::printf("memory:\n");
  table.print();
  if (!csv.empty()) table.write_csv(csv + "_memory.csv");
}

// --- gsb pipeline -----------------------------------------------------------

/// `--trace-out FILE.json [--trace-io]`: arms the process-wide timeline
/// journal for the command's whole run.  Returns the output path (empty
/// = tracing off); pair with finish_timeline once the traced work is
/// done.  Recording is observational only — artifacts and stdout are
/// byte-identical with or without the flag.
std::string arm_timeline(const util::Cli& cli) {
  const std::string path = cli.get("trace-out", "");
  const bool io_spans = cli.get_bool("trace-io", false);
  if (path.empty()) return path;
  obs::TimelineJournal& journal = obs::TimelineJournal::global();
  journal.reset();
  journal.set_io_spans_enabled(io_spans);
  journal.set_enabled(true);
  return path;
}

/// Stops recording and writes the Chrome trace for arm_timeline's window.
void finish_timeline(const std::string& path) {
  if (path.empty()) return;
  obs::TimelineJournal& journal = obs::TimelineJournal::global();
  journal.set_enabled(false);
  const obs::TimelineSnapshot snapshot = journal.snapshot();
  obs::write_chrome_trace(journal, path);
  std::fprintf(stderr,
               "timeline: %zu events across %zu lanes -> %s"
               " (%llu dropped)\n",
               snapshot.events.size(), snapshot.lanes.size(), path.c_str(),
               static_cast<unsigned long long>(snapshot.dropped));
}

int cmd_pipeline(const util::Cli& cli) {
  const std::string trace_out = arm_timeline(cli);
  const auto threads = size_flag(cli, "threads", 0);
  const auto corr_block = size_flag(cli, "corr-block", 0);
  const auto init_k = size_flag(cli, "init-k", 4);
  const auto max_k = size_flag(cli, "max-k", 0);
  const auto glom = size_flag(cli, "glom", 1);
  const auto min_para = size_flag(cli, "min-paraclique", 5);
  const auto hub_count = size_flag(cli, "hubs", 10);
  const std::string csv = cli.get("csv", "");
  const std::string clique_out = cli.get("clique-out", "");
  const bool overlap = cli.get_bool("overlap", false);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2005)));

  // --- stage 1-3: expression -> normalize -> thresholded correlation graph.
  // Three routes: a graph file (mmap'd when .gsbg), the in-core builder, or
  // the tiled out-of-core builder (bounded memory at any gene count).
  GraphInput input;
  double threshold_used = 0.0;
  std::size_t ooc_peak_bytes = 0;
  const std::string graph_file =
      cli.has("graph-file") ? cli.get("graph-file", "") : cli.get("graph", "");
  if (!graph_file.empty()) {
    input = load_input(graph_file, cli.get("format", ""));
    threshold_used = cli.get_double("threshold", 0.0);
    std::printf("graph: %s %zu vertices, %zu edges (density %.3f%%)\n",
                input.use_mapped ? "mapped" : "loaded", input.order(),
                input.num_edges(), 100.0 * input.view.density());
  } else {
    const auto genes = size_flag(cli, "genes", 800);
    const auto samples = size_flag(cli, "samples", 60);
    bio::MicroarrayConfig config;
    config.genes = genes;
    config.samples = samples;
    config.modules =
        size_flag(cli, "modules", static_cast<std::int64_t>(genes / 40));
    auto data = bio::generate_microarray(config, rng);
    std::printf("microarray: %zu probes x %zu arrays, %zu planted modules\n",
                data.expression.genes(), data.expression.samples(),
                data.modules.size());
    bio::quantile_normalize(data.expression);

    const bool spearman = cli.get("method", "spearman") != "pearson";
    if (cli.get_bool("out-of-core", false)) {
      bio::TiledCorrelationOptions tiled;
      tiled.method = spearman ? bio::CorrelationMethod::kSpearman
                              : bio::CorrelationMethod::kPearson;
      tiled.threshold = cli.get_double("threshold", 0.70);
      tiled.tile_rows = size_flag(cli, "tile-rows", 512);
      tiled.threads = threads;
      tiled.block_rows = corr_block;
      std::string out_path = cli.get("graph-out", "");
      const bool keep_graph = !out_path.empty();
      if (!keep_graph) {
        // Unique per run: concurrent pipelines must not clobber each
        // other's container or its derived .std/.edges scratch files.
        std::random_device entropy;
        out_path = (std::filesystem::temp_directory_path() /
                    util::format("gsb_pipeline_%08x%08x.gsbg", entropy(),
                                 entropy()))
                       .string();
      }
      const auto built =
          bio::build_correlation_gsbg(data.expression, out_path, tiled);
      data.expression = bio::ExpressionMatrix();  // drop before analysis
      input = adopt_mapped(storage::MappedGraph::open(out_path));
      if (!keep_graph) {
        std::error_code ec;  // unlinked; the mapping stays valid
        std::filesystem::remove(out_path, ec);
      }
      threshold_used = built.threshold_used;
      ooc_peak_bytes = built.peak_tracked_bytes;
      std::printf(
          "correlation graph (out-of-core, %zu tiles of %zu rows): "
          "|rho| >= %.3f -> %zu edges (build peak %s)\n",
          built.tiles, tiled.tile_rows, threshold_used, input.num_edges(),
          util::format_bytes(built.peak_tracked_bytes).c_str());
    } else {
      bio::CorrelationGraphOptions graph_options;
      graph_options.method = spearman ? bio::CorrelationMethod::kSpearman
                                      : bio::CorrelationMethod::kPearson;
      graph_options.threshold = cli.get_double("threshold", 0.70);
      graph_options.target_edges = size_flag(cli, "target-edges", 0);
      graph_options.threads = threads;
      graph_options.corr_block = corr_block;
      auto built = bio::build_correlation_graph(data.expression,
                                                graph_options, rng);
      input = adopt_graph(std::move(built.graph));
      threshold_used = built.threshold_used;
      std::printf(
          "correlation graph: |rho| >= %.3f -> %zu edges (density %.3f%%)\n",
          threshold_used, input.num_edges(), 100.0 * input.view.density());
    }
  }
  warn_unqueried(cli);
  if (input.order() == 0) {
    std::fprintf(stderr, "error: empty graph, nothing to analyze\n");
    return 1;
  }
  const graph::GraphView& g = input.view;

  // --- stages 4-7: maximum clique, bounded enumeration (optionally
  // spilled to a .gsbc stream), paraclique extraction, hub report — all
  // through pipeline::run_analysis.  Staged mode (the default) runs them
  // inline in submission order, exactly the historical sequence;
  // --overlap schedules them as a par::JobGraph so independent stages
  // run concurrently, the hub report releases the moment enumeration
  // finishes, and a prefetch job pages a mapped .gsbg in behind compute.
  // Both modes produce byte-identical artifacts and stage output.
  const core::SizeRange range{init_k, max_k};
  pipeline::AnalysisOptions analysis_options;
  analysis_options.range = range;
  analysis_options.threads = threads;
  analysis_options.glom = glom;
  analysis_options.min_paraclique = min_para;
  analysis_options.hub_count = hub_count;
  analysis_options.clique_out = clique_out;
  analysis_options.overlap = overlap;
  analysis_options.original_id = [&input](graph::VertexId v) {
    return input.original_id(v);
  };
  if (input.use_mapped) analysis_options.prefetch = &input.mapped;
  const auto analysis_result = pipeline::run_analysis(g, analysis_options);

  std::printf("maximum clique: %zu vertices (%s)\n",
              analysis_result.maximum.clique.size(),
              util::format_seconds(analysis_result.maximum.seconds).c_str());
  const core::EnumerationStats& stats = analysis_result.enumeration;
  if (analysis_result.streamed) {
    const storage::GsbcWriteStats& written = analysis_result.stream;
    std::printf("clique stream: %s <- %llu cliques, %llu members (%s)\n",
                clique_out.c_str(),
                static_cast<unsigned long long>(written.clique_count),
                static_cast<unsigned long long>(written.member_total),
                util::format_bytes(written.file_bytes).c_str());
  }
  std::printf("maximal cliques in [%zu, %s]: %llu (%s, %zu threads)\n",
              range.lo,
              range.hi == 0 ? "inf" : std::to_string(range.hi).c_str(),
              static_cast<unsigned long long>(stats.total_maximal),
              util::format_seconds(stats.total_seconds).c_str(),
              threads == 0 ? static_cast<std::size_t>(
                                 std::thread::hardware_concurrency())
                           : threads);
  util::TableWriter size_table({"clique size", "count"});
  for (const auto& [size, count] : analysis_result.spectrum.size_histogram) {
    size_table.add_row(
        {util::format("%zu", size),
         util::format("%llu", static_cast<unsigned long long>(count))});
  }
  size_table.print();
  if (!csv.empty()) size_table.write_csv(csv + "_cliques.csv");

  const auto& paracliques = analysis_result.paracliques;
  util::TableWriter para_table(
      {"paraclique", "members", "seed", "density"});
  for (std::size_t i = 0; i < paracliques.size(); ++i) {
    const auto& p = paracliques[i];
    para_table.add_row({util::format("%zu", i + 1),
                        util::format("%zu", p.members.size()),
                        util::format("%zu", p.seed_size),
                        util::format("%.3f", p.density)});
  }
  std::printf("paracliques (glom %zu, min size %zu): %zu\n", glom, min_para,
              paracliques.size());
  para_table.print();
  if (!csv.empty()) para_table.write_csv(csv + "_paracliques.csv");

  // Hub vertex ids are reported in the original labeling even for
  // degree-sorted containers.
  const auto& hubs = analysis_result.hubs;
  util::TableWriter hub_table({"rank", "vertex", "degree", "cliques"});
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    hub_table.add_row({util::format("%zu", i + 1),
                       util::format("%u", input.original_id(hubs[i].vertex)),
                       util::format("%zu", hubs[i].degree),
                       util::format("%u", hubs[i].clique_participation)});
  }
  std::printf("top %zu hub vertices:\n", hubs.size());
  hub_table.print();
  if (!csv.empty()) hub_table.write_csv(csv + "_hubs.csv");

  if (overlap) {
    const par::JobGraphStats& sched = analysis_result.sched;
    std::printf(
        "scheduler: %llu jobs (%llu stolen), peak ready %llu, "
        "prefetched %s, stages %s\n",
        static_cast<unsigned long long>(sched.jobs_run),
        static_cast<unsigned long long>(sched.jobs_stolen),
        static_cast<unsigned long long>(sched.peak_ready),
        util::format_bytes(analysis_result.prefetched_bytes).c_str(),
        util::format_seconds(analysis_result.seconds).c_str());
  }

  finish_timeline(trace_out);
  print_memory_summary(csv, ooc_peak_bytes);
  return 0;
}

// --- gsb cliques ------------------------------------------------------------

int cmd_cliques(const util::Cli& cli) {
  std::string path = cli.get("graph-file", "");
  if (path.empty() && cli.positional().size() >= 2) {
    path = cli.positional()[1];
  }
  if (path.empty()) {
    std::fprintf(
        stderr,
        "usage: gsb cliques <graph-file|-> [--graph-file FILE]\n"
        "           [--format dimacs|edges|binary|gsbg] [--min K] [--max K]\n"
        "           [--threads P] [--engine bk|enumerator]\n"
        "           [--clique-out FILE.gsbc] [--count-only] [--progress]\n");
    return 2;
  }
  const std::string engine = cli.get("engine", "enumerator");
  if (engine != "bk" && engine != "enumerator") {
    std::fprintf(stderr, "error: unknown --engine '%s' (bk|enumerator)\n",
                 engine.c_str());
    return 2;
  }
  const std::string trace_out = arm_timeline(cli);
  GraphInput input = load_input(path, cli.get("format", ""));
  const graph::GraphView& g = input.view;
  std::fprintf(stderr, "%s %zu vertices, %zu edges (density %.3f%%)\n",
               input.use_mapped ? "mapped" : "loaded", g.order(),
               g.num_edges(), 100.0 * g.density());

  const core::SizeRange range{
      size_flag(cli, "min", 3),
      size_flag(cli, "max", 0)};
  const auto threads = size_flag(cli, "threads", 0);
  const bool count_only = cli.get_bool("count-only", false);
  const std::string clique_out = cli.get("clique-out", "");
  const bool progress = cli.get_bool("progress", false);
  if (progress) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  warn_unqueried(cli);

  // Sink chain: always count; optionally spill to a .gsbc stream and/or
  // print members.  --clique-out replaces stdout emission (the stream *is*
  // the output), keeping memory bounded — nothing retains the cliques.
  std::optional<storage::GsbcWriter> writer;
  if (!clique_out.empty()) writer.emplace(clique_out, g.order());
  const bool print_members = !count_only && !writer;
  core::CliqueCounter counter;
  auto counting = counter.callback();
  std::vector<graph::VertexId> members;
  const core::CliqueCallback sink =
      [&](std::span<const graph::VertexId> clique) {
        counting(clique);
        if (!writer && !print_members) return;
        // Translate to original labels (the degree-sort permutation
        // scrambles ascending order; the stream writer canonicalizes it
        // itself, printing restores it explicitly).
        members.assign(clique.begin(), clique.end());
        for (auto& v : members) v = input.original_id(v);
        if (writer) {
          writer->append(members);
          return;
        }
        std::sort(members.begin(), members.end());
        for (std::size_t i = 0; i < members.size(); ++i) {
          std::printf("%s%u", i ? " " : "", members[i]);
        }
        std::printf("\n");
      };

  double seconds = 0.0;
  if (engine == "bk") {
    // Deterministic merge only when emission order is observable (clique
    // lines or a .gsbc stream); pure counting skips the reorder buffer.
    const bool ordered = writer.has_value() || print_members;
    seconds = run_bk_engine(g, range, threads, sink, ordered, progress);
  } else {
    seconds = enumerate(g, range, threads, sink).total_seconds;
  }
  std::fprintf(stderr, "%llu maximal cliques in %s (engine %s)\n",
               static_cast<unsigned long long>(counter.total()),
               util::format_seconds(seconds).c_str(), engine.c_str());
  if (writer) {
    const auto written = writer->close();
    std::printf("clique stream: %s <- %llu cliques, %llu members (%s)\n",
                clique_out.c_str(),
                static_cast<unsigned long long>(written.clique_count),
                static_cast<unsigned long long>(written.member_total),
                util::format_bytes(written.file_bytes).c_str());
  }
  if (count_only) {
    util::TableWriter table({"size", "maximal cliques"});
    for (const auto& [size, count] : counter.by_size()) {
      table.add_row(
          {util::format("%zu", size),
           util::format("%llu", static_cast<unsigned long long>(count))});
    }
    table.print();
  }
  finish_timeline(trace_out);
  return 0;
}

// --- gsb maximum ------------------------------------------------------------

int cmd_maximum(const util::Cli& cli) {
  std::string path = cli.get("graph-file", "");
  if (path.empty() && cli.positional().size() >= 2) {
    path = cli.positional()[1];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: gsb maximum <graph-file|-> [--graph-file FILE] "
                 "[--format F]\n");
    return 2;
  }
  GraphInput input = load_input(path, cli.get("format", ""));
  warn_unqueried(cli);
  const auto result = core::maximum_clique(input.view);
  std::printf("maximum clique: %zu vertices (%llu nodes, %s)\n",
              result.clique.size(),
              static_cast<unsigned long long>(result.tree_nodes),
              util::format_seconds(result.seconds).c_str());
  std::vector<graph::VertexId> members;
  members.reserve(result.clique.size());
  for (const graph::VertexId v : result.clique) {
    members.push_back(input.original_id(v));
  }
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::printf("%s%u", i ? " " : "", members[i]);
  }
  std::printf("\n");
  return 0;
}

// --- gsb generate -----------------------------------------------------------

int cmd_generate(const util::Cli& cli) {
  const std::string out = cli.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: gsb generate --kind gnp|modules --n N "
                 "[--p P | --edges E] --out FILE\n");
    return 2;
  }
  const std::string kind = cli.get("kind", "gnp");
  const auto n = size_flag(cli, "n", 1000);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2005)));

  graph::Graph g;
  std::string comment;
  if (kind == "gnp") {
    const double p = cli.get_double("p", 0.01);
    g = graph::gnp(n, p, rng);
    comment = util::format("G(%zu, %g)", n, p);
  } else if (kind == "modules") {
    graph::ModuleGraphConfig config;
    config.n = n;
    config.num_modules =
        size_flag(cli, "modules", static_cast<std::int64_t>(n / 33));
    config.max_module_size =
        size_flag(cli, "max-module", 20);
    const auto target =
        size_flag(cli, "edges", 0);
    auto built = target > 0
                     ? graph::planted_modules_with_edges(config, target, rng)
                     : graph::planted_modules(config, rng);
    g = std::move(built.graph);
    comment = util::format("planted modules on %zu vertices (%zu modules)", n,
                           built.modules.size());
  } else {
    std::fprintf(stderr, "error: unknown --kind '%s'\n", kind.c_str());
    return 2;
  }
  warn_unqueried(cli);
  save_output(g, out, cli.get("format", ""), comment);
  // Keep stdout clean when it carries the graph itself.
  std::fprintf(out == "-" ? stderr : stdout,
               "wrote %s: %zu vertices, %zu edges (density %.3f%%)\n",
               out.c_str(), g.order(), g.num_edges(), 100.0 * g.density());
  return 0;
}

// --- gsb convert ------------------------------------------------------------

int cmd_convert(const util::Cli& cli) {
  if (cli.positional().size() < 3) {
    std::fprintf(stderr,
                 "usage: gsb convert <in> <out> [--in-format F] "
                 "[--format F] [--degree-sort] [--wah] [--no-bitmap]\n");
    return 2;
  }
  const std::string in_path = cli.positional()[1];
  const std::string out_path = cli.positional()[2];
  storage::GsbgWriteOptions gsbg_options;
  gsbg_options.degree_sort = cli.get_bool("degree-sort", false);
  gsbg_options.wah = cli.get_bool("wah", false);
  gsbg_options.bitmap = !cli.get_bool("no-bitmap", false);
  const std::string in_format = cli.get("in-format", "");
  const std::string out_format = cli.get("format", "");
  warn_unqueried(cli);

  GraphInput input = load_input(in_path, in_format);
  const std::size_t order = input.order();
  const std::size_t edges = input.num_edges();

  // A degree-sorted source stores relabeled vertices; restore the original
  // labels before re-encoding so conversions never silently relabel (a new
  // --degree-sort on the output re-sorts from the originals).
  graph::Graph unpermuted;
  bool have_unpermuted = false;
  if (input.mapped.is_open() && !input.mapped.permutation().empty()) {
    const auto perm = input.mapped.permutation();
    std::vector<graph::VertexId> inverse(perm.size());
    for (graph::VertexId stored = 0; stored < perm.size(); ++stored) {
      inverse[perm[stored]] = stored;
    }
    // A bitmap-less container was already materialized into input.owned by
    // adopt_mapped; reuse it rather than rebuilding from the CSR.
    unpermuted = graph::relabel(input.use_mapped ? input.mapped.load()
                                                 : std::move(input.owned),
                                inverse);
    have_unpermuted = true;
  }

  if (graph::detect_graph_format(out_path, out_format) == "gsbg") {
    if (have_unpermuted) {
      storage::write_gsbg_file(unpermuted, out_path, gsbg_options);
    } else {
      storage::write_gsbg_file(input.view, out_path, gsbg_options);
    }
  } else {
    // Materializes when the source was mapped; text/legacy formats need an
    // in-memory graph.
    const graph::Graph owned = have_unpermuted ? std::move(unpermuted)
                               : input.use_mapped
                                   ? input.mapped.load()
                                   : std::move(input.owned);
    graph::save_graph(owned, out_path, out_format,
                      "converted from " + in_path);
  }
  if (out_path == "-") {
    std::fprintf(stderr, "wrote %zu vertices, %zu edges to stdout\n", order,
                 edges);
  } else {
    const auto bytes = std::filesystem::file_size(out_path);
    std::printf("wrote %s: %zu vertices, %zu edges, %s\n", out_path.c_str(),
                order, edges, util::format_bytes(bytes).c_str());
  }
  return 0;
}

// --- gsb info ---------------------------------------------------------------

int cmd_info(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "usage: gsb info <file> [--format F] [--verify]\n");
    return 2;
  }
  const std::string path = cli.positional()[1];
  const std::string format = cli.get("format", "");
  const bool verify = cli.get_bool("verify", false);
  warn_unqueried(cli);

  // Clique streams are inspectable too: header totals plus the optional
  // integrity pass.  Every record is decoded before anything is printed —
  // open-time bounds catch gross truncation, but a cut inside a record can
  // stay within them, and reporting totals the file does not contain would
  // be lying (the structural scan fails loudly instead).
  if (path.size() > 5 && path.ends_with(".gsbc")) {
    storage::GsbcReader::Options options;
    options.verify_checksum = verify;
    auto reader = storage::GsbcReader::open(path, options);
    std::vector<graph::VertexId> members;
    while (reader.next(members)) {
    }
    std::printf(
        "%s: gsbc v%u clique stream, universe %zu vertices\n"
        "cliques %llu, members %llu, largest %llu, mean size %.2f\n",
        path.c_str(), reader.header().version, reader.order(),
        static_cast<unsigned long long>(reader.clique_count()),
        static_cast<unsigned long long>(reader.member_total()),
        static_cast<unsigned long long>(reader.max_size()),
        reader.clique_count() == 0
            ? 0.0
            : static_cast<double>(reader.member_total()) /
                  static_cast<double>(reader.clique_count()));
    std::printf("file: %s, checksum %016llx%s\n",
                util::format_bytes(std::filesystem::file_size(path)).c_str(),
                static_cast<unsigned long long>(reader.header().checksum),
                verify ? " (verified)" : "");
    return 0;
  }

  if (graph::detect_graph_format(path, format) != "gsbg") {
    const graph::Graph g = graph::load_graph(path, format);
    std::printf("%s: %zu vertices, %zu edges (density %.3f%%), max degree "
                "%zu\n",
                path.c_str(), g.order(), g.num_edges(), 100.0 * g.density(),
                g.max_degree());
    return 0;
  }

  storage::MappedGraph::Options options;
  options.verify_checksum = verify;
  const auto mapped = storage::MappedGraph::open(path, options);
  std::printf("%s: gsbg v%u, %zu vertices, %zu edges (density %.3f%%)\n",
              path.c_str(), mapped.header().version, mapped.order(),
              mapped.num_edges(), 100.0 * mapped.density());
  std::printf("file: %s, checksum %016llx%s, %s\n",
              util::format_bytes(mapped.file_bytes()).c_str(),
              static_cast<unsigned long long>(mapped.header().checksum),
              verify ? " (verified)" : "",
              mapped.degree_sorted() ? "degree-sorted" : "original order");

  util::TableWriter table({"section", "bytes", "human"});
  auto section_name = [](storage::SectionKind kind) {
    switch (kind) {
      case storage::SectionKind::kCsrOffsets: return "csr offsets";
      case storage::SectionKind::kCsrTargets: return "csr targets";
      case storage::SectionKind::kBitmap: return "bitmap adjacency";
      case storage::SectionKind::kWahOffsets: return "wah offsets";
      case storage::SectionKind::kWahWords: return "wah words";
      case storage::SectionKind::kPermutation: return "permutation";
    }
    return "?";
  };
  for (const auto& section : mapped.sections()) {
    table.add_row({section_name(section.kind),
                   util::format("%llu",
                                static_cast<unsigned long long>(section.size)),
                   util::format_bytes(section.size).c_str()});
  }
  table.print();

  if (mapped.has_wah()) {
    // Compression ratio of the WAH sections against the bitmap equivalent.
    const std::size_t bitmap_bytes =
        mapped.order() *
        bits::DynamicBitset::word_count(mapped.order()) *
        sizeof(std::uint64_t);
    std::size_t wah_bytes = 0;
    for (const auto& section : mapped.sections()) {
      if (section.kind == storage::SectionKind::kWahWords) {
        wah_bytes = section.size;
      }
    }
    if (wah_bytes > 0) {
      std::printf("wah compression: %.1fx (bitmap %s -> %s)\n",
                  static_cast<double>(bitmap_bytes) /
                      static_cast<double>(wah_bytes),
                  util::format_bytes(bitmap_bytes).c_str(),
                  util::format_bytes(wah_bytes).c_str());
    }
  }
  return 0;
}

// --- gsb index --------------------------------------------------------------

int cmd_index(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: gsb index <file.gsbc> [--out FILE.gsbci] "
                 "[--clean-tmp]\n");
    return 2;
  }
  const std::string gsbc_path = cli.positional()[1];
  const std::string out_path =
      cli.get("out", service::default_index_path(gsbc_path));
  handle_stale_temps(cli, {gsbc_path, out_path});
  warn_unqueried(cli);
  util::Timer timer;
  const auto stats = service::build_clique_index(gsbc_path, out_path);
  std::printf(
      "wrote %s: %llu cliques, %llu postings, %s (%s)\n", out_path.c_str(),
      static_cast<unsigned long long>(stats.clique_count),
      static_cast<unsigned long long>(stats.posting_total),
      util::format_bytes(stats.file_bytes).c_str(),
      util::format_seconds(timer.seconds()).c_str());
  return 0;
}

// --- gsb verify -------------------------------------------------------------

int cmd_verify(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "usage: gsb verify <artifact>...\n");
    return 2;
  }
  warn_unqueried(cli);
  int failures = 0;
  for (std::size_t i = 1; i < cli.positional().size(); ++i) {
    try {
      std::printf("%s\n", service::verify_artifact(cli.positional()[i]).c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// --- gsb query / gsb serve --------------------------------------------------

/// Opens the service artifacts a query/serve invocation names: the graph
/// (mmap'd for .gsbg), the optional clique stream, and — unless --no-index
/// — the `.gsbci` sidecar (explicit via --index, else probed next to the
/// stream).
service::GraphSpec service_spec(const util::Cli& cli) {
  service::GraphSpec spec;
  spec.graph_path = cli.get("graph-file", "");
  spec.format = cli.get("format", "");
  spec.cliques_path = cli.get("cliques", "");
  spec.index_path = cli.get("index", "");
  spec.probe_index = !cli.get_bool("no-index", false);
  return spec;
}

std::shared_ptr<service::GraphEntry> open_service_entry(
    const util::Cli& cli, service::GraphCatalog& catalog) {
  auto entry = catalog.open("default", service_spec(cli));
  std::fprintf(stderr, "graph: %zu vertices, %zu edges%s%s\n", entry->order(),
               entry->view().num_edges(),
               entry->has_cliques() ? ", clique stream attached" : "",
               entry->index() != nullptr ? " (indexed)" : "");
  return entry;
}

/// Runs the query batch against a remote `gsb serve` instead of local
/// artifacts: `--connect HOST:PORT` (TCP) or `--connect /path.sock` (Unix
/// socket), pipelining every request on one connection.  `--binary`
/// switches the wire format; the response bytes are identical either way.
/// On the line protocol, `retries` reconnects-and-replays; every query
/// is read-only and deterministic, so the replayed session's responses
/// are byte-identical to a fault-free one.  `timeout_ms` bounds connect
/// and socket inactivity on both protocols (0 = no bound).
int run_remote_query(const std::string& target, bool binary,
                     const std::vector<std::string>& lines,
                     std::size_t retries, std::size_t timeout_ms) {
  std::vector<std::string> requests;
  for (const std::string& line : lines) {
    // Blank lines are keep-alives with no response; sending one through a
    // pipelined call would wait forever for a reply that never comes.
    if (line.find_first_not_of(" \t\r\n") != std::string::npos) {
      requests.push_back(line);
    }
  }
  const bool unix_socket = target.find('/') != std::string::npos;
  std::vector<std::string> responses;
  if (binary) {
    auto client =
        unix_socket ? service::ServiceClient::connect_unix(target, timeout_ms)
                    : service::ServiceClient::connect_tcp(target, timeout_ms);
    client.set_io_timeout(timeout_ms);
    for (auto& response : client.call_pipelined(requests)) {
      responses.push_back(std::move(response.payload));
    }
  } else {
    service::RetryPolicy policy;
    policy.retries = retries;
    policy.timeout_ms = timeout_ms;
    service::RetryingClient client(target, unix_socket, policy);
    responses = client.request_pipelined(requests);
  }
  std::size_t errors = 0;
  for (const std::string& response : responses) {
    if (response.rfind("error:", 0) == 0) ++errors;
    // Metrics payloads travel one-line-framed on the wire; unwrap them for
    // the terminal so `gsb query --connect ... metrics` prints scrapable
    // Prometheus text (JSON and traces are naturally single-line).
    constexpr std::string_view kProm = "ok metrics prom ";
    constexpr std::string_view kJson = "ok metrics json ";
    constexpr std::string_view kTraces = "ok metrics traces ";
    if (response.rfind(kProm, 0) == 0) {
      const std::string text =
          obs::unescape_multiline(response.substr(kProm.size()));
      std::fwrite(text.data(), 1, text.size(), stdout);
      if (text.empty() || text.back() != '\n') std::printf("\n");
    } else if (response.rfind(kJson, 0) == 0) {
      std::printf("%s\n", response.c_str() + kJson.size());
    } else if (response.rfind(kTraces, 0) == 0) {
      std::printf("%s\n", response.c_str() + kTraces.size());
    } else if (constexpr std::string_view kProfile = "ok profile {";
               response.rfind(kProfile, 0) == 0) {
      // `profile stop` answers with the Chrome trace itself; unwrap so
      // the output redirects straight into a Perfetto-loadable file.
      std::printf("%s\n", response.c_str() + kProfile.size() - 1);
    } else {
      std::printf("%s\n", response.c_str());
    }
  }
  const bool all_errors = !responses.empty() && errors == responses.size();
  return all_errors ? 1 : 0;
}

int cmd_query(const util::Cli& cli) {
  const std::string batch_path = cli.get("batch", "");
  const std::string connect_target = cli.get("connect", "");
  if ((connect_target.empty() && cli.get("graph-file", "").empty()) ||
      (batch_path.empty() && cli.positional().size() < 2)) {
    std::fprintf(
        stderr,
        "usage: gsb query --graph-file FILE ['QUERY' ... | --batch FILE|-]\n"
        "           [--cliques F.gsbc] [--index F.gsbci] [--no-index]\n"
        "           [--format F] [--threads P] [--cache] [--cache-bytes N]\n"
        "           [--stats]     (grammar: docs/SERVICE.md)\n"
        "   or: gsb query --connect HOST:PORT|SOCKET [--binary]\n"
        "           [--retries N] [--timeout-ms T]\n"
        "           ['QUERY' ... | --batch FILE|-]\n");
    return 2;
  }
  const auto threads = size_flag(cli, "threads", 0);
  const bool use_cache = cli.get_bool("cache", false);
  const auto cache_bytes = size_flag(cli, "cache-bytes", 64 << 20);
  const bool print_stats = cli.get_bool("stats", false);

  std::vector<std::string> lines;
  if (batch_path.empty()) {
    lines.assign(cli.positional().begin() + 1, cli.positional().end());
  } else if (batch_path == "-") {
    std::string line;
    while (std::getline(std::cin, line)) lines.push_back(line);
  } else {
    std::ifstream in(batch_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open batch file '%s'\n",
                   batch_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }

  if (!connect_target.empty()) {
    const bool binary = cli.get_bool("binary", false);
    const auto retries = size_flag(cli, "retries", 0);
    const auto timeout_ms = size_flag(cli, "timeout-ms", 0);
    if (binary && retries > 0) {
      std::fprintf(stderr,
                   "warning: --retries applies to the line protocol; "
                   "--binary runs without retry\n");
    }
    warn_unqueried(cli);
    return run_remote_query(connect_target, binary, lines, retries,
                            timeout_ms);
  }

  service::GraphCatalog catalog;
  auto entry = open_service_entry(cli, catalog);
  warn_unqueried(cli);

  std::optional<service::ResultCache> cache;
  if (use_cache) cache.emplace(cache_bytes);
  service::BatchOptions options;
  options.threads = threads;
  options.cache = cache ? &*cache : nullptr;
  util::Timer timer;
  const auto result = service::execute_batch(entry, lines, options);
  const double seconds = timer.seconds();
  for (const std::string& response : result.responses) {
    std::printf("%s\n", response.c_str());
  }
  if (print_stats) {
    std::fprintf(
        stderr,
        "query: %llu queries (%llu errors) in %s, %zu threads; "
        "index %llu, rescans %llu, records %llu",
        static_cast<unsigned long long>(result.engine.executed),
        static_cast<unsigned long long>(result.engine.errors),
        util::format_seconds(seconds).c_str(), result.threads_used,
        static_cast<unsigned long long>(result.engine.index_queries),
        static_cast<unsigned long long>(result.engine.stream_scans),
        static_cast<unsigned long long>(result.engine.records_decoded));
    if (cache) {
      const auto cache_stats = cache->stats();
      std::fprintf(
          stderr, "; cache %llu/%llu hits, %llu evictions, %s",
          static_cast<unsigned long long>(result.cache_hits),
          static_cast<unsigned long long>(result.cache_hits +
                                          result.cache_misses),
          static_cast<unsigned long long>(cache_stats.evictions),
          util::format_bytes(cache_stats.bytes).c_str());
    }
    std::fprintf(stderr, "\n");
  }
  // One-shot ergonomics: all-error batches signal failure to scripts.
  const bool all_errors =
      !result.responses.empty() &&
      result.engine.errors == result.engine.executed;
  return all_errors ? 1 : 0;
}

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) {
  g_serve_stop.store(true, std::memory_order_relaxed);
}

int cmd_serve(const util::Cli& cli) {
  if (cli.get("graph-file", "").empty()) {
    std::fprintf(
        stderr,
        "usage: gsb serve --graph-file FILE [--cliques F.gsbc]\n"
        "           [--index F.gsbci] [--no-index] [--format F]\n"
        "           [--socket PATH | --tcp HOST:PORT] [--threads P]\n"
        "           [--cache] [--cache-bytes N] [--inflight-bytes N]\n"
        "           [--metrics] [--slow-query-log MICROS]\n"
        "           [--request-timeout MS] [--idle-timeout MS]\n"
        "           [--write-timeout MS] [--clean-tmp]\n"
        "           [--trace-out FILE.json] [--trace-io]\n");
    return 2;
  }
  const auto threads = size_flag(cli, "threads", 0);
  const bool use_cache = cli.get_bool("cache", false);
  const auto cache_bytes = size_flag(cli, "cache-bytes", 64 << 20);
  const std::string socket_path = cli.get("socket", "");
  const std::string tcp_address = cli.get("tcp", "");
  const auto inflight_bytes = size_flag(cli, "inflight-bytes", 4 << 20);
  const auto slow_query_log = size_flag(cli, "slow-query-log", 0);
  const auto request_timeout = size_flag(cli, "request-timeout", 0);
  const auto idle_timeout = size_flag(cli, "idle-timeout", 0);
  const auto write_timeout = size_flag(cli, "write-timeout", 0);
  handle_stale_temps(cli, {cli.get("graph-file", ""), cli.get("cliques", ""),
                           cli.get("index", "")});
  // A slow-query threshold needs the tracer, which needs the registry, so
  // --slow-query-log implies --metrics.
  const bool metrics = cli.get_bool("metrics", false) || slow_query_log > 0;
  if (!socket_path.empty() && !tcp_address.empty()) {
    std::fprintf(stderr, "error: --socket and --tcp are exclusive\n");
    return 2;
  }
  if (metrics) {
    obs::MetricsRegistry::global().set_enabled(true);
    obs::Tracer::global().set_enabled(true);
    if (slow_query_log > 0) {
      obs::Tracer::global().set_slow_log_micros(slow_query_log);
    }
  }
  const std::string trace_out = arm_timeline(cli);

  service::GraphCatalog catalog;
  const service::GraphSpec spec = service_spec(cli);
  auto entry = open_service_entry(cli, catalog);
  warn_unqueried(cli);

  std::optional<service::ResultCache> cache;
  if (use_cache) cache.emplace(cache_bytes);
  service::ServeOptions options;
  options.threads = threads;
  options.cache = cache ? &*cache : nullptr;
  options.stop = &g_serve_stop;
  options.request_timeout_ms = request_timeout;
  options.idle_timeout_ms = idle_timeout;
#if defined(__unix__) || defined(__APPLE__)
  // sigaction without SA_RESTART, so Ctrl-C interrupts the blocking
  // stdin read instead of waiting for the next input line.
  struct sigaction action{};
  action.sa_handler = serve_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
#else
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
#endif

  if (!tcp_address.empty()) {
    service::TcpServerOptions tcp_options;
    tcp_options.threads = threads;
    tcp_options.cache = cache ? &*cache : nullptr;
    tcp_options.stop = &g_serve_stop;
    tcp_options.max_inflight_bytes = inflight_bytes;
    tcp_options.request_timeout_ms = request_timeout;
    tcp_options.idle_timeout_ms = idle_timeout;
    tcp_options.write_timeout_ms = write_timeout;
    // `reload` control request: re-open the same artifact spec under a
    // fresh epoch and swap it in under live traffic.
    tcp_options.reload = [&catalog, spec] {
      return catalog.open("default", spec);
    };
    service::TcpServer server(entry, tcp_address, tcp_options);
    std::fprintf(stderr, "serving on tcp %s (port %u)\n", tcp_address.c_str(),
                 static_cast<unsigned>(server.port()));
    const auto tcp_stats = server.serve();
    std::fprintf(
        stderr,
        "served %llu requests (%llu connections); engine: %llu queries, "
        "%llu errors; cache %llu/%llu hits; busy %llu, reloads %llu, "
        "protocol errors %llu%s\n",
        static_cast<unsigned long long>(tcp_stats.requests),
        static_cast<unsigned long long>(tcp_stats.connections),
        static_cast<unsigned long long>(tcp_stats.engine.executed),
        static_cast<unsigned long long>(tcp_stats.engine.errors),
        static_cast<unsigned long long>(tcp_stats.cache_hits),
        static_cast<unsigned long long>(tcp_stats.cache_hits +
                                        tcp_stats.cache_misses),
        static_cast<unsigned long long>(tcp_stats.busy_rejections),
        static_cast<unsigned long long>(tcp_stats.reloads),
        static_cast<unsigned long long>(tcp_stats.protocol_errors),
        tcp_stats.shutdown_requested ? " (client shutdown)" : "");
    const std::string latency = service::latency_quantile_fields();
    if (!latency.empty()) {
      std::fprintf(stderr, "request latency:%s\n", latency.c_str());
    }
    finish_timeline(trace_out);
    print_memory_summary("");
    return 0;
  }

  service::ServeStats stats;
  if (socket_path.empty()) {
    std::fprintf(stderr, "serving on stdin (shutdown | ping | stats; EOF "
                         "stops)\n");
    stats = service::serve_stream(entry, std::cin, std::cout, options);
  } else {
    std::fprintf(stderr, "serving on unix socket %s\n", socket_path.c_str());
    stats = service::serve_unix_socket(entry, socket_path, options);
  }
  std::fprintf(
      stderr,
      "served %llu requests (%llu connections); engine: %llu queries, "
      "%llu errors, index %llu, rescans %llu; cache %llu/%llu hits%s\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.engine.executed),
      static_cast<unsigned long long>(stats.engine.errors),
      static_cast<unsigned long long>(stats.engine.index_queries),
      static_cast<unsigned long long>(stats.engine.stream_scans),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_hits + stats.cache_misses),
      stats.shutdown_requested ? " (client shutdown)" : "");
  const std::string latency = service::latency_quantile_fields();
  if (!latency.empty()) {
    std::fprintf(stderr, "request latency:%s\n", latency.c_str());
  }
  finish_timeline(trace_out);
  print_memory_summary("");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::anchor_process_start();
  try {
    // Chaos smoke: GSB_FAULT_SCHEDULE arms the fault shim for the whole
    // process before any I/O happens.
    if (gsb::fault::install_from_env()) {
      std::fprintf(stderr,
                   "fault injection armed from GSB_FAULT_SCHEDULE\n");
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: bad GSB_FAULT_SCHEDULE: %s\n",
                 error.what());
    return 2;
  }
  const util::Cli cli(argc, argv);
  const std::string command =
      cli.positional().empty() ? "" : cli.positional().front();
  if (cli.has("help") || command == "help") return usage(stdout);
  try {
    if (command == "pipeline") return cmd_pipeline(cli);
    if (command == "cliques") return cmd_cliques(cli);
    if (command == "maximum") return cmd_maximum(cli);
    if (command == "generate") return cmd_generate(cli);
    if (command == "convert") return cmd_convert(cli);
    if (command == "info") return cmd_info(cli);
    if (command == "index") return cmd_index(cli);
    if (command == "query") return cmd_query(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "verify") return cmd_verify(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage(stderr);
}
