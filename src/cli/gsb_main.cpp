// gsb — the pipeline driver: every stage of the paper's workflow behind one
// binary.
//
// The paper's genomics pipeline is "raw microarray data after normalization,
// pairwise rank coefficient calculation, and filtering using threshold",
// followed by clique-based analysis of the resulting relationship graph.
// This tool exposes that chain end to end, plus the individual stages, so a
// run can start from synthetic expression data, a saved graph file, or a
// generated random ensemble.
//
//   $ gsb pipeline --genes 800 --samples 60 --threshold 0.70 --threads 4
//   $ gsb cliques graph.clq --min 4 --threads 8 --count-only
//   $ gsb maximum graph.clq
//   $ gsb generate --kind modules --n 2000 --out graph.clq
//   $ gsb --help

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "core/clique.h"
#include "core/clique_enumerator.h"
#include "core/maximum_clique.h"
#include "core/parallel_enumerator.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace gsb;

int usage(std::FILE* out) {
  std::fprintf(out,
R"(gsb — genome-scale clique analysis (SC'05 framework)

usage: gsb <command> [flags]

commands:
  pipeline   microarray -> normalize -> rank correlation -> threshold graph
             -> maximal cliques -> paracliques -> hub genes
  cliques    enumerate maximal cliques of a graph file
  maximum    exact maximum clique of a graph file
  generate   synthesize a graph file (G(n,p) or planted modules)
  help       this text

pipeline flags:
  --genes N --samples S     synthetic microarray shape   (800 x 60)
  --modules M               planted co-regulated modules (genes/40)
  --method pearson|spearman correlation method           (spearman)
  --threshold T             edge iff |corr| >= T         (0.70)
  --target-edges E          pick threshold for ~E edges  (off)
  --graph FILE              skip expression stages, load graph instead
  --init-k K --max-k K      enumeration size window      (4, unbounded)
  --threads P               worker threads, 0 = cores, 1 = sequential (0)
  --glom G                  paraclique non-neighbor allowance (1)
  --min-paraclique S        stop extraction below size S (5)
  --hubs H                  hub genes reported           (10)
  --seed X                  RNG seed                     (2005)
  --csv PREFIX              also write PREFIX_*.csv tables

cliques flags: <file> [--format dimacs|edges|binary] [--min K] [--max K]
               [--threads P] [--count-only] [--progress]
maximum flags: <file> [--format dimacs|edges|binary]
generate flags: --kind gnp|modules --n N [--p P | --edges E] --out FILE
                [--seed X] [--format dimacs|edges|binary]

Every flag can also be set through the environment as GSB_<NAME>.
)");
  return out == stdout ? 0 : 2;
}

/// Explicit --format value, or sniffed from the path extension.
std::string detect_format(const std::string& path, const std::string& format) {
  if (!format.empty()) return format;
  if (path.ends_with(".clq") || path.ends_with(".dimacs")) return "dimacs";
  if (path.ends_with(".bin") || path.ends_with(".gsbg")) return "binary";
  return "edges";
}

graph::Graph load_graph(const std::string& path, const std::string& format) {
  const std::string kind = detect_format(path, format);
  if (kind == "dimacs") return graph::read_dimacs_file(path);
  if (kind == "binary") return graph::read_binary_file(path);
  if (kind == "edges") return graph::read_edge_list_file(path);
  throw std::runtime_error("unknown format '" + kind + "'");
}

void save_graph(const graph::Graph& g, const std::string& path,
                const std::string& format, const std::string& comment) {
  const std::string kind = detect_format(path, format);
  if (kind == "dimacs") return graph::write_dimacs_file(g, path, comment);
  if (kind == "binary") return graph::write_binary_file(g, path);
  if (kind == "edges") return graph::write_edge_list_file(g, path);
  throw std::runtime_error("unknown format '" + kind + "'");
}

/// Non-negative integer flag; rejects `--threads -1`-style values instead of
/// letting them wrap through size_t into absurd allocation sizes.
std::size_t size_flag(const util::Cli& cli, const std::string& name,
                      std::int64_t fallback) {
  const std::int64_t value = cli.get_int(name, fallback);
  if (value < 0) {
    throw std::runtime_error("--" + name + " must be >= 0, got " +
                             std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

/// Runs the enumerator (sequential when threads == 1) and collects cliques.
core::EnumerationStats enumerate(const graph::Graph& g,
                                 const core::SizeRange& range,
                                 std::size_t threads,
                                 const core::CliqueCallback& sink) {
  if (threads == 1) {
    core::CliqueEnumeratorOptions options;
    options.range = range;
    return core::enumerate_maximal_cliques(g, sink, options);
  }
  core::ParallelOptions options;
  options.range = range;
  options.threads = threads;
  return core::enumerate_maximal_cliques_parallel(g, sink, options).base;
}

void warn_unqueried(const util::Cli& cli) {
  for (const auto& flag : cli.unqueried()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
  }
}

// --- gsb pipeline -----------------------------------------------------------

int cmd_pipeline(const util::Cli& cli) {
  const auto threads = size_flag(cli, "threads", 0);
  const auto init_k = size_flag(cli, "init-k", 4);
  const auto max_k = size_flag(cli, "max-k", 0);
  const auto glom = size_flag(cli, "glom", 1);
  const auto min_para = size_flag(cli, "min-paraclique", 5);
  const auto hub_count = size_flag(cli, "hubs", 10);
  const std::string csv = cli.get("csv", "");
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2005)));

  // --- stage 1-3: expression -> normalize -> thresholded correlation graph,
  // or a graph file when --graph is given.
  graph::Graph g;
  double threshold_used = 0.0;
  if (cli.has("graph")) {
    g = load_graph(cli.get("graph", ""), cli.get("format", ""));
    threshold_used = cli.get_double("threshold", 0.0);
    std::printf("graph: loaded %zu vertices, %zu edges (density %.3f%%)\n",
                g.order(), g.num_edges(), 100.0 * g.density());
  } else {
    const auto genes = size_flag(cli, "genes", 800);
    const auto samples = size_flag(cli, "samples", 60);
    bio::MicroarrayConfig config;
    config.genes = genes;
    config.samples = samples;
    config.modules =
        size_flag(cli, "modules", static_cast<std::int64_t>(genes / 40));
    auto data = bio::generate_microarray(config, rng);
    std::printf("microarray: %zu probes x %zu arrays, %zu planted modules\n",
                data.expression.genes(), data.expression.samples(),
                data.modules.size());

    bio::quantile_normalize(data.expression);
    bio::CorrelationGraphOptions graph_options;
    graph_options.method = cli.get("method", "spearman") == "pearson"
                               ? bio::CorrelationMethod::kPearson
                               : bio::CorrelationMethod::kSpearman;
    graph_options.threshold = cli.get_double("threshold", 0.70);
    graph_options.target_edges =
        size_flag(cli, "target-edges", 0);
    auto built = bio::build_correlation_graph(data.expression, graph_options,
                                              rng);
    g = std::move(built.graph);
    threshold_used = built.threshold_used;
    std::printf(
        "correlation graph: |rho| >= %.3f -> %zu edges (density %.3f%%)\n",
        threshold_used, g.num_edges(), 100.0 * g.density());
  }
  warn_unqueried(cli);
  if (g.order() == 0) {
    std::fprintf(stderr, "error: empty graph, nothing to analyze\n");
    return 1;
  }

  // --- stage 4: maximum clique fixes the enumeration upper bound (§2.1).
  const auto max_result = core::maximum_clique(g);
  std::printf("maximum clique: %zu vertices (%s)\n", max_result.clique.size(),
              util::format_seconds(max_result.seconds).c_str());

  // --- stage 5: bounded maximal clique enumeration.
  core::CliqueCollector collector;
  const core::SizeRange range{init_k, max_k};
  const auto stats = enumerate(g, range, threads, collector.callback());
  const auto& cliques = collector.cliques();
  std::printf("maximal cliques in [%zu, %s]: %llu (%s, %zu threads)\n",
              range.lo,
              range.hi == 0 ? "inf" : std::to_string(range.hi).c_str(),
              static_cast<unsigned long long>(stats.total_maximal),
              util::format_seconds(stats.total_seconds).c_str(),
              threads == 0 ? static_cast<std::size_t>(
                                 std::thread::hardware_concurrency())
                           : threads);

  const auto spectrum = analysis::clique_spectrum(cliques);
  util::TableWriter size_table({"clique size", "count"});
  for (const auto& [size, count] : spectrum.size_histogram) {
    size_table.add_row(
        {util::format("%zu", size),
         util::format("%llu", static_cast<unsigned long long>(count))});
  }
  size_table.print();
  if (!csv.empty()) size_table.write_csv(csv + "_cliques.csv");

  // --- stage 6: paraclique extraction (glom factor per the paper).
  analysis::ParacliqueOptions para_options;
  para_options.glom = glom;
  const auto paracliques =
      analysis::extract_all_paracliques(g, min_para, para_options);
  util::TableWriter para_table(
      {"paraclique", "members", "seed", "density"});
  for (std::size_t i = 0; i < paracliques.size(); ++i) {
    const auto& p = paracliques[i];
    para_table.add_row({util::format("%zu", i + 1),
                        util::format("%zu", p.members.size()),
                        util::format("%zu", p.seed_size),
                        util::format("%.3f", p.density)});
  }
  std::printf("paracliques (glom %zu, min size %zu): %zu\n", glom, min_para,
              paracliques.size());
  para_table.print();
  if (!csv.empty()) para_table.write_csv(csv + "_paracliques.csv");

  // --- stage 7: hub report (the paper's Lin7c-style analysis).
  const auto hubs = analysis::top_hubs(g, cliques, hub_count);
  util::TableWriter hub_table({"rank", "vertex", "degree", "cliques"});
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    hub_table.add_row({util::format("%zu", i + 1),
                       util::format("%u", hubs[i].vertex),
                       util::format("%zu", hubs[i].degree),
                       util::format("%u", hubs[i].clique_participation)});
  }
  std::printf("top %zu hub vertices:\n", hubs.size());
  hub_table.print();
  if (!csv.empty()) hub_table.write_csv(csv + "_hubs.csv");
  return 0;
}

// --- gsb cliques ------------------------------------------------------------

int cmd_cliques(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "usage: gsb cliques <graph-file> [flags]\n");
    return 2;
  }
  graph::Graph g = load_graph(cli.positional()[1], cli.get("format", ""));
  std::fprintf(stderr, "loaded %zu vertices, %zu edges (density %.3f%%)\n",
               g.order(), g.num_edges(), 100.0 * g.density());

  const core::SizeRange range{
      size_flag(cli, "min", 3),
      size_flag(cli, "max", 0)};
  const auto threads = size_flag(cli, "threads", 0);
  const bool count_only = cli.get_bool("count-only", false);
  if (cli.get_bool("progress", false)) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  warn_unqueried(cli);

  core::CliqueCounter counter;
  auto counting = counter.callback();
  const core::CliqueCallback sink =
      [&](std::span<const graph::VertexId> clique) {
        counting(clique);
        if (!count_only) {
          for (std::size_t i = 0; i < clique.size(); ++i) {
            std::printf("%s%u", i ? " " : "", clique[i]);
          }
          std::printf("\n");
        }
      };
  const auto stats = enumerate(g, range, threads, sink);
  std::fprintf(stderr, "%llu maximal cliques in %s\n",
               static_cast<unsigned long long>(stats.total_maximal),
               util::format_seconds(stats.total_seconds).c_str());
  if (count_only) {
    util::TableWriter table({"size", "maximal cliques"});
    for (const auto& [size, count] : counter.by_size()) {
      table.add_row(
          {util::format("%zu", size),
           util::format("%llu", static_cast<unsigned long long>(count))});
    }
    table.print();
  }
  return 0;
}

// --- gsb maximum ------------------------------------------------------------

int cmd_maximum(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "usage: gsb maximum <graph-file> [--format F]\n");
    return 2;
  }
  graph::Graph g = load_graph(cli.positional()[1], cli.get("format", ""));
  warn_unqueried(cli);
  const auto result = core::maximum_clique(g);
  std::printf("maximum clique: %zu vertices (%llu nodes, %s)\n",
              result.clique.size(),
              static_cast<unsigned long long>(result.tree_nodes),
              util::format_seconds(result.seconds).c_str());
  for (std::size_t i = 0; i < result.clique.size(); ++i) {
    std::printf("%s%u", i ? " " : "", result.clique[i]);
  }
  std::printf("\n");
  return 0;
}

// --- gsb generate -----------------------------------------------------------

int cmd_generate(const util::Cli& cli) {
  const std::string out = cli.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: gsb generate --kind gnp|modules --n N "
                 "[--p P | --edges E] --out FILE\n");
    return 2;
  }
  const std::string kind = cli.get("kind", "gnp");
  const auto n = size_flag(cli, "n", 1000);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2005)));

  graph::Graph g;
  std::string comment;
  if (kind == "gnp") {
    const double p = cli.get_double("p", 0.01);
    g = graph::gnp(n, p, rng);
    comment = util::format("G(%zu, %g)", n, p);
  } else if (kind == "modules") {
    graph::ModuleGraphConfig config;
    config.n = n;
    config.num_modules =
        size_flag(cli, "modules", static_cast<std::int64_t>(n / 33));
    config.max_module_size =
        size_flag(cli, "max-module", 20);
    const auto target =
        size_flag(cli, "edges", 0);
    auto built = target > 0
                     ? graph::planted_modules_with_edges(config, target, rng)
                     : graph::planted_modules(config, rng);
    g = std::move(built.graph);
    comment = util::format("planted modules on %zu vertices (%zu modules)", n,
                           built.modules.size());
  } else {
    std::fprintf(stderr, "error: unknown --kind '%s'\n", kind.c_str());
    return 2;
  }
  warn_unqueried(cli);
  save_graph(g, out, cli.get("format", ""), comment);
  std::printf("wrote %s: %zu vertices, %zu edges (density %.3f%%)\n",
              out.c_str(), g.order(), g.num_edges(), 100.0 * g.density());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string command =
      cli.positional().empty() ? "" : cli.positional().front();
  if (cli.has("help") || command == "help") return usage(stdout);
  try {
    if (command == "pipeline") return cmd_pipeline(cli);
    if (command == "cliques") return cmd_cliques(cli);
    if (command == "maximum") return cmd_maximum(cli);
    if (command == "generate") return cmd_generate(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage(stderr);
}
