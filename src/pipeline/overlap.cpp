#include "pipeline/overlap.h"

#include <algorithm>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "core/clique_enumerator.h"
#include "core/parallel_enumerator.h"
#include "parallel/thread_pool.h"
#include "util/timer.h"

namespace gsb::pipeline {

namespace {

/// Same dispatch as the CLI: sequential Clique Enumerator at one
/// thread, the level-synchronous parallel driver otherwise.
core::EnumerationStats enumerate(const graph::GraphView& g,
                                 const core::SizeRange& range,
                                 std::size_t threads,
                                 const core::CliqueCallback& sink) {
  if (threads == 1) {
    core::CliqueEnumeratorOptions options;
    options.range = range;
    return core::enumerate_maximal_cliques(g, sink, options);
  }
  core::ParallelOptions options;
  options.range = range;
  options.threads = threads;
  return core::enumerate_maximal_cliques_parallel(g, sink, options).base;
}

/// Touches one word per page of the container's CSR sections so the
/// kernel faults them in while the compute stages start on whatever is
/// already resident.  Returns the bytes walked.
std::uint64_t prefetch_container(const storage::MappedGraph& mapped) {
  constexpr std::size_t kPage = 4096;
  std::uint64_t sink = 0;
  std::uint64_t bytes = 0;
  const auto offsets = mapped.csr_offsets();
  for (std::size_t i = 0; i < offsets.size(); i += kPage / sizeof(offsets[0])) {
    sink += offsets[i];
  }
  bytes += offsets.size_bytes();
  const auto targets = mapped.csr_targets();
  for (std::size_t i = 0; i < targets.size(); i += kPage / sizeof(targets[0])) {
    sink += targets[i];
  }
  bytes += targets.size_bytes();
  // The sum is unused; keep the loads observable so they are not elided.
  asm volatile("" : : "r"(sink));
  return bytes;
}

}  // namespace

AnalysisResult run_analysis(const graph::GraphView& g,
                            const AnalysisOptions& options) {
  util::Timer timer;
  AnalysisResult result;
  result.streamed = !options.clique_out.empty();

  // Four stages, at most four runnable at once; the enumeration stage
  // parallelizes internally with its own worker team, so the scheduler
  // pool only needs enough workers to keep the independent stages and
  // the prefetch job concurrent.  Clamped to the hardware unless the
  // caller asked for a thread count explicitly (an explicit request
  // opts into oversubscription, like every other --threads site): with
  // a single core and no request, stage overlap is pure
  // oversubscription, and a one-worker pool takes JobGraph's inline
  // path — identical to staged.
  const std::size_t parallelism =
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t stage_workers =
      options.overlap ? std::min<std::size_t>(4, parallelism) : 1;
  par::ThreadPool pool(stage_workers);
  par::JobGraph graph(options.overlap && stage_workers > 1 ? &pool : nullptr);

  // Stage jobs carry timeline labels so a --trace-out capture shows the
  // overlap schedule as named lanes (prefetch visible against compute).
  const auto add_stage = [&graph](std::string label,
                                  std::function<void(std::size_t)> body) {
    par::JobGraph::JobSpec spec;
    spec.run = std::move(body);
    spec.label = std::move(label);
    return graph.add(std::move(spec));
  };

  if (options.prefetch != nullptr && options.prefetch->is_open()) {
    const storage::MappedGraph* mapped = options.prefetch;
    add_stage("prefetch", [&result, mapped](std::size_t) {
      result.prefetched_bytes = prefetch_container(*mapped);
    });
  }

  add_stage("maximum-clique", [&result, &g](std::size_t) {
    result.maximum = core::maximum_clique(g);
  });

  const par::JobId enum_job = add_stage(
      "enumeration", [&result, &g, &options](std::size_t) {
    if (!result.streamed) {
      core::CliqueCollector collector;
      result.enumeration = enumerate(g, options.range, options.threads,
                                     collector.callback());
      result.cliques = std::move(collector.cliques());
      result.spectrum = analysis::clique_spectrum(result.cliques);
      return;
    }
    storage::GsbcWriter writer(options.clique_out, g.order());
    result.participation.assign(g.order(), 0);
    std::vector<graph::VertexId> members;
    const core::CliqueCallback sink =
        [&](std::span<const graph::VertexId> clique) {
          for (const graph::VertexId v : clique) ++result.participation[v];
          result.spectrum.add(clique.size());
          members.assign(clique.begin(), clique.end());
          if (options.original_id) {
            for (auto& v : members) v = options.original_id(v);
          }
          writer.append(members);
        };
    result.enumeration = enumerate(g, options.range, options.threads, sink);
    result.stream = writer.close();
    result.spectrum.finalize();
  });

  add_stage("paracliques", [&result, &g, &options](std::size_t) {
    analysis::ParacliqueOptions para;
    para.glom = options.glom;
    result.paracliques =
        analysis::extract_all_paracliques(g, options.min_paraclique, para);
  });

  par::JobGraph::JobSpec hubs;
  hubs.label = "hubs";
  hubs.deps = {enum_job};
  hubs.run = [&result, &g, &options](std::size_t) {
    result.hubs = result.streamed
                      ? analysis::top_hubs(g, result.participation,
                                           options.hub_count)
                      : analysis::top_hubs(g, result.cliques,
                                           options.hub_count);
  };
  graph.add(std::move(hubs));

  graph.run();
  result.sched = graph.stats();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace gsb::pipeline
