#ifndef GSB_PIPELINE_OVERLAP_H
#define GSB_PIPELINE_OVERLAP_H

/// \file overlap.h
/// Overlapped execution of the pipeline's analysis stages.
///
/// `gsb pipeline` historically ran maximum clique -> enumeration ->
/// paraclique -> hubs strictly in sequence, although only the hub
/// report actually consumes the enumeration's output.  This runner
/// expresses the stages as a par::JobGraph: maximum clique, the
/// enumeration sweep, and paraclique extraction execute concurrently,
/// an optional prefetch job walks the mapped .gsbg container so page-in
/// hides behind compute, and the hub ranking is released the moment the
/// enumeration finishes.
///
/// Determinism: every stage runs the same code as the staged pipeline,
/// and stages only share the read-only graph view, so results — and the
/// .gsbc stream written by the enumeration job — are byte-identical to
/// a staged run at any thread count.  With `overlap = false` (or no
/// pool) the same jobs execute inline in submission order, which *is*
/// the staged pipeline; bench_pipeline compares the two modes.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "core/clique.h"
#include "core/enumeration_stats.h"
#include "core/maximum_clique.h"
#include "parallel/job_graph.h"
#include "storage/clique_stream.h"
#include "storage/mapped_graph.h"

namespace gsb::pipeline {

struct AnalysisOptions {
  /// Enumeration size window (CLI --init-k/--max-k).
  core::SizeRange range{4, 0};
  /// Worker threads for the enumeration sweep itself (0 = cores,
  /// 1 = sequential Clique Enumerator) — same meaning as --threads.
  std::size_t threads = 0;
  std::size_t glom = 1;
  std::size_t min_paraclique = 5;
  std::size_t hub_count = 10;
  /// Non-empty: stream cliques to this .gsbc instead of collecting.
  std::string clique_out;
  /// Stored-id -> original-label mapping for the .gsbc stream (null =
  /// identity; degree-sorted containers pass their permutation).
  std::function<graph::VertexId(graph::VertexId)> original_id;
  /// When set, an async job touches the container's pages ahead of the
  /// compute stages (no-op for in-memory graphs).
  const storage::MappedGraph* prefetch = nullptr;
  /// true: stages overlap on a scheduler pool; false: same jobs run
  /// inline in submission order (the staged baseline).
  bool overlap = true;
};

struct AnalysisResult {
  core::MaxCliqueResult maximum;
  core::EnumerationStats enumeration;
  /// Collected cliques (empty when streamed to .gsbc).
  std::vector<core::Clique> cliques;
  /// Per-vertex clique participation (filled on the streamed path).
  std::vector<std::uint32_t> participation;
  analysis::CliqueSpectrum spectrum;
  storage::GsbcWriteStats stream;  ///< valid when `streamed`
  bool streamed = false;
  std::vector<analysis::Paraclique> paracliques;
  std::vector<analysis::HubReport> hubs;
  std::uint64_t prefetched_bytes = 0;
  /// Scheduler counters for this run — the single source of truth the
  /// pipeline report and `gsb serve --metrics` both quote.
  par::JobGraphStats sched;
  double seconds = 0.0;
};

/// Runs maximum clique, bounded enumeration, paraclique extraction and
/// hub ranking over \p g per \p options.  Throws on I/O failure of the
/// .gsbc writer; any stage failure cancels the remaining stages.
AnalysisResult run_analysis(const graph::GraphView& g,
                            const AnalysisOptions& options);

}  // namespace gsb::pipeline

#endif  // GSB_PIPELINE_OVERLAP_H
