#ifndef GSB_PARALLEL_LOAD_BALANCER_H
#define GSB_PARALLEL_LOAD_BALANCER_H

/// \file load_balancer.h
/// The **centralized dynamic load balancer** of §2.3.
///
/// At every level the task scheduler (a) partitions the level's sub-lists
/// across threads — initially "evenly", thereafter respecting the thread
/// that produced each sub-list so work stays in local memory — and (b) when
/// the spread between thread loads exceeds a threshold "determined based on
/// the graph size, the total amount of current load, and differences of
/// their loads from the average load", transfers tasks from the most loaded
/// to the least loaded thread.  A transferred task is flagged: on NUMA
/// machines (the paper's Altix) it pays remote-memory access, which the
/// gsb::altix machine model charges for.

#include <cstdint>
#include <span>
#include <vector>

namespace gsb::par {

/// Threshold and policy knobs.
struct LoadBalancerConfig {
  /// Transfers trigger when (max_load - min_load) exceeds
  /// `threshold_frac * average_load + min_grain`.
  double threshold_frac = 0.10;
  /// Absolute slack added to the threshold, in cost units; prevents
  /// shuffling when the whole level is tiny relative to the graph size.
  std::uint64_t min_grain = 64;
  /// Disable transfers entirely (ablation: static even split).
  bool enable_transfers = true;
  /// Cap on transfer iterations per level (safety valve).
  std::size_t max_transfers = 1u << 20;
};

/// Result of one scheduling decision.
struct Assignment {
  /// tasks[t] = indices of the tasks thread t executes, in execution order.
  std::vector<std::vector<std::uint32_t>> tasks;
  /// Estimated load per thread after balancing.
  std::vector<std::uint64_t> load;
  /// remote[i] = true iff task i runs on a thread other than its home.
  std::vector<bool> remote;
  /// Number of tasks moved off their home thread.
  std::uint64_t transfers = 0;

  [[nodiscard]] std::uint64_t max_load() const noexcept;
  [[nodiscard]] std::uint64_t min_load() const noexcept;
  /// max/mean load ratio (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance() const noexcept;
};

/// Stateless scheduling policy (the "smart" decision procedure).
class LoadBalancer {
 public:
  explicit LoadBalancer(LoadBalancerConfig config = {}) : config_(config) {}

  /// Assigns tasks with the given \p costs to \p threads threads.
  ///
  /// \p home (optional, empty = none) gives each task's producing thread;
  /// tasks start on their home thread and are only moved by explicit
  /// transfer decisions.  Without home information the initial partition is
  /// an even contiguous split by count (the paper's "divides all k-cliques
  /// evenly"), which transfers then refine by cost.
  [[nodiscard]] Assignment assign(std::span<const std::uint64_t> costs,
                                  std::span<const std::uint32_t> home,
                                  std::size_t threads) const;

  [[nodiscard]] const LoadBalancerConfig& config() const noexcept {
    return config_;
  }

 private:
  LoadBalancerConfig config_;
};

}  // namespace gsb::par

#endif  // GSB_PARALLEL_LOAD_BALANCER_H
