#include "parallel/load_balancer.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <queue>

namespace gsb::par {

std::uint64_t Assignment::max_load() const noexcept {
  std::uint64_t best = 0;
  for (std::uint64_t l : load) best = std::max(best, l);
  return best;
}

std::uint64_t Assignment::min_load() const noexcept {
  if (load.empty()) return 0;
  std::uint64_t best = load[0];
  for (std::uint64_t l : load) best = std::min(best, l);
  return best;
}

double Assignment::imbalance() const noexcept {
  if (load.empty()) return 1.0;
  const std::uint64_t total =
      std::accumulate(load.begin(), load.end(), std::uint64_t{0});
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(load.size());
  return static_cast<double>(max_load()) / mean;
}

Assignment LoadBalancer::assign(std::span<const std::uint64_t> costs,
                                std::span<const std::uint32_t> home,
                                std::size_t threads) const {
  threads = std::max<std::size_t>(1, threads);
  const std::size_t n = costs.size();
  assert(home.empty() || home.size() == n);

  Assignment out;
  out.tasks.assign(threads, {});
  out.load.assign(threads, 0);
  out.remote.assign(n, false);
  std::vector<std::uint32_t> owner(n, 0);

  // --- initial partition ----------------------------------------------------
  if (!home.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t t = home[i] < threads ? home[i] : 0;
      owner[i] = t;
      out.load[t] += costs[i];
    }
  } else {
    // Even contiguous split by count.
    const std::size_t per = n / threads;
    const std::size_t extra = n % threads;
    std::size_t index = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t take = per + (t < extra ? 1 : 0);
      for (std::size_t s = 0; s < take; ++s, ++index) {
        owner[index] = static_cast<std::uint32_t>(t);
        out.load[t] += costs[index];
      }
    }
  }

  // --- threshold-triggered rebalance ------------------------------------------
  // When the spread between thread loads exceeds the threshold, the
  // scheduler redistributes: a locality-aware LPT pass over the tasks in
  // descending cost order.  Each task stays home whenever home is within
  // the threshold of the least-loaded thread; otherwise it is transferred
  // (and flagged remote).  O(T log T) — the per-move greedy of a naive
  // implementation is quadratic and was measurably slower than the
  // enumeration it scheduled.
  const std::uint64_t total =
      std::accumulate(out.load.begin(), out.load.end(), std::uint64_t{0});
  const double avg = static_cast<double>(total) / static_cast<double>(threads);
  const auto threshold = static_cast<std::uint64_t>(
      config_.threshold_frac * avg + static_cast<double>(config_.min_grain));
  const std::uint64_t spread = out.max_load() - out.min_load();

  if (config_.enable_transfers && threads > 1 && n > 0 &&
      spread > threshold) {
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (costs[a] != costs[b]) return costs[a] > costs[b];
                return a < b;
              });

    // Min-heap of (load, thread).
    using Slot = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
    std::vector<std::uint64_t> load(threads, 0);
    for (std::uint32_t t = 0; t < threads; ++t) heap.emplace(0, t);

    std::uint64_t moves = 0;
    for (std::uint32_t task : order) {
      // Lazy deletion: every load update pushes a fresh entry, so stale
      // entries are simply discarded (each is popped at most once).
      while (heap.top().first != load[heap.top().second]) heap.pop();
      const Slot top = heap.top();
      const std::uint32_t origin = owner[task];
      // Locality: keep the task home when home is within the threshold of
      // the least-loaded thread (or when the transfer budget is spent).
      const bool keep_home = load[origin] <= top.first + threshold ||
                             moves >= config_.max_transfers;
      const std::uint32_t target = keep_home ? origin : top.second;
      if (target != origin) {
        ++moves;
        out.remote[task] = home.empty() || target != home[task];
      }
      owner[task] = target;
      load[target] += costs[task];
      heap.emplace(load[target], target);
    }
    out.transfers = moves;
    out.load = std::move(load);
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.tasks[owner[i]].push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

}  // namespace gsb::par
