#ifndef GSB_PARALLEL_THREAD_POOL_H
#define GSB_PARALLEL_THREAD_POOL_H

/// \file thread_pool.h
/// A fixed team of worker threads executing bulk-synchronous rounds.
///
/// The paper's multithreaded Clique Enumerator is level-synchronous: the
/// task scheduler partitions the level's sub-lists, signals all threads to
/// start, waits for all to finish, then collects results and rebalances.
/// ThreadPool::run_round implements exactly that "signal all / join all"
/// primitive over persistent threads (forking per level would distort the
/// fine-grained level timings the evaluation reports).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gsb::par {

/// Persistent worker team.
class ThreadPool {
 public:
  /// Spawns \p threads workers (at least 1; 0 clamps to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Executes `body(thread_id)` on every worker concurrently and returns
  /// when all have finished.  Exceptions thrown by bodies terminate (the
  /// enumeration kernels are noexcept by construction); rounds must not be
  /// issued concurrently from multiple callers.
  ///
  /// Misuse is rejected instead of deadlocking: a round submitted after
  /// shutdown() throws std::runtime_error, and a round submitted from
  /// inside one of this pool's own running bodies (which would wait on
  /// workers that are all busy waiting on it) throws std::logic_error.
  /// Rounds on a *different* pool nest fine.
  void run_round(const std::function<void(std::size_t)>& body);

  /// Stops and joins the workers.  Idempotent; the destructor calls it.
  /// Must not race a run_round in flight (same single-caller contract as
  /// run_round itself).  After shutdown, run_round throws.
  void shutdown();

  /// True once shutdown() has run (or started).
  [[nodiscard]] bool stopped() const;

  /// Default worker count: hardware concurrency, at least 1.
  static std::size_t default_threads() noexcept;

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
};

}  // namespace gsb::par

#endif  // GSB_PARALLEL_THREAD_POOL_H
