#ifndef GSB_PARALLEL_JOB_GRAPH_H
#define GSB_PARALLEL_JOB_GRAPH_H

/// \file job_graph.h
/// Dependency-aware DAG scheduler over par::ThreadPool.
///
/// The pipeline stages each grew their own fan-out machinery: the
/// correlation sweep claimed tiles off an atomic cursor and reordered
/// hits under a mutex, parallel Bron-Kerbosch combined a LoadBalancer
/// plan with a reorder buffer and backpressure gate, and BatchExecutor
/// striped request lines over a borrowed pool.  JobGraph subsumes all
/// three: callers describe *jobs* (a parallel body plus an optional
/// ordered completion) and *edges* (prerequisites), and the scheduler
/// provides home-queue placement with work stealing, cycle rejection at
/// submit time, dynamic job spawn from running bodies, and a
/// deterministic-completion mode that preserves the repo's
/// byte-identical-output contract at every thread count.
///
/// Determinism contract: job bodies may run in any order consistent
/// with the edges and must confine side effects to job-private state
/// (their result slot, per-worker scratch).  When `Options::ordered` is
/// set, each job's `complete` callback runs exactly in JobId order —
/// the order `add` was called — one at a time, regardless of worker
/// count.  Emitting output only from `complete` therefore yields the
/// same bytes at 1 or N threads.  `Options::window_bytes` bounds the
/// reorder window exactly like parallel_bk's emitter: when finished-
/// but-undrained completions exceed the window, workers redirect to the
/// next-to-drain job instead of opening new work.
///
/// Edges release successors when the producer's *body* finishes (not
/// its ordered completion), so downstream stages overlap with the
/// emission tail — finished correlation rows can seed clique roots
/// while the writer drains earlier tiles.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"

namespace gsb::par {

using JobId = std::uint32_t;

/// Sentinel: job has no preferred worker; ready jobs without a home are
/// dealt round-robin across the worker queues.
inline constexpr std::uint32_t kNoHome = 0xFFFFFFFFu;

/// Aggregate counters for one JobGraph::run (also mirrored into
/// obs::MetricsRegistry under the gsb_sched_* family).
struct JobGraphStats {
  std::uint64_t jobs_run = 0;      ///< bodies executed (skipped jobs excluded)
  std::uint64_t jobs_stolen = 0;   ///< bodies taken from another worker's queue
  std::uint64_t peak_ready = 0;    ///< high-water count of simultaneously ready jobs
  std::uint64_t peak_pending_bytes = 0;  ///< high-water reorder-window occupancy
};

/// Typed data-passing edge.  A producer job `set`s the cell; consumers
/// connected by a graph edge `get` it.  The scheduler's completion
/// publish (edge release happens under the graph mutex) provides the
/// happens-before, so no atomics are needed in the payload itself.
template <typename T>
class JobValue {
 public:
  JobValue() : cell_(std::make_shared<std::optional<T>>()) {}

  void set(T value) const { cell_->emplace(std::move(value)); }
  [[nodiscard]] bool has_value() const noexcept { return cell_->has_value(); }
  [[nodiscard]] T& get() const { return cell_->value(); }

 private:
  std::shared_ptr<std::optional<T>> cell_;
};

/// Single-shot DAG scheduler.  Build the graph with add/add_edge, call
/// run() once, then read stats().  Thread-safe for add() from inside
/// running job bodies (dynamic spawn); construction-phase calls are
/// single-caller like the rest of the parallel layer.
class JobGraph {
 public:
  struct Options {
    /// Run each job's `complete` callback in JobId order (deterministic
    /// emission).  When false, `complete` runs immediately after the
    /// body on the same worker, unordered.
    bool ordered = false;
    /// Reorder-window bound in bytes for ordered mode; 0 = unbounded.
    /// Jobs account against the window with JobSpec::bytes from body
    /// finish until their completion drains.
    std::size_t window_bytes = 0;
    /// Cap on participating workers (0 = the pool's full size).  Lets a
    /// caller with a borrowed, larger pool keep its own clamp.
    std::size_t worker_limit = 0;
    /// Idle workers take ready jobs from other workers' queues.  Off,
    /// each worker only runs jobs homed to it (static-plan ablation).
    bool steal = true;
  };

  struct JobSpec {
    /// Parallel body; receives the executing worker id in
    /// [0, workers()).  Required.
    std::function<void(std::size_t)> run;
    /// Optional completion; ordered mode runs it in JobId order.
    std::function<void()> complete;
    /// Prerequisite jobs (must already exist).  Edges added here cannot
    /// form a cycle by construction; use add_edge for arbitrary pairs.
    std::vector<JobId> deps;
    /// Preferred worker queue (from a LoadBalancer plan); kNoHome
    /// round-robins.
    std::uint32_t home = kNoHome;
    /// Reorder-window accounting for ordered mode.
    std::size_t bytes = 0;
    /// Timeline label for this job's span (obs/timeline.h); empty jobs
    /// show up under their JobId only.  Purely observational.
    std::string label;
  };

  /// \p pool may be null: the graph then runs inline on the calling
  /// thread (worker id 0), which is also the path taken for one-worker
  /// pools.  The pool is borrowed, not owned.
  explicit JobGraph(ThreadPool* pool);
  JobGraph(ThreadPool* pool, Options options);
  ~JobGraph();

  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;

  /// Adds a job; returns its id (ids are dense, in add order).  Legal
  /// from inside a running body of this graph (the new job becomes
  /// ready once its deps finish).  Throws std::invalid_argument if a
  /// dep id does not exist, std::logic_error after run() has returned.
  JobId add(JobSpec spec);

  /// Convenience for dependency-free jobs.
  JobId add(std::function<void(std::size_t)> body) {
    JobSpec spec;
    spec.run = std::move(body);
    return add(std::move(spec));
  }

  /// Replaces the job's reorder-window accounting (JobSpec::bytes).
  /// Meant to be called from the job's own body once the actual output
  /// size is known; the value is read when the body finishes.
  void set_bytes(JobId id, std::size_t bytes);

  /// Declares that \p to must wait for \p from.  Rejected with
  /// std::invalid_argument at submit time if it would close a cycle
  /// (including self-edges); throws std::logic_error once run() has
  /// started (dynamic jobs declare deps through JobSpec::deps instead).
  void add_edge(JobId from, JobId to);

  /// Executes the graph to completion and drains all ordered
  /// completions.  If any body or completion throws, remaining
  /// not-yet-started jobs are skipped, in-flight bodies finish, and the
  /// first exception is rethrown — the pool itself stays usable.
  /// Single-shot: a second call throws std::logic_error.
  void run();

  /// Effective worker count this graph schedules across.
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

  /// Number of jobs added so far.
  [[nodiscard]] std::size_t size() const;

  /// Valid after run() returns (or throws).
  [[nodiscard]] const JobGraphStats& stats() const noexcept { return stats_; }

 private:
  struct Impl;
  void worker_loop(std::size_t worker);
  void make_ready_locked(JobId id);
  void fail_locked(std::exception_ptr error);
  [[nodiscard]] bool all_done_locked() const;
  JobId pop_locked(std::size_t worker, bool* stolen);

  ThreadPool* pool_;
  Options options_;
  std::size_t workers_;
  JobGraphStats stats_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gsb::par

#endif  // GSB_PARALLEL_JOB_GRAPH_H
