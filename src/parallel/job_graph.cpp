#include "parallel/job_graph.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace gsb::par {

namespace {

using Clock = std::chrono::steady_clock;

enum class JobState : std::uint8_t {
  kPending,   ///< waiting on prerequisites
  kReady,     ///< in a worker queue
  kRunning,   ///< body executing
  kFinished,  ///< body done, ordered completion not yet drained
  kSkipped,   ///< never ran (graph failed first)
  kDrained,   ///< fully retired
};

struct SchedMetrics {
  obs::Counter jobs;
  obs::Counter steals;
  obs::Histogram queue_wait;
  obs::Gauge ready_peak;
  obs::Gauge pending_peak;
};

SchedMetrics& sched_metrics() {
  static SchedMetrics m = [] {
    auto& reg = obs::MetricsRegistry::global();
    SchedMetrics handles;
    handles.jobs =
        reg.counter("gsb_sched_jobs_total", "Job bodies executed by JobGraph");
    handles.steals = reg.counter("gsb_sched_jobs_stolen_total",
                                 "Jobs executed off another worker's queue");
    handles.queue_wait =
        reg.histogram("gsb_sched_queue_wait_micros",
                      "Time jobs spent ready before a worker picked them up");
    handles.ready_peak = reg.gauge(
        "gsb_sched_ready_peak", "High-water count of simultaneously ready jobs");
    handles.pending_peak =
        reg.gauge("gsb_sched_pending_peak_bytes",
                  "High-water reorder-window occupancy across schedulers");
    return handles;
  }();
  return m;
}

}  // namespace

struct JobGraph::Impl {
  struct Job {
    std::function<void(std::size_t)> run;
    std::function<void()> complete;
    std::vector<JobId> succs;
    std::uint32_t remaining_deps = 0;
    std::uint32_t home = kNoHome;
    std::uint32_t queue = 0;  ///< ready queue it was placed in
    std::size_t bytes = 0;
    std::string label;
    JobState state = JobState::kPending;
    Clock::time_point ready_at{};
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Job> jobs;
  /// Per-worker ready queues.  Lazy removal: entries whose job is no
  /// longer kReady (claimed directly by the backpressure gate or
  /// skipped after a failure) are dropped on pop.
  std::vector<std::deque<JobId>> queues;
  std::size_t next_queue = 0;  ///< round-robin cursor for homeless jobs
  std::size_t ready_count = 0;
  std::size_t finished = 0;  ///< bodies done or skipped
  JobId drain_cursor = 0;    ///< next ordered completion to run
  std::size_t pending_bytes = 0;
  bool draining = false;
  bool started = false;
  bool done = false;
  std::exception_ptr failure;
  bool metrics_on = false;
  bool timeline_on = false;
};

JobGraph::JobGraph(ThreadPool* pool) : JobGraph(pool, Options{}) {}

JobGraph::JobGraph(ThreadPool* pool, Options options)
    : pool_(pool), options_(options), impl_(std::make_unique<Impl>()) {
  std::size_t workers = pool_ ? pool_->size() : 1;
  if (options_.worker_limit != 0) {
    workers = std::min(workers, options_.worker_limit);
  }
  workers_ = std::max<std::size_t>(1, workers);
  impl_->queues.resize(workers_);
  impl_->metrics_on = obs::MetricsRegistry::global().enabled();
  impl_->timeline_on = obs::TimelineJournal::global().enabled();
}

JobGraph::~JobGraph() = default;

std::size_t JobGraph::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->jobs.size();
}

JobId JobGraph::add(JobSpec spec) {
  if (!spec.run) {
    throw std::invalid_argument("JobGraph: job has no body");
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->done) {
    throw std::logic_error("JobGraph: add after run() returned");
  }
  const JobId id = static_cast<JobId>(impl_->jobs.size());
  for (JobId dep : spec.deps) {
    if (dep >= id) {
      throw std::invalid_argument("JobGraph: dep does not exist");
    }
  }
  Impl::Job job;
  job.run = std::move(spec.run);
  job.complete = std::move(spec.complete);
  job.home = spec.home;
  job.bytes = spec.bytes;
  job.label = std::move(spec.label);
  if (impl_->failure) {
    // The graph already failed: a dynamically spawned job must not run,
    // and must not stall termination either.
    job.state = JobState::kSkipped;
    job.complete = nullptr;
    job.bytes = 0;
    ++impl_->finished;
    impl_->jobs.push_back(std::move(job));
    return id;
  }
  for (JobId dep : spec.deps) {
    Impl::Job& producer = impl_->jobs[dep];
    if (producer.state == JobState::kFinished ||
        producer.state == JobState::kDrained) {
      continue;  // already satisfied
    }
    producer.succs.push_back(id);
    ++job.remaining_deps;
  }
  impl_->jobs.push_back(std::move(job));
  if (impl_->jobs.back().remaining_deps == 0) {
    make_ready_locked(id);
    impl_->cv.notify_all();
  }
  return id;
}

void JobGraph::set_bytes(JobId id, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (id >= impl_->jobs.size()) {
    throw std::invalid_argument("JobGraph: set_bytes on unknown job");
  }
  impl_->jobs[id].bytes = bytes;
}

void JobGraph::add_edge(JobId from, JobId to) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->started) {
    throw std::logic_error(
        "JobGraph: add_edge after run() started (use JobSpec::deps)");
  }
  if (from >= impl_->jobs.size() || to >= impl_->jobs.size()) {
    throw std::invalid_argument("JobGraph: edge endpoint does not exist");
  }
  if (from == to) {
    throw std::invalid_argument("JobGraph: self-edge is a cycle");
  }
  // Reject at submit time: adding from->to closes a cycle iff `from` is
  // already reachable from `to`.
  std::vector<JobId> stack{to};
  std::vector<bool> visited(impl_->jobs.size(), false);
  visited[to] = true;
  while (!stack.empty()) {
    const JobId at = stack.back();
    stack.pop_back();
    if (at == from) {
      throw std::invalid_argument("JobGraph: edge would create a cycle");
    }
    for (JobId succ : impl_->jobs[at].succs) {
      if (!visited[succ]) {
        visited[succ] = true;
        stack.push_back(succ);
      }
    }
  }
  impl_->jobs[from].succs.push_back(to);
  Impl::Job& sink = impl_->jobs[to];
  if (sink.remaining_deps++ == 0 && sink.state == JobState::kReady) {
    // Was enqueued as dependency-free; lazy removal drops the stale
    // queue entry when popped.
    sink.state = JobState::kPending;
    --impl_->ready_count;
  }
}

void JobGraph::run() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->started) {
      throw std::logic_error("JobGraph: run() is single-shot");
    }
    impl_->started = true;
    if (impl_->jobs.empty()) {
      impl_->done = true;
      return;
    }
  }
  if (pool_ != nullptr && workers_ > 1) {
    const std::size_t limit = workers_;
    pool_->run_round([this, limit](std::size_t id) {
      if (id < limit) worker_loop(id);
    });
  } else {
    worker_loop(0);
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->done = true;
  }
  if (impl_->metrics_on) {
    auto& m = sched_metrics();
    m.jobs.inc(stats_.jobs_run);
    if (stats_.jobs_stolen != 0) m.steals.inc(stats_.jobs_stolen);
    m.ready_peak.set_max(stats_.peak_ready);
    m.pending_peak.set_max(stats_.peak_pending_bytes);
  }
  if (impl_->failure) {
    std::rethrow_exception(impl_->failure);
  }
}

// ---------------------------------------------------------------------------
// Locked helpers.  All run under impl_->mutex; none call user code.

void JobGraph::make_ready_locked(JobId id) {
  Impl::Job& job = impl_->jobs[id];
  job.state = JobState::kReady;
  if (impl_->metrics_on || impl_->timeline_on) job.ready_at = Clock::now();
  const std::size_t queue =
      (job.home == kNoHome ? impl_->next_queue++
                           : static_cast<std::size_t>(job.home)) %
      workers_;
  job.queue = static_cast<std::uint32_t>(queue);
  impl_->queues[queue].push_back(id);
  ++impl_->ready_count;
  stats_.peak_ready = std::max<std::uint64_t>(stats_.peak_ready, impl_->ready_count);
}

void JobGraph::fail_locked(std::exception_ptr error) {
  if (!impl_->failure) impl_->failure = std::move(error);
  // Skip everything that has not started; in-flight bodies finish on
  // their own and find nothing left to do.
  for (auto& job : impl_->jobs) {
    if (job.state == JobState::kPending || job.state == JobState::kReady) {
      job.state = JobState::kSkipped;
      ++impl_->finished;
    }
  }
  impl_->ready_count = 0;
  impl_->cv.notify_all();
}

bool JobGraph::all_done_locked() const {
  if (impl_->finished != impl_->jobs.size()) return false;
  if (options_.ordered &&
      impl_->drain_cursor != static_cast<JobId>(impl_->jobs.size())) {
    return false;
  }
  return true;
}

JobId JobGraph::pop_locked(std::size_t worker, bool* stolen) {
  const std::size_t scan = options_.steal ? workers_ : 1;
  for (std::size_t i = 0; i < scan; ++i) {
    auto& queue = impl_->queues[(worker + i) % workers_];
    while (!queue.empty()) {
      const JobId id = queue.front();
      queue.pop_front();
      if (impl_->jobs[id].state == JobState::kReady) {
        *stolen = i != 0;
        return id;
      }
      // Stale entry: claimed by the backpressure gate or skipped.
    }
  }
  return kNoHome;
}

// ---------------------------------------------------------------------------

void JobGraph::worker_loop(std::size_t worker) {
  obs::TimelineJournal& journal = obs::TimelineJournal::global();
  if (impl_->timeline_on) {
    journal.set_thread_lane("worker-" + std::to_string(worker));
  }
  std::unique_lock<std::mutex> lock(impl_->mutex);
  for (;;) {
    if (all_done_locked()) {
      impl_->cv.notify_all();
      return;
    }
    // Drain ordered completions first: one drainer at a time, strictly
    // in JobId order, user code outside the lock.
    if (options_.ordered && !impl_->draining &&
        impl_->drain_cursor < impl_->jobs.size()) {
      const JobState head = impl_->jobs[impl_->drain_cursor].state;
      if (head == JobState::kFinished || head == JobState::kSkipped) {
        impl_->draining = true;
        while (impl_->drain_cursor < impl_->jobs.size()) {
          Impl::Job& job = impl_->jobs[impl_->drain_cursor];
          if (job.state != JobState::kFinished &&
              job.state != JobState::kSkipped) {
            break;
          }
          const bool call = job.state == JobState::kFinished &&
                            job.complete != nullptr && !impl_->failure;
          auto complete = std::move(job.complete);
          if (job.state == JobState::kFinished) {
            impl_->pending_bytes -= job.bytes;
          }
          job.state = JobState::kDrained;
          ++impl_->drain_cursor;
          if (call) {
            lock.unlock();
            try {
              complete();
            } catch (...) {
              lock.lock();
              fail_locked(std::current_exception());
              continue;
            }
            lock.lock();
          }
        }
        impl_->draining = false;
        impl_->cv.notify_all();
        continue;
      }
    }
    JobId id = kNoHome;
    bool stolen = false;
    const bool window_full = options_.ordered && options_.window_bytes != 0 &&
                             impl_->pending_bytes >= options_.window_bytes;
    if (window_full && impl_->drain_cursor < impl_->jobs.size()) {
      // Reorder window is full: redirect to the next-to-drain job so
      // the drain cursor advances instead of piling up more output.
      Impl::Job& head = impl_->jobs[impl_->drain_cursor];
      if (head.state == JobState::kReady &&
          (options_.steal || head.queue == worker)) {
        id = impl_->drain_cursor;  // claim directly; queue entry goes stale
        --impl_->ready_count;
      } else if (head.state == JobState::kRunning ||
                 head.state == JobState::kFinished) {
        impl_->cv.wait(lock);
        continue;
      }
      // kPending head still needs its prerequisites: fall through and
      // run whatever is ready so they can finish.
    }
    if (id == kNoHome) {
      id = pop_locked(worker, &stolen);
      if (id == kNoHome) {
        if (all_done_locked()) continue;
        impl_->cv.wait(lock);
        continue;
      }
      --impl_->ready_count;
    }
    std::function<void(std::size_t)> body;
    std::function<void()> unordered_complete;
    std::string label;
    {
      Impl::Job& job = impl_->jobs[id];
      job.state = JobState::kRunning;
      ++stats_.jobs_run;
      if (stolen) ++stats_.jobs_stolen;
      if (impl_->metrics_on || impl_->timeline_on) {
        const auto waited = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                  job.ready_at)
                .count());
        if (impl_->metrics_on) {
          sched_metrics().queue_wait.observe_micros(waited);
        }
        if (impl_->timeline_on) {
          const std::uint64_t now = journal.now_micros();
          journal.record(obs::TimelineEventKind::kQueueWait,
                         now >= waited ? now - waited : 0, waited, id,
                         job.label);
          if (stolen) {
            journal.record_instant(obs::TimelineEventKind::kSteal, id,
                                   job.label);
          }
        }
      }
      label = std::move(job.label);
      body = std::move(job.run);
      if (!options_.ordered) unordered_complete = std::move(job.complete);
    }
    lock.unlock();
    const std::uint64_t job_start =
        impl_->timeline_on ? journal.now_micros() : 0;
    std::exception_ptr error;
    try {
      body(worker);
      if (unordered_complete) unordered_complete();
    } catch (...) {
      error = std::current_exception();
    }
    if (impl_->timeline_on) {
      journal.record(obs::TimelineEventKind::kJob, job_start,
                     journal.now_micros() - job_start, id, label);
    }
    lock.lock();
    // Re-index: a dynamic add() from the body may have grown the jobs
    // vector, invalidating any reference held across the unlock.
    Impl::Job& job = impl_->jobs[id];
    job.state = JobState::kFinished;
    ++impl_->finished;
    if (error) {
      job.complete = nullptr;
      job.bytes = 0;  // never entered the window; drain must not deduct it
      fail_locked(error);
      continue;
    }
    if (options_.ordered) {
      impl_->pending_bytes += job.bytes;
      stats_.peak_pending_bytes = std::max<std::uint64_t>(
          stats_.peak_pending_bytes, impl_->pending_bytes);
    }
    for (JobId succ : job.succs) {
      Impl::Job& sink = impl_->jobs[succ];
      if (sink.state == JobState::kPending && --sink.remaining_deps == 0) {
        make_ready_locked(succ);
      }
    }
    impl_->cv.notify_all();
  }
}

}  // namespace gsb::par
