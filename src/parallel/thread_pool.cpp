#include "parallel/thread_pool.h"

#include <algorithm>

namespace gsb::par {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_round(const std::function<void(std::size_t)>& body) {
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &body;
  remaining_ = workers_.size();
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gsb::par
