#include "parallel/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace gsb::par {

namespace {
/// Pool whose worker is currently executing a round body on this thread;
/// lets run_round reject the re-entrant call that would otherwise deadlock
/// (the caller would wait for a round that can never start because every
/// worker — including itself — is occupied by the current one).
thread_local const ThreadPool* t_round_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

void ThreadPool::run_round(const std::function<void(std::size_t)>& body) {
  if (t_round_pool == this) {
    throw std::logic_error(
        "ThreadPool: re-entrant run_round from a worker of the same pool");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (stop_) {
    throw std::runtime_error("ThreadPool: round submitted after shutdown");
  }
  job_ = &body;
  remaining_ = workers_.size();
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    t_round_pool = this;
    (*job)(id);
    t_round_pool = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gsb::par
