#ifndef GSB_FPT_FEEDBACK_VERTEX_SET_H
#define GSB_FPT_FEEDBACK_VERTEX_SET_H

/// \file feedback_vertex_set.h
/// Feedback vertex set by bounded search (the paper's §4 future-work
/// application: "in phylogenetic footprinting ... it is feedback vertex set
/// that is the crucial combinatorial problem" [42, 43]).
///
/// A feedback vertex set (FVS) is a vertex set whose removal leaves the
/// graph acyclic.  The solver here is the classic shortest-cycle branching:
///   * reductions: repeatedly delete degree-<=1 vertices (they lie on no
///     cycle); a vertex carrying a multi-edge after degree-2 smoothing
///     would be forced — this implementation keeps simple graphs and
///     branches instead;
///   * branch: find a *shortest* cycle and try each of its vertices in the
///     solution (some vertex of every cycle must be chosen, and short
///     cycles bound the branching factor).
/// Exponential in k with a polynomial kernel step, in the same
/// branching-algorithm family the paper's framework targets ("our methods
/// make extensive use of branching ... and so benefit from immense shared
/// memory").

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gsb::fpt {

using graph::VertexId;

/// Outcome of an FVS decision query.
struct FeedbackVertexSetResult {
  bool feasible = false;        ///< an FVS of size <= k exists
  std::vector<VertexId> fvs;    ///< witness (sorted) when feasible
  std::uint64_t tree_nodes = 0; ///< branching nodes explored
  bool aborted = false;         ///< node budget exhausted
};

/// Options.
struct FeedbackVertexSetOptions {
  std::uint64_t max_nodes = 0;  ///< search-tree budget; 0 = unlimited
};

/// Decides whether \p g has a feedback vertex set of size at most \p k.
FeedbackVertexSetResult feedback_vertex_set_decide(
    const graph::Graph& g, std::size_t k,
    const FeedbackVertexSetOptions& options = {});

/// Minimum feedback vertex set via incremental deepening on k.
struct MinFeedbackVertexSetResult {
  std::vector<VertexId> fvs;
  std::uint64_t tree_nodes = 0;
};
MinFeedbackVertexSetResult minimum_feedback_vertex_set(
    const graph::Graph& g, const FeedbackVertexSetOptions& options = {});

/// True iff removing \p fvs from \p g leaves an acyclic graph.
bool is_feedback_vertex_set(const graph::Graph& g,
                            const std::vector<VertexId>& fvs);

}  // namespace gsb::fpt

#endif  // GSB_FPT_FEEDBACK_VERTEX_SET_H
