#include "fpt/feedback_vertex_set.h"

#include <algorithm>
#include <queue>

#include "bitset/dynamic_bitset.h"

namespace gsb::fpt {
namespace {

using bits::DynamicBitset;

/// Mutable view: the graph stays fixed; `alive` masks deleted vertices.
struct State {
  const graph::Graph* g = nullptr;
  DynamicBitset alive;

  [[nodiscard]] std::size_t live_degree(VertexId v) const {
    return DynamicBitset::count_and(alive, g->neighbors(v));
  }
};

/// Deletes degree-<=1 vertices to a fixed point (they lie on no cycle).
void prune_trees(State& s) {
  std::vector<VertexId> queue;
  for (std::size_t v = s.alive.find_first(); v < s.alive.size();
       v = s.alive.find_next(v)) {
    if (s.live_degree(static_cast<VertexId>(v)) <= 1) {
      queue.push_back(static_cast<VertexId>(v));
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    if (!s.alive.test(v)) continue;
    s.alive.reset(v);
    s.g->neighbors(v).for_each([&](std::size_t u) {
      if (s.alive.test(u) && s.live_degree(static_cast<VertexId>(u)) <= 1) {
        queue.push_back(static_cast<VertexId>(u));
      }
    });
  }
}

/// Shortest cycle through BFS from every live vertex; empty when acyclic.
/// Returns the cycle's vertices.
std::vector<VertexId> shortest_cycle(const State& s) {
  std::vector<VertexId> best;
  const std::size_t n = s.alive.size();
  std::vector<std::int64_t> parent(n);
  std::vector<std::int32_t> depth(n);
  for (std::size_t root = s.alive.find_first(); root < n;
       root = s.alive.find_next(root)) {
    // BFS tree from root; the first non-tree edge closing back on the BFS
    // tree yields a short cycle through the root's component.
    std::fill(parent.begin(), parent.end(), -1);
    std::fill(depth.begin(), depth.end(), -1);
    std::queue<VertexId> frontier;
    frontier.push(static_cast<VertexId>(root));
    depth[root] = 0;
    parent[root] = static_cast<std::int64_t>(root);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      bool done = false;
      s.g->neighbors(v).for_each([&](std::size_t u) {
        if (done || !s.alive.test(u)) return;
        if (depth[u] < 0) {
          depth[u] = depth[v] + 1;
          parent[u] = v;
          frontier.push(static_cast<VertexId>(u));
          return;
        }
        if (static_cast<std::int64_t>(u) == parent[v]) return;
        // Non-tree edge (v, u): walk both ends up to their meeting point.
        std::vector<VertexId> left{v};
        std::vector<VertexId> right{static_cast<VertexId>(u)};
        VertexId a = v;
        VertexId b = static_cast<VertexId>(u);
        while (a != b) {
          if (depth[a] >= depth[b]) {
            a = static_cast<VertexId>(parent[a]);
            left.push_back(a);
          } else {
            b = static_cast<VertexId>(parent[b]);
            right.push_back(b);
          }
        }
        // a == b is the meeting vertex, present at the back of `left`.
        std::vector<VertexId> cycle(left);
        for (std::size_t i = right.size() - 1; i-- > 0;) {
          cycle.push_back(right[i]);
        }
        if (best.empty() || cycle.size() < best.size()) best = cycle;
        done = true;
      });
      if (done) break;
    }
    if (best.size() == 3) break;  // no shorter cycle exists
  }
  return best;
}

class FvsSearch {
 public:
  FvsSearch(const graph::Graph& g, const FeedbackVertexSetOptions& options,
            FeedbackVertexSetResult& result)
      : g_(g), options_(options), result_(result) {}

  bool solve(State s, std::size_t k, std::vector<VertexId>& chosen) {
    ++result_.tree_nodes;
    if (options_.max_nodes != 0 && result_.tree_nodes > options_.max_nodes) {
      result_.aborted = true;
      return false;
    }
    prune_trees(s);
    const auto cycle = shortest_cycle(s);
    if (cycle.empty()) {
      result_.fvs = chosen;
      std::sort(result_.fvs.begin(), result_.fvs.end());
      result_.feasible = true;
      return true;
    }
    if (k == 0) return false;
    // Some vertex of every cycle belongs to the solution.
    for (const VertexId v : cycle) {
      State child = s;
      child.alive.reset(v);
      chosen.push_back(v);
      if (solve(std::move(child), k - 1, chosen)) return true;
      chosen.pop_back();
    }
    return false;
  }

 private:
  const graph::Graph& g_;
  const FeedbackVertexSetOptions& options_;
  FeedbackVertexSetResult& result_;
};

}  // namespace

FeedbackVertexSetResult feedback_vertex_set_decide(
    const graph::Graph& g, std::size_t k,
    const FeedbackVertexSetOptions& options) {
  FeedbackVertexSetResult result;
  State s;
  s.g = &g;
  s.alive.resize(g.order());
  s.alive.set_all();
  FvsSearch search(g, options, result);
  std::vector<VertexId> chosen;
  search.solve(std::move(s), k, chosen);
  return result;
}

MinFeedbackVertexSetResult minimum_feedback_vertex_set(
    const graph::Graph& g, const FeedbackVertexSetOptions& options) {
  MinFeedbackVertexSetResult result;
  for (std::size_t k = 0; k <= g.order(); ++k) {
    auto attempt = feedback_vertex_set_decide(g, k, options);
    result.tree_nodes += attempt.tree_nodes;
    if (attempt.feasible) {
      result.fvs = std::move(attempt.fvs);
      break;
    }
    if (attempt.aborted) break;
  }
  return result;
}

bool is_feedback_vertex_set(const graph::Graph& g,
                            const std::vector<VertexId>& fvs) {
  DynamicBitset alive(g.order());
  alive.set_all();
  for (VertexId v : fvs) {
    if (v >= g.order()) return false;
    alive.reset(v);
  }
  // Acyclic iff every component's BFS meets no non-tree edge.
  std::vector<std::int64_t> parent(g.order(), -1);
  std::vector<bool> seen(g.order(), false);
  for (std::size_t root = alive.find_first(); root < g.order();
       root = alive.find_next(root)) {
    if (seen[root]) continue;
    std::queue<VertexId> frontier;
    frontier.push(static_cast<VertexId>(root));
    seen[root] = true;
    parent[root] = static_cast<std::int64_t>(root);
    bool cyclic = false;
    while (!frontier.empty() && !cyclic) {
      const VertexId v = frontier.front();
      frontier.pop();
      g.neighbors(v).for_each([&](std::size_t u) {
        if (!alive.test(u) || cyclic) return;
        if (!seen[u]) {
          seen[u] = true;
          parent[u] = v;
          frontier.push(static_cast<VertexId>(u));
        } else if (static_cast<std::int64_t>(u) != parent[v]) {
          cyclic = true;
        }
      });
    }
    if (cyclic) return false;
  }
  return true;
}

}  // namespace gsb::fpt
