#include "fpt/max_clique_vc.h"

#include <algorithm>

#include "graph/transforms.h"
#include "util/timer.h"

namespace gsb::fpt {

VcCliqueResult maximum_clique_via_vertex_cover(
    const graph::Graph& g, const VertexCoverOptions& options) {
  util::Timer timer;
  VcCliqueResult result;
  const graph::Graph comp = graph::complement(g);
  MinVertexCoverResult mvc = minimum_vertex_cover(comp, options);
  result.tree_nodes = mvc.tree_nodes;

  std::vector<bool> covered(g.order(), false);
  for (VertexId v : mvc.cover) {
    if (v < g.order()) covered[v] = true;
  }
  for (VertexId v = 0; v < g.order(); ++v) {
    if (!covered[v]) result.clique.push_back(v);
  }
  result.seconds = timer.seconds();
  return result;
}

bool has_clique_of_size(const graph::Graph& g, std::size_t size,
                        const VertexCoverOptions& options) {
  if (size == 0) return true;
  if (size > g.order()) return false;
  const graph::Graph comp = graph::complement(g);
  return vertex_cover_decide(comp, g.order() - size, options).feasible;
}

}  // namespace gsb::fpt
