#ifndef GSB_FPT_VERTEX_COVER_H
#define GSB_FPT_VERTEX_COVER_H

/// \file vertex_cover.h
/// Fixed-parameter-tractable vertex cover (§2.1).
///
/// The paper's route to maximum clique: clique is W[1]-hard (not FPT unless
/// the W hierarchy collapses), but its "complementary dual" vertex cover is
/// FPT, solvable in O(c^k · k^{1.5} + kn) by kernelization plus a bounded
/// search tree.  This module implements the standard kernel —
///   * degree-0 removal,
///   * degree-1 (pendant) resolution,
///   * Buss's high-degree rule (deg(v) > k forces v into the cover),
///   * degree-2 folding (struction) with solution reconstruction —
/// interleaved with branching on a maximum-degree vertex
/// (v in the cover, or N(v) in the cover), and an edge-counting bound
/// (k vertices of max degree Δ cover at most kΔ edges).

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gsb::fpt {

using graph::VertexId;

/// Solver knobs (the ablation bench toggles these).
struct VertexCoverOptions {
  bool use_kernelization = true;  ///< apply reduction rules at every node
  bool use_folding = true;        ///< degree-2 folding (needs kernelization)
  std::uint64_t max_nodes = 0;    ///< search-tree node budget; 0 = unlimited
};

/// Outcome of a decision query.
struct VertexCoverResult {
  bool feasible = false;          ///< a cover of size <= k exists
  std::vector<VertexId> cover;    ///< witness cover (when feasible)
  std::uint64_t tree_nodes = 0;   ///< branching nodes explored
  std::uint64_t kernel_removals = 0;  ///< vertices resolved by reductions
  bool aborted = false;           ///< node budget exhausted (result unknown)
};

/// Decides whether \p g has a vertex cover of size at most \p k and
/// produces a witness when it does.
VertexCoverResult vertex_cover_decide(const graph::Graph& g, std::size_t k,
                                      const VertexCoverOptions& options = {});

/// Size of a maximal matching (a lower bound: every cover hits each
/// matching edge).
std::size_t matching_lower_bound(const graph::Graph& g);

/// Greedy 2-approximate cover (both endpoints of a maximal matching).
std::vector<VertexId> greedy_cover(const graph::Graph& g);

/// Minimum vertex cover via bounded search between the matching lower
/// bound and the greedy upper bound.
struct MinVertexCoverResult {
  std::vector<VertexId> cover;
  std::uint64_t tree_nodes = 0;
  double seconds = 0.0;
};
MinVertexCoverResult minimum_vertex_cover(
    const graph::Graph& g, const VertexCoverOptions& options = {});

}  // namespace gsb::fpt

#endif  // GSB_FPT_VERTEX_COVER_H
