#include "fpt/vertex_cover.h"

#include <algorithm>
#include <cassert>

#include "bitset/dynamic_bitset.h"
#include "util/timer.h"

namespace gsb::fpt {
namespace {

using bits::DynamicBitset;

/// Degree-2 fold record: z replaced the path v - u - w (u the degree-2
/// vertex).  Reconstruction (in reverse order of creation): if z is in the
/// cover, replace it by {v, w}; otherwise add u.
struct FoldRecord {
  VertexId z, u, v, w;
};

/// Mutable problem state.  Branching copies the state (simple and exception
/// safe; the instances this library solves through the VC route are the
/// complements of dense compatibility graphs, i.e. small).
struct State {
  std::vector<DynamicBitset> adj;  ///< rows contain live neighbors only
  DynamicBitset alive;
  std::vector<std::uint32_t> degree;
  std::size_t universe = 0;    ///< allocated id slots (n + fold slots)
  std::size_t next_slot = 0;   ///< first unused fold slot
  std::size_t num_edges = 0;
  std::int64_t k = 0;
  std::vector<VertexId> chosen;
  std::vector<FoldRecord> folds;

  void remove_vertex(VertexId v) {
    adj[v].for_each([&](std::size_t u) {
      adj[u].reset(v);
      --degree[u];
      --num_edges;
    });
    adj[v].clear_all();
    degree[v] = 0;
    alive.reset(v);
  }

  void take_into_cover(VertexId v) {
    chosen.push_back(v);
    remove_vertex(v);
    --k;
  }
};

State make_state(const graph::Graph& g, std::size_t k) {
  State s;
  const std::size_t n = g.order();
  // Each fold removes three vertices and adds one, so at most n/2 + 1 new
  // slots can ever be needed.
  s.universe = n + n / 2 + 2;
  s.next_slot = n;
  s.adj.assign(s.universe, DynamicBitset(s.universe));
  s.alive.resize(s.universe);
  s.degree.assign(s.universe, 0);
  for (VertexId v = 0; v < n; ++v) {
    s.alive.set(v);
    s.degree[v] = static_cast<std::uint32_t>(g.degree(v));
    g.neighbors(v).for_each([&](std::size_t u) { s.adj[v].set(u); });
  }
  s.num_edges = g.num_edges();
  s.k = static_cast<std::int64_t>(k);
  return s;
}

/// Applies reduction rules to a fixed point.  Returns false when the state
/// is already infeasible.
bool kernelize(State& s, const VertexCoverOptions& options,
               std::uint64_t& removals) {
  bool changed = true;
  while (changed) {
    changed = false;
    if (s.k < 0) return false;
    for (std::size_t v = s.alive.find_first(); v < s.universe;
         v = s.alive.find_next(v)) {
      const auto vid = static_cast<VertexId>(v);
      const std::uint32_t d = s.degree[v];
      if (d == 0) {
        s.alive.reset(v);  // never needed in a cover
        ++removals;
        changed = true;
        continue;
      }
      if (static_cast<std::int64_t>(d) > s.k) {
        // Buss: a vertex of degree > k must be in every size-<=k cover.
        s.take_into_cover(vid);
        ++removals;
        changed = true;
        if (s.k < 0) return false;
        continue;
      }
      if (d == 1) {
        // Pendant: cover the unique neighbor.
        const auto u = static_cast<VertexId>(s.adj[v].find_first());
        s.take_into_cover(u);
        ++removals;
        changed = true;
        if (s.k < 0) return false;
        continue;
      }
      if (d == 2 && options.use_folding) {
        const auto a = static_cast<VertexId>(s.adj[v].find_first());
        const auto b = static_cast<VertexId>(s.adj[v].find_next(a));
        if (s.adj[a].test(b)) {
          // Triangle: {a, b} dominate v's edges.
          s.take_into_cover(a);
          s.take_into_cover(b);
          s.alive.reset(v);
          s.degree[v] = 0;
          s.adj[a].reset(v);  // v already isolated: edges were removed
          removals += 3;
          changed = true;
          if (s.k < 0) return false;
          continue;
        }
        // Fold v (degree-2, independent neighbors a, b) into fresh z.
        assert(s.next_slot < s.universe);
        const auto z = static_cast<VertexId>(s.next_slot++);
        DynamicBitset merged = s.adj[a];
        merged |= s.adj[b];
        merged.reset(v);
        merged.reset(a);
        merged.reset(b);
        s.remove_vertex(vid);
        s.remove_vertex(a);
        s.remove_vertex(b);
        s.alive.set(z);
        s.adj[z] = merged;
        std::uint32_t dz = 0;
        merged.for_each([&](std::size_t x) {
          s.adj[x].set(z);
          ++s.degree[x];
          ++s.num_edges;
          ++dz;
        });
        s.degree[z] = dz;
        s.k -= 1;
        s.folds.push_back(FoldRecord{z, vid, a, b});
        removals += 2;
        changed = true;
        if (s.k < 0) return false;
        continue;
      }
    }
  }
  return true;
}

/// Bounded search tree over kernelized states.
class VcSearch {
 public:
  VcSearch(const VertexCoverOptions& options, VertexCoverResult& result)
      : options_(options), result_(result) {}

  bool solve(State s) {  // by value: each node owns its state
    ++result_.tree_nodes;
    if (options_.max_nodes != 0 && result_.tree_nodes > options_.max_nodes) {
      result_.aborted = true;
      return false;
    }
    if (options_.use_kernelization) {
      if (!kernelize(s, options_, result_.kernel_removals)) return false;
    }
    if (s.k < 0) return false;
    if (s.num_edges == 0) {
      finish(s);
      return true;
    }
    if (s.k == 0) return false;

    // Pick a live vertex of maximum degree.
    VertexId best = 0;
    std::uint32_t best_degree = 0;
    for (std::size_t v = s.alive.find_first(); v < s.universe;
         v = s.alive.find_next(v)) {
      if (s.degree[v] > best_degree) {
        best_degree = s.degree[v];
        best = static_cast<VertexId>(v);
      }
    }
    // Edge-count bound: k vertices of degree <= Δ cover <= kΔ edges.
    if (s.num_edges >
        static_cast<std::size_t>(s.k) * static_cast<std::size_t>(best_degree)) {
      return false;
    }

    // Branch 1: best in the cover.
    {
      State child = s;
      child.take_into_cover(best);
      if (solve(std::move(child))) return true;
    }
    // Branch 2: N(best) in the cover (then best is not needed).
    {
      State child = std::move(s);
      std::vector<VertexId> neighborhood;
      child.adj[best].for_each([&](std::size_t u) {
        neighborhood.push_back(static_cast<VertexId>(u));
      });
      for (VertexId u : neighborhood) child.take_into_cover(u);
      child.alive.reset(best);  // isolated and excluded
      if (solve(std::move(child))) return true;
    }
    return false;
  }

 private:
  /// Unwinds fold records into a cover over original vertex ids.
  void finish(const State& s) {
    std::vector<bool> in_cover(s.universe, false);
    for (VertexId v : s.chosen) in_cover[v] = true;
    for (std::size_t i = s.folds.size(); i-- > 0;) {
      const FoldRecord& fold = s.folds[i];
      if (in_cover[fold.z]) {
        in_cover[fold.z] = false;
        in_cover[fold.v] = true;
        in_cover[fold.w] = true;
      } else {
        in_cover[fold.u] = true;
      }
    }
    result_.cover.clear();
    for (std::size_t v = 0; v < s.universe; ++v) {
      if (in_cover[v]) result_.cover.push_back(static_cast<VertexId>(v));
    }
    result_.feasible = true;
  }

  const VertexCoverOptions& options_;
  VertexCoverResult& result_;
};

}  // namespace

VertexCoverResult vertex_cover_decide(const graph::Graph& g, std::size_t k,
                                      const VertexCoverOptions& options) {
  VertexCoverResult result;
  VcSearch search(options, result);
  search.solve(make_state(g, k));
  return result;
}

std::size_t matching_lower_bound(const graph::Graph& g) {
  std::vector<bool> matched(g.order(), false);
  std::size_t size = 0;
  for (VertexId u = 0; u < g.order(); ++u) {
    if (matched[u]) continue;
    const auto& row = g.neighbors(u);
    for (std::size_t v = row.find_first(); v < g.order();
         v = row.find_next(v)) {
      if (!matched[v] && v != u) {
        matched[u] = matched[v] = true;
        ++size;
        break;
      }
    }
  }
  return size;
}

std::vector<VertexId> greedy_cover(const graph::Graph& g) {
  std::vector<bool> matched(g.order(), false);
  std::vector<VertexId> cover;
  for (VertexId u = 0; u < g.order(); ++u) {
    if (matched[u]) continue;
    const auto& row = g.neighbors(u);
    for (std::size_t v = row.find_first(); v < g.order();
         v = row.find_next(v)) {
      if (!matched[v] && v != u) {
        matched[u] = matched[v] = true;
        cover.push_back(u);
        cover.push_back(static_cast<VertexId>(v));
        break;
      }
    }
  }
  return cover;
}

MinVertexCoverResult minimum_vertex_cover(const graph::Graph& g,
                                          const VertexCoverOptions& options) {
  util::Timer timer;
  MinVertexCoverResult result;
  std::size_t lo = matching_lower_bound(g);
  std::vector<VertexId> best = greedy_cover(g);
  std::size_t hi = best.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    VertexCoverResult attempt = vertex_cover_decide(g, mid, options);
    result.tree_nodes += attempt.tree_nodes;
    if (attempt.feasible) {
      best = std::move(attempt.cover);
      hi = best.size();  // witness may undercut mid
    } else {
      lo = mid + 1;
    }
  }
  std::sort(best.begin(), best.end());
  result.cover = std::move(best);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace gsb::fpt
