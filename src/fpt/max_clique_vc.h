#ifndef GSB_FPT_MAX_CLIQUE_VC_H
#define GSB_FPT_MAX_CLIQUE_VC_H

/// \file max_clique_vc.h
/// Maximum clique through the FPT vertex-cover reduction (§2.1):
/// a set C is a clique of G iff V \ C is a vertex cover of the complement
/// graph, so omega(G) = n - tau(complement(G)).  The route shines exactly
/// when cliques are large relative to n (high-threshold correlation graphs,
/// phylogeny compatibility graphs): the cover parameter k = n - |C| is then
/// small and the O(c^k) search tree shallow.

#include "core/clique.h"
#include "fpt/vertex_cover.h"
#include "graph/graph.h"

namespace gsb::fpt {

/// Result of the complement/vertex-cover max-clique computation.
struct VcCliqueResult {
  core::Clique clique;          ///< a maximum clique of g (sorted)
  std::uint64_t tree_nodes = 0; ///< VC search-tree nodes over all queries
  double seconds = 0.0;
};

/// Computes a maximum clique of \p g via minimum vertex cover on the
/// complement.
VcCliqueResult maximum_clique_via_vertex_cover(
    const graph::Graph& g, const VertexCoverOptions& options = {});

/// Decides whether \p g contains a clique of at least \p size vertices
/// (one parameterized vertex-cover query with k = n - size).
bool has_clique_of_size(const graph::Graph& g, std::size_t size,
                        const VertexCoverOptions& options = {});

}  // namespace gsb::fpt

#endif  // GSB_FPT_MAX_CLIQUE_VC_H
