# Runs the quickstart example and diffs its stdout against the committed
# golden fixture.  Invoked by CTest:
#   cmake -DQUICKSTART=<exe> -DGOLDEN=<fixture> -P RunGolden.cmake
execute_process(
  COMMAND ${QUICKSTART}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart exited with ${rc}")
endif()
file(READ ${GOLDEN} expected)
# Normalize line endings so the comparison is platform-stable.
string(REPLACE "\r\n" "\n" actual "${actual}")
string(REPLACE "\r\n" "\n" expected "${expected}")
# Wall-clock timings vary run to run; mask them before diffing.
string(REGEX REPLACE "[0-9]+\\.?[0-9]* ms" "<time> ms" actual "${actual}")
string(REGEX REPLACE "[0-9]+\\.?[0-9]* ms" "<time> ms" expected "${expected}")
if(NOT actual STREQUAL expected)
  file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/quickstart_actual.txt "${actual}")
  message(FATAL_ERROR
    "quickstart output diverged from golden fixture ${GOLDEN};"
    " actual output saved to quickstart_actual.txt")
endif()
