// Cross-module integration: the full paper pipeline from synthetic
// microarray to enumerated cliques, agreement between every maximal-clique
// algorithm on shared workloads, and preset-driven end-to-end runs.

#include <gtest/gtest.h>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/presets.h"
#include "core/maximum_clique.h"
#include "core/verify.h"
#include "fpt/max_clique_vc.h"
#include "netops/ops.h"
#include "tests/test_helpers.h"

namespace gsb {
namespace {

TEST(Integration, MicroarrayToCliquePipeline) {
  util::Rng rng(101);
  bio::MicroarrayConfig config;
  config.genes = 140;
  config.samples = 60;
  config.modules = 5;
  config.min_module_size = 6;
  config.max_module_size = 10;
  config.overlap = 0.1;
  config.within_module_corr = 0.93;
  auto data = bio::generate_microarray(config, rng);

  bio::quantile_normalize(data.expression);
  bio::CorrelationGraphOptions graph_options;
  graph_options.method = bio::CorrelationMethod::kSpearman;
  graph_options.threshold = 0.72;
  const auto built =
      bio::build_correlation_graph(data.expression, graph_options, rng);
  const auto& g = built.graph;
  ASSERT_GT(g.num_edges(), 50u);

  // Maximum clique: B&B agrees with the enumerator's largest output.
  const auto omega = core::maximum_clique(g).clique.size();
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{3, 0};
  const auto cliques = test::run_clique_enumerator(g, options);
  ASSERT_FALSE(cliques.empty());
  std::size_t largest = 0;
  for (const auto& clique : cliques) {
    largest = std::max(largest, clique.size());
    EXPECT_TRUE(core::is_maximal_clique(g, clique));
  }
  EXPECT_EQ(largest, omega);
  EXPECT_GE(omega, 6u);  // at least one planted module survives thresholding

  // All algorithms agree on this real pipeline output.
  EXPECT_EQ(cliques, test::reference_in_range(g, options.range));
  core::ParallelOptions par_options;
  par_options.range = options.range;
  par_options.threads = 2;
  EXPECT_EQ(test::run_parallel_enumerator(g, par_options), cliques);
}

TEST(Integration, AllAlgorithmsAgreeOnMyogenicAnalog) {
  // A shrunken myogenic-shaped workload: overlapping clique modules on a
  // sparse background.  The module size is capped at 10 here because the
  // Kose baseline materializes *every* clique of every size — a planted
  // 28-clique alone would cost it 2^28 stored cliques (that blow-up is
  // measured, deliberately, in bench_table1, not in unit tests).
  util::Rng rng(7);
  graph::ModuleGraphConfig config;
  config.n = 145;
  config.num_modules = 10;
  config.min_module_size = 4;
  config.max_module_size = 10;
  config.overlap = 0.3;
  config.background_edges = 100;
  const auto mg = graph::planted_modules(config, rng);
  const auto& g = mg.graph;

  core::SizeRange range{3, 0};
  const auto bk = test::run_base_bk(g, range);
  EXPECT_EQ(test::run_improved_bk(g, range), bk);

  core::CliqueEnumeratorOptions ce;
  ce.range = range;
  EXPECT_EQ(test::run_clique_enumerator(g, ce), bk);

  core::ParallelOptions par;
  par.range = range;
  par.threads = 4;
  EXPECT_EQ(test::run_parallel_enumerator(g, par), bk);

  core::KoseOptions kose;
  kose.range = range;
  EXPECT_EQ(test::run_kose(g, kose), bk);
}

TEST(Integration, MaxCliqueRoutesAgreeOnCompatibilityGraph) {
  // Phylogeny-style dense compatibility graph.
  util::Rng rng(55);
  const auto g = graph::gnp(45, 0.85, rng);
  const auto bnb = core::maximum_clique(g);
  const auto vc = fpt::maximum_clique_via_vertex_cover(g);
  EXPECT_EQ(bnb.clique.size(), vc.clique.size());
  EXPECT_TRUE(core::is_clique(g, vc.clique));
  EXPECT_TRUE(fpt::has_clique_of_size(g, bnb.clique.size()));
  EXPECT_FALSE(fpt::has_clique_of_size(g, bnb.clique.size() + 1));
}

TEST(Integration, ConsensusThenCliquesOnPpiReplicates) {
  util::Rng rng(77);
  // Three noisy observations of a protein-complex graph.
  graph::ModuleGraphConfig config;
  config.n = 100;
  config.num_modules = 5;
  config.min_module_size = 6;
  config.max_module_size = 9;
  config.overlap = 0.0;
  const auto truth = graph::planted_modules(config, rng);
  std::vector<graph::Graph> replicates;
  for (int r = 0; r < 3; ++r) {
    graph::Graph rep = truth.graph;
    const auto noise = graph::gnp(100, 0.02, rng);
    for (const auto& [u, v] : noise.edge_list()) rep.add_edge(u, v);
    replicates.push_back(std::move(rep));
  }
  const auto cleaned = netops::at_least_k_of_n(replicates, 2);

  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{5, 0};
  const auto cliques = test::run_clique_enumerator(cleaned, options);
  // Every planted complex of size >= 5 appears within some maximal clique.
  for (const auto& module : truth.modules) {
    if (module.size() < 5) continue;
    bool found = false;
    for (const auto& clique : cliques) {
      if (std::includes(clique.begin(), clique.end(), module.begin(),
                        module.end())) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "module of size " << module.size() << " lost";
  }
}

TEST(Integration, ParacliqueAndHubsOnEnumeratedOutput) {
  util::Rng rng(91);
  const auto mg = bio::make_paper_graph(bio::PaperDataset::kBrainSparse,
                                        0.03, rng);
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{3, 0};
  core::CliqueCollector sink;
  core::enumerate_maximal_cliques(mg.graph, sink.callback(), options);
  const auto spectrum = analysis::clique_spectrum(sink.cliques());
  EXPECT_GT(spectrum.total, 0u);
  EXPECT_GE(spectrum.max_size, 3u);

  const auto hub = analysis::most_connected_vertex(mg.graph, sink.cliques());
  EXPECT_EQ(mg.graph.degree(hub.vertex), mg.graph.max_degree());

  const auto para = analysis::extract_paraclique(mg.graph, {1, 0});
  EXPECT_GE(para.members.size(), para.seed_size);
}

TEST(Integration, EnumerationWindowMatchesPaperTable1Protocol) {
  // Table 1 enumerates maximal cliques of sizes 3..17 — verify the window
  // protocol (Init_K = 3, upper bound = omega) is exactly equivalent to
  // unbounded enumeration above size 3 on a sparse-analog graph.
  util::Rng rng(13);
  const auto mg = bio::make_paper_graph(bio::PaperDataset::kBrainSparse,
                                        0.02, rng);
  const auto omega = core::maximum_clique(mg.graph).clique.size();
  core::CliqueEnumeratorOptions unbounded;
  unbounded.range = core::SizeRange{3, 0};
  core::CliqueEnumeratorOptions bounded;
  bounded.range = core::SizeRange{3, omega};
  EXPECT_EQ(test::run_clique_enumerator(mg.graph, bounded),
            test::run_clique_enumerator(mg.graph, unbounded));
}

}  // namespace
}  // namespace gsb
