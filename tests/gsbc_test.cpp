// Tests for the .gsbc clique-stream container: write -> read round trips,
// header totals, corruption rejection, and the streaming analysis
// consumers (spectrum, participation, paraclique seeding).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "analysis/clique_stats.h"
#include "analysis/paraclique.h"
#include "core/bron_kerbosch.h"
#include "core/parallel_bk.h"
#include "storage/clique_stream.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace gsb::storage {
namespace {

namespace fs = std::filesystem;
using core::Clique;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Random strictly-ascending member sets over [0, order).
std::vector<Clique> random_clique_set(std::size_t order, std::size_t count,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Clique> cliques;
  cliques.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 13));
    Clique clique;
    auto v = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(order / 4)));
    for (std::size_t j = 0; j < size && v < order; ++j) {
      clique.push_back(static_cast<graph::VertexId>(v));
      v += static_cast<std::uint64_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(order / 8 + 1)));
    }
    if (!clique.empty()) cliques.push_back(std::move(clique));
  }
  return cliques;
}

std::vector<Clique> read_all(GsbcReader& reader) {
  std::vector<Clique> out;
  Clique clique;
  while (reader.next(clique)) out.push_back(clique);
  return out;
}

TEST(GsbcStream, RoundTripsSeededCliqueSets) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::size_t order = 200 + seed * 100;
    const auto cliques = random_clique_set(order, 500, seed);
    const std::string path =
        temp_path("gsbc_roundtrip_" + std::to_string(seed) + ".gsbc");
    std::uint64_t member_total = 0;
    std::uint64_t max_size = 0;
    {
      GsbcWriter writer(path, order);
      for (const auto& clique : cliques) {
        writer.append(clique);
        member_total += clique.size();
        max_size = std::max<std::uint64_t>(max_size, clique.size());
      }
      const auto stats = writer.close();
      EXPECT_EQ(stats.clique_count, cliques.size());
      EXPECT_EQ(stats.member_total, member_total);
      EXPECT_EQ(stats.max_size, max_size);
      EXPECT_EQ(stats.file_bytes, fs::file_size(path));
    }
    GsbcReader::Options verify;
    verify.verify_checksum = true;
    auto reader = GsbcReader::open(path, verify);
    EXPECT_EQ(reader.order(), order);
    EXPECT_EQ(reader.clique_count(), cliques.size());
    EXPECT_EQ(reader.member_total(), member_total);
    EXPECT_EQ(reader.max_size(), max_size);
    EXPECT_EQ(read_all(reader), cliques);
    std::remove(path.c_str());
  }
}

TEST(GsbcStream, WriterCanonicalizesMemberOrder) {
  const std::string path = temp_path("gsbc_sort.gsbc");
  {
    GsbcWriter writer(path, 100);
    const std::vector<graph::VertexId> scrambled{42, 7, 99, 0};
    writer.append(scrambled);
    writer.close();
  }
  auto reader = GsbcReader::open(path);
  const auto cliques = read_all(reader);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (Clique{0, 7, 42, 99}));
  std::remove(path.c_str());
}

TEST(GsbcStream, EmptyStreamIsValid) {
  const std::string path = temp_path("gsbc_empty.gsbc");
  {
    GsbcWriter writer(path, 10);
    writer.close();
  }
  GsbcReader::Options verify;
  verify.verify_checksum = true;
  auto reader = GsbcReader::open(path, verify);
  EXPECT_EQ(reader.clique_count(), 0u);
  Clique clique;
  EXPECT_FALSE(reader.next(clique));
  std::remove(path.c_str());
}

TEST(GsbcStream, WriterRejectsMalformedCliques) {
  const std::string path = temp_path("gsbc_reject.gsbc");
  GsbcWriter writer(path, 10);
  EXPECT_THROW(writer.append(std::vector<graph::VertexId>{}),
               std::runtime_error);
  EXPECT_THROW(writer.append(std::vector<graph::VertexId>{3, 3}),
               std::runtime_error);
  EXPECT_THROW(writer.append(std::vector<graph::VertexId>{10}),
               std::runtime_error);
  writer.append(std::vector<graph::VertexId>{0, 9});
  writer.close();
  std::remove(path.c_str());
}

TEST(GsbcStream, RejectsCorruption) {
  const std::string path = temp_path("gsbc_corrupt.gsbc");
  {
    GsbcWriter writer(path, 50);
    for (const auto& clique : random_clique_set(50, 40, 3)) {
      writer.append(clique);
    }
    writer.close();
  }
  const auto size = fs::file_size(path);

  // Payload bit flip: caught by the checksum pass.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size - 3));
    const char byte = 0x7F;
    f.write(&byte, 1);
  }
  GsbcReader::Options verify;
  verify.verify_checksum = true;
  EXPECT_THROW(GsbcReader::open(path, verify), std::runtime_error);

  // Truncation: rejected at open by the payload-size bound — the header's
  // counts can no longer fit in the remaining bytes (this is what keeps
  // `gsb info` from reporting totals a cut-off file does not contain).
  fs::resize_file(path, size - 4);
  EXPECT_THROW(GsbcReader::open(path), std::runtime_error);

  // Bad magic.
  fs::resize_file(path, size);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("NOTGSBC1", 8);
  }
  EXPECT_THROW(GsbcReader::open(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GsbcStream, OpenRejectsTruncatedAndPaddedFiles) {
  const std::string path = temp_path("gsbc_bounds.gsbc");
  {
    GsbcWriter writer(path, 100);
    writer.append(std::vector<graph::VertexId>{1, 2, 3});
    writer.append(std::vector<graph::VertexId>{4, 90});
    writer.close();
  }
  const auto size = fs::file_size(path);

  // Header intact, payload cut: open fails before any totals are reported.
  fs::resize_file(path, size - 1);
  EXPECT_THROW(GsbcReader::open(path), std::runtime_error);
  fs::resize_file(path, kGsbcHeaderBytes);  // header only, counts nonzero
  EXPECT_THROW(GsbcReader::open(path), std::runtime_error);
  // Shorter than the header itself.
  fs::resize_file(path, kGsbcHeaderBytes / 2);
  EXPECT_THROW(GsbcReader::open(path), std::runtime_error);
  std::remove(path.c_str());

  // A zero-clique stream must be exactly the header: trailing bytes mean
  // the counts are lying.
  const std::string empty_path = temp_path("gsbc_bounds_empty.gsbc");
  {
    GsbcWriter writer(empty_path, 10);
    writer.close();
  }
  {
    auto reader = GsbcReader::open(empty_path);  // valid when exact
    EXPECT_EQ(reader.clique_count(), 0u);
  }
  {
    std::ofstream f(empty_path, std::ios::binary | std::ios::app);
    f.write("junk", 4);
  }
  EXPECT_THROW(GsbcReader::open(empty_path), std::runtime_error);
  std::remove(empty_path.c_str());

  // A cut *inside* a multi-byte varint can stay within the open-time
  // bounds (they assume one byte per varint); the forward scan — which
  // `gsb info` runs before reporting any totals — must still fail loudly.
  const std::string inbounds_path = temp_path("gsbc_bounds_inbounds.gsbc");
  {
    GsbcWriter writer(inbounds_path, 100000);
    // Large ids -> multi-byte varints -> slack between the byte floor and
    // the real payload size.
    writer.append(std::vector<graph::VertexId>{70000, 80000, 90000});
    writer.append(std::vector<graph::VertexId>{65000, 99999});
    writer.close();
  }
  fs::resize_file(inbounds_path, fs::file_size(inbounds_path) - 2);
  auto inbounds = GsbcReader::open(inbounds_path);  // bounds are satisfied
  Clique clique;
  EXPECT_THROW(
      {
        while (inbounds.next(clique)) {
        }
      },
      std::runtime_error);
  std::remove(inbounds_path.c_str());

  // Padding past the 10-bytes-per-varint ceiling is likewise rejected.
  const std::string padded_path = temp_path("gsbc_bounds_padded.gsbc");
  {
    GsbcWriter writer(padded_path, 100);
    writer.append(std::vector<graph::VertexId>{5});
    writer.close();
  }
  {
    std::ofstream f(padded_path, std::ios::binary | std::ios::app);
    const std::vector<char> pad(64, '\0');
    f.write(pad.data(), static_cast<std::streamsize>(pad.size()));
  }
  EXPECT_THROW(GsbcReader::open(padded_path), std::runtime_error);
  std::remove(padded_path.c_str());
}

TEST(GsbcStream, RejectsDoctoredHeaderTotals) {
  // The checksum covers only the payload, so header aggregates must be
  // cross-checked against what the scan decodes.  Multi-byte varints give
  // the payload slack inside the open-time bounds, so a small edit to
  // member_total/max_size survives open — the drain must catch it.
  const std::string path = temp_path("gsbc_doctored.gsbc");
  auto write_stream = [&] {
    GsbcWriter writer(path, 100000);
    writer.append(std::vector<graph::VertexId>{70000, 80000, 90000});
    writer.append(std::vector<graph::VertexId>{65000, 99999});
    writer.close();
  };
  auto patch_u64 = [&](std::streamoff offset, std::uint64_t value) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(offset);
    f.write(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  auto drain_throws = [&] {
    auto reader = GsbcReader::open(path);
    Clique clique;
    EXPECT_THROW(
        {
          while (reader.next(clique)) {
          }
        },
        std::runtime_error);
  };

  write_stream();
  patch_u64(32, 6);  // member_total: 5 -> 6
  drain_throws();
  write_stream();
  patch_u64(40, 4);  // max_size: 3 -> 4
  drain_throws();
  std::remove(path.c_str());
}

// --- LEB128 varint codec -----------------------------------------------------

/// Reference encoder, written independently of append_leb128.
std::vector<unsigned char> reference_leb128(std::uint64_t value) {
  std::vector<unsigned char> out;
  do {
    unsigned char byte = value & 0x7Fu;
    value >>= 7;
    if (value != 0) byte |= 0x80u;
    out.push_back(byte);
  } while (value != 0);
  return out;
}

TEST(Leb128, BoundaryValuesRoundTrip) {
  std::vector<std::uint64_t> values{0, 1};
  for (unsigned bits = 7; bits < 64; bits += 7) {
    const std::uint64_t boundary = 1ull << bits;  // 2^7, 2^14, ..., 2^63
    values.push_back(boundary - 1);
    values.push_back(boundary);
    values.push_back(boundary + 1);
  }
  values.push_back((1ull << 63) - 1);
  values.push_back(1ull << 63);
  values.push_back(~0ull);
  for (const std::uint64_t value : values) {
    std::vector<unsigned char> encoded;
    append_leb128(encoded, value);
    EXPECT_EQ(encoded, reference_leb128(value)) << value;
    std::size_t pos = 0;
    EXPECT_EQ(decode_leb128(encoded, pos), value);
    EXPECT_EQ(pos, encoded.size()) << value;
  }
}

TEST(Leb128, RandomizedDifferentialRoundTrip) {
  util::Rng rng(4242);
  std::vector<unsigned char> stream;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Uniform over bit widths so every encoded length is exercised.
    const auto bits = static_cast<unsigned>(rng.uniform_int(0, 64));
    std::uint64_t value = rng();
    if (bits < 64) value &= (1ull << bits) - 1;
    values.push_back(value);
    const auto expected = reference_leb128(value);
    std::vector<unsigned char> encoded;
    append_leb128(encoded, value);
    ASSERT_EQ(encoded, expected) << value;
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }
  // Decode the whole concatenated stream back.
  std::size_t pos = 0;
  for (const std::uint64_t value : values) {
    ASSERT_EQ(decode_leb128(stream, pos), value);
  }
  EXPECT_EQ(pos, stream.size());
}

TEST(Leb128, RejectsTruncationOverflowAndOverlongEncodings) {
  // Every strict prefix of a multi-byte encoding is truncated.
  std::vector<unsigned char> encoded;
  append_leb128(encoded, ~0ull);  // 10 bytes
  ASSERT_EQ(encoded.size(), 10u);
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    const std::span<const unsigned char> prefix(encoded.data(), cut);
    std::size_t pos = 0;
    EXPECT_THROW(decode_leb128(prefix, pos), std::runtime_error) << cut;
  }

  // 2^64 (11 significant bytes) and a 10th byte with high bits overflow.
  const std::vector<unsigned char> too_big{0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                                           0x80, 0x80, 0x80, 0x80, 0x01};
  std::size_t pos = 0;
  EXPECT_THROW(decode_leb128(too_big, pos), std::runtime_error);
  const std::vector<unsigned char> tenth_byte_overflow{
      0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02};
  pos = 0;
  EXPECT_THROW(decode_leb128(tenth_byte_overflow, pos), std::runtime_error);

  // Over-long (non-canonical) encodings: a trailing 0x00 continuation.
  const std::vector<unsigned char> overlong_zero{0x80, 0x00};
  pos = 0;
  EXPECT_THROW(decode_leb128(overlong_zero, pos), std::runtime_error);
  const std::vector<unsigned char> overlong_value{0xFF, 0x80, 0x00};
  pos = 0;
  EXPECT_THROW(decode_leb128(overlong_value, pos), std::runtime_error);

  // The canonical single 0x00 is plain zero, not over-long.
  const std::vector<unsigned char> zero{0x00};
  pos = 0;
  EXPECT_EQ(decode_leb128(zero, pos), 0u);

  // The stream reader applies the same rejection: splice an over-long
  // varint into a record and the scan fails loudly.
  const std::string path = temp_path("gsbc_overlong.gsbc");
  {
    GsbcWriter writer(path, 300);
    writer.append(std::vector<graph::VertexId>{1, 200});
    writer.close();
  }
  {
    // Record bytes: size=2, member 1, delta 199 (2-byte varint 0xC7 0x01).
    // Rewrite the delta as over-long 0xC7 0x81 0x00 won't fit; instead
    // rewrite member "1" (1 byte) at its exact offset as 0x81 0x00 by
    // shifting is impossible in place — so target the 2-byte delta and
    // replace it with an over-long encoding of 71: 0xC7 0x00.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kGsbcHeaderBytes + 2));
    const unsigned char overlong[2] = {0xC7, 0x00};
    f.write(reinterpret_cast<const char*>(overlong), 2);
  }
  auto reader = GsbcReader::open(path);
  Clique clique;
  EXPECT_THROW(reader.next(clique), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GsbcStream, StreamingConsumersMatchInMemoryAnalysis) {
  const graph::Graph g = test::random_graph(48, 0.4, 9);
  core::CliqueCollector collector;
  core::degeneracy_bk(g, collector.callback());
  const auto& cliques = collector.cliques();
  ASSERT_FALSE(cliques.empty());

  const std::string path = temp_path("gsbc_consumers.gsbc");
  {
    GsbcWriter writer(path, g.order());
    for (const auto& clique : cliques) writer.append(clique);
    writer.close();
  }

  // Spectrum computed off the stream == spectrum of the collected set.
  const auto expect_spectrum = analysis::clique_spectrum(cliques);
  auto reader = GsbcReader::open(path);
  const auto stream_spectrum = analysis::clique_spectrum(reader);
  EXPECT_EQ(stream_spectrum.size_histogram, expect_spectrum.size_histogram);
  EXPECT_EQ(stream_spectrum.total, expect_spectrum.total);
  EXPECT_EQ(stream_spectrum.max_size, expect_spectrum.max_size);
  EXPECT_EQ(stream_spectrum.min_size, expect_spectrum.min_size);
  EXPECT_DOUBLE_EQ(stream_spectrum.mean_size, expect_spectrum.mean_size);

  // Participation counts off the stream == in-memory counts.
  auto reader2 = GsbcReader::open(path);
  EXPECT_EQ(analysis::vertex_participation(g.order(), reader2),
            analysis::vertex_participation(g.order(), cliques));

  // Paraclique seeded from the stream == glomming the first largest clique.
  Clique best;
  for (const auto& clique : cliques) {
    if (clique.size() > best.size()) best = clique;
  }
  auto reader3 = GsbcReader::open(path);
  const auto from_stream =
      analysis::extract_paraclique_from_stream(g, reader3);
  const auto expected = analysis::grow_paraclique(g, best);
  EXPECT_EQ(from_stream.members, expected.members);
  EXPECT_EQ(from_stream.seed_size, expected.seed_size);
  std::remove(path.c_str());
}

TEST(GsbcStream, ParallelBkSpillsAndRoundTrips) {
  const graph::Graph g = test::random_graph(60, 0.35, 21);
  const std::string path = temp_path("gsbc_parallel_spill.gsbc");
  {
    GsbcWriter writer(path, g.order());
    core::ParallelBkOptions options;
    options.threads = 4;
    core::parallel_bk(
        g,
        [&](std::span<const graph::VertexId> clique) {
          writer.append(clique);
        },
        options);
    writer.close();
  }
  core::CliqueCollector collector;
  core::degeneracy_bk(g, collector.callback());
  auto expect = core::normalize(std::move(collector.cliques()));

  GsbcReader::Options verify;
  verify.verify_checksum = true;
  auto reader = GsbcReader::open(path, verify);
  EXPECT_EQ(core::normalize(read_all(reader)), expect);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsb::storage
