// Tests for the .gsbc clique-stream container: write -> read round trips,
// header totals, corruption rejection, and the streaming analysis
// consumers (spectrum, participation, paraclique seeding).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/clique_stats.h"
#include "analysis/paraclique.h"
#include "core/bron_kerbosch.h"
#include "core/parallel_bk.h"
#include "storage/clique_stream.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace gsb::storage {
namespace {

namespace fs = std::filesystem;
using core::Clique;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Random strictly-ascending member sets over [0, order).
std::vector<Clique> random_clique_set(std::size_t order, std::size_t count,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Clique> cliques;
  cliques.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 13));
    Clique clique;
    auto v = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(order / 4)));
    for (std::size_t j = 0; j < size && v < order; ++j) {
      clique.push_back(static_cast<graph::VertexId>(v));
      v += static_cast<std::uint64_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(order / 8 + 1)));
    }
    if (!clique.empty()) cliques.push_back(std::move(clique));
  }
  return cliques;
}

std::vector<Clique> read_all(GsbcReader& reader) {
  std::vector<Clique> out;
  Clique clique;
  while (reader.next(clique)) out.push_back(clique);
  return out;
}

TEST(GsbcStream, RoundTripsSeededCliqueSets) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::size_t order = 200 + seed * 100;
    const auto cliques = random_clique_set(order, 500, seed);
    const std::string path =
        temp_path("gsbc_roundtrip_" + std::to_string(seed) + ".gsbc");
    std::uint64_t member_total = 0;
    std::uint64_t max_size = 0;
    {
      GsbcWriter writer(path, order);
      for (const auto& clique : cliques) {
        writer.append(clique);
        member_total += clique.size();
        max_size = std::max<std::uint64_t>(max_size, clique.size());
      }
      const auto stats = writer.close();
      EXPECT_EQ(stats.clique_count, cliques.size());
      EXPECT_EQ(stats.member_total, member_total);
      EXPECT_EQ(stats.max_size, max_size);
      EXPECT_EQ(stats.file_bytes, fs::file_size(path));
    }
    GsbcReader::Options verify;
    verify.verify_checksum = true;
    auto reader = GsbcReader::open(path, verify);
    EXPECT_EQ(reader.order(), order);
    EXPECT_EQ(reader.clique_count(), cliques.size());
    EXPECT_EQ(reader.member_total(), member_total);
    EXPECT_EQ(reader.max_size(), max_size);
    EXPECT_EQ(read_all(reader), cliques);
    std::remove(path.c_str());
  }
}

TEST(GsbcStream, WriterCanonicalizesMemberOrder) {
  const std::string path = temp_path("gsbc_sort.gsbc");
  {
    GsbcWriter writer(path, 100);
    const std::vector<graph::VertexId> scrambled{42, 7, 99, 0};
    writer.append(scrambled);
    writer.close();
  }
  auto reader = GsbcReader::open(path);
  const auto cliques = read_all(reader);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (Clique{0, 7, 42, 99}));
  std::remove(path.c_str());
}

TEST(GsbcStream, EmptyStreamIsValid) {
  const std::string path = temp_path("gsbc_empty.gsbc");
  {
    GsbcWriter writer(path, 10);
    writer.close();
  }
  GsbcReader::Options verify;
  verify.verify_checksum = true;
  auto reader = GsbcReader::open(path, verify);
  EXPECT_EQ(reader.clique_count(), 0u);
  Clique clique;
  EXPECT_FALSE(reader.next(clique));
  std::remove(path.c_str());
}

TEST(GsbcStream, WriterRejectsMalformedCliques) {
  const std::string path = temp_path("gsbc_reject.gsbc");
  GsbcWriter writer(path, 10);
  EXPECT_THROW(writer.append(std::vector<graph::VertexId>{}),
               std::runtime_error);
  EXPECT_THROW(writer.append(std::vector<graph::VertexId>{3, 3}),
               std::runtime_error);
  EXPECT_THROW(writer.append(std::vector<graph::VertexId>{10}),
               std::runtime_error);
  writer.append(std::vector<graph::VertexId>{0, 9});
  writer.close();
  std::remove(path.c_str());
}

TEST(GsbcStream, RejectsCorruption) {
  const std::string path = temp_path("gsbc_corrupt.gsbc");
  {
    GsbcWriter writer(path, 50);
    for (const auto& clique : random_clique_set(50, 40, 3)) {
      writer.append(clique);
    }
    writer.close();
  }
  const auto size = fs::file_size(path);

  // Payload bit flip: caught by the checksum pass.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size - 3));
    const char byte = 0x7F;
    f.write(&byte, 1);
  }
  GsbcReader::Options verify;
  verify.verify_checksum = true;
  EXPECT_THROW(GsbcReader::open(path, verify), std::runtime_error);

  // Truncation: the forward scan must fail loudly, not end cleanly.
  fs::resize_file(path, size - 4);
  auto truncated = GsbcReader::open(path);
  Clique clique;
  EXPECT_THROW(
      {
        while (truncated.next(clique)) {
        }
      },
      std::runtime_error);

  // Bad magic.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("NOTGSBC1", 8);
  }
  EXPECT_THROW(GsbcReader::open(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GsbcStream, StreamingConsumersMatchInMemoryAnalysis) {
  const graph::Graph g = test::random_graph(48, 0.4, 9);
  core::CliqueCollector collector;
  core::degeneracy_bk(g, collector.callback());
  const auto& cliques = collector.cliques();
  ASSERT_FALSE(cliques.empty());

  const std::string path = temp_path("gsbc_consumers.gsbc");
  {
    GsbcWriter writer(path, g.order());
    for (const auto& clique : cliques) writer.append(clique);
    writer.close();
  }

  // Spectrum computed off the stream == spectrum of the collected set.
  const auto expect_spectrum = analysis::clique_spectrum(cliques);
  auto reader = GsbcReader::open(path);
  const auto stream_spectrum = analysis::clique_spectrum(reader);
  EXPECT_EQ(stream_spectrum.size_histogram, expect_spectrum.size_histogram);
  EXPECT_EQ(stream_spectrum.total, expect_spectrum.total);
  EXPECT_EQ(stream_spectrum.max_size, expect_spectrum.max_size);
  EXPECT_EQ(stream_spectrum.min_size, expect_spectrum.min_size);
  EXPECT_DOUBLE_EQ(stream_spectrum.mean_size, expect_spectrum.mean_size);

  // Participation counts off the stream == in-memory counts.
  auto reader2 = GsbcReader::open(path);
  EXPECT_EQ(analysis::vertex_participation(g.order(), reader2),
            analysis::vertex_participation(g.order(), cliques));

  // Paraclique seeded from the stream == glomming the first largest clique.
  Clique best;
  for (const auto& clique : cliques) {
    if (clique.size() > best.size()) best = clique;
  }
  auto reader3 = GsbcReader::open(path);
  const auto from_stream =
      analysis::extract_paraclique_from_stream(g, reader3);
  const auto expected = analysis::grow_paraclique(g, best);
  EXPECT_EQ(from_stream.members, expected.members);
  EXPECT_EQ(from_stream.seed_size, expected.seed_size);
  std::remove(path.c_str());
}

TEST(GsbcStream, ParallelBkSpillsAndRoundTrips) {
  const graph::Graph g = test::random_graph(60, 0.35, 21);
  const std::string path = temp_path("gsbc_parallel_spill.gsbc");
  {
    GsbcWriter writer(path, g.order());
    core::ParallelBkOptions options;
    options.threads = 4;
    core::parallel_bk(
        g,
        [&](std::span<const graph::VertexId> clique) {
          writer.append(clique);
        },
        options);
    writer.close();
  }
  core::CliqueCollector collector;
  core::degeneracy_bk(g, collector.callback());
  auto expect = core::normalize(std::move(collector.cliques()));

  GsbcReader::Options verify;
  verify.verify_checksum = true;
  auto reader = GsbcReader::open(path, verify);
  EXPECT_EQ(core::normalize(read_all(reader)), expect);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsb::storage
