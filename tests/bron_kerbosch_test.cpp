// Tests for the Base / Improved Bron–Kerbosch baselines (§2.2).

#include <gtest/gtest.h>

#include "core/bron_kerbosch.h"
#include "core/verify.h"
#include "tests/test_helpers.h"

namespace gsb::core {
namespace {

TEST(BronKerbosch, TriangleWithPendant) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto expect = reference_maximal_cliques(g);
  EXPECT_EQ(test::run_base_bk(g), expect);
  EXPECT_EQ(test::run_improved_bk(g), expect);
}

TEST(BronKerbosch, EdgelessGraphEmitsSingletons) {
  const graph::Graph g(4);
  const auto cliques = test::run_base_bk(g);
  ASSERT_EQ(cliques.size(), 4u);
  for (const auto& clique : cliques) EXPECT_EQ(clique.size(), 1u);
}

TEST(BronKerbosch, EmptyGraph) {
  const graph::Graph g(0);
  EXPECT_TRUE(test::run_base_bk(g).empty());
  EXPECT_TRUE(test::run_improved_bk(g).empty());
}

TEST(BronKerbosch, MoonMoserCount) {
  graph::Graph g(12);
  for (graph::VertexId u = 0; u < 12; ++u) {
    for (graph::VertexId v = u + 1; v < 12; ++v) {
      if (u / 3 != v / 3) g.add_edge(u, v);
    }
  }
  CliqueCounter base_count;
  base_bk(g, base_count.callback());
  EXPECT_EQ(base_count.total(), 81u);  // 3^4
  CliqueCounter improved_count;
  improved_bk(g, improved_count.callback());
  EXPECT_EQ(improved_count.total(), 81u);
}

TEST(BronKerbosch, ImprovedVisitsFewerNodesOnOverlappingCliques) {
  util::Rng rng(5);
  graph::ModuleGraphConfig config;
  config.n = 120;
  config.num_modules = 15;
  config.max_module_size = 12;
  config.overlap = 0.4;
  const auto mg = graph::planted_modules(config, rng);
  CliqueCounter a;
  CliqueCounter b;
  const auto base_stats = base_bk(mg.graph, a.callback());
  const auto improved_stats = improved_bk(mg.graph, b.callback());
  EXPECT_EQ(a.total(), b.total());
  EXPECT_LT(improved_stats.tree_nodes, base_stats.tree_nodes);
}

TEST(BronKerbosch, SizeRangeFiltersEmissionOnly) {
  const auto g = test::random_graph(30, 0.4, 7);
  const auto all = test::run_base_bk(g);
  const SizeRange range{3, 4};
  const auto filtered = test::run_base_bk(g, range);
  EXPECT_EQ(filtered, filter_by_size(all, range));
  // Stats still count everything.
  CliqueCollector sink;
  const auto stats = base_bk(g, sink.callback(), range);
  EXPECT_EQ(stats.maximal_cliques, all.size());
}

TEST(BronKerbosch, StatsTrackDepthAndNodes) {
  util::Rng rng(2);
  const auto g = graph::gnp(10, 1.0, rng);  // K10
  CliqueCollector sink;
  const auto stats = base_bk(g, sink.callback());
  EXPECT_EQ(stats.maximal_cliques, 1u);
  EXPECT_GE(stats.max_depth, 9u);
  EXPECT_GT(stats.tree_nodes, 9u);
}

class BkEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(BkEquivalenceTest, AllVariantsMatchReference) {
  const auto [n, p, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  const auto expect = reference_maximal_cliques(g);
  EXPECT_EQ(test::run_base_bk(g), expect);
  EXPECT_EQ(test::run_improved_bk(g), expect);
  CliqueCollector degeneracy;
  degeneracy_bk(g, degeneracy.callback());
  EXPECT_EQ(normalize(std::move(degeneracy.cliques())), expect);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, BkEquivalenceTest,
    ::testing::Combine(::testing::Values<std::size_t>(12, 25, 45),
                       ::testing::Values(0.1, 0.3, 0.55),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace gsb::core
