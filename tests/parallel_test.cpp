// Tests for the parallel substrate (thread pool, centralized load
// balancer) and the multithreaded Clique Enumerator.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/detail/task_claims.h"
#include "core/detail/sublist_kernel.h"
#include "core/kclique.h"
#include "core/parallel_enumerator.h"
#include "core/verify.h"
#include "parallel/load_balancer.h"
#include "parallel/thread_pool.h"
#include "tests/test_helpers.h"

namespace gsb {
namespace {

TEST(ThreadPool, RunsEveryWorkerExactlyOnce) {
  par::ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run_round([&](std::size_t tid) { ++hits[tid]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedRounds) {
  par::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_round([&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, MinimumOneThread) {
  par::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  int ran = 0;
  pool.run_round([&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, OneWorkerRoundsRunSerially) {
  par::ThreadPool pool(1);
  int depth = 0;
  int max_depth = 0;
  for (int round = 0; round < 20; ++round) {
    pool.run_round([&](std::size_t tid) {
      EXPECT_EQ(tid, 0u);
      max_depth = std::max(max_depth, ++depth);
      --depth;
    });
  }
  EXPECT_EQ(max_depth, 1);
}

TEST(ThreadPool, RoundAfterShutdownThrows) {
  par::ThreadPool pool(2);
  pool.run_round([](std::size_t) {});
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  pool.shutdown();  // idempotent, must not hang or double-join
  EXPECT_THROW(pool.run_round([](std::size_t) {}), std::runtime_error);
}

TEST(ThreadPool, ReentrantRoundFromWorkerThrows) {
  // A worker that submits a round to its own pool would wait for workers
  // that are all busy running the current round — including itself.  The
  // pool detects this and throws instead of deadlocking.
  par::ThreadPool pool(2);
  std::atomic<int> rejected{0};
  pool.run_round([&](std::size_t) {
    try {
      pool.run_round([](std::size_t) {});
    } catch (const std::logic_error&) {
      ++rejected;
    }
  });
  EXPECT_EQ(rejected.load(), 2);
  // The pool survives the rejected submissions.
  std::atomic<int> ran{0};
  pool.run_round([&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, NestedDistinctPoolIsAllowed) {
  // Stages that parallelize internally create their own team inside an
  // outer pool's worker (the overlapped pipeline does exactly this); the
  // re-entrancy guard must only reject rounds on the *same* pool.
  par::ThreadPool outer(2);
  std::atomic<int> inner_ran{0};
  outer.run_round([&](std::size_t tid) {
    if (tid != 0) return;
    par::ThreadPool inner(2);
    inner.run_round([&](std::size_t) { ++inner_ran; });
  });
  EXPECT_EQ(inner_ran.load(), 2);
}

TEST(LoadBalancer, ConservationEveryTaskOnce) {
  util::Rng rng(3);
  std::vector<std::uint64_t> costs(137);
  for (auto& c : costs) c = rng.below(1000) + 1;
  par::LoadBalancer balancer;
  const auto assignment = balancer.assign(costs, {}, 5);
  std::vector<int> seen(costs.size(), 0);
  for (const auto& tasks : assignment.tasks) {
    for (auto t : tasks) ++seen[t];
  }
  for (std::size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "task " << i;
  }
  // Load sums match the per-thread task sets.
  for (std::size_t t = 0; t < 5; ++t) {
    std::uint64_t sum = 0;
    for (auto task : assignment.tasks[t]) sum += costs[task];
    EXPECT_EQ(sum, assignment.load[t]);
  }
}

TEST(LoadBalancer, TransfersReduceImbalance) {
  // One giant producer thread: everything starts on thread 0.
  std::vector<std::uint64_t> costs(64, 100);
  std::vector<std::uint32_t> home(64, 0);
  par::LoadBalancerConfig config;
  config.min_grain = 0;
  par::LoadBalancer balancer(config);
  const auto balanced = balancer.assign(costs, home, 4);
  EXPECT_GT(balanced.transfers, 0u);
  EXPECT_LT(balanced.imbalance(), 1.3);

  par::LoadBalancerConfig off = config;
  off.enable_transfers = false;
  const auto stuck = par::LoadBalancer(off).assign(costs, home, 4);
  EXPECT_EQ(stuck.transfers, 0u);
  EXPECT_DOUBLE_EQ(stuck.imbalance(), 4.0);  // all on thread 0
}

TEST(LoadBalancer, RemoteFlagsMarkMovedTasks) {
  std::vector<std::uint64_t> costs{100, 100, 100, 100};
  std::vector<std::uint32_t> home{0, 0, 0, 0};
  par::LoadBalancerConfig config;
  config.min_grain = 0;
  const auto assignment = par::LoadBalancer(config).assign(costs, home, 2);
  std::size_t remote = 0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (assignment.remote[i]) ++remote;
  }
  EXPECT_EQ(remote, assignment.transfers);
  EXPECT_GT(remote, 0u);
}

TEST(LoadBalancer, EvenSplitWithoutHome) {
  std::vector<std::uint64_t> costs(10, 1);
  const auto assignment = par::LoadBalancer().assign(costs, {}, 3);
  // 10 tasks over 3 threads: 4/3/3 by count.
  std::vector<std::size_t> sizes;
  for (const auto& tasks : assignment.tasks) sizes.push_back(tasks.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 4}));
}

TEST(LoadBalancer, SingleThreadDegenerate) {
  std::vector<std::uint64_t> costs{5, 6, 7};
  const auto assignment = par::LoadBalancer().assign(costs, {}, 1);
  EXPECT_EQ(assignment.tasks[0].size(), 3u);
  EXPECT_EQ(assignment.transfers, 0u);
  EXPECT_DOUBLE_EQ(assignment.imbalance(), 1.0);
}

TEST(LoadBalancer, EmptyTaskList) {
  const auto assignment =
      par::LoadBalancer().assign(std::vector<std::uint64_t>{}, {}, 4);
  EXPECT_EQ(assignment.tasks.size(), 4u);
  for (const auto& tasks : assignment.tasks) EXPECT_TRUE(tasks.empty());
}

TEST(ParallelEnumerator, MatchesSequentialOnModuleGraph) {
  util::Rng rng(17);
  graph::ModuleGraphConfig config;
  config.n = 160;
  config.num_modules = 14;
  config.max_module_size = 13;
  config.overlap = 0.3;
  config.background_edges = 150;
  const auto mg = graph::planted_modules(config, rng);

  core::CliqueEnumeratorOptions seq_options;
  seq_options.range = core::SizeRange{3, 0};
  const auto expect = test::run_clique_enumerator(mg.graph, seq_options);

  for (std::size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    core::ParallelOptions options;
    options.range = core::SizeRange{3, 0};
    options.threads = threads;
    EXPECT_EQ(test::run_parallel_enumerator(mg.graph, options), expect)
        << "threads=" << threads;
  }
}

TEST(ParallelEnumerator, WindowAndIsolatedVertices) {
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  core::ParallelOptions options;
  options.range = core::SizeRange{1, 0};
  options.threads = 2;
  const auto got = test::run_parallel_enumerator(g, options);
  EXPECT_EQ(got, core::reference_maximal_cliques(g));
}

TEST(ParallelEnumerator, PerThreadStatsPopulated) {
  const auto g = test::random_graph(60, 0.3, 23);
  core::CliqueCollector sink;
  core::ParallelOptions options;
  options.range = core::SizeRange{3, 0};
  options.threads = 3;
  const auto stats =
      core::enumerate_maximal_cliques_parallel(g, sink.callback(), options);
  EXPECT_EQ(stats.threads, 3u);
  EXPECT_EQ(stats.seed_thread_seconds.size(), 3u);
  EXPECT_EQ(stats.thread_busy_seconds.size(), 3u);
  EXPECT_EQ(stats.level_thread_seconds.size(), stats.base.levels.size());
  // Busy time uses per-thread CPU clocks whose granularity can exceed this
  // tiny workload's runtime on some kernels, so only non-negativity is
  // asserted here (bench_fig8 exercises the values at measurable scale).
  const double busy_total = std::accumulate(
      stats.thread_busy_seconds.begin(), stats.thread_busy_seconds.end(), 0.0);
  EXPECT_GE(busy_total, 0.0);
  EXPECT_EQ(stats.base.total_maximal, sink.cliques().size());
}

TEST(ParallelEnumerator, TraceCoversEveryTask) {
  const auto g = test::random_graph(50, 0.35, 29);
  core::CliqueCollector sink;
  core::ParallelOptions options;
  options.range = core::SizeRange{3, 0};
  options.threads = 2;
  options.record_trace = true;
  const auto stats =
      core::enumerate_maximal_cliques_parallel(g, sink.callback(), options);
  ASSERT_EQ(stats.base.traces.size(), stats.base.levels.size());
  for (std::size_t i = 0; i < stats.base.traces.size(); ++i) {
    const auto& trace = stats.base.traces[i];
    EXPECT_EQ(trace.task_work.size(), stats.base.levels[i].sublists);
    // Every slot written (work proxy >= 0 is trivially true; seconds are
    // finite and non-negative).
    for (double s : trace.task_seconds) EXPECT_GE(s, 0.0);
  }
}

TEST(ParallelEnumerator, MemoryAccountingBalances) {
  util::MemoryTracker tracker;
  const auto g = test::random_graph(50, 0.35, 31);
  core::CliqueCollector sink;
  core::ParallelOptions options;
  options.range = core::SizeRange{3, 0};
  options.threads = 4;
  options.tracker = &tracker;
  core::enumerate_maximal_cliques_parallel(g, sink.callback(), options);
  EXPECT_EQ(tracker.current(util::MemTag::kCliqueStorage), 0u);
}

class ParallelSweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, double, std::size_t, int>> {};

TEST_P(ParallelSweepTest, MatchesReference) {
  const auto [n, p, threads, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  core::ParallelOptions options;
  options.range = core::SizeRange{2, 0};
  options.threads = threads;
  EXPECT_EQ(test::run_parallel_enumerator(g, options),
            test::reference_in_range(g, options.range));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, ParallelSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(20, 40),
                       ::testing::Values(0.2, 0.45),
                       ::testing::Values<std::size_t>(2, 4),
                       ::testing::Values(1, 2)));

// Determinism across thread counts: on 20 seeded G(n, p) graphs, the
// parallel enumerator must produce the exact result set of the sequential
// Clique Enumerator for every thread count — the paper's multithreaded
// driver changes only the schedule, never the output.
TEST(ParallelDeterminism, MatchesSequentialForAllThreadCounts) {
  constexpr std::size_t kGraphs = 20;
  constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
  for (std::size_t i = 0; i < kGraphs; ++i) {
    // Alternate sparse/dense instances so both wide and deep levels occur.
    const std::size_t n = 24 + 2 * i;
    const double p = (i % 2 == 0) ? 0.18 : 0.40;
    const auto g = test::random_graph(n, p, 7000 + i);
    core::CliqueEnumeratorOptions sequential_options;
    sequential_options.range = core::SizeRange{3, 0};
    const auto expected = test::run_clique_enumerator(g, sequential_options);
    for (const std::size_t threads : kThreadCounts) {
      core::ParallelOptions options;
      options.range = core::SizeRange{3, 0};
      options.threads = threads;
      EXPECT_EQ(test::run_parallel_enumerator(g, options), expected)
          << "graph=" << i << " n=" << n << " p=" << p
          << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace gsb

namespace gsb {
namespace {

TEST(TaskClaims, EveryTaskClaimedExactlyOnce) {
  par::Assignment assignment;
  assignment.tasks = {{0, 1, 2}, {3, 4}, {}};
  core::detail::TaskClaims claims(assignment);
  std::vector<int> seen(5, 0);
  // Thread 2 owns nothing: everything it gets is stolen.
  for (std::size_t tid : {0u, 2u, 1u, 2u, 0u, 1u, 2u, 0u}) {
    const auto task = claims.next(tid);
    if (task >= 0) ++seen[static_cast<std::size_t>(task)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_GT(claims.steals(), 0u);
  EXPECT_EQ(claims.next(0), -1);
}

TEST(TaskClaims, NoStealingWhenDisabled) {
  par::Assignment assignment;
  assignment.tasks = {{0, 1}, {2}};
  core::detail::TaskClaims claims(assignment, /*allow_steal=*/false);
  EXPECT_EQ(claims.next(1), 2);
  EXPECT_EQ(claims.next(1), -1);  // own queue empty; no theft
  EXPECT_EQ(claims.next(0), 0);
  EXPECT_EQ(claims.next(0), 1);
  EXPECT_EQ(claims.next(0), -1);
  EXPECT_EQ(claims.steals(), 0u);
}

TEST(ParallelEnumerator, StaticClaimingStillCorrect) {
  const auto g = test::random_graph(45, 0.35, 61);
  core::ParallelOptions options;
  options.range = core::SizeRange{3, 0};
  options.threads = 3;
  options.dynamic_claiming = false;
  options.balancer.enable_transfers = false;
  EXPECT_EQ(test::run_parallel_enumerator(g, options),
            test::reference_in_range(g, options.range));
}

TEST(MemoryLedger, FlushesBalancedDeltas) {
  util::MemoryTracker tracker;
  {
    core::detail::MemoryLedger ledger(tracker);
    ledger.allocate(100);
    ledger.allocate(50);
    ledger.release(30);
    EXPECT_EQ(tracker.current(), 0u);  // nothing flushed yet
    ledger.flush();
    EXPECT_EQ(tracker.current(util::MemTag::kCliqueStorage), 120u);
    ledger.release(120);
  }  // destructor flushes the remainder
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(SeedLevelWorker, MatchesBatchSeeding) {
  const auto g = test::random_graph(35, 0.4, 67);
  const std::size_t k = 4;
  core::CliqueCollector batch_sink;
  const auto batch = core::build_seed_level(g, k, batch_sink.callback());

  core::CliqueCollector inc_sink;
  const auto sink = inc_sink.callback();
  core::SeedLevelWorker worker(g, k, sink);
  for (const auto& pair : core::collect_seed_pairs(g)) {
    worker.process_pair(pair);
  }
  auto level = worker.take_level();

  EXPECT_EQ(core::normalize(std::move(batch_sink.cliques())),
            core::normalize(std::move(inc_sink.cliques())));
  auto key = [](const core::CliqueSublist& s) {
    return std::make_pair(s.prefix, s.tails);
  };
  std::vector<std::pair<core::Clique, std::vector<graph::VertexId>>> a, b;
  for (const auto& s : batch) a.push_back(key(s));
  for (const auto& s : level) b.push_back(key(s));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gsb
