// Tests for the observability subsystem: sharded metrics registry,
// latency histograms, trace retention, and the exposition formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/timeline_export.h"
#include "obs/trace.h"

namespace gsb::obs {
namespace {

/// A registry of its own per test: the global registry is shared process
/// state and other suites may be incrementing it.
class ObsRegistryTest : public ::testing::Test {
 protected:
  ObsRegistryTest() { registry_.set_enabled(true); }
  MetricsRegistry registry_;
};

std::uint64_t find_value(const RegistrySnapshot& snapshot,
                         const std::string& name,
                         const std::string& labels = {}) {
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (metric.name == name && metric.labels == labels) return metric.value;
  }
  ADD_FAILURE() << "metric not found: " << name << " {" << labels << "}";
  return 0;
}

const MetricSnapshot* find_metric(const RegistrySnapshot& snapshot,
                                  const std::string& name,
                                  const std::string& labels = {}) {
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (metric.name == name && metric.labels == labels) return &metric;
  }
  return nullptr;
}

TEST_F(ObsRegistryTest, CountersMergeAcrossThreads) {
  const Counter counter = registry_.counter("test_total", "help");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(find_value(registry_.scrape(), "test_total"),
            kThreads * kPerThread);
}

TEST_F(ObsRegistryTest, ScrapeUnderLoadSeesConsistentCounts) {
  // A scrape concurrent with writers must return a value between zero and
  // the final total (shard merging never double-counts or loses).
  const Counter counter = registry_.counter("load_total", "help");
  constexpr std::uint64_t kTotal = 50'000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) counter.inc();
    done.store(true);
  });
  std::uint64_t last = 0;
  while (!done.load()) {
    const std::uint64_t now = find_value(registry_.scrape(), "load_total");
    EXPECT_GE(now, last);  // monotone across scrapes
    EXPECT_LE(now, kTotal);
    last = now;
  }
  writer.join();
  EXPECT_EQ(find_value(registry_.scrape(), "load_total"), kTotal);
}

TEST_F(ObsRegistryTest, GaugeSetAndSetMax) {
  const Gauge gauge = registry_.gauge("test_gauge", "help");
  gauge.set(42);
  EXPECT_EQ(find_value(registry_.scrape(), "test_gauge"), 42u);
  gauge.set_max(17);  // below current: no change
  EXPECT_EQ(find_value(registry_.scrape(), "test_gauge"), 42u);
  gauge.set_max(99);
  EXPECT_EQ(find_value(registry_.scrape(), "test_gauge"), 99u);
}

TEST_F(ObsRegistryTest, HistogramBucketBoundaries) {
  const Histogram histogram = registry_.histogram("test_micros", "help");
  // Bucket i has bound 2^i: observe exact bounds and bounds+1.
  histogram.observe_micros(0);   // -> bucket 0 (bound 1)
  histogram.observe_micros(1);   // -> bucket 0
  histogram.observe_micros(2);   // -> bucket 1 (bound 2)
  histogram.observe_micros(3);   // -> bucket 2 (bound 4)
  histogram.observe_micros(4);   // -> bucket 2
  histogram.observe_micros(5);   // -> bucket 3 (bound 8)
  const std::uint64_t huge = std::uint64_t{1} << 40;
  histogram.observe_micros(huge);  // -> +Inf overflow
  const MetricSnapshot* metric =
      find_metric(registry_.scrape(), "test_micros");
  ASSERT_NE(metric, nullptr);
  const HistogramSnapshot& h = metric->histogram;
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[kHistogramBuckets], 1u);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum_micros, 0u + 1 + 2 + 3 + 4 + 5 + huge);
}

TEST_F(ObsRegistryTest, RegistrationDedupesAndChecksType) {
  const Counter a = registry_.counter("dup_total", "help");
  const Counter b = registry_.counter("dup_total", "help");
  a.inc();
  b.inc();
  EXPECT_EQ(find_value(registry_.scrape(), "dup_total"), 2u);
  // Same name, different labels: distinct series.
  const Counter labelled =
      registry_.counter("dup_total", "help", "kind=\"x\"");
  labelled.inc(5);
  EXPECT_EQ(find_value(registry_.scrape(), "dup_total"), 2u);
  EXPECT_EQ(find_value(registry_.scrape(), "dup_total", "kind=\"x\""), 5u);
  // Same name+labels, different type: programming error.
  EXPECT_THROW(registry_.gauge("dup_total", "help"), std::logic_error);
}

TEST_F(ObsRegistryTest, DisabledRegistryIgnoresWrites) {
  const Counter counter = registry_.counter("off_total", "help");
  registry_.set_enabled(false);
  counter.inc(100);
  registry_.set_enabled(true);
  EXPECT_EQ(find_value(registry_.scrape(), "off_total"), 0u);
  counter.inc();
  EXPECT_EQ(find_value(registry_.scrape(), "off_total"), 1u);
}

TEST_F(ObsRegistryTest, InertHandlesAreSafe) {
  const Counter counter;
  const Gauge gauge;
  const Histogram histogram;
  counter.inc();
  gauge.set(1);
  gauge.set_max(2);
  histogram.observe_micros(3);  // no crash, no effect
}

TEST_F(ObsRegistryTest, CollectorsRunAtScrapeAndAreRemovable) {
  const std::size_t id = registry_.add_collector([](RegistrySnapshot& out) {
    MetricSnapshot metric;
    metric.name = "sampled_gauge";
    metric.type = MetricType::kGauge;
    metric.value = 7;
    out.metrics.push_back(std::move(metric));
  });
  EXPECT_EQ(find_value(registry_.scrape(), "sampled_gauge"), 7u);
  registry_.remove_collector(id);
  EXPECT_EQ(find_metric(registry_.scrape(), "sampled_gauge"), nullptr);
}

TEST_F(ObsRegistryTest, ResetZeroesEverything) {
  const Counter counter = registry_.counter("reset_total", "help");
  const Gauge gauge = registry_.gauge("reset_gauge", "help");
  counter.inc(3);
  gauge.set(9);
  registry_.reset();
  EXPECT_EQ(find_value(registry_.scrape(), "reset_total"), 0u);
  EXPECT_EQ(find_value(registry_.scrape(), "reset_gauge"), 0u);
}

// ---- Prometheus exposition grammar ---------------------------------------

TEST_F(ObsRegistryTest, PrometheusGrammarAndCumulativeBuckets) {
  registry_.counter("gsb_things_total", "Things.", "type=\"a\"").inc(2);
  registry_.counter("gsb_things_total", "Things.", "type=\"b\"").inc(3);
  registry_.gauge("gsb_level", "A level.").set(5);
  const Histogram histogram =
      registry_.histogram("gsb_lat_micros", "Latency.");
  histogram.observe_micros(1);
  histogram.observe_micros(100);
  histogram.observe_micros(std::uint64_t{1} << 40);
  const std::string text = render_prometheus(registry_.scrape());

  // Every non-comment line matches the exposition line grammar.
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^"]*\")*\})? [0-9]+(\.[0-9]+)?$)");
  std::istringstream stream(text);
  std::string line;
  std::size_t help_lines = 0;
  std::size_t type_lines = 0;
  while (std::getline(stream, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      ++help_lines;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      continue;
    }
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
  }
  // One HELP/TYPE pair per family, not per labelled series.
  EXPECT_EQ(help_lines, type_lines);
  EXPECT_NE(text.find("# TYPE gsb_things_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsb_things_total{type=\"a\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsb_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsb_lat_micros histogram\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE gsb_things_total counter",
                      text.find("# TYPE gsb_things_total counter") + 1),
            std::string::npos)
      << "HELP/TYPE emitted once per family";

  // Cumulative buckets: monotone nondecreasing, +Inf last and equal to
  // _count.
  std::istringstream bucket_stream(text);
  std::uint64_t previous = 0;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  bool saw_inf = false;
  while (std::getline(bucket_stream, line)) {
    if (line.rfind("gsb_lat_micros_bucket{", 0) == 0) {
      const std::uint64_t value =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(value, previous) << "buckets must be cumulative: " << line;
      previous = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = value;
      } else {
        EXPECT_FALSE(saw_inf) << "+Inf must be the last bucket";
      }
    } else if (line.rfind("gsb_lat_micros_count ", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_value, 3u);
  EXPECT_EQ(count_value, 3u);
  EXPECT_NE(text.find("gsb_lat_micros_sum "), std::string::npos);
}

TEST_F(ObsRegistryTest, JsonRendersSingleLineWithFamilies) {
  registry_.counter("gsb_a_total", "A.").inc(4);
  registry_.gauge("gsb_b", "B.").set(6);
  registry_.histogram("gsb_c_micros", "C.").observe_micros(10);
  const std::string json = render_json(registry_.scrape());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"gsb_a_total\""), std::string::npos);
}

TEST(Exposition, EscapeMultilineRoundTrip) {
  const std::string original = "line one\nline \\two\\\n\\n not a newline\n";
  const std::string escaped = escape_multiline(original);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(unescape_multiline(escaped), original);
  EXPECT_EQ(unescape_multiline(escape_multiline("")), "");
  EXPECT_EQ(unescape_multiline(escape_multiline("\\\\\n\n")), "\\\\\n\n");
}

TEST(Exposition, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ---- Tracer ---------------------------------------------------------------

Trace make_trace(std::uint64_t total) {
  Trace trace;
  trace.request = "neighbors " + std::to_string(total);
  trace.transport = "test";
  trace.total_micros = total;
  trace.span_micros[static_cast<std::size_t>(Span::kExecute)] = total;
  return trace;
}

TEST(Tracer, RetainsSlowestN) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(4);
  for (std::uint64_t total = 1; total <= 10; ++total) {
    tracer.complete(make_trace(total));
  }
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 4u);
  EXPECT_EQ(slowest[0].total_micros, 10u);
  EXPECT_EQ(slowest[1].total_micros, 9u);
  EXPECT_EQ(slowest[2].total_micros, 8u);
  EXPECT_EQ(slowest[3].total_micros, 7u);
  EXPECT_EQ(tracer.retained(), 4u);
  tracer.clear();
  EXPECT_EQ(tracer.retained(), 0u);
}

TEST(Tracer, SlowLogThresholdCounts) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_slow_log_micros(100);
  tracer.complete(make_trace(50));
  EXPECT_EQ(tracer.slow_logged(), 0u);
  tracer.complete(make_trace(100));
  tracer.complete(make_trace(5000));
  EXPECT_EQ(tracer.slow_logged(), 2u);
}

TEST(Tracer, TraceScopeFillsSpansAndTotal) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceScope scope(tracer, "unix", "degree 3");
    ASSERT_TRUE(scope.active());
    ASSERT_NE(active_trace(), nullptr);
    scope.add_pre_span(Span::kQueueWait, 250);
    { SpanTimer timer(Span::kExecute); }
  }
  EXPECT_EQ(active_trace(), nullptr);
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 1u);
  const Trace& trace = slowest[0];
  EXPECT_EQ(trace.request, "degree 3");
  EXPECT_STREQ(trace.transport, "unix");
  EXPECT_EQ(trace.span_micros[static_cast<std::size_t>(Span::kQueueWait)],
            250u);
  EXPECT_GE(trace.total_micros, 250u);  // pre-span counts into the total
}

TEST(Tracer, DisabledTracerMakesScopesInert) {
  Tracer tracer;  // disabled by default
  {
    TraceScope scope(tracer, "unix", "ping");
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(active_trace(), nullptr);
  }
  EXPECT_EQ(tracer.retained(), 0u);
}

TEST(Tracer, LongRequestsAreTruncated) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::string request(1000, 'x');
  { TraceScope scope(tracer, "tcp", request); }
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].request.size(), Trace::kMaxRequestChars);
}

TEST(Tracer, RenderTracesJsonShape) {
  Tracer tracer;
  tracer.set_enabled(true);
  Trace trace = make_trace(123);
  trace.request = "say \"hi\"";
  tracer.complete(std::move(trace));
  const std::string json = render_traces_json(tracer.slowest());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"total_micros\":123"), std::string::npos);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\":123"), std::string::npos);
}

TEST(Uptime, MonotoneNonNegative) {
  anchor_process_start();
  EXPECT_GE(process_uptime_seconds(), 0u);
}

// ---- Histogram quantiles --------------------------------------------------

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  HistogramSnapshot h;
  EXPECT_EQ(histogram_quantile_micros(h, 0.5), 0u);
}

TEST(HistogramQuantile, SingleBucketInterpolates) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const Histogram h = registry.histogram("q_micros", "help");
  for (int i = 0; i < 100; ++i) h.observe_micros(3);  // bucket (2, 4]
  const MetricSnapshot* metric = find_metric(registry.scrape(), "q_micros");
  ASSERT_NE(metric, nullptr);
  const std::uint64_t p50 = histogram_quantile_micros(metric->histogram, 0.5);
  const std::uint64_t p99 = histogram_quantile_micros(metric->histogram, 0.99);
  EXPECT_GT(p50, 2u);
  EXPECT_LE(p50, 4u);
  EXPECT_GT(p99, p50 - 1);  // higher rank never interpolates lower
  EXPECT_LE(p99, 4u);
}

TEST(HistogramQuantile, SpreadAcrossBucketsIsMonotone) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  const Histogram h = registry.histogram("q2_micros", "help");
  for (std::uint64_t v : {1u, 10u, 100u, 1000u, 10000u}) h.observe_micros(v);
  const MetricSnapshot* metric = find_metric(registry.scrape(), "q2_micros");
  ASSERT_NE(metric, nullptr);
  std::uint64_t previous = 0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const std::uint64_t value = histogram_quantile_micros(metric->histogram, q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // p99 of five observations ranks into the last bucket (8192, 16384].
  EXPECT_GT(histogram_quantile_micros(metric->histogram, 0.99), 8192u);
  EXPECT_LE(histogram_quantile_micros(metric->histogram, 0.99), 16384u);
}

// ---- Build info -----------------------------------------------------------

TEST(BuildInfo, GlobalScrapeCarriesVersionIsaSanitizer) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const RegistrySnapshot snapshot = registry.scrape();
  registry.set_enabled(was_enabled);
  const MetricSnapshot* info = nullptr;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (metric.name == "gsb_build_info") info = &metric;
  }
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->value, 1u);
  EXPECT_NE(info->labels.find("version=\""), std::string::npos);
  EXPECT_NE(info->labels.find("isa=\""), std::string::npos);
  EXPECT_NE(info->labels.find("sanitizer=\""), std::string::npos);
}

// ---- Timeline journal -----------------------------------------------------

TEST(Timeline, DisabledJournalRecordsNothing) {
  TimelineJournal journal;
  journal.record(TimelineEventKind::kJob, 0, 10, 1, "ignored");
  journal.record_instant(TimelineEventKind::kCacheHit, 2, "ignored");
  const TimelineSnapshot snapshot = journal.snapshot();
  EXPECT_TRUE(snapshot.events.empty());
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST(Timeline, RecordsEventsSortedByStart) {
  TimelineJournal journal;
  journal.set_enabled(true);
  journal.set_thread_lane("main");
  journal.record(TimelineEventKind::kStage, 200, 50, 7, "later");
  journal.record(TimelineEventKind::kJob, 100, 25, 3, "earlier");
  const TimelineSnapshot snapshot = journal.snapshot();
  ASSERT_EQ(snapshot.events.size(), 2u);
  EXPECT_EQ(snapshot.events[0].start_micros, 100u);
  EXPECT_STREQ(snapshot.events[0].label, "earlier");
  EXPECT_EQ(snapshot.events[0].id, 3u);
  EXPECT_EQ(snapshot.events[1].start_micros, 200u);
  EXPECT_EQ(snapshot.events[1].kind, TimelineEventKind::kStage);
  ASSERT_EQ(snapshot.lanes.size(), 1u);
  EXPECT_EQ(snapshot.lanes[0].name, "main");
}

TEST(Timeline, LabelsTruncateAtFixedWidth) {
  TimelineJournal journal;
  journal.set_enabled(true);
  const std::string longer(100, 'x');
  journal.record(TimelineEventKind::kRequest, 0, 1, 0, longer);
  const TimelineSnapshot snapshot = journal.snapshot();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(std::string(snapshot.events[0].label).size(),
            TimelineEvent::kLabelChars);
}

TEST(Timeline, TinyRingDropsExactlyAndCounts) {
  TimelineJournal journal;
  journal.set_capacity(4);
  journal.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.record(TimelineEventKind::kJob, i, 1, i, "evt");
  }
  const TimelineSnapshot snapshot = journal.snapshot();
  EXPECT_EQ(snapshot.events.size(), 4u);
  EXPECT_EQ(snapshot.dropped, 6u);
  EXPECT_EQ(journal.events_dropped(), 6u);
  // The retained prefix is the oldest events (drop-on-full, not overwrite).
  EXPECT_EQ(snapshot.events.front().start_micros, 0u);
  EXPECT_EQ(snapshot.events.back().start_micros, 3u);
}

TEST(Timeline, ResetStartsAFreshWindow) {
  TimelineJournal journal;
  journal.set_capacity(4);
  journal.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.record(TimelineEventKind::kJob, i, 1, i, "old");
  }
  journal.reset();
  EXPECT_EQ(journal.events_dropped(), 0u);
  EXPECT_TRUE(journal.snapshot().events.empty());
  journal.record(TimelineEventKind::kStage, 1, 2, 3, "new");
  const TimelineSnapshot snapshot = journal.snapshot();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_STREQ(snapshot.events[0].label, "new");
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST(Timeline, OneLanePerRecordingThread) {
  TimelineJournal journal;
  journal.set_enabled(true);
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      journal.set_thread_lane("lane-" + std::to_string(t));
      for (int i = 0; i < 16; ++i) {
        journal.record(TimelineEventKind::kJob, static_cast<std::uint64_t>(i),
                       1, t, "work");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TimelineSnapshot snapshot = journal.snapshot();
  EXPECT_EQ(snapshot.events.size(), kThreads * 16);
  ASSERT_EQ(snapshot.lanes.size(), kThreads);
  std::vector<std::uint32_t> tids;
  for (const TimelineLane& lane : snapshot.lanes) tids.push_back(lane.tid);
  std::sort(tids.begin(), tids.end());
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(tids[t], t);  // dense lane ids, one per thread
  }
}

TEST(Timeline, SpanRecordsCompleteEvent) {
  TimelineJournal journal;
  journal.set_enabled(true);
  { TimelineSpan span(journal, TimelineEventKind::kRequest, "degree 3", 42); }
  const TimelineSnapshot snapshot = journal.snapshot();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].kind, TimelineEventKind::kRequest);
  EXPECT_EQ(snapshot.events[0].id, 42u);
  EXPECT_STREQ(snapshot.events[0].label, "degree 3");
}

TEST(Timeline, IoSpansAreDoublyGated) {
  TimelineJournal journal;
  journal.set_io_spans_enabled(true);
  EXPECT_FALSE(journal.io_spans_enabled());  // journal itself still off
  journal.set_enabled(true);
  EXPECT_TRUE(journal.io_spans_enabled());
  journal.set_io_spans_enabled(false);
  EXPECT_FALSE(journal.io_spans_enabled());
}

// ---- Chrome trace export --------------------------------------------------

TEST(TimelineExport, ChromeTraceShape) {
  TimelineJournal journal;
  journal.set_enabled(true);
  journal.set_thread_lane("worker-0");
  journal.record(TimelineEventKind::kJob, 10, 5, 1, "enumeration");
  journal.record(TimelineEventKind::kCacheHit, 20, 0, 2, "say \"hi\"");
  const std::string json = render_chrome_trace(journal.snapshot());
  EXPECT_EQ(json.find('\n'), std::string::npos);  // wire-safe single line
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(
      json.find("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
                "\"args\":{\"name\":\"worker-0\"}}"),
      std::string::npos);
  EXPECT_NE(
      json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":10,\"dur\":5,"
                "\"cat\":\"job\",\"name\":\"enumeration\","
                "\"args\":{\"id\":1}}"),
      std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);  // escaped label
  EXPECT_NE(json.find("\"otherData\":{\"dropped\":0}"), std::string::npos);
}

TEST(TimelineExport, DroppedCountSurfacesInTrace) {
  TimelineJournal journal;
  journal.set_capacity(1);
  journal.set_enabled(true);
  journal.record(TimelineEventKind::kJob, 0, 1, 0, "kept");
  journal.record(TimelineEventKind::kJob, 1, 1, 1, "dropped");
  const std::string json = render_chrome_trace(journal.snapshot());
  EXPECT_NE(json.find("\"otherData\":{\"dropped\":1}"), std::string::npos);
}

TEST(TimelineExport, EmptyLabelFallsBackToKindName) {
  TimelineJournal journal;
  journal.set_enabled(true);
  journal.record(TimelineEventKind::kQueueWait, 0, 3, 9, "");
  const std::string json = render_chrome_trace(journal.snapshot());
  EXPECT_NE(json.find("\"cat\":\"queue_wait\",\"name\":\"queue_wait\""),
            std::string::npos);
}

}  // namespace
}  // namespace gsb::obs
